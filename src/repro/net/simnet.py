"""The simulated internet: hosts, links, firewalls, and MITM hooks.

A synchronous message-passing network with a shared virtual clock.
Every request/response exchange advances the clock by the link RTT (per
the :class:`~repro.net.latency.LatencyModel`) plus whatever processing
time the serving handler declares — so end-to-end latencies compose the
way the paper's Table 3 measurements do.

Adversarial capabilities from the threat model (section 3.2) are first
class: interceptors can observe, modify, drop, or redirect any traffic
(the cloud provider owns the network), and hosts can be registered at
any IP (impersonation).  Confidentiality and integrity, where needed,
must come from TLS on top — exactly as on the real internet.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from .dns import DnsRegistry
from .firewall import ConnectionRefused, Firewall
from .latency import ClockScope, LatencyModel, SimClock


class NetworkError(ConnectionError):
    """Unreachable hosts / closed ports."""


@dataclass
class RequestContext:
    """Metadata a handler sees about an incoming message."""

    network: "Network"
    source_ip: str
    destination_ip: str
    port: int

    def add_processing_time(self, seconds: float) -> None:
        """Account server-side work on the shared clock."""
        self.network.clock.advance(seconds)


Handler = Callable[[bytes, RequestContext], bytes]

#: An interceptor sees (src_ip, dst_ip, port, payload) and returns a
#: possibly modified tuple, or None to drop the packet.
Interceptor = Callable[
    [str, str, int, bytes], Optional[Tuple[str, str, int, bytes]]
]


class Host:
    """A machine on the network."""

    def __init__(self, network: "Network", name: str, ip_address: str,
                 firewall: Optional[Firewall] = None,
                 region: Optional[str] = None):
        self.network = network
        self.name = name
        self.ip_address = ip_address
        self.firewall = firewall if firewall is not None else Firewall.open_firewall()
        #: Topology placement; cross-region exchanges are priced by the
        #: latency model's inter-region RTT map instead of ``base_rtt``.
        self.region = region
        self._listeners: Dict[int, Handler] = {}

    def listen(self, port: int, handler: Handler) -> None:
        """Bind *handler* to a port."""
        if not (0 < port < 65536):
            raise NetworkError(f"invalid port {port}")
        self._listeners[port] = handler

    def close_port(self, port: int) -> None:
        """Stop listening on a port."""
        self._listeners.pop(port, None)

    def handler_for(self, port: int) -> Handler:
        """The handler bound to a port (raises if none)."""
        try:
            return self._listeners[port]
        except KeyError:
            raise NetworkError(
                f"connection to {self.name}:{port} refused (nothing listening)"
            ) from None

    def request(self, dst_ip: str, port: int, payload: bytes) -> bytes:
        """Send a request from this host and wait for the response."""
        return self.network.exchange(self, dst_ip, port, payload)


class Network:
    """The shared medium + clock + DNS of one simulated internet.

    By default exchanges run *synchronously*: each one advances the
    shared clock in place (a degenerate single-process simulation).  An
    event-driven simulation opts in with :meth:`enable_event_mode` and
    measures exchanges inside :meth:`measure` — the elapsed virtual time
    is charged to an isolated clock scope instead of the shared
    timeline, and the caller (a :class:`repro.sim.kernel.EventKernel`
    process) replays it as a kernel sleep.  Concurrent in-flight
    exchanges therefore each advance only their own timeline, while all
    existing synchronous callers keep working unchanged.
    """

    def __init__(self, latency: Optional[LatencyModel] = None):
        self.clock = SimClock()
        self.latency = latency if latency is not None else LatencyModel()
        self.dns = DnsRegistry()
        self._hosts_by_ip: Dict[str, Host] = {}
        self._interceptors: List[Interceptor] = []
        self.event_mode = False
        self.kernel = None

    def enable_event_mode(self, kernel=None) -> None:
        """Switch to event-driven timing (see class docstring)."""
        self.event_mode = True
        if kernel is not None:
            self.kernel = kernel

    @contextmanager
    def measure(self) -> Iterator[ClockScope]:
        """Measure virtual time spent in the block without (in event
        mode) advancing the shared timeline.

        In synchronous mode the block's advances land on the shared
        clock as always and the scope merely reports their sum, so
        instrumentation code works identically in both modes.
        """
        if self.event_mode:
            with self.clock.isolated() as scope:
                yield scope
        else:
            scope = ClockScope()
            before = self.clock.now
            try:
                yield scope
            finally:
                scope.elapsed = self.clock.now - before

    def timed_exchange(self, source: "Host", dst_ip: str, port: int,
                       payload: bytes) -> Tuple[bytes, float]:
        """:meth:`exchange` plus the virtual seconds it took."""
        with self.measure() as scope:
            response = self.exchange(source, dst_ip, port, payload)
        return response, scope.elapsed

    def add_host(self, name: str, ip_address: str,
                 firewall: Optional[Firewall] = None,
                 region: Optional[str] = None) -> Host:
        """Attach a machine to the network."""
        if ip_address in self._hosts_by_ip:
            raise NetworkError(f"IP {ip_address} already in use")
        host = Host(self, name, ip_address, firewall, region=region)
        self._hosts_by_ip[ip_address] = host
        return host

    def remove_host(self, ip_address: str) -> None:
        """Detach a machine."""
        self._hosts_by_ip.pop(ip_address, None)

    def attach_host(self, host: "Host") -> "Host":
        """Re-attach a previously removed machine (fault revert: the
        host comes back with its listeners and state intact)."""
        if host.ip_address in self._hosts_by_ip:
            raise NetworkError(f"IP {host.ip_address} already in use")
        self._hosts_by_ip[host.ip_address] = host
        return host

    def host_at(self, ip_address: str) -> Host:
        """The host at an IP (raises if unreachable)."""
        try:
            return self._hosts_by_ip[ip_address]
        except KeyError:
            raise NetworkError(f"no route to host {ip_address}") from None

    def add_interceptor(self, interceptor: Interceptor) -> None:
        """Install a man-in-the-middle hook (adversary capability)."""
        self._interceptors.append(interceptor)

    def remove_interceptor(self, interceptor: Interceptor) -> None:
        """Remove a previously installed hook."""
        self._interceptors.remove(interceptor)

    def exchange(self, source: Host, dst_ip: str, port: int, payload: bytes) -> bytes:
        """One request/response round trip, through any interceptors."""
        src_ip = source.ip_address
        for interceptor in self._interceptors:
            result = interceptor(src_ip, dst_ip, port, payload)
            if result is None:
                raise NetworkError("packet dropped in transit")
            src_ip, dst_ip, port, payload = result

        destination = self.host_at(dst_ip)
        destination.firewall.check_inbound(port, destination.name)
        handler = destination.handler_for(port)
        self.clock.advance(self.rtt_between(source, destination))
        context = RequestContext(
            network=self,
            source_ip=source.ip_address,
            destination_ip=dst_ip,
            port=port,
        )
        return handler(payload, context)

    def rtt_between(self, source: Host, destination: Host) -> float:
        """Topology-priced round trip between two attached hosts
        (host-pair override > inter-region map > base RTT)."""
        return self.latency.rtt_between(
            source.name, destination.name, source.region, destination.region
        )

    def resolve(self, domain: str) -> str:
        """Resolve a domain to one address."""
        return self.dns.resolve(domain)


__all__ = [
    "ConnectionRefused",
    "Handler",
    "Host",
    "Interceptor",
    "Network",
    "NetworkError",
    "RequestContext",
]
