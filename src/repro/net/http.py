"""HTTP over the simulated network, plain or TLS.

The server side models nginx + CGI handlers (what a Revelio VM runs,
section 5.3): routes are registered per (method, path) with an optional
server-side processing time that is charged to the simulated clock.
The client side models a browser's network stack: URL parsing, DNS
resolution, connection pooling, and — crucially for the web extension —
exposure of the underlying TLS connection's certificate and public key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..crypto import encoding
from ..crypto.drbg import HmacDrbg
from ..crypto.keys import PrivateKey, PublicKey
from ..crypto.x509 import Certificate
from .simnet import Host, Network, RequestContext
from .tls import TlsConnection, TlsServer, tls_connect

HTTPS_PORT = 443
HTTP_PORT = 80


class HttpError(ValueError):
    """Malformed HTTP messages or URLs."""


@dataclass
class HttpRequest:
    """An HTTP request message."""
    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def encode(self) -> bytes:
        """Serialise to canonical TLV bytes."""
        return encoding.encode(
            {
                "method": self.method,
                "path": self.path,
                "headers": dict(self.headers),
                "body": self.body,
            }
        )

    @classmethod
    def decode(cls, data: bytes) -> "HttpRequest":
        """Parse an instance back out of canonical TLV bytes."""
        try:
            decoded = encoding.decode(data)
        except ValueError as exc:
            raise HttpError("malformed HTTP request") from exc
        return cls(
            method=decoded["method"],
            path=decoded["path"],
            headers=dict(decoded["headers"]),
            body=decoded["body"],
        )


@dataclass
class HttpResponse:
    """An HTTP response message."""
    status: int
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def encode(self) -> bytes:
        """Serialise to canonical TLV bytes."""
        return encoding.encode(
            {"status": self.status, "headers": dict(self.headers), "body": self.body}
        )

    @classmethod
    def decode(cls, data: bytes) -> "HttpResponse":
        """Parse an instance back out of canonical TLV bytes."""
        try:
            decoded = encoding.decode(data)
        except ValueError as exc:
            raise HttpError("malformed HTTP response") from exc
        return cls(
            status=decoded["status"],
            headers=dict(decoded["headers"]),
            body=decoded["body"],
        )

    @classmethod
    def ok(cls, body: bytes, content_type: str = "text/html") -> "HttpResponse":
        """A 200 response."""
        return cls(status=200, headers={"content-type": content_type}, body=body)

    @classmethod
    def not_found(cls) -> "HttpResponse":
        """A 404 response."""
        return cls(status=404, body=b"not found")

    @classmethod
    def forbidden(cls, reason: str = "") -> "HttpResponse":
        """A 403 response."""
        return cls(status=403, body=reason.encode("utf-8"))

    @classmethod
    def error(cls, reason: str = "") -> "HttpResponse":
        """A 500 response."""
        return cls(status=500, body=reason.encode("utf-8"))


RouteHandler = Callable[[HttpRequest, RequestContext], HttpResponse]


class HttpServer:
    """A route-dispatching web server (the nginx + FastCGI analogue)."""

    def __init__(self, server_name: str = "server"):
        self.server_name = server_name
        self._routes: Dict[Tuple[str, str], Tuple[RouteHandler, float]] = {}
        self.tls: Optional[TlsServer] = None

    def add_route(
        self,
        method: str,
        path: str,
        handler: RouteHandler,
        processing_time: float = 0.0,
    ) -> None:
        """Register *handler* for exact (method, path), charging
        *processing_time* virtual seconds per request served."""
        self._routes[(method.upper(), path)] = (handler, processing_time)

    def app(self, payload: bytes, context: RequestContext) -> bytes:
        """Application entry point (plug into TLS or a plain port)."""
        request = HttpRequest.decode(payload)
        entry = self._routes.get((request.method.upper(), request.path))
        if entry is None:
            return HttpResponse.not_found().encode()
        handler, processing_time = entry
        if processing_time:
            context.add_processing_time(processing_time)
        return handler(request, context).encode()

    def serve_plain(self, host: Host, port: int = HTTP_PORT) -> None:
        """Bind this server to a plain-HTTP port."""
        host.listen(port, self.app)

    def serve_tls(
        self,
        host: Host,
        certificate_chain: Sequence[Certificate],
        private_key: PrivateKey,
        rng: HmacDrbg,
        port: int = HTTPS_PORT,
    ) -> TlsServer:
        """Terminate TLS on *port* with the given identity."""
        self.tls = TlsServer(certificate_chain, private_key, self.app, rng)
        host.listen(port, self.tls.handle)
        return self.tls


@dataclass(frozen=True)
class ParsedUrl:
    """The components of a parsed URL."""
    scheme: str
    hostname: str
    port: int
    path: str


def parse_url(url: str) -> ParsedUrl:
    """Parse ``scheme://host[:port]/path`` URLs."""
    scheme, separator, rest = url.partition("://")
    if not separator or scheme not in ("http", "https"):
        raise HttpError(f"unsupported URL {url!r}")
    host_port, slash, path = rest.partition("/")
    hostname, colon, port_text = host_port.partition(":")
    if not hostname:
        raise HttpError(f"URL has no host: {url!r}")
    if colon:
        try:
            port = int(port_text)
        except ValueError:
            raise HttpError(f"bad port in URL {url!r}") from None
    else:
        port = HTTPS_PORT if scheme == "https" else HTTP_PORT
    return ParsedUrl(scheme=scheme, hostname=hostname, port=port, path="/" + path)


@dataclass
class ConnectionInfo:
    """What the browser knows about the transport a response came over."""

    scheme: str
    destination_ip: str
    peer_certificate: Optional[Certificate] = None
    session_id: Optional[bytes] = None

    @property
    def peer_public_key(self) -> Optional[PublicKey]:
        """The certified public key of the peer."""
        if self.peer_certificate is None:
            return None
        return self.peer_certificate.public_key


class HttpClient:
    """A pooled HTTP(S) client bound to one source host."""

    def __init__(
        self,
        host: Host,
        trust_anchors: Sequence[Certificate],
        rng: HmacDrbg,
    ):
        self._host = host
        self._network: Network = host.network
        self.trust_anchors = list(trust_anchors)
        self._rng = rng
        self._pool: Dict[Tuple[str, str, int], TlsConnection] = {}
        #: Cleartext fields merged into every client hello (e.g. the
        #: session ``tier`` tag an attestation-aware gateway routes on).
        self.hello_metadata: Dict[str, object] = {}

    def request(
        self,
        method: str,
        url: str,
        body: bytes = b"",
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[HttpResponse, ConnectionInfo]:
        """Issue a request; returns the response and transport info."""
        parsed = parse_url(url)
        ip_address = self._network.resolve(parsed.hostname)
        request = HttpRequest(
            method=method,
            path=parsed.path,
            headers={"host": parsed.hostname, **(headers or {})},
            body=body,
        )
        if parsed.scheme == "http":
            raw = self._host.request(ip_address, parsed.port, request.encode())
            return HttpResponse.decode(raw), ConnectionInfo("http", ip_address)

        connection = self._connection_for(parsed, ip_address)
        try:
            raw = connection.request(request.encode())
        except ConnectionError:
            # The server may have restarted (new certificate!): establish
            # a fresh session once and retry — this re-keying is exactly
            # the event the web extension must notice.
            self._pool.pop((parsed.scheme, parsed.hostname, parsed.port), None)
            connection = self._connection_for(parsed, ip_address)
            raw = connection.request(request.encode())
        info = ConnectionInfo(
            scheme="https",
            destination_ip=ip_address,
            peer_certificate=connection.peer_certificate,
            session_id=connection.session_id,
        )
        return HttpResponse.decode(raw), info

    def get(self, url: str, headers: Optional[Dict[str, str]] = None):
        """HTTP GET."""
        return self.request("GET", url, headers=headers)

    def post(self, url: str, body: bytes, headers: Optional[Dict[str, str]] = None):
        """HTTP POST."""
        return self.request("POST", url, body=body, headers=headers)

    def _connection_for(self, parsed: ParsedUrl, ip_address: str) -> TlsConnection:
        key = (parsed.scheme, parsed.hostname, parsed.port)
        connection = self._pool.get(key)
        if connection is not None and not connection.closed:
            return connection
        connection = tls_connect(
            self._host,
            ip_address,
            parsed.port,
            parsed.hostname,
            self.trust_anchors,
            self._rng,
            now=self._network.clock.epoch_seconds(),
            hello_metadata=self.hello_metadata or None,
        )
        self._pool[key] = connection
        return connection

    def current_connection(self, hostname: str) -> Optional[TlsConnection]:
        """The live pooled connection to *hostname*, if any — the
        browser's TLS-context query surface."""
        for (scheme, host, _), connection in self._pool.items():
            if scheme == "https" and host == hostname and not connection.closed:
                return connection
        return None

    def close_all(self) -> None:
        """Close every pooled connection."""
        for connection in self._pool.values():
            connection.close()
        self._pool.clear()
