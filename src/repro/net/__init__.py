"""Network substrate: simulated internet, TLS, HTTP, DNS, firewalls."""

from .dns import DnsError, DnsRegistry
from .firewall import SSH_PORT, ConnectionRefused, Firewall
from .http import (
    HTTP_PORT,
    HTTPS_PORT,
    ConnectionInfo,
    HttpClient,
    HttpError,
    HttpRequest,
    HttpResponse,
    HttpServer,
    parse_url,
)
from .latency import ZERO_LATENCY, LatencyModel, SimClock
from .simnet import Host, Network, NetworkError, RequestContext
from .tls import (
    TlsConnection,
    TlsError,
    TlsHandshakeError,
    TlsRecordError,
    TlsServer,
    tls_connect,
)

__all__ = [
    "ConnectionInfo",
    "ConnectionRefused",
    "DnsError",
    "DnsRegistry",
    "Firewall",
    "HTTP_PORT",
    "HTTPS_PORT",
    "Host",
    "HttpClient",
    "HttpError",
    "HttpRequest",
    "HttpResponse",
    "HttpServer",
    "LatencyModel",
    "Network",
    "NetworkError",
    "RequestContext",
    "SSH_PORT",
    "SimClock",
    "TlsConnection",
    "TlsError",
    "TlsHandshakeError",
    "TlsRecordError",
    "TlsServer",
    "ZERO_LATENCY",
    "parse_url",
    "tls_connect",
]
