"""Simulated time and the calibrated latency model.

Absolute latencies cannot be reproduced without the authors' testbed
(EPYC 7313 server, Apple M2 client on WiFi, the real AMD KDS), so the
network carries a :class:`SimClock` — a virtual clock that components
advance as messages travel and servers work.  The default
:class:`LatencyModel` is calibrated to the paper's Table 3 base
numbers; benchmarks report simulated milliseconds whose *composition*
(who dominates, what caching saves) matches the paper.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple


class ClockScope:
    """Handle to one :meth:`SimClock.isolated` timeline segment.

    ``elapsed`` holds the virtual seconds charged inside the scope; it
    is finalised when the ``with`` block exits.
    """

    __slots__ = ("elapsed",)

    def __init__(self) -> None:
        self.elapsed: float = 0.0


class SimClock:
    """A monotonically advancing virtual clock (seconds).

    Besides plain :meth:`advance`, the clock supports *isolated scopes*
    for event-driven simulations: inside ``with clock.isolated() as
    scope:`` every advance is charged to the scope (and, transitively,
    to any enclosing scope) instead of the shared timeline, while
    ``now`` keeps reporting base-plus-scope time so timestamps taken
    mid-scope stay consistent.  A discrete-event kernel measures an
    in-flight exchange this way, then re-plays the elapsed time as a
    kernel sleep — concurrent exchanges each advance only their own
    timeline.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._offsets: List[float] = []

    @property
    def now(self) -> float:
        """Current virtual time in seconds (scope-local when isolated)."""
        if self._offsets:
            return self._now + sum(self._offsets)
        return self._now

    def advance(self, seconds: float) -> None:
        """Move the clock forward."""
        if seconds < 0:
            raise ValueError("time cannot move backwards")
        if self._offsets:
            self._offsets[-1] += seconds
        else:
            self._now += seconds

    def advance_to(self, timestamp: float) -> None:
        """Jump to an absolute virtual time (event-kernel scheduling)."""
        if self._offsets:
            raise RuntimeError("cannot jump the clock inside an isolated scope")
        if timestamp < self._now:
            raise ValueError("time cannot move backwards")
        self._now = float(timestamp)

    @contextmanager
    def isolated(self) -> Iterator[ClockScope]:
        """Charge every advance in the block to a scope, not the shared
        timeline.  Nested scopes roll their elapsed time up into the
        enclosing scope; the outermost scope discards it (the caller
        replays it, e.g. as an event-kernel sleep)."""
        scope = ClockScope()
        self._offsets.append(0.0)
        try:
            yield scope
        finally:
            elapsed = self._offsets.pop()
            scope.elapsed = elapsed
            if self._offsets:
                self._offsets[-1] += elapsed

    def epoch_seconds(self) -> int:
        """Integer timestamp for certificate validity checks."""
        return int(self.now)


@dataclass
class LatencyModel:
    """Per-link and per-operation virtual latencies (seconds).

    Defaults are calibrated so that the Table 3 scenario reproduces the
    paper's composition: 5.2 ms base RTT, ~100.9 ms plain page access,
    ~427.3 ms KDS round trip.
    """

    #: one network round trip between two hosts (client <-> server)
    base_rtt: float = 0.0052
    #: WAN round trip to AMD's KDS (dominates fresh attestations)
    kds_rtt: float = 0.400
    #: KDS server-side lookup/issuance work
    kds_processing: float = 0.0273
    #: web-server work to serve the minimal test page
    page_processing: float = 0.090
    #: serving the attestation bundle from the well-known URL
    report_endpoint_processing: float = 0.010
    #: ACME CA work to validate a DNS-01 challenge and sign (certbot
    #: round trips included) — Table 2's ~3 s certificate generation
    acme_issuance: float = 2.95
    #: client-side report validation in the browser extension (JS crypto
    #: on the paper's M2 notebook; our Python ECDSA is faster, so the
    #: difference is charged to the virtual clock)
    client_validation: float = 0.250
    #: per-request connection-context query + pinned-key comparison by
    #: the extension (Table 3: 115.0 ms monitored vs 100.9 ms plain)
    connection_monitor: float = 0.014
    #: one ECDSA P-384 report-signature verification (the three below
    #: sum to Table 2's ~13 ms client-side validation figure)
    sig_verify: float = 0.008
    #: VCEK -> ASK -> ARK chain walk (two chain signatures + windows)
    cert_chain_verify: float = 0.004
    #: golden-measurement / policy comparison
    measurement_check: float = 0.001
    #: fixed cost of one verify-farm batch flush: the shared doubling
    #: chain + generator-table pass of the randomized batch MSM
    #: (~half a single joint multiplication)
    batch_verify_base: float = 0.004
    #: marginal cost per signature inside a batch MSM (table build +
    #: per-digit mixed additions; ~1/5 of a full ``sig_verify``,
    #: matching the measured amortisation in ``bench_crypto``)
    batch_verify_per_sig: float = 0.0015
    #: per-host-pair overrides
    pair_rtt: Dict[Tuple[str, str], float] = field(default_factory=dict)
    #: inter-region round trips, keyed on ``(region_a, region_b)``
    #: (either order); hosts in the same (or no) region use ``base_rtt``
    region_rtt: Dict[Tuple[str, str], float] = field(default_factory=dict)

    def rtt(self, src: str, dst: str) -> float:
        """Round-trip latency between two named hosts."""
        key = (src, dst)
        if key in self.pair_rtt:
            return self.pair_rtt[key]
        reverse = (dst, src)
        if reverse in self.pair_rtt:
            return self.pair_rtt[reverse]
        return self.base_rtt

    def rtt_between(
        self,
        src: str,
        dst: str,
        src_region: Optional[str] = None,
        dst_region: Optional[str] = None,
    ) -> float:
        """Topology-priced round trip: a host-pair override wins, then
        the inter-region map (when the endpoints sit in different
        regions), then ``base_rtt``."""
        key = (src, dst)
        if key in self.pair_rtt:
            return self.pair_rtt[key]
        reverse = (dst, src)
        if reverse in self.pair_rtt:
            return self.pair_rtt[reverse]
        if (
            src_region is not None
            and dst_region is not None
            and src_region != dst_region
        ):
            region_key = (src_region, dst_region)
            if region_key in self.region_rtt:
                return self.region_rtt[region_key]
            region_reverse = (dst_region, src_region)
            if region_reverse in self.region_rtt:
                return self.region_rtt[region_reverse]
        return self.base_rtt


#: A model with everything zeroed — unit tests that don't care about
#: time use this so assertions stay exact.
ZERO_LATENCY = LatencyModel(
    base_rtt=0.0,
    kds_rtt=0.0,
    kds_processing=0.0,
    page_processing=0.0,
    report_endpoint_processing=0.0,
    acme_issuance=0.0,
    client_validation=0.0,
    connection_monitor=0.0,
    sig_verify=0.0,
    cert_chain_verify=0.0,
    measurement_check=0.0,
    batch_verify_base=0.0,
    batch_verify_per_sig=0.0,
)
