"""A simplified TLS: ECDHE handshake, certificate authentication,
AEAD-protected records.

One round trip establishes a session (TLS 1.3 style): the client sends
its ephemeral ECDH share, the server answers with its share, its
certificate chain, and a signature over the handshake transcript made
with the certified key.  The client validates the chain against its
trust anchors and the hostname, then both sides derive directional
record keys with HKDF.

What Revelio needs from TLS — and what this implementation provides —
is the *binding surface*: a connection exposes the server certificate's
public key (``TlsConnection.peer_public_key``), which the web extension
compares against the key hash in the attestation report (F3).  A
man-in-the-middle can terminate TLS with a different certificate, but
cannot present the attested VM's public key without its private key.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..crypto import encoding
from ..crypto.drbg import HmacDrbg
from ..crypto.ec import P256
from ..crypto.ecdsa import EcdsaPrivateKey, EcdsaPublicKey
from ..crypto.kdf import hkdf
from ..crypto.keys import PrivateKey, PublicKey
from ..crypto.modes import AeadCipher, AeadError
from ..crypto.x509 import Certificate, CertificateError, validate_chain
from .simnet import Host, RequestContext


class TlsError(ConnectionError):
    """Base class for TLS failures."""


class TlsHandshakeError(TlsError):
    """Certificate/signature validation failed during the handshake."""


class TlsRecordError(TlsError):
    """Record decryption or session lookup failed."""


def _transcript_hash(client_random: bytes, server_random: bytes,
                     server_share: bytes, server_name: str) -> bytes:
    return hashlib.sha256(
        b"tls-transcript" + client_random + server_random + server_share
        + server_name.encode("utf-8")
    ).digest()


def _derive_keys(shared_secret: bytes, client_random: bytes,
                 server_random: bytes) -> "tuple[AeadCipher, AeadCipher]":
    salt = client_random + server_random
    c2s = AeadCipher(hkdf(shared_secret, salt=salt, info=b"tls c2s", length=32))
    s2c = AeadCipher(hkdf(shared_secret, salt=salt, info=b"tls s2c", length=32))
    return c2s, s2c


def _nonce(direction: bytes, sequence: int) -> bytes:
    return direction + sequence.to_bytes(8, "big")


@dataclass
class _ServerSession:
    c2s: AeadCipher
    s2c: AeadCipher
    recv_seq: int = 0
    send_seq: int = 0


class TlsServer:
    """Server-side TLS endpoint wrapping an application handler.

    Instantiate with the server identity and an application callback
    ``app(plaintext, ctx) -> plaintext``; bind :meth:`handle` to a port.
    """

    def __init__(
        self,
        certificate_chain: Sequence[Certificate],
        private_key: PrivateKey,
        app: Callable[[bytes, RequestContext], bytes],
        rng: HmacDrbg,
    ):
        if not certificate_chain:
            raise TlsError("server needs at least a leaf certificate")
        self.certificate_chain = list(certificate_chain)
        self._private_key = private_key
        self._app = app
        self._rng = rng
        self._sessions: Dict[bytes, _ServerSession] = {}
        self._session_counter = 0

    def handle(self, payload: bytes, context: RequestContext) -> bytes:
        """The wire entry point (bind as the port handler)."""
        try:
            message = encoding.decode(payload)
        except ValueError as exc:
            raise TlsError("malformed TLS message") from exc
        if not isinstance(message, dict):
            raise TlsError("malformed TLS message")
        message_type = message.get("type")
        if message_type == "client_hello":
            return self._accept(message)
        if message_type == "record":
            return self._process_record(message, context)
        raise TlsError(f"unexpected TLS message type {message_type!r}")

    def _accept(self, hello: dict) -> bytes:
        client_random = hello["random"]
        client_share = EcdsaPublicKey.decode(hello["ecdh_pub"])
        server_name = hello["sni"]

        ephemeral = EcdsaPrivateKey.generate(P256, self._rng)
        server_random = self._rng.generate(32)
        shared = ephemeral.ecdh(client_share)
        server_share = ephemeral.public_key().encode()
        transcript = _transcript_hash(
            client_random, server_random, server_share, server_name
        )
        signature = self._private_key.sign(transcript)

        self._session_counter += 1
        session_id = hashlib.sha256(
            b"session" + server_random + self._session_counter.to_bytes(8, "big")
        ).digest()[:16]
        c2s, s2c = _derive_keys(shared, client_random, server_random)
        self._sessions[session_id] = _ServerSession(c2s=c2s, s2c=s2c)
        return encoding.encode(
            {
                "type": "server_hello",
                "random": server_random,
                "ecdh_pub": server_share,
                "chain": [cert.encode() for cert in self.certificate_chain],
                "sig": signature,
                "session_id": session_id,
            }
        )

    def _process_record(self, record: dict, context: RequestContext) -> bytes:
        session = self._sessions.get(record.get("session_id"))
        if session is None:
            raise TlsRecordError("unknown TLS session")
        try:
            plaintext = session.c2s.open(
                _nonce(b"c2s\x00", session.recv_seq), record["data"],
                aad=record["session_id"],
            )
        except AeadError as exc:
            raise TlsRecordError("record authentication failed") from exc
        session.recv_seq += 1
        response = self._app(plaintext, context)
        sealed = session.s2c.seal(
            _nonce(b"s2c\x00", session.send_seq), response, aad=record["session_id"]
        )
        session.send_seq += 1
        return encoding.encode(
            {"type": "record", "session_id": record["session_id"], "data": sealed}
        )

    def reset_sessions(self) -> None:
        """Drop all sessions (server restart / certificate rotation)."""
        self._sessions.clear()


class TlsConnection:
    """Client side of one established session."""

    def __init__(
        self,
        host: Host,
        dst_ip: str,
        port: int,
        session_id: bytes,
        c2s: AeadCipher,
        s2c: AeadCipher,
        peer_chain: List[Certificate],
    ):
        self._host = host
        self.dst_ip = dst_ip
        self.port = port
        self.session_id = session_id
        self._c2s = c2s
        self._s2c = s2c
        self.peer_chain = peer_chain
        self._send_seq = 0
        self._recv_seq = 0
        self.closed = False

    @property
    def peer_certificate(self) -> Certificate:
        """The leaf certificate the peer presented."""
        return self.peer_chain[0]

    @property
    def peer_public_key(self) -> PublicKey:
        """The certified server key — what the extension compares with
        the attestation report's REPORT_DATA binding."""
        return self.peer_certificate.public_key

    def request(self, plaintext: bytes) -> bytes:
        """Send one protected request and return the protected response."""
        if self.closed:
            raise TlsError("connection is closed")
        sealed = self._c2s.seal(
            _nonce(b"c2s\x00", self._send_seq), plaintext, aad=self.session_id
        )
        self._send_seq += 1
        raw = self._host.request(
            self.dst_ip,
            self.port,
            encoding.encode(
                {"type": "record", "session_id": self.session_id, "data": sealed}
            ),
        )
        message = encoding.decode(raw)
        if not isinstance(message, dict) or message.get("type") != "record":
            raise TlsRecordError("expected a TLS record in response")
        try:
            plaintext_response = self._s2c.open(
                _nonce(b"s2c\x00", self._recv_seq), message["data"],
                aad=self.session_id,
            )
        except AeadError as exc:
            raise TlsRecordError("response authentication failed") from exc
        self._recv_seq += 1
        return plaintext_response

    def close(self) -> None:
        """Close the connection."""
        self.closed = True


def tls_connect(
    host: Host,
    dst_ip: str,
    port: int,
    server_name: str,
    trust_anchors: Sequence[Certificate],
    rng: HmacDrbg,
    now: int,
    verify: bool = True,
    hello_metadata: Optional[Dict[str, object]] = None,
) -> TlsConnection:
    """Establish a TLS session to ``dst_ip:port``.

    With ``verify=True`` (default) the server chain must validate
    against *trust_anchors* and cover *server_name*; handshake failures
    raise :class:`TlsHandshakeError`.

    *hello_metadata* adds cleartext fields to the client hello — the
    ALPN-style extension surface.  Servers ignore fields they don't
    know; an attestation-aware gateway reads e.g. a ``tier`` tag to
    route the session before TLS terminates at a backend.
    """
    ephemeral = EcdsaPrivateKey.generate(P256, rng)
    client_random = rng.generate(32)
    hello_fields = {
        "type": "client_hello",
        "random": client_random,
        "ecdh_pub": ephemeral.public_key().encode(),
        "sni": server_name,
    }
    if hello_metadata:
        for field_name, value in hello_metadata.items():
            hello_fields.setdefault(field_name, value)
    hello = encoding.encode(hello_fields)
    raw = host.request(dst_ip, port, hello)
    message = encoding.decode(raw)
    if not isinstance(message, dict) or message.get("type") != "server_hello":
        raise TlsHandshakeError("expected server_hello")

    chain = [Certificate.decode(item) for item in message["chain"]]
    if verify:
        try:
            validate_chain(chain, trust_anchors, now=now, hostname=server_name)
        except CertificateError as exc:
            raise TlsHandshakeError(f"certificate validation failed: {exc}") from exc
    transcript = _transcript_hash(
        client_random, message["random"], message["ecdh_pub"], server_name
    )
    if not chain[0].public_key.verify(transcript, message["sig"]):
        raise TlsHandshakeError(
            "handshake signature does not verify under the server certificate"
        )
    shared = ephemeral.ecdh(EcdsaPublicKey.decode(message["ecdh_pub"]))
    c2s, s2c = _derive_keys(shared, client_random, message["random"])
    return TlsConnection(
        host=host,
        dst_ip=dst_ip,
        port=port,
        session_id=message["session_id"],
        c2s=c2s,
        s2c=s2c,
        peer_chain=chain,
    )
