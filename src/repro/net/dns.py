"""DNS, as controlled by whoever owns the domain.

Three properties matter for Revelio:

* ACME DNS-01 challenges prove domain control by publishing TXT records
  (section 2.2), so the registry stores TXT as well as A records;
* a malicious service provider *does* control DNS and can re-point a
  domain at a different host to redirect users away from the attested
  VM (section 5.3.2) — the registry allows exactly that, and the web
  extension is what must catch it;
* a fleet serves one domain from many nodes (requirement D3), so a
  domain may hold several A records and resolution round-robins across
  them — safe for Revelio users precisely *because* the fleet shares
  one attested TLS identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Union


class DnsError(LookupError):
    """Raised when a name does not resolve."""


@dataclass
class DnsRegistry:
    """The global name service of the simulated internet."""

    _a_records: Dict[str, List[str]] = field(default_factory=dict)
    _rotation: Dict[str, int] = field(default_factory=dict)
    _txt_records: Dict[str, List[str]] = field(default_factory=dict)

    def register(self, domain: str, address: Union[str, Sequence[str]]) -> None:
        """Create or replace the A record set (domain-owner operation).

        *address* may be a single IP or a list (round-robin set)."""
        addresses = [address] if isinstance(address, str) else list(address)
        if not addresses:
            raise DnsError("at least one address is required")
        self._a_records[domain.lower()] = addresses
        self._rotation[domain.lower()] = 0

    def add_record(self, domain: str, ip_address: str) -> None:
        """Append an A record (scaling the fleet out)."""
        self._a_records.setdefault(domain.lower(), []).append(ip_address)
        self._rotation.setdefault(domain.lower(), 0)

    def resolve(self, domain: str) -> str:
        """Resolve to one address, rotating through the record set."""
        key = domain.lower()
        try:
            addresses = self._a_records[key]
        except KeyError:
            raise DnsError(f"NXDOMAIN: {domain}") from None
        index = self._rotation.get(key, 0)
        self._rotation[key] = (index + 1) % len(addresses)
        return addresses[index % len(addresses)]

    def resolve_all(self, domain: str) -> List[str]:
        """The full A record set."""
        try:
            return list(self._a_records[domain.lower()])
        except KeyError:
            raise DnsError(f"NXDOMAIN: {domain}") from None

    def set_txt(self, name: str, values: List[str]) -> None:
        """Publish TXT records (the DNS-01 challenge mechanism)."""
        self._txt_records[name.lower()] = list(values)

    def get_txt(self, name: str) -> List[str]:
        """TXT records published under a name."""
        return list(self._txt_records.get(name.lower(), []))

    def redirect(self, domain: str, new_ip: str) -> List[str]:
        """The section 5.3.2 attack: re-point an existing domain.

        Returns the previous record set so tests can restore it."""
        previous = self.resolve_all(domain)
        self.register(domain, new_ip)
        return previous
