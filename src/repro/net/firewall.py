"""Host firewalls: the network lockdown of requirement F4.

A Revelio VM's firewall configuration is part of the measured rootfs
(``/etc/revelio/network.conf``), so "just open ssh" is not something a
service provider can do after attestation — the config they ship is
what end-users verify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

SSH_PORT = 22


class ConnectionRefused(ConnectionError):
    """The destination host's firewall dropped the connection."""


@dataclass(frozen=True)
class Firewall:
    """Inbound filtering rules for one host."""

    allowed_inbound_ports: Tuple[int, ...] = (443,)
    ssh_enabled: bool = False
    allow_outbound: bool = True

    def allows_inbound(self, port: int) -> bool:
        """Whether the firewall admits inbound traffic on a port."""
        if port == SSH_PORT:
            return self.ssh_enabled
        return port in self.allowed_inbound_ports

    def check_inbound(self, port: int, host_name: str = "") -> None:
        """Raise ConnectionRefused unless the port is admitted."""
        if not self.allows_inbound(port):
            raise ConnectionRefused(
                f"connection to {host_name or 'host'}:{port} refused by firewall"
            )

    @classmethod
    def open_firewall(cls) -> "Firewall":
        """An allow-everything firewall (ordinary, non-Revelio hosts)."""
        return cls(allowed_inbound_ports=tuple(range(1, 65536)), ssh_enabled=True)

    @classmethod
    def from_network_policy(cls, policy) -> "Firewall":
        """Build from a :class:`repro.build.image_builder.NetworkPolicy`
        (the measured policy baked into the rootfs at
        ``/etc/revelio/network.conf``).

        Raises :class:`TypeError` for anything else — a guest must not
        silently accept a look-alike policy object from an unmeasured
        source.  The import is lazy because ``repro.net`` is otherwise
        independent of the build layer.
        """
        from ..build.image_builder import NetworkPolicy

        if not isinstance(policy, NetworkPolicy):
            raise TypeError(
                "from_network_policy expects a repro.build.NetworkPolicy, "
                f"got {type(policy).__name__}"
            )
        return cls(
            allowed_inbound_ports=tuple(policy.allowed_inbound_ports),
            ssh_enabled=policy.ssh_enabled,
            allow_outbound=policy.allow_outbound,
        )
