"""The campaign runner: attacks fired into live traffic, one report out.

:class:`CampaignRunner` executes a :class:`~repro.scenarios.spec.CampaignSpec`
and produces a deterministic :class:`CampaignReport` asserting the full
containment contract:

* every attack **lands** on its expected stable reason code (tracer
  failure counters, gateway/mesh counters, storage counters, or codes
  the injector observed directly from raised errors),
* every attack is **contained** — the provoked benign-path action is
  denied,
* every attack is **reverted** and the fleet **recovers** to pre-attack
  admission behaviour,
* every **benign twin** — the same injector with harmless parameters —
  sails through with zero hits on the attack's code, and
* in the storm arena, **benign-traffic SLOs** hold: zero failed
  requests, zero silently blocked sessions, and an all-requests p99
  within ``SloSpec.p99_factor`` of an attack-free baseline storm run
  with the same seed and axes.

In the storm arena a *director* process runs on the event kernel
alongside the session storm (and, on the rollout axis, a rolling fleet
replacement): it sleeps to each scenario's ``trigger_at``, injects,
optionally dwells with the fault live under traffic, provokes the
verdict, reverts, and checks recovery — then runs the benign twin.
Inject → provoke → revert execute without yielding, so an attack's
blast radius never leaks into sessions beyond its declared scope.

Reports are derived from sim time and deterministic counters only; two
runs with the same build, campaign, seed, and axes are byte-identical.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..attest import get_tracer, reset_tracer
from ..crypto import ec, sigcache
from ..fleet import FleetWorkload, HealthMonitor, UserPool
from ..fleet.drain import rolling_rollout
from ..sim import SimRng
from ..sim.kernel import sleep
from . import injectors
from .arena import LaunchWorld, PipelineWorld, StormWorld
from .spec import CampaignSpec, ScenarioSpec

#: Storm-arena traffic mix (deterministic via the workload's SimRng).
TIER_WEIGHTS = {"high": 0.3, "bulk": 0.7}
#: Sim seconds into the storm when the rollout axis starts replacing
#: (off the whole-second grid attack triggers and dwells land on, so
#: rollout events never tie with a director event at the same instant).
ROLLOUT_AT = 6.5


@dataclass
class CampaignReport:
    """Everything one campaign run asserted, JSON-serialisable."""

    campaign: str
    arena: str
    seed: int
    axes: Dict[str, object]
    scenarios: List[dict]
    slo: Optional[dict]
    codes_reached: List[str]
    counters: Dict[str, int]
    ok: bool
    violations: List[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "campaign": self.campaign,
            "arena": self.arena,
            "seed": self.seed,
            "axes": self.axes,
            "scenarios": self.scenarios,
            "slo": self.slo,
            "codes_reached": self.codes_reached,
            "counters": self.counters,
            "ok": self.ok,
            "violations": self.violations,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"


class CampaignRunner:
    """Run one campaign under the chosen matrix axes."""

    def __init__(
        self,
        build,
        campaign: CampaignSpec,
        seed: int = 0,
        sigcache_on: bool = True,
        rollout: bool = False,
        farm: bool = False,
        build_v2=None,
    ):
        if rollout and build_v2 is None:
            raise ValueError("rollout axis needs a build_v2 to roll to")
        self.build = build
        self.campaign = campaign
        self.seed = seed
        self.sigcache_on = sigcache_on
        self.rollout = rollout
        self.farm = farm
        self.build_v2 = build_v2

    # -- entry point -------------------------------------------------

    def run(self) -> CampaignReport:
        if self.campaign.arena == "storm":
            return self._run_storm_arena()
        return self._run_direct_arena()

    def axes(self) -> Dict[str, object]:
        return {
            "sigcache": "warm" if self.sigcache_on else "cold",
            "rollout": self.rollout,
            "farm": self.farm,
        }

    # -- counter snapshots & landing rules ---------------------------

    @staticmethod
    def _snapshot(world) -> dict:
        tracer = get_tracer()
        gateway = getattr(world, "gateway", None)
        return {
            "attest": dict(tracer.counters.failures_by_reason),
            "gateway": dict(gateway.counters) if gateway is not None else {},
            "storage": dict(tracer.storage.counts),
            "update": dict(tracer.update.rejections),
        }

    @staticmethod
    def _deltas(world, before: dict) -> dict:
        after = CampaignRunner._snapshot(world)
        out = {}
        for kind in ("attest", "gateway", "storage", "update"):
            out[kind] = {
                key: count - before[kind].get(key, 0)
                for key, count in after[kind].items()
                if count - before[kind].get(key, 0) > 0
            }
        return out

    @staticmethod
    def _code_hits(spec: ScenarioSpec, injection, deltas: dict) -> int:
        """How often the scenario's expected code was reached — via the
        counter channel its namespace maps to, or observed directly."""
        namespace, code = spec.expected_namespace, spec.expected_reason
        hits = 1 if code in injection.observed else 0
        if namespace == "attest":
            hits += deltas["attest"].get(code, 0)
        elif namespace in ("gateway", "mesh"):
            hits += sum(
                count for key, count in deltas["gateway"].items()
                if key == code or key.endswith("." + code)
            )
        elif namespace == "storage":
            hits += deltas["storage"].get(code, 0)
        elif namespace == "update":
            hits += deltas["update"].get(code, 0)
        return hits

    # -- one scenario (generator: may sleep on the kernel) -----------

    def _execute(self, world, spec: ScenarioSpec):
        """Attack arm, then benign twin.  Yields only for ``dwell``."""
        injection = injectors.create(
            spec.injector, world, spec.params_dict()
        )
        before = self._snapshot(world)
        injection.inject()
        if spec.dwell > 0:
            yield sleep(spec.dwell)
        allowed = injection.provoke()
        deltas = self._deltas(world, before)
        injection.revert()
        recovered = injection.recovered()
        landed = self._code_hits(spec, injection, deltas) > 0
        contained = not allowed

        benign = None
        benign_params = spec.benign_params_dict()
        if benign_params is not None:
            twin = injectors.create(spec.injector, world, benign_params)
            twin_before = self._snapshot(world)
            twin.inject()
            twin_ok = twin.provoke()
            twin_deltas = self._deltas(world, twin_before)
            twin.revert()
            twin_recovered = twin.recovered()
            benign = {
                "ok": bool(twin_ok),
                "clean": self._code_hits(spec, twin, twin_deltas) == 0,
                "recovered": bool(twin_recovered),
                "observed": sorted(twin.observed),
            }

        ok = (
            landed and contained and recovered
            and (benign is None
                 or (benign["ok"] and benign["clean"] and benign["recovered"]))
        )
        return {
            "name": spec.name,
            "title": spec.title,
            "layer": spec.layer,
            "injector": spec.injector,
            "expect": spec.expect,
            "trigger_at": spec.trigger_at,
            "dwell": spec.dwell,
            "blast_radius": spec.blast_radius,
            "landed": landed,
            "contained": contained,
            "recovered": bool(recovered),
            "observed": sorted(injection.observed),
            "benign": benign,
            "ok": ok,
        }

    @staticmethod
    def _drive(generator):
        """Run a scenario generator outside the kernel (direct arenas,
        where nothing dwells)."""
        try:
            while True:
                next(generator)
        except StopIteration as stop:
            return stop.value

    # -- storm arena -------------------------------------------------

    def _run_storm_arena(self) -> CampaignReport:
        try:
            baseline = self._storm_pass(attacks=False)
            attacked = self._storm_pass(attacks=True)
        finally:
            sigcache.set_enabled(True)
            sigcache.reset_cache()
            reset_tracer()
        campaign = self.campaign
        snapshot = attacked["snapshot"]
        failed = snapshot.get("requests_failed", 0)
        blocked = snapshot.get("requests_blocked", 0)
        p99 = snapshot["latency.all.p99"]
        baseline_p99 = baseline["snapshot"]["latency.all.p99"]
        slo = {
            "requests_failed": failed,
            "requests_blocked": blocked,
            "max_failed": campaign.slo.max_failed,
            "max_blocked": campaign.slo.max_blocked,
            "p99_ms": p99,
            "baseline_p99_ms": baseline_p99,
            "p99_factor_limit": campaign.slo.p99_factor,
            "ok": (
                failed <= campaign.slo.max_failed
                and blocked <= campaign.slo.max_blocked
                and p99 <= campaign.slo.p99_factor * baseline_p99
            ),
        }
        return self._report(attacked["results"], slo, attacked["counters"])

    def _storm_pass(self, attacks: bool) -> dict:
        campaign = self.campaign
        sigcache.reset_cache()
        ec.reset_point_cache()
        reset_tracer()
        sigcache.set_enabled(self.sigcache_on)
        world = StormWorld(self.build, campaign, self.seed, farm=self.farm)
        try:
            kernel = world.kernel
            monitor = HealthMonitor(
                world.gateway, interval=10.0, timeout=2.0, reattest_every=120.0
            )
            world.monitor = monitor

            family_goldens = {
                family: policy.golden_measurements
                for family, policy in world.hetero.family_policies().items()
            }

            def extension_setup(extension):
                extension.verifier.contexts.update(world.hetero.contexts())
                extension.register_site(
                    world.deployment.domain, family_measurements=family_goldens
                )
                if world.farm is not None:
                    extension.verifier.farm = world.farm

            expected = [self.build.expected_measurement]
            if self.rollout:
                expected.append(self.build_v2.expected_measurement)
            pool = UserPool(
                world.deployment, kernel, size=campaign.users,
                expected_measurements=expected,
                extension_setup=extension_setup,
            )
            workload = FleetWorkload(
                kernel, world.gateway, pool,
                rng=SimRng(self.seed), tier_weights=TIER_WEIGHTS,
            )
            health_process = kernel.spawn(
                monitor.process(), name="health-monitor"
            )
            storm = kernel.spawn(
                workload.open_loop(
                    sessions=campaign.sessions,
                    arrival_rate=campaign.arrival_rate,
                ),
                name="storm",
            )
            rollout_process = None
            if self.rollout:
                def delayed_rollout():
                    yield sleep(ROLLOUT_AT)
                    report = yield from rolling_rollout(
                        world.gateway, world.deployment, self.build_v2,
                        drain_poll=0.1, concurrency=4,
                    )
                    return report

                rollout_process = kernel.spawn(
                    delayed_rollout(), name="rollout"
                )
            results: List[dict] = []
            director_process = None
            if attacks:
                director_process = kernel.spawn(
                    self._director(world, results), name="director"
                )
            processes = [storm, rollout_process, director_process]
            while any(p is not None and not p.finished for p in processes):
                kernel.run(until=kernel.clock.now + 10.0)
            health_process.interrupt("storm over")
            kernel.run()
            for process in (storm, rollout_process, director_process):
                if process is not None and process.error is not None:
                    raise process.error
            return {
                "snapshot": workload.snapshot(),
                "results": results,
                "counters": world.gateway.counters_snapshot(),
            }
        finally:
            world.close()

    def _director(self, world, results: List[dict]):
        start = world.kernel.clock.now
        ordered = sorted(
            self.campaign.scenarios, key=lambda s: (s.trigger_at, s.name)
        )
        for spec in ordered:
            delay = (start + spec.trigger_at) - world.kernel.clock.now
            if delay > 0:
                yield sleep(delay)
            result = yield from self._execute(world, spec)
            results.append(result)

    # -- pipeline / launch arenas ------------------------------------

    def _run_direct_arena(self) -> CampaignReport:
        reset_tracer()
        if self.campaign.arena == "pipeline":
            world = PipelineWorld(self.seed)
        else:
            world = LaunchWorld(self.build)
        results = [
            self._drive(self._execute(world, spec))
            for spec in self.campaign.scenarios
        ]
        counters = {
            f"failures.{reason}": count
            for reason, count in sorted(
                get_tracer().counters.failures_by_reason.items()
            )
            if count
        }
        reset_tracer()
        return self._report(results, None, counters)

    # -- report assembly ---------------------------------------------

    def _report(self, results, slo, counters) -> CampaignReport:
        by_name = {result["name"]: result for result in results}
        violations = []
        for spec in self.campaign.scenarios:
            result = by_name.get(spec.name)
            if result is None:
                violations.append(f"{spec.name}: never executed")
                continue
            if not result["landed"]:
                violations.append(
                    f"{spec.name}: expected {spec.expect} not reached "
                    f"(observed: {result['observed']})"
                )
            if not result["contained"]:
                violations.append(f"{spec.name}: attack was not contained")
            if not result["recovered"]:
                violations.append(f"{spec.name}: revert did not recover")
            benign = result["benign"]
            if benign is not None:
                if not benign["ok"]:
                    violations.append(f"{spec.name}: benign twin was denied")
                if not benign["clean"]:
                    violations.append(
                        f"{spec.name}: benign twin hit {spec.expect}"
                    )
                if not benign["recovered"]:
                    violations.append(
                        f"{spec.name}: benign twin did not recover"
                    )
        if slo is not None and not slo["ok"]:
            violations.append(
                f"slo: failed={slo['requests_failed']} "
                f"blocked={slo['requests_blocked']} "
                f"p99={slo['p99_ms']} vs "
                f"{slo['p99_factor_limit']}x{slo['baseline_p99_ms']}"
            )
        codes_reached = sorted({
            spec.expect
            for spec in self.campaign.scenarios
            if by_name.get(spec.name, {}).get("landed")
        })
        ordered_results = [
            by_name[spec.name]
            for spec in self.campaign.scenarios
            if spec.name in by_name
        ]
        return CampaignReport(
            campaign=self.campaign.name,
            arena=self.campaign.arena,
            seed=self.seed,
            axes=self.axes(),
            scenarios=ordered_results,
            slo=slo,
            codes_reached=codes_reached,
            counters={key: value for key, value in sorted(counters.items())},
            ok=not violations and (slo is None or slo["ok"]),
            violations=violations,
        )
