"""The injector registry: every campaign attack behind one protocol.

An :class:`Injection` adapts one of the repo's scattered fault hooks
(:mod:`repro.fleet.faults`, hypervisor tamper helpers, storage fault
targets, KDS blackholing, rogue evidence serving) to a uniform,
revertible lifecycle the :class:`~repro.scenarios.runner.CampaignRunner`
drives mid-storm:

``inject()``
    Arm the fault (swap a client, kill a host, flip a bit, stand up a
    rogue).  Must be fully revertible.
``provoke() -> bool``
    Drive the one code path that must surface the verdict —
    deterministically, instead of waiting for a monitor round to
    coincide — and return whether the *benign-path action succeeded*
    (admission granted, gossip applied, block read).  An attack arm is
    contained when this returns ``False`` **and** the expected reason
    code was reached; the benign twin must return ``True`` with zero
    hits on that code.
``revert()``
    Undo the injection (symmetric: hosts re-attach, clients swap back,
    XOR masks re-apply, routes restore, rogues vanish).
``recovered() -> bool``
    Post-revert health check: pre-attack admission behaviour is back
    (an evicted victim re-registers and re-attests clean, a corrupted
    block reads again).

``observed`` collects reason codes the injection saw directly —
:class:`~repro.fleet.gateway.GatewayError` reasons, pipeline outcome
reasons, boot failures — for codes that surface as raises rather than
counters.

Injectors are registered by name (``@register("...")``); scenario specs
reference them by that name, so campaigns stay declarative and the
registry is the single seam tests are allowed to construct faults
through (CI greps for raw hook use outside it).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional, Type

from ..amd.policy import GuestPolicy
from ..amd.tcb import TcbVersion
from ..attest import AttestationVerifier, Evidence, TeeFamily
from ..cca.realms import CcaToken
from ..core.guest import WELL_KNOWN_ATTESTATION_PATH
from ..crypto import ec, encoding, sigcache
from ..crypto.x509 import Name
from ..fleet import faults
from ..fleet.gateway import GatewayError
from ..fleet.mesh import GossipedVerdict
from ..net.http import HTTPS_PORT
from ..virt.firmware import build_firmware
from ..virt.hypervisor import LaunchAttack
from ..virt.image import KernelBlob
from ..virt.vm import BootFailure
from ..vtpm.monitoring import MonitoringEvidence
from ..vtpm.vtpm import PCR_SERVICES, Vtpm

REGISTRY: Dict[str, Type["Injection"]] = {}


def register(name: str) -> Callable[[Type["Injection"]], Type["Injection"]]:
    def wrap(cls: Type["Injection"]) -> Type["Injection"]:
        if name in REGISTRY:
            raise ValueError(f"injector {name!r} already registered")
        REGISTRY[name] = cls
        cls.injector_name = name
        return cls
    return wrap


def create(name: str, world, params: Optional[dict] = None) -> "Injection":
    try:
        cls = REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown injector {name!r}; registered: {sorted(REGISTRY)}"
        ) from None
    return cls(world, params or {})


def registered_injectors():
    return tuple(sorted(REGISTRY))


class Injection:
    """Base lifecycle; see the module docstring for the contract."""

    injector_name = "?"

    def __init__(self, world, params: dict):
        self.world = world
        self.params = dict(params)
        self.observed = set()

    # -- lifecycle (override as needed) -----------------------------

    def inject(self) -> None:
        pass

    def provoke(self) -> bool:
        return True

    def revert(self) -> None:
        pass

    def recovered(self) -> bool:
        return True

    # -- shared helpers ---------------------------------------------

    def _victim_ip(self) -> str:
        return self.world.victim_ip(self.params.get("victim", 0))

    def _attest(self, ip_address: str):
        verdict = self.world.gateway.attest_and_admit(ip_address)
        if verdict.reason:
            self.observed.add(verdict.reason)
        return verdict

    def _readmit(self, ip_address: str) -> bool:
        """Re-register (if evicted/rejected) and re-attest a backend;
        the recovery bar every gateway-layer injector shares."""
        gateway = self.world.gateway
        backend = gateway.backends.get(ip_address)
        if backend is not None and backend.state not in ("pending", "admitted"):
            gateway.add_backend(ip_address, family=backend.family)
        verdict = gateway.attest_and_admit(ip_address)
        return verdict.ok


# ======================================================================
# Storm arena: hypervisor / network layer
# ======================================================================

@register("backend_kill")
class BackendKill(Injection):
    """The victim's host vanishes mid-storm (hypervisor kill).  Benign
    twin (``probe_only``): the same probe against a live backend."""

    def inject(self) -> None:
        self._ip = self._victim_ip()
        self._handle = None
        if not self.params.get("probe_only"):
            self._handle = faults.kill_backend(self.world.gateway, self._ip)

    def provoke(self) -> bool:
        return self._attest(self._ip).ok

    def revert(self) -> None:
        if self._handle is not None:
            self._handle.revert()

    def recovered(self) -> bool:
        return self._readmit(self._ip)


@register("slow_backend")
class SlowBackend(Injection):
    """The victim's report endpoint slows beyond the health budget (a
    degraded host); the monitor must evict with ``health_timeout``.
    Benign twin: a sub-budget slowdown rides through clean."""

    def inject(self) -> None:
        self._ip = self._victim_ip()
        node = self.world.node_for(self._ip).node
        self._server = node.https
        self._key = ("GET", WELL_KNOWN_ATTESTATION_PATH)
        self._saved = self._server._routes[self._key]
        handler, processing_time = self._saved
        self._server._routes[self._key] = (
            handler, processing_time + float(self.params.get("delay", 5.0))
        )

    def provoke(self) -> bool:
        monitor = self.world.monitor
        assert monitor is not None, "slow_backend needs a health monitor"
        for _ in range(monitor.failure_threshold):
            monitor.probe_all()
        backend = self.world.gateway.backends[self._ip]
        if backend.verdict_reason:
            self.observed.add(backend.verdict_reason)
        return backend.state == "admitted"

    def revert(self) -> None:
        self._server._routes[self._key] = self._saved

    def recovered(self) -> bool:
        return self._readmit(self._ip)


# ======================================================================
# Storm arena: KDS layer
# ======================================================================

@register("kds_blackhole")
class KdsBlackholeInjection(Injection):
    """AMD's KDS goes dark.  Cold cache (``clear_cache``): freshness is
    unconfirmable, the gateway fails closed with ``kds_unreachable``.
    Benign twin: warm cache rides out the outage."""

    def inject(self) -> None:
        self._ip = self._victim_ip()
        self._hole = faults.blackhole_kds(
            self.world.gateway,
            clear_cache=bool(self.params.get("clear_cache", True)),
        )

    def provoke(self) -> bool:
        return self._attest(self._ip).ok

    def revert(self) -> None:
        self._hole.revert()

    def recovered(self) -> bool:
        return self._readmit(self._ip)


class _ReplayKds:
    """A KDS client replaying stale-TCB endorsements (or passing
    through, for the benign twin)."""

    def __init__(self, inner, stale_tcb: Optional[TcbVersion]):
        self._inner = inner
        self._stale_tcb = stale_tcb

    def get_vcek(self, chip_id, tcb):
        if self._stale_tcb is not None:
            tcb = self._stale_tcb
        return self._inner.get_vcek(chip_id, tcb)

    def cert_chain(self):
        return self._inner.cert_chain()

    @property
    def trust_anchor(self):
        return self._inner.trust_anchor


@register("stale_chain_replay")
class StaleChainReplay(Injection):
    """A MITM replays a VCEK for an older TCB than the chip reports
    (stale-chain replay); the TCB-binding check must fail with
    ``tcb_mismatch``.  Benign twin: the same interposer passing the
    requested TCB through verifies clean."""

    def inject(self) -> None:
        self._ip = self._victim_ip()
        gateway = self.world.gateway
        self._kds, self._verifier = gateway.kds, gateway.verifier
        stale = None
        if self.params.get("stale", True):
            stale = TcbVersion(*self.params.get("tcb", (0, 0, 0, 1)))
        wrapper = _ReplayKds(gateway.kds, stale)
        gateway.kds = wrapper
        gateway.verifier = AttestationVerifier(
            wrapper,
            site=gateway.name,
            contexts=self._verifier.contexts,
            farm=gateway.farm,
        )

    def provoke(self) -> bool:
        return self._attest(self._ip).ok

    def revert(self) -> None:
        gateway = self.world.gateway
        gateway.kds, gateway.verifier = self._kds, self._verifier

    def recovered(self) -> bool:
        return self._readmit(self._ip)


# ======================================================================
# Storm arena: policy layer (TCB rollback, family controls)
# ======================================================================

@register("tcb_rollback")
class TcbRollback(Injection):
    """The fleet floor is raised above what backends report (i.e. their
    firmware was rolled back); re-attestation fails ``tcb_too_old``.
    Benign twin: a floor the fleet already meets."""

    def inject(self) -> None:
        self._ip = self._victim_ip()
        self._handle = faults.raise_tcb_floor(
            self.world.gateway,
            TcbVersion(*self.params.get("floor", (255, 255, 255, 255))),
        )

    def provoke(self) -> bool:
        return self._attest(self._ip).ok

    def revert(self) -> None:
        self._handle.revert()

    def recovered(self) -> bool:
        return self._readmit(self._ip)


@register("family_floor")
class FamilyFloor(Injection):
    """Per-family TCB floor raised above the family's platforms;
    re-attestation fails with the family-scoped ``family_tcb_floor``."""

    def inject(self) -> None:
        self._ip = self._victim_ip()
        floor = self.params.get("floor", (255, 255, 255, 255))
        self._handle = faults.raise_family_tcb_floor(
            self.world.gateway,
            self.params.get("family", str(TeeFamily.SEV_SNP)),
            TcbVersion(*floor),
        )

    def provoke(self) -> bool:
        return self._attest(self._ip).ok

    def revert(self) -> None:
        self._handle.revert()

    def recovered(self) -> bool:
        return self._readmit(self._ip)


@register("family_revocation")
class FamilyRevocation(Injection):
    """One TEE family is revoked fleet-wide; its backends are evicted
    at once and re-attest ``family_not_allowed``.  Benign twin: revoking
    a family with no fleet presence is a no-op for everyone else."""

    def inject(self) -> None:
        family = str(self.params.get("family", str(TeeFamily.TDX)))
        self._family = family
        self._family_ips = self.world.hetero_ips.get(family, [])
        self._handle = faults.revoke_family(self.world.gateway, family)

    def provoke(self) -> bool:
        if self._family_ips:
            return self._attest(self._family_ips[0]).ok
        # No backend of that family: the fleet must be untouched.
        return self._attest(self._victim_ip()).ok

    def revert(self) -> None:
        self._handle.revert()

    def recovered(self) -> bool:
        ok = True
        for ip_address in self._family_ips:
            ok = self._readmit(ip_address) and ok
        return ok and self.world.gateway.backends[
            self._victim_ip()
        ].state == "admitted"


# ======================================================================
# Storm arena: rogue backends (evidence-level attacks)
# ======================================================================

@register("rogue_backend")
class RogueBackend(Injection):
    """A rogue machine registers as a fleet backend and serves crafted
    evidence over the fleet's (stolen or legitimately shared) identity.
    ``mode`` picks the §6.1 variant; the pipeline or probe must pin
    each on its own reason code.  Benign twin (``mode=honest``): a
    genuinely authorized scale-out node is admitted."""

    def inject(self) -> None:
        world = self.world
        gateway = world.gateway
        mode = self.params.get("mode", "honest")
        self._mode = mode
        self._ip = world.next_rogue_ip()
        self._saved_golden = list(gateway.golden_measurements)
        self._saved_revoked = list(gateway.revoked_measurements)

        body, status = self._build_evidence(mode)
        world.serve_evidence(self._ip, body, status=status)
        register_family = self.params.get(
            "register_family",
            str(TeeFamily.TDX) if mode == "wrong_family"
            else str(TeeFamily.SEV_SNP),
        )
        gateway.add_backend(self._ip, family=register_family)

    def _launch_rogue(self, mode: str, policy: Optional[GuestPolicy] = None):
        world = self.world
        serial = f"rogue-{mode}-{world._rogue_counter}"
        chip = world.deployment.amd.provision_chip(serial)
        return chip.launch_vm(
            b"rogue-image:" + mode.encode(), policy or GuestPolicy()
        )

    def _build_evidence(self, mode: str):
        world = self.world
        gateway = world.gateway
        if mode == "junk_evidence":
            return b"\xde\xadnot-an-evidence-envelope", 200
        if mode == "missing_endpoint":
            return None, 404

        if mode == "foreign_chip":
            serial = f"rogue-foreign-{world._rogue_counter}"
            guest = world.foreign_amd().provision_chip(serial).launch_vm(
                b"rogue-image:foreign", GuestPolicy()
            )
        elif mode == "debug_guest":
            guest = self._launch_rogue(mode, GuestPolicy(debug_allowed=True))
        else:
            guest = self._launch_rogue(mode)
        report = guest.get_report(world.binding)

        if mode == "forged_signature":
            report = dataclasses.replace(report, measurement=b"\x00" * 48)
        elif mode == "revoked_image":
            # Previously authorized, since revoked: golden AND revoked
            # (revocation must win, proving the code is revocation).
            gateway.golden_measurements = sorted(
                set(gateway.golden_measurements) | {bytes(guest.measurement)}
            )
            gateway.revoked_measurements = sorted(
                set(gateway.revoked_measurements) | {bytes(guest.measurement)}
            )
        elif mode == "honest":
            gateway.golden_measurements = sorted(
                set(gateway.golden_measurements) | {bytes(guest.measurement)}
            )
        # tampered_image / wrong_family / forged_signature /
        # debug_guest / foreign_chip: measurement stays un-golden.
        return encoding.encode({"report": report.encode()}), 200

    def provoke(self) -> bool:
        try:
            return self._attest(self._ip).ok
        except GatewayError as exc:  # pragma: no cover - defensive
            self.observed.add(exc.reason)
            return False

    def revert(self) -> None:
        world = self.world
        gateway = world.gateway
        gateway.backends.pop(self._ip, None)
        world.remove_host(self._ip)
        gateway.golden_measurements = self._saved_golden
        gateway.revoked_measurements = self._saved_revoked

    def recovered(self) -> bool:
        backends = self.world.gateway.backends
        return self._ip not in backends and all(
            backends[ip].state == "admitted" for ip in self.world.node_ips
        )


@register("cache_poison")
class CachePoison(RogueBackend):
    """Cache-layer laundering attempt: thrash the signature and EC
    point caches (drop every memoised verdict mid-storm), then present
    forged evidence — the cold path must still pin ``bad_signature``.
    Benign twin: an honest admission right after the same thrash."""

    def inject(self) -> None:
        enabled = sigcache.get_cache().enabled
        sigcache.reset_cache()
        sigcache.set_enabled(enabled)
        ec.reset_point_cache()
        super().inject()


@register("cert_misissuance")
class CertMisissuance(Injection):
    """A web-PKI intermediate mis-issues a valid leaf for the fleet's
    domain to an attacker key; the impostor replays a genuine node's
    evidence behind it.  The chain validates — only the REPORT_DATA
    binding (``report_data_mismatch``) separates it from the real
    fleet.  Benign twin: a legitimate clone holding the shared fleet
    key serves the same evidence and is admitted."""

    def inject(self) -> None:
        world = self.world
        self._ip = world.next_rogue_ip()
        replayed = encoding.encode(
            {"report": world.node_for(world.node_ips[0]).node.tls_report.encode()}
        )
        if self.params.get("impostor", True):
            from ..crypto.keys import PrivateKey
            key = PrivateKey.generate_ecdsa(
                world.drbg.fork(b"mis-issued:" + self._ip.encode())
            )
            now = world.network.clock.epoch_seconds()
            pki = world.deployment.web_pki
            leaf = pki.intermediate.issue(
                Name(world.deployment.domain),
                key.public_key(),
                not_before=now,
                not_after=now + 90 * 86400,
                san=(world.deployment.domain,),
                key_usage=("digital_signature",),
            )
            chain = [leaf, pki.intermediate.certificate]
            world.serve_evidence(self._ip, replayed, chain=chain, tls_key=key)
        else:
            world.serve_evidence(self._ip, replayed)
        world.gateway.add_backend(self._ip)

    def provoke(self) -> bool:
        return self._attest(self._ip).ok

    def revert(self) -> None:
        self.world.gateway.backends.pop(self._ip, None)
        self.world.remove_host(self._ip)

    def recovered(self) -> bool:
        backends = self.world.gateway.backends
        return self._ip not in backends and all(
            backends[ip].state == "admitted" for ip in self.world.node_ips
        )


# ======================================================================
# Storm arena: mesh / gossip layer
# ======================================================================

@register("gossip_forgery")
class GossipForgery(Injection):
    """Forged or replayed verdict gossip against ``accept_gossip``:
    every abuse mode must be rejected with its own cause counter
    (DESIGN.md invariant 14).  Benign twin (``mode=fresh``): a genuine
    fresh passing record is applied."""

    def inject(self) -> None:
        self._mode = self.params.get("mode", "fresh")
        self._revoked_family = None
        if self._mode == "family_not_allowed":
            family = str(self.params.get("family", str(TeeFamily.TDX)))
            if family not in self.world.gateway.revoked_families:
                self.world.gateway.revoked_families.add(family)
                self._revoked_family = family

    def provoke(self) -> bool:
        world = self.world
        gateway = world.gateway
        now = world.network.clock.now
        victim = self._victim_ip()
        snp = str(TeeFamily.SEV_SNP)
        max_staleness = float(self.params.get("max_staleness", 900.0))
        mode = self._mode
        if mode == "stale":
            record = GossipedVerdict(victim, snp, True, "", now - 10_000.0)
            max_staleness = 30.0
        elif mode == "unknown_backend":
            record = GossipedVerdict("10.66.6.6", snp, True, "", now)
        elif mode == "family_mismatch":
            record = GossipedVerdict(victim, str(TeeFamily.TDX), True, "", now)
        elif mode == "older":
            held = gateway.backends[victim].verdict_time
            record = GossipedVerdict(
                victim, snp, False, "measurement_mismatch", held
            )
        elif mode == "family_not_allowed":
            family = str(self.params.get("family", str(TeeFamily.TDX)))
            ip = world.hetero_ips[family][0]
            record = GossipedVerdict(ip, family, True, "", now)
        else:  # fresh (benign)
            record = GossipedVerdict(victim, snp, True, "", now)
        return gateway.accept_gossip(record, max_staleness=max_staleness)

    def revert(self) -> None:
        if self._revoked_family is not None:
            self.world.gateway.revoked_families.discard(self._revoked_family)

    def recovered(self) -> bool:
        backends = self.world.gateway.backends
        return all(
            backends[ip].state == "admitted" for ip in self.world.node_ips
        )


# ======================================================================
# Storm arena: gateway envelope abuse
# ======================================================================

@register("gateway_abuse")
class GatewayAbuse(Injection):
    """Adversarial client traffic against the gateway's cleartext
    envelope: undecodable payloads, forged session ids, tier
    exhaustion, operations on unregistered backends.  Each raises a
    :class:`GatewayError` with its stable reason.  Benign twin
    (``mode=reattest_victim``): a well-formed control-plane call."""

    def provoke(self) -> bool:
        world = self.world
        mode = self.params.get("mode", "reattest_victim")
        gateway_ip = world.gateway.host.ip_address
        try:
            if mode == "malformed_envelope":
                world.attacker.request(
                    gateway_ip, HTTPS_PORT, b"\xff\xfenot-tlv-encoded"
                )
            elif mode == "forged_session":
                world.attacker.request(
                    gateway_ip, HTTPS_PORT,
                    encoding.encode(
                        {"type": "record", "session_id": b"forged-session"}
                    ),
                )
            elif mode == "empty_tier":
                world.attacker.request(
                    gateway_ip, HTTPS_PORT,
                    encoding.encode(
                        {"type": "client_hello",
                         "tier": world.campaign.empty_tier}
                    ),
                )
            elif mode == "unknown_backend":
                world.gateway.attest_and_admit("10.99.99.99")
            else:  # reattest_victim (benign)
                return self._attest(self._victim_ip()).ok
        except GatewayError as exc:
            self.observed.add(exc.reason)
            return False
        return True

    def recovered(self) -> bool:
        backends = self.world.gateway.backends
        return all(
            backends[ip].state == "admitted" for ip in self.world.node_ips
        )


# ======================================================================
# Storm arena: storage layer
# ======================================================================

@register("storage_bitflip")
class StorageBitflip(Injection):
    """The host flips bits on a running victim's raw disk inside the
    rootfs extent; the next read through the verity stack must reject
    (``corruption_rejections``).  Benign twin: the same read against an
    untampered disk."""

    def inject(self) -> None:
        self._ip = self._victim_ip()
        self._vm = self.world.node_for(self._ip).vm
        self._block = int(self.params.get("block", 2))
        self._handle = None
        if self.params.get("flip", True):
            self._handle = faults.corrupt_disk(
                self._vm,
                self.params.get("partition", "rootfs"),
                block_index=self._block,
                byte_offset=int(self.params.get("byte_offset", 3)),
                xor_mask=int(self.params.get("xor_mask", 0x40)),
            )

    def _read(self) -> bool:
        # The verity-covered rootfs volume registers under role
        # "verity"; the raw corruption targets the "rootfs" partition
        # beneath it.
        volume = self._vm.storage.open(
            self.params.get("role", "verity")
        )
        try:
            volume.read_block(self._block)
        except Exception:
            self.observed.add("corruption_rejections")
            return False
        return True

    def provoke(self) -> bool:
        return self._read()

    def revert(self) -> None:
        if self._handle is not None:
            self._handle.revert()

    def recovered(self) -> bool:
        return self._read() and self.world.gateway.backends[
            self._ip
        ].state == "admitted"


# ======================================================================
# Pipeline arena: the long tail of per-family reason codes
# ======================================================================

@register("pipeline_attack")
class PipelineAttack(Injection):
    """Direct :class:`~repro.attest.AttestationVerifier` scenarios for
    reason codes that need crafted evidence rather than live traffic.
    ``mode`` selects the attack; ``honest_snp`` / ``honest_tdx`` /
    ``honest_cca`` / ``honest_vtpm`` are the benign twins."""

    def provoke(self) -> bool:
        world = self.world
        mode = self.params["mode"]
        evidence, policy, verifier = self._case(world, mode)
        outcome = verifier.verify(
            evidence, now=int(world.clock.epoch_seconds()), policy=policy
        )
        if not outcome.ok:
            self.observed.add(outcome.reason)
        return outcome.ok

    # -- evidence factories -----------------------------------------

    def _policy(self, world, **overrides):
        from ..attest import VerificationPolicy
        kwargs = dict(
            golden_measurements=(world.guest.measurement,),
            expected_report_data=world.binding,
        )
        kwargs.update(overrides)
        return VerificationPolicy(**kwargs)

    def _vtpm_evidence(self, world, vtpm: Vtpm, quote=None, event_log=None,
                       endorsement=None) -> Evidence:
        return Evidence(
            str(TeeFamily.VTPM),
            MonitoringEvidence(
                quote=quote if quote is not None
                else vtpm.quote(world.binding, [PCR_SERVICES]),
                event_log=(
                    event_log if event_log is not None
                    else list(vtpm.event_log)
                ),
                ak_public=vtpm.ak_public,
                ak_endorsement=(
                    endorsement if endorsement is not None
                    else world.ak_endorsement(vtpm)
                ),
            ).encode(),
        )

    def _case(self, world, mode: str):
        from ..attest import FamilyPolicy
        verifier = world.verifier
        policy = self._policy(world)
        binding = world.binding

        if mode == "honest_snp":
            evidence = world.snp_evidence(world.guest.get_report(binding))
        elif mode == "honest_tdx":
            evidence = Evidence(
                str(TeeFamily.TDX), world.td.get_quote(binding).encode()
            )
            policy = self._policy(
                world, golden_measurements=(world.td.mrtd,)
            )
        elif mode == "honest_cca":
            evidence = Evidence(
                str(TeeFamily.CCA), world.realm.attest(binding).encode()
            )
            policy = self._policy(
                world, golden_measurements=(world.realm.rim,)
            )
        elif mode == "honest_vtpm":
            vtpm = world.fresh_vtpm(mode)
            evidence = self._vtpm_evidence(world, vtpm)
        elif mode == "evidence_malformed":
            evidence = Evidence(
                str(TeeFamily.SEV_SNP), b"\x00not-a-report"
            )
        elif mode == "family_not_allowed":
            evidence = world.snp_evidence(world.guest.get_report(binding))
            policy = self._policy(
                world, allowed_families=(str(TeeFamily.TDX),)
            )
        elif mode == "no_trust_context":
            evidence = Evidence(
                str(TeeFamily.TDX), world.td.get_quote(binding).encode()
            )
            verifier = world.make_verifier(contexts={})
        elif mode == "unknown_platform":
            serial = "pipeline-foreign"
            guest = world.foreign_amd().provision_chip(serial).launch_vm(
                b"scenario-snp-image", GuestPolicy()
            )
            evidence = world.snp_evidence(guest.get_report(binding))
        elif mode == "bad_cert_chain":
            from ..amd.kds import KeyDistributionServer
            fake = KeyDistributionServer(world.foreign_amd())
            evidence = world.snp_evidence(world.guest.get_report(binding))
            policy = self._policy(
                world, trust_anchors=(fake.ark_certificate,)
            )
        elif mode == "chip_id_mismatch":
            report = world.guest.get_report(binding)
            wrong_vcek = world.kds_server.get_vcek_certificate(
                world.other_chip.chip_id, report.reported_tcb
            )
            verifier = world.make_verifier(
                kds=_SubstituteVcek(world.kds, wrong_vcek)
            )
            evidence = world.snp_evidence(report)
        elif mode == "chip_id_not_allowed":
            evidence = world.snp_evidence(world.guest.get_report(binding))
            policy = self._policy(
                world, allowed_chip_ids=(world.other_chip.chip_id,)
            )
        elif mode == "tcb_mismatch":
            report = world.guest.get_report(binding)
            stale_vcek = world.kds_server.get_vcek_certificate(
                world.chip.chip_id, TcbVersion(0, 0, 0, 1)
            )
            verifier = world.make_verifier(
                kds=_SubstituteVcek(world.kds, stale_vcek)
            )
            evidence = world.snp_evidence(report)
        elif mode == "tcb_too_old":
            evidence = world.snp_evidence(world.guest.get_report(binding))
            policy = self._policy(
                world, minimum_tcb=TcbVersion(99, 99, 99, 255)
            )
        elif mode == "debug_policy":
            guest = world.chip.launch_vm(
                b"scenario-snp-image", GuestPolicy(debug_allowed=True)
            )
            evidence = world.snp_evidence(guest.get_report(binding))
        elif mode == "family_tcb_floor":
            evidence = Evidence(
                str(TeeFamily.TDX), world.td.get_quote(binding).encode()
            )
            policy = self._policy(
                world,
                golden_measurements=(world.td.mrtd,),
                families={str(TeeFamily.TDX): FamilyPolicy(minimum_tcb=99)},
            )
        elif mode == "lifecycle_not_secured":
            previous = world.cca_platform.lifecycle_state
            world.cca_platform.lifecycle_state = "debug"
            try:
                token = world.realm.attest(binding)
            finally:
                world.cca_platform.lifecycle_state = previous
            evidence = Evidence(str(TeeFamily.CCA), token.encode())
            policy = self._policy(
                world, golden_measurements=(world.realm.rim,)
            )
        elif mode == "rak_not_endorsed":
            # Realm token from platform A stitched onto platform B's
            # platform token: B never endorsed A's RAK.
            token_a = world.realm.attest(binding)
            token_b = world.realm_b.attest(binding)
            forged = CcaToken(
                realm_token=token_a.realm_token,
                platform_token=token_b.platform_token,
            )
            evidence = Evidence(str(TeeFamily.CCA), forged.encode())
            policy = self._policy(
                world, golden_measurements=(world.realm.rim,)
            )
        elif mode == "ak_not_endorsed":
            vtpm = world.fresh_vtpm(mode)
            other = world.fresh_vtpm(mode + ":other")
            evidence = self._vtpm_evidence(
                world, vtpm, endorsement=world.ak_endorsement(other)
            )
        elif mode == "quote_log_mismatch":
            vtpm = world.fresh_vtpm(mode)
            quote = vtpm.quote(world.binding, [PCR_SERVICES])
            vtpm.measure_event(
                PCR_SERVICES, b"post-quote-service", "late event"
            )
            evidence = self._vtpm_evidence(
                world, vtpm, quote=quote, event_log=list(vtpm.event_log)
            )
        elif mode == "service_not_allowed":
            from ..attest import VtpmTrust
            vtpm = world.fresh_vtpm(mode)
            vtpm.measure_event(
                PCR_SERVICES, b"unapproved-agent", "rogue service"
            )
            evidence = self._vtpm_evidence(world, vtpm)
            verifier = world.make_verifier(
                contexts=world.contexts(
                    vtpm_trust=VtpmTrust(
                        world.kds, allowed_service_digests=frozenset()
                    )
                )
            )
        else:
            raise KeyError(f"unknown pipeline mode {mode!r}")
        return evidence, policy, verifier


class _SubstituteVcek:
    """A KDS client serving a substituted VCEK (wrong chip or TCB)."""

    def __init__(self, inner, vcek):
        self._inner = inner
        self._vcek = vcek

    def get_vcek(self, chip_id, tcb):
        return self._vcek

    def cert_chain(self):
        return self._inner.cert_chain()

    @property
    def trust_anchor(self):
        return self._inner.trust_anchor


# ======================================================================
# Launch arena: §6.1 boot/provision-time attacks
# ======================================================================

@register("launch_attack")
class LaunchAttackInjection(Injection):
    """Boot-time attacks from the section-6.1 matrix against a fresh
    one-node deployment.  Firmware-caught substitutions surface as
    ``BootFailure`` (observed as ``boot_failure``); attestation-caught
    ones run the provisioning pipeline and land on its reason code.
    Benign twin (``mode=clean``): an untampered launch provisions."""

    _ATTACKS = {
        "kernel_substitution_honest_table": lambda: LaunchAttack(
            replace_kernel=KernelBlob("evil", "6").encode(),
            inject_expected_hashes=True,
        ),
        "kernel_substitution_matching_hashes": lambda: LaunchAttack(
            replace_kernel=KernelBlob("evil", "6").encode(),
        ),
        "malicious_firmware": lambda: LaunchAttack(
            replace_firmware_template=build_firmware(verify_hashes=False),
        ),
        "rootfs_bitflip": lambda: LaunchAttack(
            tamper_disk=lambda disk: disk.corrupt(4096 * 5 + 3),
        ),
        "clean": lambda: None,
    }

    def provoke(self) -> bool:
        from ..amd.verify import AttestationError
        from ..core import RevelioDeployment
        from ..net.latency import ZERO_LATENCY

        mode = self.params.get("mode", "clean")
        seed = str(self.params.get("seed", f"scn-{mode}")).encode()
        attack = self._ATTACKS[mode]()
        deployment = RevelioDeployment(
            self.world.build, num_nodes=1, latency=ZERO_LATENCY, seed=seed
        )
        try:
            if attack is None:
                deployment.launch_fleet()
            else:
                deployment.launch_fleet(attack_for=lambda i: attack)
        except BootFailure:
            self.observed.add("boot_failure")
            return False
        deployment.create_sp_node()
        try:
            deployment.sp.provision_fleet([deployment.node_ip(0)])
        except AttestationError as exc:
            self.observed.add(exc.reason)
            return False
        return True


# ======================================================================
# Update channel: signed-delta pipeline abuse
# ======================================================================

def _update_fixture(world):
    """Lazily built (then cached on the world) signed-update fixture:
    the deployed build, a rebuilt target version, their delta, and a
    genuine channel with the epoch-1 manifest published.  All update
    injectors share it, so the expensive image rebuild happens once per
    campaign run."""
    fixture = getattr(world, "_update_fixture", None)
    if fixture is None:
        from ..build import UpdateChannel, build_revelio_image, compute_delta
        from ..crypto.keys import PrivateKey

        spec_v2 = dataclasses.replace(
            world.build.spec, version=world.build.spec.version + "-update"
        )
        build_v2 = build_revelio_image(spec_v2)
        key = PrivateKey.generate_ecdsa(
            world.drbg.fork(b"update-channel"), "P-256"
        )
        channel = UpdateChannel(key, image_name=world.build.image.name)
        delta = compute_delta(world.build.image, build_v2.image)
        signed = channel.publish(
            delta,
            world.build.expected_measurement,
            build_v2.expected_measurement,
        )
        fixture = {
            "key": key,
            "channel": channel,
            "build_v2": build_v2,
            "delta": delta,
            "signed": signed,
            "blob": channel.blob(signed.manifest.delta_digest),
        }
        world._update_fixture = fixture
    return fixture


class _UpdateInjection(Injection):
    """Shared plumbing for the signed-update abuse injectors: a fresh
    per-arm :class:`~repro.build.channel.UpdateClient`, the cached
    fixture, and the common recovery bar (a clean client still applies
    the genuine manifest after revert)."""

    def _client(self, epoch: int = 0):
        from ..build import UpdateClient

        fixture = _update_fixture(self.world)
        return UpdateClient(fixture["key"].public_key(), epoch=epoch)

    def _apply(self, client, signed, blob, installed=None):
        """Run the client pipeline; records the rejection code (if any)
        and returns whether the update applied."""
        from ..build import ChannelError

        fixture = _update_fixture(self.world)
        installed = installed if installed is not None else (
            self.world.build.image
        )
        try:
            applied = client.apply(installed, signed, blob)
        except ChannelError as exc:
            self.observed.add(exc.code)
            return False
        return applied.disk_image == fixture["build_v2"].image.disk_image

    def recovered(self) -> bool:
        fixture = _update_fixture(self.world)
        return self._apply(
            self._client(), fixture["signed"], fixture["blob"]
        )


@register("update_rollback_replay")
class UpdateRollbackReplay(_UpdateInjection):
    """The classic update-channel attack: re-serve an old but genuinely
    *signed* manifest to roll a node back.  ``mode=stale_epoch`` hits a
    node whose applied epoch already passed the manifest's;
    ``mode=base_mismatch`` hits a node whose installed measurement
    already moved past the manifest's base.  Benign twin
    (``mode=fresh``): the same manifest applied by a node it is
    actually for."""

    def provoke(self) -> bool:
        fixture = _update_fixture(self.world)
        signed, blob = fixture["signed"], fixture["blob"]
        mode = self.params.get("mode", "stale_epoch")
        if mode == "stale_epoch":
            # The node already applied this epoch; the replayed
            # manifest must die on monotonicity, not re-apply.
            client = self._client(epoch=signed.manifest.epoch)
            return self._apply(client, signed, blob)
        if mode == "base_mismatch":
            # The node already runs the target build; the replayed
            # manifest's base chain no longer matches.
            return self._apply(
                self._client(), signed, blob,
                installed=fixture["build_v2"].image,
            )
        if mode == "fresh":
            return self._apply(self._client(), signed, blob)
        raise ValueError(f"unknown mode {mode!r}")


@register("update_unsigned_delta")
class UpdateUnsignedDelta(_UpdateInjection):
    """Payload attacks on the update channel.  ``mode=bad_signature``:
    an attacker-keyed channel re-signs the delta; ``mode=delta_corrupt``:
    a shipped block is flipped in transit; ``mode=digest_mismatch``: a
    compromised publisher signs a manifest whose target measurement
    disagrees with what the delta actually re-roots to.  Benign twin
    (``mode=honest``): the genuine manifest applies."""

    def provoke(self) -> bool:
        from ..build import UpdateChannel
        from ..crypto.keys import PrivateKey

        fixture = _update_fixture(self.world)
        signed, blob = fixture["signed"], fixture["blob"]
        mode = self.params.get("mode", "bad_signature")
        if mode == "bad_signature":
            attacker = PrivateKey.generate_ecdsa(
                self.world.drbg.fork(b"update-attacker"), "P-256"
            )
            rogue = UpdateChannel(
                attacker, image_name=self.world.build.image.name
            )
            forged = rogue.publish(
                fixture["delta"],
                self.world.build.expected_measurement,
                fixture["build_v2"].expected_measurement,
            )
            return self._apply(
                self._client(), forged, rogue.blob(
                    forged.manifest.delta_digest
                ),
            )
        if mode == "delta_corrupt":
            tampered = bytearray(blob)
            tampered[-1] ^= 0xFF
            return self._apply(self._client(), signed, bytes(tampered))
        if mode == "digest_mismatch":
            # A compromised (but correctly keyed) publisher lies about
            # the target: signature and epoch pass, the measurement
            # replay after re-rooting does not.
            lying = fixture["channel"].publish(
                fixture["delta"],
                self.world.build.expected_measurement,
                self.world.build.expected_measurement,  # wrong target
            )
            client = self._client(epoch=lying.manifest.epoch - 1)
            return self._apply(
                client, lying,
                fixture["channel"].blob(lying.manifest.delta_digest),
            )
        if mode == "honest":
            return self._apply(self._client(), signed, blob)
        raise ValueError(f"unknown mode {mode!r}")
