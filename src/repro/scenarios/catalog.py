"""The built-in campaign catalog.

Three campaigns together sweep the entire stable reason-code taxonomy
(the matrix test in ``tests/scenarios/test_taxonomy.py`` fails loudly
if any code in the attest, gateway, or gossip namespaces is missed):

* ``storm-core`` — every attack that makes sense against a *live*
  fleet, fired mid-storm: hypervisor kills, KDS blackholes and
  stale-chain replays, TCB rollbacks, family revocations, the rogue
  backend menagerie, web-PKI mis-issuance, gossip forgeries, runtime
  storage bit-flips, cache poisoning, and gateway envelope abuse.
* ``pipeline-tail`` — the long tail of per-family pipeline codes that
  need crafted evidence rather than traffic (cert-chain forgeries,
  chip-id games, vTPM log tampering, CCA lifecycle/RAK attacks).
* ``launch-61`` — the section-6.1 boot-time matrix against fresh
  one-node deployments (kernel substitution, malicious firmware,
  offline disk tampering).

Scenario parameters are data; everything here is declarative.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .spec import CampaignSpec, ScenarioSpec, scenario


def _storm_scenarios() -> Tuple[ScenarioSpec, ...]:
    specs = [
        scenario(
            "backend-kill", "hypervisor", "backend_kill",
            "gateway:backend_unreachable",
            benign={"probe_only": True},
            trigger_at=4.0, dwell=2.0,
            title="victim host killed mid-storm",
        ),
        scenario(
            "kds-blackhole-cold", "kds", "kds_blackhole",
            "gateway:kds_unreachable",
            params={"clear_cache": True}, benign={"clear_cache": False},
            trigger_at=6.0, blast_radius="none",
            title="KDS blackholed with a cold endorsement cache",
        ),
        scenario(
            "stale-chain-replay", "kds", "stale_chain_replay",
            "attest:tcb_mismatch",
            params={"stale": True}, benign={"stale": False},
            trigger_at=8.0,
            title="MITM replays a VCEK for an older TCB",
        ),
        scenario(
            "tcb-rollback", "policy", "tcb_rollback", "attest:tcb_too_old",
            params={"floor": [255, 255, 255, 255]},
            benign={"floor": [0, 0, 0, 0]},
            trigger_at=10.0,
            title="fleet TCB floor above a rolled-back platform",
        ),
        scenario(
            "family-floor", "policy", "family_floor",
            "attest:family_tcb_floor",
            params={"family": "sev-snp", "floor": [255, 255, 255, 255]},
            benign={"family": "sev-snp", "floor": [0, 0, 0, 0]},
            trigger_at=12.0,
            title="per-family TCB floor above the family's platforms",
        ),
        scenario(
            "family-revocation", "policy", "family_revocation",
            "attest:family_not_allowed",
            params={"family": "tdx"}, benign={"family": "arm-cca"},
            trigger_at=14.0, blast_radius="family",
            title="one TEE family revoked fleet-wide",
        ),
    ]
    rogues = [
        ("tampered-image", "tampered_image", "attest:measurement_mismatch"),
        ("revoked-image", "revoked_image", "attest:measurement_revoked"),
        ("forged-signature", "forged_signature", "attest:bad_signature"),
        ("debug-guest", "debug_guest", "attest:debug_policy"),
        ("foreign-chip", "foreign_chip", "attest:unknown_platform"),
        ("junk-evidence", "junk_evidence", "gateway:malformed_report"),
        ("missing-endpoint", "missing_endpoint", "gateway:report_unavailable"),
        ("wrong-family", "wrong_family", "gateway:family_mismatch"),
    ]
    for offset, (tag, mode, expect) in enumerate(rogues):
        specs.append(scenario(
            f"rogue-{tag}", "gateway", "rogue_backend", expect,
            params={"mode": mode}, benign={"mode": "honest"},
            trigger_at=16.0 + offset, blast_radius="none",
            title=f"rogue backend: {tag.replace('-', ' ')}",
        ))
    specs.append(scenario(
        "cert-misissuance", "pki", "cert_misissuance",
        "attest:report_data_mismatch",
        params={"impostor": True}, benign={"impostor": False},
        trigger_at=24.0, blast_radius="none",
        title="mis-issued web-PKI leaf fronting replayed evidence",
    ))
    gossips = [
        ("stale", "stale"),
        ("unknown-backend", "unknown_backend"),
        ("family-mismatch", "family_mismatch"),
        ("older", "older"),
        ("family-not-allowed", "family_not_allowed"),
    ]
    for offset, (tag, mode) in enumerate(gossips):
        specs.append(scenario(
            f"gossip-{tag}", "mesh", "gossip_forgery", f"mesh:{mode}",
            params={"mode": mode}, benign={"mode": "fresh"},
            trigger_at=25.0 + offset, blast_radius="none",
            title=f"gossip forgery: {tag.replace('-', ' ')} record",
        ))
    specs += [
        scenario(
            "storage-bitflip", "storage", "storage_bitflip",
            "storage:corruption_rejections",
            params={"flip": True}, benign={"flip": False},
            trigger_at=30.0, dwell=0.5,
            title="host flips rootfs bits under a running guest",
        ),
        scenario(
            "cache-poison", "cache", "cache_poison", "attest:bad_signature",
            params={"mode": "forged_signature"}, benign={"mode": "honest"},
            trigger_at=31.0, blast_radius="none",
            title="verdict caches thrashed, then forged evidence",
        ),
        scenario(
            "slow-backend", "network", "slow_backend",
            "gateway:health_timeout",
            params={"delay": 5.0}, benign={"delay": 0.1},
            trigger_at=32.0,
            title="report endpoint slowed past the health budget",
        ),
    ]
    abuses = [
        ("malformed", "malformed_envelope", "malformed_request"),
        ("forged-session", "forged_session", "session_severed"),
        ("empty-tier", "empty_tier", "no_healthy_backend"),
        ("unknown-backend", "unknown_backend", "unknown_backend"),
    ]
    for offset, (tag, mode, code) in enumerate(abuses):
        specs.append(scenario(
            f"abuse-{tag}", "gateway", "gateway_abuse", f"gateway:{code}",
            params={"mode": mode}, benign={"mode": "reattest_victim"},
            trigger_at=33.0 + offset, blast_radius="none",
            title=f"gateway envelope abuse: {tag.replace('-', ' ')}",
        ))
    updates = [
        ("rollback-stale", "update_rollback_replay", "stale_epoch", "fresh",
         "re-served old signed manifest (epoch replay)"),
        ("rollback-base", "update_rollback_replay", "base_mismatch", "fresh",
         "old manifest against a node that already moved"),
        ("unsigned-delta", "update_unsigned_delta", "bad_signature", "honest",
         "delta re-signed by an attacker key"),
        ("corrupt-delta", "update_unsigned_delta", "delta_corrupt", "honest",
         "shipped delta block flipped in transit"),
        ("lying-target", "update_unsigned_delta", "digest_mismatch", "honest",
         "signed manifest lies about the target measurement"),
    ]
    for offset, (tag, injector, mode, benign_mode, title) in enumerate(updates):
        specs.append(scenario(
            f"update-{tag}", "update", injector, f"update:{mode}",
            params={"mode": mode}, benign={"mode": benign_mode},
            trigger_at=37.0 + offset, blast_radius="none",
            title=f"update channel: {title}",
        ))
    return tuple(specs)


def _pipeline_scenarios() -> Tuple[ScenarioSpec, ...]:
    tail = [
        ("evidence-malformed", "evidence_malformed", "honest_snp"),
        ("family-not-allowed", "family_not_allowed", "honest_snp"),
        ("no-trust-context", "no_trust_context", "honest_tdx"),
        ("unknown-platform", "unknown_platform", "honest_snp"),
        ("bad-cert-chain", "bad_cert_chain", "honest_snp"),
        ("chip-id-mismatch", "chip_id_mismatch", "honest_snp"),
        ("chip-id-not-allowed", "chip_id_not_allowed", "honest_snp"),
        ("tcb-mismatch", "tcb_mismatch", "honest_snp"),
        ("tcb-too-old", "tcb_too_old", "honest_snp"),
        ("debug-policy", "debug_policy", "honest_snp"),
        ("family-tcb-floor", "family_tcb_floor", "honest_tdx"),
        ("ak-not-endorsed", "ak_not_endorsed", "honest_vtpm"),
        ("quote-log-mismatch", "quote_log_mismatch", "honest_vtpm"),
        ("service-not-allowed", "service_not_allowed", "honest_vtpm"),
        ("lifecycle-not-secured", "lifecycle_not_secured", "honest_cca"),
        ("rak-not-endorsed", "rak_not_endorsed", "honest_cca"),
    ]
    return tuple(
        scenario(
            name, "pipeline", "pipeline_attack", f"attest:{mode}",
            params={"mode": mode}, benign={"mode": honest},
            blast_radius="none",
            title=f"pipeline: {name.replace('-', ' ')}",
        )
        for name, mode, honest in tail
    )


def _launch_scenarios() -> Tuple[ScenarioSpec, ...]:
    matrix = [
        ("kernel-substitution-honest-table",
         "kernel_substitution_honest_table", "launch:boot_failure", "sm1"),
        ("kernel-substitution-matching-hashes",
         "kernel_substitution_matching_hashes",
         "attest:measurement_mismatch", "sm2"),
        ("malicious-firmware", "malicious_firmware",
         "attest:measurement_mismatch", "sm3"),
        ("rootfs-bitflip", "rootfs_bitflip", "launch:boot_failure", "sm4"),
    ]
    return tuple(
        scenario(
            name, "launch", "launch_attack", expect,
            params={"mode": mode, "seed": seed},
            benign={"mode": "clean", "seed": seed + "-clean"},
            title=f"launch: {name.replace('-', ' ')}",
        )
        for name, mode, expect, seed in matrix
    )


CAMPAIGNS: Dict[str, CampaignSpec] = {
    spec.name: spec
    for spec in (
        CampaignSpec(
            name="storm-core",
            arena="storm",
            scenarios=_storm_scenarios(),
            description=(
                "Every live-fleet attack fired into one seeded session "
                "storm; containment, recovery, and benign-traffic SLOs "
                "asserted together."
            ),
        ),
        CampaignSpec(
            name="pipeline-tail",
            arena="pipeline",
            scenarios=_pipeline_scenarios(),
            description=(
                "The long tail of per-family pipeline reason codes, "
                "driven with crafted evidence against a bare verifier."
            ),
        ),
        CampaignSpec(
            name="launch-61",
            arena="launch",
            scenarios=_launch_scenarios(),
            description=(
                "The section-6.1 boot-time matrix: each launch attack "
                "against a fresh one-node deployment."
            ),
        ),
    )
}


def get_campaign(name: str) -> CampaignSpec:
    try:
        return CAMPAIGNS[name]
    except KeyError:
        raise KeyError(
            f"unknown campaign {name!r}; available: {sorted(CAMPAIGNS)}"
        ) from None


def campaign_names() -> Tuple[str, ...]:
    return tuple(sorted(CAMPAIGNS))
