"""The declarative adversary-campaign DSL.

A :class:`ScenarioSpec` names one attack from the paper's section-6.1
threat model — which layer it strikes (hypervisor, KDS, PKI, storage,
gateway, mesh, policy, cache, network, pipeline, launch), which
registered injector executes it, when it fires on the sim clock, how
long it dwells under live traffic, and the **stable reason code** the
defence must surface (``namespace:code``, e.g. ``attest:tcb_too_old``).
Every attack carries a *benign twin* — the same injector with harmless
parameters — so a campaign proves both halves of the containment
contract: the attack lands on exactly its expected code, and the benign
shape of the same operation sails through with zero hits on that code.

A :class:`CampaignSpec` bundles scenarios with the arena they run in:

* ``storm`` — a live :class:`~repro.fleet.gateway.FleetGateway` fleet
  under an open-loop session storm on the event kernel; attacks fire
  *mid-storm* and benign-traffic SLOs (:class:`SloSpec`) must hold,
* ``pipeline`` — the bare :class:`~repro.attest.AttestationVerifier`,
  for the long tail of per-family reason codes (no traffic needed),
* ``launch`` — boot/provision-time attacks against a fresh one-node
  deployment (the section-6.1 launch matrix).

Specs are frozen and hashable; parameters are stored as sorted tuples
so two structurally equal scenarios compare equal and reports derived
from them are deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

#: Where a campaign runs its scenarios.
ARENAS = ("storm", "pipeline", "launch")

#: Reason-code namespaces an ``expect`` may target: ``attest`` (the
#: pipeline taxonomy, counted by the tracer), ``gateway`` (gateway
#: counters / :class:`~repro.fleet.gateway.GatewayError` reasons),
#: ``mesh`` (``gossip.rejected.*`` counters), ``storage`` (device-mapper
#: counters in the tracer), ``storage`` (device-mapper counters in the
#: tracer), ``launch`` (boot-time failures observed directly by the
#: injector), and ``update`` (the signed update channel's rejection
#: counters on the tracer).
NAMESPACES = ("attest", "gateway", "mesh", "storage", "launch", "update")

#: The attacked layer, for reporting and blast-radius bookkeeping.
LAYERS = (
    "hypervisor", "kds", "pki", "storage", "gateway", "mesh",
    "policy", "cache", "network", "pipeline", "launch", "update",
)


def _freeze(params: Optional[Mapping]) -> Tuple[Tuple[str, object], ...]:
    """Normalise a parameter mapping to a sorted, hashable tuple."""
    if not params:
        return ()
    frozen = []
    for key in sorted(params):
        value = params[key]
        if isinstance(value, list):
            value = tuple(value)
        frozen.append((str(key), value))
    return tuple(frozen)


@dataclass(frozen=True)
class ScenarioSpec:
    """One attack, its timing, and the verdict it must provoke."""

    #: Unique (per campaign) machine-readable scenario name.
    name: str
    #: The layer the attack strikes (one of :data:`LAYERS`).
    layer: str
    #: Registered injector name (see :mod:`repro.scenarios.injectors`).
    injector: str
    #: ``namespace:code`` the attack must land on.
    expect: str
    #: Injector parameters for the attack arm.
    params: Tuple[Tuple[str, object], ...] = ()
    #: Injector parameters for the benign twin; ``None`` disables the
    #: twin (only the launch matrix's implicit clean boots use that).
    benign_params: Optional[Tuple[Tuple[str, object], ...]] = ()
    #: Sim seconds after campaign start when the attack fires.
    trigger_at: float = 0.0
    #: Sim seconds the fault stays active under live traffic before the
    #: verdict is provoked (storm arena only).
    dwell: float = 0.0
    #: What the attack may legitimately take down ("backend" — one
    #: backend's admission; "none" — nothing, fully contained at the
    #: control plane; "family" — every backend of one TEE family).
    blast_radius: str = "backend"
    #: Human-readable one-liner for reports.
    title: str = ""

    def __post_init__(self) -> None:
        if self.layer not in LAYERS:
            raise ValueError(f"{self.name}: unknown layer {self.layer!r}")
        namespace, _, code = self.expect.partition(":")
        if namespace not in NAMESPACES or not code:
            raise ValueError(
                f"{self.name}: expect must be 'namespace:code' with a "
                f"namespace from {NAMESPACES}, got {self.expect!r}"
            )
        if not self.injector:
            raise ValueError(f"{self.name}: empty injector name")
        if self.trigger_at < 0 or self.dwell < 0:
            raise ValueError(f"{self.name}: negative trigger/dwell")

    @property
    def expected_namespace(self) -> str:
        return self.expect.partition(":")[0]

    @property
    def expected_reason(self) -> str:
        return self.expect.partition(":")[2]

    def params_dict(self) -> Dict[str, object]:
        return dict(self.params)

    def benign_params_dict(self) -> Optional[Dict[str, object]]:
        return None if self.benign_params is None else dict(self.benign_params)


def scenario(
    name: str,
    layer: str,
    injector: str,
    expect: str,
    params: Optional[Mapping] = None,
    benign: Optional[Mapping] = None,
    trigger_at: float = 0.0,
    dwell: float = 0.0,
    blast_radius: str = "backend",
    title: str = "",
) -> ScenarioSpec:
    """Author-friendly constructor: dict parameters, frozen storage."""
    return ScenarioSpec(
        name=name,
        layer=layer,
        injector=injector,
        expect=expect,
        params=_freeze(params),
        benign_params=None if benign is None else _freeze(benign),
        trigger_at=trigger_at,
        dwell=dwell,
        blast_radius=blast_radius,
        title=title or name.replace("-", " "),
    )


@dataclass(frozen=True)
class SloSpec:
    """What benign traffic is owed while a campaign runs (storm arena).

    ``p99_factor`` bounds the benign p99 against an *attack-free*
    baseline storm run with the same seed and axes; failed/blocked are
    absolute ceilings (the paper's bar: attacks never silently degrade
    honest clients — zero failures, zero wrongly blocked sessions)."""

    max_failed: int = 0
    max_blocked: int = 0
    p99_factor: float = 2.0


@dataclass(frozen=True)
class CampaignSpec:
    """A named set of scenarios plus the world they run against."""

    name: str
    arena: str
    scenarios: Tuple[ScenarioSpec, ...]
    description: str = ""
    #: Storm shape (ignored outside the storm arena).
    sessions: int = 400
    users: int = 24
    arrival_rate: float = 12.0
    backends: int = 3
    #: Non-SNP backends joined per listed family (storm arena); family
    #: scenarios (revocation, gossip ``family_not_allowed``) need one.
    hetero_families: Tuple[str, ...] = ("tdx",)
    #: Extra session tier with no serving family, so tier exhaustion
    #: (``no_healthy_backend``) is reachable without hurting real tiers.
    empty_tier: str = "sealed"
    slo: SloSpec = field(default_factory=SloSpec)

    def __post_init__(self) -> None:
        if self.arena not in ARENAS:
            raise ValueError(f"{self.name}: unknown arena {self.arena!r}")
        names = [spec.name for spec in self.scenarios]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"{self.name}: duplicate scenario names {dupes}")

    def attack_count(self) -> int:
        return len(self.scenarios)
