"""The worlds campaigns run in.

One class per arena (see :mod:`repro.scenarios.spec`):

* :class:`StormWorld` — a deployed SNP fleet (plus optional
  heterogeneous backends) behind a :class:`~repro.fleet.FleetGateway`
  on a fresh event kernel, ready to be stormed.  It also owns the
  resources injectors share: deterministic DRBG forks, a rogue-IP
  allocator, the fleet's shared TLS identity (for serving impostor or
  rogue evidence the way real backends serve theirs), and lookups from
  backend IP to the deployed node.
* :class:`PipelineWorld` — per-family attestation infrastructure and a
  verifier holding every family's trust material, for direct-pipeline
  scenarios (the long tail of reason codes that need no traffic).
* :class:`LaunchWorld` — just the build; launch scenarios construct a
  fresh one-node deployment per boot attempt (boot attacks destroy
  their victim, so nothing is shared).

Everything is seeded: two worlds built with the same build, campaign,
and seed behave identically event for event.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional

from ..amd.policy import GuestPolicy
from ..attest import (
    AttestationVerifier,
    CcaTrust,
    Evidence,
    TdxTrust,
    TeeFamily,
    VerifyFarm,
    VtpmTrust,
)
from ..amd.kds import KeyDistributionServer
from ..amd.secure_processor import AmdKeyInfrastructure
from ..cca.realms import ArmInfrastructure
from ..core import RevelioDeployment
from ..core.guest import WELL_KNOWN_ATTESTATION_PATH
from ..core.kds_client import KdsClient
from ..core.key_sharing import report_data_for
from ..crypto.drbg import HmacDrbg
from ..crypto.keys import PrivateKey
from ..fleet import FleetGateway, HeterogeneousFleet
from ..net.http import HttpResponse, HttpServer
from ..net.latency import LatencyModel, SimClock
from ..sim import EventKernel, SimRng
from ..tdx.module import IntelInfrastructure, ProvisioningCertificationService
from ..vtpm.vtpm import Vtpm


class StormWorld:
    """A gateway-fronted fleet plus everything injectors need."""

    def __init__(self, build, campaign, seed: int, farm: bool = False):
        self.build = build
        self.campaign = campaign
        self.seed = seed
        self.deployment = RevelioDeployment(
            build,
            num_nodes=campaign.backends,
            seed=f"scenarios-{campaign.name}-{seed}".encode(),
        ).deploy()
        self.network = self.deployment.network
        self.kernel = EventKernel(self.network.clock, SimRng(seed))
        self.network.enable_event_mode(self.kernel)

        self.farm: Optional[VerifyFarm] = None
        if farm:
            self.farm = VerifyFarm(
                clock=self.network.clock,
                latency=self.network.latency,
                seed=f"scenarios-farm-{seed}".encode(),
            )
        tier_families = {
            "high": (str(TeeFamily.SEV_SNP), str(TeeFamily.VTPM)),
            "bulk": None,
            # A tier whose family set has no registered backends, so a
            # hello tagged with it exhausts routing (no_healthy_backend)
            # without touching the tiers real traffic uses.
            campaign.empty_tier: (str(TeeFamily.CCA),),
        }
        self.gateway = FleetGateway.for_deployment(
            self.deployment,
            kernel=self.kernel,
            farm=self.farm,
            tier_families=tier_families,
        )
        verdicts = self.gateway.admit_all()
        assert all(v.ok for v in verdicts), [
            (v.ip_address, v.reason) for v in verdicts if not v.ok
        ]

        self.hetero = HeterogeneousFleet(self.deployment)
        self.hetero_ips: Dict[str, List[str]] = {}
        adders = {
            str(TeeFamily.TDX): (self.hetero.add_tdx_backend, "10.8.1."),
            str(TeeFamily.CCA): (self.hetero.add_cca_backend, "10.8.2."),
            str(TeeFamily.VTPM): (self.hetero.add_vtpm_backend, "10.8.3."),
        }
        for family in campaign.hetero_families:
            add, prefix = adders[str(family)]
            ip = prefix + "10"
            add(ip)
            self.hetero_ips.setdefault(str(family), []).append(ip)
        if self.hetero.backends:
            verdicts = self.hetero.attach_gateway(self.gateway)
            assert all(v.ok for v in verdicts), [
                (v.ip_address, v.reason) for v in verdicts if not v.ok
            ]
        else:
            # Family scenarios still need the contexts (e.g. a rogue
            # registered under a family with no honest peers).
            self.gateway.verifier.contexts.update(self.hetero.contexts())

        self.node_ips = [
            self.deployment.node_ip(i) for i in range(campaign.backends)
        ]

        leader = self.deployment.leader
        self.chain = list(leader.node.certificate_chain)
        self.tls_key = PrivateKey("ecdsa", leader.node.tls_private_key)
        self.binding = report_data_for(
            self.tls_key.public_key().fingerprint()
        )
        #: Deterministic entropy for injectors (forked per use).
        self.drbg = self.deployment.rng.fork(b"scenario-injectors")
        #: Attacker vantage point outside the fleet.
        self.attacker = self.network.add_host("attacker", "10.66.0.1")
        self.monitor = None  # wired by the runner when it spawns one
        self._rogue_counter = 0
        self._foreign_amd: Optional[AmdKeyInfrastructure] = None

    # -- lookups ----------------------------------------------------

    def victim_ip(self, index: int = 0) -> str:
        """The attacked SNP backend: the indexed node if it is
        currently admitted, else the first admitted node (on the
        rollout axis the indexed node may be mid-replacement — attacks
        always target a healthy victim so their expected code, not a
        replacement artifact, is what lands)."""
        preferred = self.node_ips[index % len(self.node_ips)]
        candidates = [preferred] + [
            ip for ip in self.node_ips if ip != preferred
        ]
        for ip_address in candidates:
            backend = self.gateway.backends.get(ip_address)
            if backend is not None and backend.state == "admitted":
                return ip_address
        return preferred

    def node_for(self, ip_address: str):
        """The deployed node (vm/host/node) behind a backend IP —
        looked up live, because a rolling rollout replaces
        ``deployment.nodes`` entries in place."""
        for deployed in self.deployment.nodes:
            if deployed.host.ip_address == ip_address:
                return deployed
        raise KeyError(f"no deployed node at {ip_address}")

    def next_rogue_ip(self) -> str:
        self._rogue_counter += 1
        return f"10.66.1.{self._rogue_counter}"

    def foreign_amd(self) -> AmdKeyInfrastructure:
        """A second vendor root the deployment's KDS knows nothing
        about (``unknown_platform`` evidence)."""
        if self._foreign_amd is None:
            self._foreign_amd = AmdKeyInfrastructure(
                self.drbg.fork(b"foreign-amd")
            )
        return self._foreign_amd

    # -- rogue serving ----------------------------------------------

    def serve_evidence(self, ip_address: str, body: Optional[bytes],
                       status: int = 200, chain=None, tls_key=None):
        """Stand up a host at *ip_address* serving *body* at the
        well-known attestation path over the fleet's shared TLS
        identity (or an impostor's *chain*/*tls_key*).  ``status`` !=
        200 models a missing endpoint.  Returns the host."""
        name = f"rogue-{ip_address}"
        host = self.network.add_host(name, ip_address)
        server = HttpServer(name)
        if status == 200:
            payload = body if body is not None else b""
            responder = lambda request, context: HttpResponse.ok(  # noqa: E731
                payload, "application/octet-stream"
            )
        else:
            responder = lambda request, context: HttpResponse(  # noqa: E731
                status=status, body=b""
            )
        server.add_route(
            "GET", WELL_KNOWN_ATTESTATION_PATH, responder,
            processing_time=self.deployment.latency.report_endpoint_processing,
        )
        server.serve_tls(
            host,
            chain if chain is not None else self.chain,
            tls_key if tls_key is not None else self.tls_key,
            self.drbg.fork(b"rogue-tls:" + ip_address.encode()),
        )
        return host

    def remove_host(self, ip_address: str) -> None:
        self.network.remove_host(ip_address)

    def close(self) -> None:
        if self.farm is not None:
            self.farm.uninstall()


class PipelineWorld:
    """Per-family infrastructure for direct-verifier scenarios."""

    def __init__(self, seed: int = 0):
        self.rng = HmacDrbg(f"scenario-pipeline-{seed}".encode())
        self.clock = SimClock()
        self.amd = AmdKeyInfrastructure(self.rng.fork(b"amd"))
        self.kds_server = KeyDistributionServer(self.amd)
        self.kds = KdsClient(self.kds_server, self.clock, LatencyModel())
        self.chip = self.amd.provision_chip("scenario-snp")
        self.other_chip = self.amd.provision_chip("scenario-snp-2")
        self.guest = self.chip.launch_vm(b"scenario-snp-image", GuestPolicy())

        self.intel = IntelInfrastructure(self.rng.fork(b"intel"))
        self.pcs = ProvisioningCertificationService(self.intel)
        self.td = self.intel.provision_platform("scenario-tdx").launch_td(
            b"scenario-td-image"
        )

        self.arm = ArmInfrastructure(self.rng.fork(b"arm"))
        self.cca_platform = self.arm.provision_platform("scenario-cca")
        self.cca_platform_b = self.arm.provision_platform("scenario-cca-b")
        self.cpaks = {
            self.cca_platform.platform_id: self.arm.cpak_certificate(
                self.cca_platform
            ),
            self.cca_platform_b.platform_id: self.arm.cpak_certificate(
                self.cca_platform_b
            ),
        }
        self.realm = self.cca_platform.launch_realm(b"scenario-realm-image")
        self.realm_b = self.cca_platform_b.launch_realm(b"scenario-realm-b")

        self.binding = hashlib.sha256(b"scenario-pipeline").digest() + b"\x00" * 32
        self._foreign_amd: Optional[AmdKeyInfrastructure] = None
        self.verifier = self.make_verifier()

    def contexts(self, vtpm_trust=None) -> Dict[str, object]:
        return {
            str(TeeFamily.TDX): TdxTrust(self.pcs),
            str(TeeFamily.CCA): CcaTrust(
                lambda platform_id: self.cpaks[platform_id],
                (self.arm.root.certificate,),
            ),
            str(TeeFamily.VTPM): (
                vtpm_trust if vtpm_trust is not None else VtpmTrust(self.kds)
            ),
        }

    def make_verifier(self, kds=None, contexts=None) -> AttestationVerifier:
        """A verifier over the world's trust material; counters flow to
        the process tracer so campaign reports see them."""
        return AttestationVerifier(
            kds if kds is not None else self.kds,
            site="scenario-pipeline",
            contexts=self.contexts() if contexts is None else contexts,
        )

    def foreign_amd(self) -> AmdKeyInfrastructure:
        if self._foreign_amd is None:
            self._foreign_amd = AmdKeyInfrastructure(
                self.rng.fork(b"foreign-amd")
            )
        return self._foreign_amd

    def fresh_vtpm(self, label: str) -> Vtpm:
        """A vTPM with its own deterministic stream (modes that extend
        PCRs must not leak state into each other)."""
        return Vtpm(self.rng.fork(b"vtpm:" + label.encode()))

    def ak_endorsement(self, vtpm: Vtpm):
        """The AMD-SP endorsement binding this world's SNP guest to a
        vTPM's attestation key."""
        return self.guest.get_report(
            report_data_for(
                hashlib.sha256(vtpm.ak_public.encode()).digest()
            )
        )

    def snp_evidence(self, report) -> Evidence:
        return Evidence(str(TeeFamily.SEV_SNP), report.encode())


class LaunchWorld:
    """Launch-time scenarios build a fresh deployment per boot."""

    def __init__(self, build):
        self.build = build
