"""repro.scenarios: declarative adversary campaigns under live traffic.

The subsystem behind the paper's security story (§6.1): every attack
the threat model grants the host, the network, or a rogue operator is
expressed as data (:mod:`~repro.scenarios.spec`), executed through one
revertible injector protocol (:mod:`~repro.scenarios.injectors`)
against a live stormed fleet or a bare pipeline
(:mod:`~repro.scenarios.arena`), and judged by one runner
(:mod:`~repro.scenarios.runner`) that asserts containment (the stable
reason code), recovery (symmetric revert), benign-twin success, and
benign-traffic SLOs in a single deterministic report.

Built-in campaigns live in :mod:`~repro.scenarios.catalog`; the full
matrix (campaigns x sigcache x rollout x verify-farm) is
``benchmarks/bench_scenarios.py``.
"""

from .catalog import CAMPAIGNS, campaign_names, get_campaign
from .injectors import Injection, create, register, registered_injectors
from .runner import CampaignReport, CampaignRunner
from .spec import (
    ARENAS,
    LAYERS,
    NAMESPACES,
    CampaignSpec,
    ScenarioSpec,
    SloSpec,
    scenario,
)

__all__ = [
    "ARENAS",
    "CAMPAIGNS",
    "CampaignReport",
    "CampaignRunner",
    "CampaignSpec",
    "Injection",
    "LAYERS",
    "NAMESPACES",
    "ScenarioSpec",
    "SloSpec",
    "campaign_names",
    "create",
    "get_campaign",
    "register",
    "registered_injectors",
    "scenario",
]
