"""Use-case applications hosted on Revelio VMs (paper section 4)."""

from .auction import (
    AuctionClient,
    AuctionError,
    AuctionOutcome,
    AuctionServer,
)
from .cryptpad import (
    APP_SHELL_PATH,
    PAD_STORAGE_FIRST_BLOCK,
    CryptPadClient,
    CryptPadError,
    CryptPadServer,
)

__all__ = [
    "APP_SHELL_PATH",
    "AuctionClient",
    "AuctionError",
    "AuctionOutcome",
    "AuctionServer",
    "CryptPadClient",
    "CryptPadError",
    "CryptPadServer",
    "PAD_STORAGE_FIRST_BLOCK",
]
