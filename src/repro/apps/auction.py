"""A sealed-bid auction service — the integrity-critical use case class
the paper motivates ("auction sites, lotteries and any form of
e-commerce service", section 4).

Why Revelio matters here: bidders must trust that the auctioneer's code
(a) cannot leak sealed bids to competitors before closing and (b)
computes the winner exactly as published.  Running the auction inside
an attested Revelio VM makes both checkable:

* bids are ECIES-encrypted **to the VM's attested identity key** — only
  code inside the measured TEE can open them, not the operator,
* the outcome is **signed by that same attested key**, so any bidder
  can verify that the result came from the attested logic, and an
  operator-forged outcome fails verification.

Bid storage lands on the sealed data volume, so sealed bids also resist
offline snooping between shutdowns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..crypto import encoding
from ..crypto.drbg import HmacDrbg
from ..crypto.ecdsa import EcdsaPrivateKey
from ..crypto.keys import PublicKey
from ..net.http import HttpRequest, HttpResponse
from .cryptpad import PAD_STORAGE_FIRST_BLOCK  # reuse the reserved offset scheme
from ..core.key_sharing import (
    KeySharingError,
    decrypt_with_private_key,
    encrypt_to_public_key,
)

AUCTION_STORAGE_FIRST_BLOCK = PAD_STORAGE_FIRST_BLOCK + 16


class AuctionError(RuntimeError):
    """Auction protocol failures."""


@dataclass(frozen=True)
class AuctionOutcome:
    """The signed result the service publishes at closing."""

    auction_id: str
    winner: str
    winning_amount: int
    num_bids: int
    signature: bytes = b""

    def signed_payload(self) -> bytes:
        """The canonical byte string covered by the signature."""
        return encoding.encode(
            {
                "auction": self.auction_id,
                "winner": self.winner,
                "amount": self.winning_amount,
                "bids": self.num_bids,
            }
        )

    def verify(self, attested_service_key: PublicKey) -> bool:
        """Check the outcome against the service's *attested* key."""
        if not self.signature:
            return False
        return attested_service_key.verify(self.signed_payload(), self.signature)

    def encode(self) -> bytes:
        """Serialise to canonical TLV bytes."""
        return encoding.encode(
            {"payload": self.signed_payload(), "sig": self.signature}
        )

    @classmethod
    def decode(cls, data: bytes) -> "AuctionOutcome":
        """Parse an instance back out of canonical TLV bytes."""
        outer = encoding.decode(data)
        payload = encoding.decode(outer["payload"])
        return cls(
            auction_id=payload["auction"],
            winner=payload["winner"],
            winning_amount=payload["amount"],
            num_bids=payload["bids"],
            signature=outer["sig"],
        )


@dataclass
class _Auction:
    auction_id: str
    open: bool = True
    #: bidder -> ECIES blob of the encoded bid
    sealed_bids: Dict[str, bytes] = field(default_factory=dict)
    outcome: Optional[AuctionOutcome] = None


class AuctionServer:
    """The auction application (app factory for a Revelio node)."""

    def __init__(self, storage_first_block: int = AUCTION_STORAGE_FIRST_BLOCK):
        self._auctions: Dict[str, _Auction] = {}
        self._node = None
        self._storage = None
        self._storage_first_block = storage_first_block

    def install(self, node) -> None:
        """Wire this application's routes onto a Revelio node (app factory)."""
        self._node = node
        self._storage = node.vm.storage.get("data")
        self._load()
        node.add_app_route("POST", "/api/auction/create", self._create)
        node.add_app_route("POST", "/api/auction/bid", self._bid)
        node.add_app_route("POST", "/api/auction/close", self._close)
        node.add_app_route("POST", "/api/auction/outcome", self._outcome)

    # -- internal key handling -------------------------------------------------

    @property
    def _service_key(self) -> EcdsaPrivateKey:
        """The fleet's attested TLS key: the very key end-users verify
        through the well-known report, so a bidder can take it straight
        from their attested connection.  Bids decrypt on any fleet node
        (they all hold the shared key — and are all attested)."""
        key = self._node.tls_private_key
        if key is None:
            raise AuctionError("service identity not installed yet")
        return key

    # -- routes ---------------------------------------------------------------

    def _create(self, request: HttpRequest, context) -> HttpResponse:
        try:
            auction_id = encoding.decode(request.body)["auction"]
        except (ValueError, KeyError, TypeError):
            return HttpResponse.error("malformed create request")
        if auction_id in self._auctions:
            return HttpResponse.error("auction exists")
        self._auctions[auction_id] = _Auction(auction_id=auction_id)
        self._flush()
        return HttpResponse.ok(encoding.encode({"ok": True}),
                               "application/octet-stream")

    def _bid(self, request: HttpRequest, context) -> HttpResponse:
        try:
            decoded = encoding.decode(request.body)
            auction_id = decoded["auction"]
            bidder = decoded["bidder"]
            sealed = decoded["sealed_bid"]
        except (ValueError, KeyError, TypeError):
            return HttpResponse.error("malformed bid")
        auction = self._auctions.get(auction_id)
        if auction is None:
            return HttpResponse.not_found()
        if not auction.open:
            return HttpResponse.forbidden("auction closed")
        auction.sealed_bids[bidder] = sealed
        self._flush()
        return HttpResponse.ok(
            encoding.encode({"ok": True, "bids": len(auction.sealed_bids)}),
            "application/octet-stream",
        )

    def _close(self, request: HttpRequest, context) -> HttpResponse:
        try:
            auction_id = encoding.decode(request.body)["auction"]
        except (ValueError, KeyError, TypeError):
            return HttpResponse.error("malformed close request")
        auction = self._auctions.get(auction_id)
        if auction is None:
            return HttpResponse.not_found()
        if auction.outcome is None:
            try:
                auction.outcome = self._decide(auction)
            except AuctionError as exc:
                return HttpResponse.error(str(exc))
            auction.open = False
            self._flush()
        return HttpResponse.ok(auction.outcome.encode(), "application/octet-stream")

    def _outcome(self, request: HttpRequest, context) -> HttpResponse:
        try:
            auction_id = encoding.decode(request.body)["auction"]
        except (ValueError, KeyError, TypeError):
            return HttpResponse.error("malformed outcome request")
        auction = self._auctions.get(auction_id)
        if auction is None or auction.outcome is None:
            return HttpResponse.not_found()
        return HttpResponse.ok(auction.outcome.encode(), "application/octet-stream")

    # -- the in-TEE decision ----------------------------------------------------

    def _decide(self, auction: _Auction) -> AuctionOutcome:
        """Open the sealed bids *inside the TEE* and pick the winner
        (highest amount; ties broken by bidder name for determinism)."""
        if not auction.sealed_bids:
            raise AuctionError("no bids")
        bids: List[Tuple[int, str]] = []
        for bidder, sealed in sorted(auction.sealed_bids.items()):
            try:
                plain = decrypt_with_private_key(self._service_key, sealed)
                amount = encoding.decode(plain)["amount"]
            except (KeySharingError, ValueError, KeyError, TypeError):
                continue  # malformed/mis-encrypted bids are discarded
            if isinstance(amount, int) and amount > 0:
                bids.append((amount, bidder))
        if not bids:
            raise AuctionError("no valid bids")
        amount, winner = max(bids, key=lambda item: (item[0], item[1]))
        unsigned = AuctionOutcome(
            auction_id=auction.auction_id,
            winner=winner,
            winning_amount=amount,
            num_bids=len(bids),
        )
        from dataclasses import replace

        return replace(
            unsigned,
            signature=self._service_key.sign(unsigned.signed_payload()),
        )

    # -- sealed persistence -------------------------------------------------------

    def _flush(self) -> None:
        if self._storage is None:
            return
        blob = encoding.encode(
            {
                a.auction_id: {
                    "open": a.open,
                    "bids": dict(a.sealed_bids),
                    "outcome": a.outcome.encode() if a.outcome else b"",
                }
                for a in self._auctions.values()
            }
        )
        offset = self._storage_first_block * self._storage.block_size
        if offset + 4 + len(blob) > self._storage.size_bytes:
            raise AuctionError("auction storage volume full")
        self._storage.write_bytes(offset, len(blob).to_bytes(4, "big") + blob)

    def _load(self) -> None:
        if self._storage is None:
            return
        offset = self._storage_first_block * self._storage.block_size
        length = int.from_bytes(self._storage.read_bytes(offset, 4), "big")
        if length == 0 or offset + 4 + length > self._storage.size_bytes:
            return
        try:
            decoded = encoding.decode(self._storage.read_bytes(offset + 4, length))
        except ValueError:
            return
        for auction_id, state in decoded.items():
            auction = _Auction(
                auction_id=auction_id,
                open=state["open"],
                sealed_bids=dict(state["bids"]),
            )
            if state["outcome"]:
                auction.outcome = AuctionOutcome.decode(state["outcome"])
            self._auctions[auction_id] = auction

    def snoop_sealed_bids(self, auction_id: str) -> Dict[str, bytes]:
        """What a curious operator sees: ECIES blobs only."""
        auction = self._auctions.get(auction_id)
        return dict(auction.sealed_bids) if auction else {}


class AuctionClient:
    """A bidder: seals bids to the *attested* service key and verifies
    signed outcomes against it."""

    def __init__(self, http_client, base_url: str,
                 attested_service_key: PublicKey,
                 rng: Optional[HmacDrbg] = None):
        if attested_service_key.algorithm != "ecdsa":
            raise AuctionError("service key must be an ECDSA key")
        self._http = http_client
        self._base_url = base_url.rstrip("/")
        self.service_key = attested_service_key
        self._rng = rng if rng is not None else HmacDrbg(b"auction-client")

    def create_auction(self, auction_id: str) -> None:
        """Open a new auction on the service."""
        response, _ = self._http.post(
            f"{self._base_url}/api/auction/create",
            encoding.encode({"auction": auction_id}),
        )
        if response.status != 200:
            raise AuctionError(f"create failed: {response.body!r}")

    def place_bid(self, auction_id: str, bidder: str, amount: int) -> None:
        """Seal a bid to the attested service key and submit it."""
        sealed = encrypt_to_public_key(
            self.service_key.inner,
            encoding.encode({"amount": amount}),
            self._rng,
        )
        response, _ = self._http.post(
            f"{self._base_url}/api/auction/bid",
            encoding.encode(
                {"auction": auction_id, "bidder": bidder, "sealed_bid": sealed}
            ),
        )
        if response.status != 200:
            raise AuctionError(f"bid failed: {response.body!r}")

    def close_auction(self, auction_id: str) -> AuctionOutcome:
        """Close the auction; returns the verified signed outcome."""
        response, _ = self._http.post(
            f"{self._base_url}/api/auction/close",
            encoding.encode({"auction": auction_id}),
        )
        if response.status != 200:
            raise AuctionError(f"close failed: {response.body!r}")
        outcome = AuctionOutcome.decode(response.body)
        if not outcome.verify(self.service_key):
            raise AuctionError(
                "outcome signature invalid: not produced by the attested service"
            )
        return outcome

    def fetch_outcome(self, auction_id: str) -> AuctionOutcome:
        """Fetch and verify an already-published outcome."""
        response, _ = self._http.post(
            f"{self._base_url}/api/auction/outcome",
            encoding.encode({"auction": auction_id}),
        )
        if response.status != 200:
            raise AuctionError(f"no outcome: {response.body!r}")
        outcome = AuctionOutcome.decode(response.body)
        if not outcome.verify(self.service_key):
            raise AuctionError(
                "outcome signature invalid: not produced by the attested service"
            )
        return outcome
