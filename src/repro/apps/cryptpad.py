"""A CryptPad-like end-to-end-encrypted collaboration suite (paper §4.1).

The server stores only ciphertext: pad contents are encrypted client
side under a pad key shared out of band (in real CryptPad, the URL
fragment, which browsers never send to the server).  The server's
threat model is *honest but curious* — but as the paper argues, users
still have to trust the JavaScript the server ships and the server's
handling of metadata.  Running the server in a Revelio VM closes that
gap: the served application code is part of the measured rootfs, and
pad storage lands on the sealed (measurement-encrypted) data volume.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..crypto import encoding
from ..crypto.drbg import HmacDrbg
from ..crypto.modes import AeadCipher, AeadError
from ..net.http import HttpRequest, HttpResponse

#: Pad storage begins at this block of the data volume (the first blocks
#: are reserved for the node's TLS key material).
PAD_STORAGE_FIRST_BLOCK = 8
APP_SHELL_PATH = "/opt/cryptpad/www/app.js"


class CryptPadError(RuntimeError):
    """Server- or client-side pad errors."""


class CryptPadServer:
    """The server application (app factory for a Revelio node).

    Stores, per pad id, an append-only list of ciphertext operations.
    The server can neither read nor undetectably modify pad contents.
    """

    def __init__(self, storage_first_block: int = PAD_STORAGE_FIRST_BLOCK):
        self._pads: Dict[str, List[bytes]] = {}
        self._storage = None
        self._storage_first_block = storage_first_block
        self._node = None

    def install(self, node) -> None:
        """Wire this application's routes onto a Revelio node (app factory)."""
        self._node = node
        self._storage = node.vm.storage.get("data")
        self._load()
        node.add_app_route("GET", "/", self._serve_app_shell)
        node.add_app_route("POST", "/api/pad/create", self._create_pad)
        node.add_app_route("POST", "/api/pad/append", self._append_op)
        node.add_app_route("POST", "/api/pad/get", self._get_pad)

    # -- routes ---------------------------------------------------------------

    def _serve_app_shell(self, request: HttpRequest, context) -> HttpResponse:
        """Serve the client application from the measured rootfs."""
        rootfs = self._node.vm.rootfs
        if not rootfs.exists(APP_SHELL_PATH):
            return HttpResponse.not_found()
        shell = b"<html><script>" + rootfs.read_file(APP_SHELL_PATH) + b"</script></html>"
        return HttpResponse.ok(shell)

    def _create_pad(self, request: HttpRequest, context) -> HttpResponse:
        try:
            pad_id = encoding.decode(request.body)["pad_id"]
        except (ValueError, KeyError, TypeError):
            return HttpResponse.error("malformed create request")
        if pad_id in self._pads:
            return HttpResponse.error("pad exists")
        self._pads[pad_id] = []
        self._flush()
        return HttpResponse.ok(encoding.encode({"ok": True}), "application/octet-stream")

    def _append_op(self, request: HttpRequest, context) -> HttpResponse:
        try:
            decoded = encoding.decode(request.body)
            pad_id = decoded["pad_id"]
            ciphertext = decoded["op"]
        except (ValueError, KeyError, TypeError):
            return HttpResponse.error("malformed append request")
        if pad_id not in self._pads:
            return HttpResponse.not_found()
        self._pads[pad_id].append(ciphertext)
        self._flush()
        return HttpResponse.ok(
            encoding.encode({"ok": True, "length": len(self._pads[pad_id])}),
            "application/octet-stream",
        )

    def _get_pad(self, request: HttpRequest, context) -> HttpResponse:
        try:
            pad_id = encoding.decode(request.body)["pad_id"]
        except (ValueError, KeyError, TypeError):
            return HttpResponse.error("malformed get request")
        operations = self._pads.get(pad_id)
        if operations is None:
            return HttpResponse.not_found()
        return HttpResponse.ok(
            encoding.encode({"ops": list(operations)}), "application/octet-stream"
        )

    # -- sealed persistence -------------------------------------------------------

    def _flush(self) -> None:
        """Persist all pads to the sealed data volume."""
        if self._storage is None:
            return
        blob = encoding.encode({pad: list(ops) for pad, ops in self._pads.items()})
        offset = self._storage_first_block * self._storage.block_size
        if offset + 4 + len(blob) > self._storage.size_bytes:
            raise CryptPadError("pad storage volume full")
        self._storage.write_bytes(offset, len(blob).to_bytes(4, "big") + blob)

    def _load(self) -> None:
        """Reload pads after a reboot (the volume only opens if the VM
        re-measured identically — Revelio's sealing guarantee)."""
        if self._storage is None:
            return
        offset = self._storage_first_block * self._storage.block_size
        length = int.from_bytes(self._storage.read_bytes(offset, 4), "big")
        if length == 0 or offset + 4 + length > self._storage.size_bytes:
            return
        try:
            decoded = encoding.decode(self._storage.read_bytes(offset + 4, length))
        except ValueError:
            return  # fresh / unformatted region
        self._pads = {pad: list(ops) for pad, ops in decoded.items()}

    def snoop_ciphertexts(self, pad_id: str) -> List[bytes]:
        """What a curious provider can see: ciphertext only."""
        return list(self._pads.get(pad_id, []))


class CryptPadClient:
    """The browser-side pad client; holds the pad key the server never
    sees (shared via the URL fragment out of band)."""

    def __init__(self, http_client, base_url: str, rng: Optional[HmacDrbg] = None):
        self._http = http_client
        self._base_url = base_url.rstrip("/")
        self._rng = rng if rng is not None else HmacDrbg(b"cryptpad-client")
        self._keys: Dict[str, bytes] = {}

    def create_pad(self, pad_id: str) -> bytes:
        """Create a pad and generate its client-held key; returns the
        key (what the user shares through the URL fragment)."""
        response, _ = self._http.post(
            f"{self._base_url}/api/pad/create",
            encoding.encode({"pad_id": pad_id}),
        )
        if response.status != 200:
            raise CryptPadError(f"create failed: {response.body!r}")
        key = self._rng.generate(32)
        self._keys[pad_id] = key
        return key

    def open_pad(self, pad_id: str, key: bytes) -> None:
        """Join an existing pad with an out-of-band key."""
        self._keys[pad_id] = key

    def append(self, pad_id: str, text: str) -> None:
        """Append an encrypted operation to a pad."""
        key = self._key(pad_id)
        nonce = self._rng.generate(12)
        ciphertext = AeadCipher(key).seal(
            nonce, text.encode("utf-8"), aad=pad_id.encode()
        )
        response, _ = self._http.post(
            f"{self._base_url}/api/pad/append",
            encoding.encode({"pad_id": pad_id, "op": nonce + ciphertext}),
        )
        if response.status != 200:
            raise CryptPadError(f"append failed: {response.body!r}")

    def read(self, pad_id: str) -> List[str]:
        """Fetch and decrypt a pad's full history."""
        key = self._key(pad_id)
        response, _ = self._http.post(
            f"{self._base_url}/api/pad/get", encoding.encode({"pad_id": pad_id})
        )
        if response.status != 200:
            raise CryptPadError(f"get failed: {response.body!r}")
        operations = encoding.decode(response.body)["ops"]
        texts = []
        for op in operations:
            nonce, ciphertext = op[:12], op[12:]
            try:
                plaintext = AeadCipher(key).open(
                    nonce, ciphertext, aad=pad_id.encode()
                )
            except AeadError as exc:
                raise CryptPadError(
                    "pad operation failed authentication (server tampering?)"
                ) from exc
            texts.append(plaintext.decode("utf-8"))
        return texts

    def _key(self, pad_id: str) -> bytes:
        try:
            return self._keys[pad_id]
        except KeyError:
            raise CryptPadError(f"no key for pad {pad_id!r}") from None
