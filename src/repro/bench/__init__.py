"""Shared benchmark harness helpers (reporting, scaling, fixtures)."""

from .harness import Reporter, bench_scale, scaled_blocks

__all__ = ["Reporter", "bench_scale", "scaled_blocks"]
