"""Benchmark reporting and workload scaling.

Every benchmark regenerates one of the paper's tables or figures.  The
:class:`Reporter` collects the same rows/series the paper reports —
side by side with the paper's numbers — prints them, and persists them
under ``benchmarks/results/`` so the run is auditable after the fact
(pytest captures stdout by default).

Workload sizes are scaled down from the paper's (a 4 GB rootfs and
256 MB dd sweeps are pointless against a pure-Python AES): the scale
factor is configurable through ``REVELIO_BENCH_SCALE`` (default 1/32,
i.e. a paper-84 MB volume becomes ~2.6 MB).  Shapes — overhead ratios,
who dominates, crossovers — are scale-invariant for these workloads
and are what EXPERIMENTS.md compares.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Optional, Sequence

DEFAULT_SCALE = 1.0 / 32.0


def bench_scale() -> float:
    """The configured workload scale factor relative to the paper."""
    raw = os.environ.get("REVELIO_BENCH_SCALE", "")
    if not raw:
        return DEFAULT_SCALE
    value = float(raw)
    if value <= 0:
        raise ValueError("REVELIO_BENCH_SCALE must be positive")
    return value


def scaled_blocks(paper_bytes: int, block_size: int = 4096,
                  minimum_blocks: int = 8) -> int:
    """Scale a paper-reported byte size to a block count for this run."""
    scaled = int(paper_bytes * bench_scale())
    return max(minimum_blocks, scaled // block_size)


def results_dir() -> Path:
    """Directory benchmark reports are persisted to."""
    directory = Path(os.environ.get("REVELIO_RESULTS_DIR", "benchmarks/results"))
    directory.mkdir(parents=True, exist_ok=True)
    return directory


class Reporter:
    """Accumulates a paper-vs-measured table for one experiment."""

    def __init__(self, experiment_id: str, title: str):
        self.experiment_id = experiment_id
        self.title = title
        self._lines: List[str] = []

    def line(self, text: str = "") -> None:
        """Append a raw report line."""
        self._lines.append(text)

    def header(self, columns: Sequence[str], widths: Sequence[int]) -> None:
        """Append a column header row."""
        row = "  ".join(f"{c:<{w}}" for c, w in zip(columns, widths))
        self.line(row)
        self.line("  ".join("-" * w for w in widths))

    def row(self, cells: Sequence[object], widths: Sequence[int]) -> None:
        """Append one table row."""
        self.line("  ".join(f"{str(c):<{w}}" for c, w in zip(cells, widths)))

    def compare(
        self,
        label: str,
        paper: Optional[float],
        measured: float,
        unit: str = "ms",
        note: str = "",
    ) -> None:
        """Append a paper-vs-measured comparison line."""
        paper_text = f"{paper:10.1f}" if paper is not None else " " * 10
        self.line(
            f"  {label:<34s} paper: {paper_text} {unit:<3s} "
            f"measured: {measured:10.1f} {unit:<3s} {note}"
        )

    def finish(self) -> Path:
        """Print and persist the report; returns the file path."""
        banner = "=" * 78
        body = "\n".join(
            [banner, f"{self.experiment_id}: {self.title}", banner, *self._lines, ""]
        )
        print("\n" + body)
        path = results_dir() / f"{self.experiment_id}.txt"
        path.write_text(body)
        return path
