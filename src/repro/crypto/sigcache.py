"""Memoized signature verification — the cross-layer fast path.

Revelio re-verifies the same signatures constantly: every page load
re-walks the VCEK -> ASK -> ARK chain, every TLS connection re-validates
the same site certificate, every boundary-node response carries the same
subnet key.  A verification is a pure function of the key, the message
digest, and the signature bytes, so the result can be memoized — a
bounded LRU keyed by the full ``(key fingerprint, hash, digest,
signature)`` tuple.

Because the key binds *all* inputs, a cache hit is exactly as strong as
a fresh verification: any change to the key, the message, the hash
algorithm, or the signature bytes forms a different key and misses.
Only the mathematical check is cached — expiry, revocation, hostname,
and policy checks are context-dependent and always run fresh (DESIGN.md
invariant 10).

Hit/miss counters are exported through :mod:`repro.attest.trace`
snapshots, the CLI pipeline summary, and ``bench_crypto``.
"""

from __future__ import annotations

from collections import OrderedDict
from functools import lru_cache
from typing import Callable, Optional, Tuple

from .hashes import get_hash

_MISSING = object()


@lru_cache(maxsize=1024)
def _key_fingerprint(key) -> bytes:
    """The key's own fingerprint, memoized per key object (fingerprints
    hash the canonical encoding, which is not free to recompute)."""
    return key.fingerprint()


#: Optional verdict oracle consulted before fresh EC math: the verify
#: farm (:mod:`repro.attest.farm`) precomputes batch verdicts and
#: installs itself here so pipeline steps consume them through the
#: normal ``cached_verify`` seam.  The oracle is consulted even when
#: the memoization cache is ablated — its verdicts come from crypto
#: performed (and priced) at batch-flush time, not from memo-across-time
#: — and a served verdict counts in :func:`oracle_hits`, never in the
#: hit/miss counters.
_oracle = None
_oracle_hits = 0


def set_oracle(oracle) -> None:
    """Install (or clear, with None) the process-wide verdict oracle.

    *oracle* is called with the cache key tuple ``(key fingerprint,
    hash name, digest, signature)`` and returns a verdict or None.
    """
    global _oracle
    _oracle = oracle


def get_oracle():
    """The installed verdict oracle (None when absent)."""
    return _oracle


def oracle_hits() -> int:
    """Verdicts served by the oracle — cheap to sample before/after an
    operation, like :func:`counters`."""
    return _oracle_hits


class SignatureVerificationCache:
    """A bounded LRU of verification outcomes.

    Both True and False results are cached: the outcome is deterministic
    in the cache key, so replaying a known-bad signature is a (cheap)
    hit that still fails.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple[bytes, str, bytes, bytes], bool]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        #: When False every lookup computes fresh (counted as a miss)
        #: and nothing is stored — used by benchmarks to ablate the
        #: cache without swapping call sites.
        self.enabled = True

    def verify(
        self,
        key,
        message: bytes,
        signature: bytes,
        hash_name: str = "sha256",
        verifier: Optional[Callable[[bytes, bytes, str], bool]] = None,
    ) -> bool:
        """Verify through the cache.

        *key* must expose ``fingerprint()`` and (unless *verifier* is
        given) ``verify(message, signature, hash_name)``; *verifier*
        lets wrapper keys delegate the fresh check without recursing
        into the cache.  A wrapper :class:`~repro.crypto.keys.PublicKey`
        passed without *verifier* is unwrapped to its ``inner`` key for
        the fresh check, for the same reason — its own ``verify``
        already goes through this cache.
        """
        global _oracle_hits
        if not self.enabled:
            if _oracle is not None:
                cache_key = (
                    _key_fingerprint(key),
                    hash_name,
                    get_hash(hash_name)(message),
                    bytes(signature),
                )
                served = _oracle(cache_key)
                if served is not None:
                    _oracle_hits += 1
                    return bool(served)
            self.misses += 1
            if verifier is None:
                verifier = getattr(key, "inner", key).verify
            return bool(verifier(message, signature, hash_name))
        cache_key = (
            _key_fingerprint(key),
            hash_name,
            get_hash(hash_name)(message),
            bytes(signature),
        )
        cached = self._entries.get(cache_key, _MISSING)
        if cached is not _MISSING:
            self.hits += 1
            self._entries.move_to_end(cache_key)
            return cached
        if _oracle is not None:
            served = _oracle(cache_key)
            if served is not None:
                _oracle_hits += 1
                fresh = bool(served)
                self._entries[cache_key] = fresh
                if len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                return fresh
        self.misses += 1
        if verifier is None:
            verifier = getattr(key, "inner", key).verify
        fresh = bool(verifier(message, signature, hash_name))
        self._entries[cache_key] = fresh
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return fresh

    def __len__(self) -> int:
        return len(self._entries)

    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when idle)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> dict:
        """Plain-data counters for trace snapshots and benchmarks."""
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate(),
        }


_default_cache = SignatureVerificationCache()


def get_cache() -> SignatureVerificationCache:
    """The process-wide verification cache."""
    return _default_cache


def reset_cache(capacity: int = 4096) -> SignatureVerificationCache:
    """Install (and return) a fresh process-wide cache."""
    global _default_cache
    _default_cache = SignatureVerificationCache(capacity)
    return _default_cache


def set_enabled(enabled: bool) -> None:
    """Enable or disable the process-wide cache (benchmark ablation)."""
    _default_cache.enabled = bool(enabled)


def counters() -> Tuple[int, int]:
    """(hits, misses) of the process-wide cache — cheap to sample
    before/after an operation to attribute cache traffic to it."""
    return _default_cache.hits, _default_cache.misses


def cached_verify(
    key,
    message: bytes,
    signature: bytes,
    hash_name: str = "sha256",
    verifier: Optional[Callable[[bytes, bytes, str], bool]] = None,
) -> bool:
    """Module-level convenience over :func:`get_cache`'s ``verify``."""
    return _default_cache.verify(key, message, signature, hash_name, verifier)
