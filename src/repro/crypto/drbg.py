"""Deterministic random bit generation.

The whole simulation must be reproducible (requirement F5 makes build
determinism a first-class property, and deterministic tests need
deterministic key generation), so every component that needs randomness
draws it from an :class:`HmacDrbg` instead of ``os.urandom``.

:class:`HmacDrbg` follows the HMAC_DRBG construction of NIST SP 800-90A
(instantiate / reseed / generate with the update function), using
HMAC-SHA-256.  Callers that want real entropy can seed from
``os.urandom`` via :func:`system_drbg`.
"""

from __future__ import annotations

import hmac
import os
import threading
from hashlib import sha256
from typing import Optional

_DIGEST_SIZE = 32
_RESEED_INTERVAL = 1 << 48


class HmacDrbg:
    """NIST SP 800-90A HMAC_DRBG over SHA-256.

    Parameters
    ----------
    seed:
        Entropy input concatenated with any nonce/personalisation string.
        The same seed always yields the same output stream.
    """

    def __init__(self, seed: bytes):
        if not isinstance(seed, (bytes, bytearray)):
            raise TypeError("seed must be bytes")
        self._key = b"\x00" * _DIGEST_SIZE
        self._value = b"\x01" * _DIGEST_SIZE
        self._lock = threading.Lock()
        self._reseed_counter = 1
        self._update(bytes(seed))

    def _hmac(self, data: bytes) -> bytes:
        return hmac.new(self._key, data, sha256).digest()

    def _update(self, provided: Optional[bytes] = None) -> None:
        self._key = self._hmac(self._value + b"\x00" + (provided or b""))
        self._value = self._hmac(self._value)
        if provided:
            self._key = self._hmac(self._value + b"\x01" + provided)
            self._value = self._hmac(self._value)

    def reseed(self, entropy: bytes) -> None:
        """Mix fresh entropy into the generator state."""
        with self._lock:
            self._update(entropy)
            self._reseed_counter = 1

    def generate(self, num_bytes: int) -> bytes:
        """Return *num_bytes* of pseudo-random output."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        with self._lock:
            if self._reseed_counter > _RESEED_INTERVAL:
                raise RuntimeError("DRBG reseed required")
            chunks = []
            produced = 0
            while produced < num_bytes:
                self._value = self._hmac(self._value)
                chunks.append(self._value)
                produced += _DIGEST_SIZE
            self._update()
            self._reseed_counter += 1
            return b"".join(chunks)[:num_bytes]

    def randint_below(self, bound: int) -> int:
        """Return a uniform integer in ``[0, bound)`` via rejection sampling."""
        if bound <= 0:
            raise ValueError("bound must be positive")
        num_bytes = (bound.bit_length() + 7) // 8
        # Rejection sampling keeps the distribution exactly uniform.
        while True:
            candidate = int.from_bytes(self.generate(num_bytes), "big")
            candidate >>= num_bytes * 8 - bound.bit_length()
            if candidate < bound:
                return candidate

    def fork(self, label: bytes) -> "HmacDrbg":
        """Derive an independent child generator bound to *label*.

        Forking lets one master seed drive many components without their
        output streams interfering with each other.
        """
        return HmacDrbg(self.generate(_DIGEST_SIZE) + label)


def system_drbg() -> HmacDrbg:
    """Return a DRBG seeded from the operating system entropy pool."""
    return HmacDrbg(os.urandom(48))
