"""RSA from scratch: Miller-Rabin prime generation, PKCS#1-v1.5-style
signatures and OAEP-style encryption.

RSA appears in the reproduction because real-world web PKI roots (and the
Let's Encrypt chain the paper's prototype relies on) are predominantly
RSA; our simulated CA hierarchy supports both RSA and ECDSA issuers so
the certificate-validation paths exercise both.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from .drbg import HmacDrbg

_PUBLIC_EXPONENT = 65537

# Deterministic Miller-Rabin bases are provably sufficient below 3.3e24;
# above that we add DRBG-chosen bases for the standard 2^-128 error bound.
_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
    149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
]


class RsaError(ValueError):
    """Raised on malformed RSA inputs (bad padding, wrong sizes)."""


def _miller_rabin(candidate: int, rounds: int, rng: HmacDrbg) -> bool:
    if candidate < 2:
        return False
    for prime in _SMALL_PRIMES:
        if candidate % prime == 0:
            return candidate == prime
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        base = 2 + rng.randint_below(candidate - 3)
        x = pow(base, d, candidate)
        if x in (1, candidate - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % candidate
            if x == candidate - 1:
                break
        else:
            return False
    return True


def _generate_prime(bits: int, rng: HmacDrbg) -> int:
    if bits < 16:
        raise RsaError("prime size too small")
    while True:
        candidate = int.from_bytes(rng.generate((bits + 7) // 8), "big")
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1
        candidate &= (1 << bits) - 1
        if _miller_rabin(candidate, 40, rng):
            return candidate


def _mgf1(seed: bytes, length: int) -> bytes:
    output = b""
    counter = 0
    while len(output) < length:
        output += hashlib.sha256(seed + counter.to_bytes(4, "big")).digest()
        counter += 1
    return output[:length]


@dataclass(frozen=True)
class RsaPublicKey:
    """RSA public key (n, e)."""

    n: int
    e: int

    @property
    def size(self) -> int:
        """Modulus size in bytes."""
        return (self.n.bit_length() + 7) // 8

    def encode(self) -> bytes:
        """Serialise to canonical TLV bytes."""
        n_bytes = self.n.to_bytes(self.size, "big")
        return len(n_bytes).to_bytes(4, "big") + n_bytes + self.e.to_bytes(4, "big")

    @classmethod
    def decode(cls, data: bytes) -> "RsaPublicKey":
        """Parse an instance back out of canonical TLV bytes."""
        n_len = int.from_bytes(data[:4], "big")
        n = int.from_bytes(data[4 : 4 + n_len], "big")
        e = int.from_bytes(data[4 + n_len :], "big")
        return cls(n, e)

    def fingerprint(self) -> bytes:
        """SHA-256 fingerprint over the canonical encoding."""
        return hashlib.sha256(self.encode()).digest()

    def verify(self, message: bytes, signature: bytes, hash_name: str = "sha256") -> bool:
        """Verify a PKCS#1-v1.5-style signature over H(message)."""
        if len(signature) != self.size:
            return False
        value = pow(int.from_bytes(signature, "big"), self.e, self.n)
        try:
            expected = _pkcs1_encode(message, self.size, hash_name)
        except RsaError:
            return False
        return value == int.from_bytes(expected, "big")

    def encrypt(self, plaintext: bytes, rng: HmacDrbg) -> bytes:
        """OAEP-style encryption (SHA-256 / MGF1)."""
        k = self.size
        h_len = 32
        if len(plaintext) > k - 2 * h_len - 2:
            raise RsaError("plaintext too long for modulus")
        l_hash = hashlib.sha256(b"").digest()
        padding = b"\x00" * (k - len(plaintext) - 2 * h_len - 2)
        data_block = l_hash + padding + b"\x01" + plaintext
        seed = rng.generate(h_len)
        masked_db = _xor(data_block, _mgf1(seed, len(data_block)))
        masked_seed = _xor(seed, _mgf1(masked_db, h_len))
        em = b"\x00" + masked_seed + masked_db
        return pow(int.from_bytes(em, "big"), self.e, self.n).to_bytes(k, "big")


@dataclass(frozen=True)
class RsaPrivateKey:
    """RSA private key with CRT parameters for fast exponentiation."""

    n: int
    e: int
    d: int
    p: int
    q: int

    @classmethod
    def generate(cls, bits: int, rng: HmacDrbg) -> "RsaPrivateKey":
        """Generate an RSA key of *bits* modulus size."""
        if bits < 512:
            raise RsaError("modulus below 512 bits is not supported")
        while True:
            p = _generate_prime(bits // 2, rng)
            q = _generate_prime(bits - bits // 2, rng)
            if p == q:
                continue
            n = p * q
            phi = (p - 1) * (q - 1)
            if phi % _PUBLIC_EXPONENT == 0:
                continue
            d = pow(_PUBLIC_EXPONENT, -1, phi)
            return cls(n=n, e=_PUBLIC_EXPONENT, d=d, p=p, q=q)

    def public_key(self) -> RsaPublicKey:
        """The corresponding public key."""
        return RsaPublicKey(self.n, self.e)

    @property
    def size(self) -> int:
        """Modulus size in bytes."""
        return (self.n.bit_length() + 7) // 8

    def _private_op(self, value: int) -> int:
        # CRT: roughly 4x faster than a straight pow(value, d, n).
        dp = self.d % (self.p - 1)
        dq = self.d % (self.q - 1)
        q_inv = pow(self.q, -1, self.p)
        m1 = pow(value % self.p, dp, self.p)
        m2 = pow(value % self.q, dq, self.q)
        h = (q_inv * (m1 - m2)) % self.p
        return m2 + h * self.q

    def sign(self, message: bytes, hash_name: str = "sha256") -> bytes:
        """Sign a message; returns the signature bytes."""
        em = _pkcs1_encode(message, self.size, hash_name)
        return self._private_op(int.from_bytes(em, "big")).to_bytes(self.size, "big")

    def decrypt(self, ciphertext: bytes) -> bytes:
        """Invert :meth:`RsaPublicKey.encrypt`."""
        k = self.size
        h_len = 32
        if len(ciphertext) != k:
            raise RsaError("ciphertext has wrong length")
        em = self._private_op(int.from_bytes(ciphertext, "big")).to_bytes(k, "big")
        if em[0] != 0:
            raise RsaError("decryption error")
        masked_seed = em[1 : 1 + h_len]
        masked_db = em[1 + h_len :]
        seed = _xor(masked_seed, _mgf1(masked_db, h_len))
        data_block = _xor(masked_db, _mgf1(seed, len(masked_db)))
        l_hash = hashlib.sha256(b"").digest()
        if data_block[:h_len] != l_hash:
            raise RsaError("decryption error")
        separator = data_block.find(b"\x01", h_len)
        if separator < 0 or any(data_block[h_len:separator]):
            raise RsaError("decryption error")
        return data_block[separator + 1 :]


_DIGEST_PREFIXES = {
    "sha256": b"\x30\x31\x30\x0d\x06\x09\x60\x86\x48\x01\x65\x03\x04\x02\x01\x05\x00\x04\x20",
    "sha384": b"\x30\x41\x30\x0d\x06\x09\x60\x86\x48\x01\x65\x03\x04\x02\x02\x05\x00\x04\x30",
}


def _pkcs1_encode(message: bytes, em_len: int, hash_name: str) -> bytes:
    try:
        prefix = _DIGEST_PREFIXES[hash_name]
    except KeyError:
        raise RsaError(f"unsupported hash {hash_name!r} for RSA") from None
    digest = getattr(hashlib, hash_name)(message).digest()
    t = prefix + digest
    if em_len < len(t) + 11:
        raise RsaError("modulus too small for digest")
    padding = b"\xff" * (em_len - len(t) - 3)
    return b"\x00\x01" + padding + b"\x00" + t


def _xor(left: bytes, right: bytes) -> bytes:
    return bytes(a ^ b for a, b in zip(left, right))
