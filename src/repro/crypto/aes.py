"""AES-128/192/256 implemented from scratch, batch-vectorised with numpy.

The dm-crypt substrate (``repro.storage.dm_crypt``) encrypts whole disk
volumes, so single-block Python AES would be hopeless.  This module
implements the Rijndael cipher exactly (the S-box and round constants are
*derived*, not pasted, and validated against FIPS-197 vectors in the test
suite) but applies every round to an ``(n, 16)`` uint8 array of blocks at
once, which turns the per-block cost into a handful of numpy table
lookups and XORs.
"""

from __future__ import annotations

import numpy as np


class AesError(ValueError):
    """Raised for invalid key or block sizes."""


def _gf_mul(a: int, b: int) -> int:
    """Multiply in GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        high = a & 0x80
        a = (a << 1) & 0xFF
        if high:
            a ^= 0x1B
        b >>= 1
    return result


def _build_sbox() -> "tuple[np.ndarray, np.ndarray]":
    # Multiplicative inverses via brute force (the table is tiny),
    # followed by the affine transformation of FIPS-197 section 5.1.1.
    inverse = [0] * 256
    for x in range(1, 256):
        for y in range(1, 256):
            if _gf_mul(x, y) == 1:
                inverse[x] = y
                break
    sbox = np.zeros(256, dtype=np.uint8)
    for x in range(256):
        b = inverse[x]
        result = 0
        for bit in range(8):
            value = (
                (b >> bit)
                ^ (b >> ((bit + 4) % 8))
                ^ (b >> ((bit + 5) % 8))
                ^ (b >> ((bit + 6) % 8))
                ^ (b >> ((bit + 7) % 8))
                ^ (0x63 >> bit)
            ) & 1
            result |= value << bit
        sbox[x] = result
    inv_sbox = np.zeros(256, dtype=np.uint8)
    inv_sbox[sbox] = np.arange(256, dtype=np.uint8)
    return sbox, inv_sbox


SBOX, INV_SBOX = _build_sbox()

_MUL = {
    factor: np.array([_gf_mul(x, factor) for x in range(256)], dtype=np.uint8)
    for factor in (2, 3, 9, 11, 13, 14)
}

# Flat state layout: index = 4*column + row (matches input byte order).
_SHIFT_ROWS = np.array(
    [4 * ((i // 4 + i % 4) % 4) + i % 4 for i in range(16)], dtype=np.intp
)
_INV_SHIFT_ROWS = np.array(
    [4 * ((i // 4 - i % 4) % 4) + i % 4 for i in range(16)], dtype=np.intp
)

_RCON = [0x01]
while len(_RCON) < 14:
    _RCON.append(_gf_mul(_RCON[-1], 2))


def _expand_key(key: bytes) -> np.ndarray:
    """FIPS-197 key expansion -> array of (rounds+1, 16) round keys."""
    nk = len(key) // 4
    rounds = {4: 10, 6: 12, 8: 14}[nk]
    words = [list(key[4 * i : 4 * i + 4]) for i in range(nk)]
    for i in range(nk, 4 * (rounds + 1)):
        temp = list(words[i - 1])
        if i % nk == 0:
            temp = temp[1:] + temp[:1]
            temp = [int(SBOX[b]) for b in temp]
            temp[0] ^= _RCON[i // nk - 1]
        elif nk > 6 and i % nk == 4:
            temp = [int(SBOX[b]) for b in temp]
        words.append([words[i - nk][j] ^ temp[j] for j in range(4)])
    flat = [b for word in words for b in word]
    return np.array(flat, dtype=np.uint8).reshape(rounds + 1, 16)


def _mix_columns(state: np.ndarray) -> np.ndarray:
    cols = state.reshape(-1, 4, 4)  # (n, column, row)
    a0, a1, a2, a3 = cols[:, :, 0], cols[:, :, 1], cols[:, :, 2], cols[:, :, 3]
    m2, m3 = _MUL[2], _MUL[3]
    out = np.empty_like(cols)
    out[:, :, 0] = m2[a0] ^ m3[a1] ^ a2 ^ a3
    out[:, :, 1] = a0 ^ m2[a1] ^ m3[a2] ^ a3
    out[:, :, 2] = a0 ^ a1 ^ m2[a2] ^ m3[a3]
    out[:, :, 3] = m3[a0] ^ a1 ^ a2 ^ m2[a3]
    return out.reshape(-1, 16)


def _inv_mix_columns(state: np.ndarray) -> np.ndarray:
    cols = state.reshape(-1, 4, 4)
    a0, a1, a2, a3 = cols[:, :, 0], cols[:, :, 1], cols[:, :, 2], cols[:, :, 3]
    m9, m11, m13, m14 = _MUL[9], _MUL[11], _MUL[13], _MUL[14]
    out = np.empty_like(cols)
    out[:, :, 0] = m14[a0] ^ m11[a1] ^ m13[a2] ^ m9[a3]
    out[:, :, 1] = m9[a0] ^ m14[a1] ^ m11[a2] ^ m13[a3]
    out[:, :, 2] = m13[a0] ^ m9[a1] ^ m14[a2] ^ m11[a3]
    out[:, :, 3] = m11[a0] ^ m13[a1] ^ m9[a2] ^ m14[a3]
    return out.reshape(-1, 16)


class AES:
    """The AES block cipher for a fixed key.

    ``encrypt_blocks``/``decrypt_blocks`` operate on any number of
    16-byte blocks at once (ECB permutation); chaining modes live in
    :mod:`repro.crypto.modes`.
    """

    def __init__(self, key: bytes):
        if len(key) not in (16, 24, 32):
            raise AesError(f"invalid AES key size {len(key)}")
        self._round_keys = _expand_key(key)
        self._rounds = self._round_keys.shape[0] - 1
        self.key_size = len(key)

    def encrypt_blocks(self, data: bytes) -> bytes:
        """Encrypt ``len(data)/16`` blocks independently (raw ECB)."""
        state = self._to_state(data)
        state ^= self._round_keys[0]
        for round_index in range(1, self._rounds):
            state = SBOX[state]
            state = state[:, _SHIFT_ROWS]
            state = _mix_columns(state)
            state ^= self._round_keys[round_index]
        state = SBOX[state]
        state = state[:, _SHIFT_ROWS]
        state ^= self._round_keys[self._rounds]
        return state.tobytes()

    def decrypt_blocks(self, data: bytes) -> bytes:
        """Invert :meth:`encrypt_blocks`."""
        state = self._to_state(data)
        state ^= self._round_keys[self._rounds]
        for round_index in range(self._rounds - 1, 0, -1):
            state = state[:, _INV_SHIFT_ROWS]
            state = INV_SBOX[state]
            state ^= self._round_keys[round_index]
            state = _inv_mix_columns(state)
        state = state[:, _INV_SHIFT_ROWS]
        state = INV_SBOX[state]
        state ^= self._round_keys[0]
        return state.tobytes()

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt a single 16-byte block."""
        if len(block) != 16:
            raise AesError("block must be 16 bytes")
        return self.encrypt_blocks(block)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt a single 16-byte block."""
        if len(block) != 16:
            raise AesError("block must be 16 bytes")
        return self.decrypt_blocks(block)

    def encrypt_state(self, state: np.ndarray) -> np.ndarray:
        """Encrypt an (n, 16) uint8 array in place-friendly numpy form."""
        state = state ^ self._round_keys[0]
        for round_index in range(1, self._rounds):
            state = SBOX[state]
            state = state[:, _SHIFT_ROWS]
            state = _mix_columns(state)
            state ^= self._round_keys[round_index]
        state = SBOX[state]
        state = state[:, _SHIFT_ROWS]
        state ^= self._round_keys[self._rounds]
        return state

    @staticmethod
    def _to_state(data: bytes) -> np.ndarray:
        if len(data) % 16:
            raise AesError("data length must be a multiple of 16")
        return np.frombuffer(data, dtype=np.uint8).reshape(-1, 16).copy()
