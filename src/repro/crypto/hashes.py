"""Hash algorithm registry.

Central place to name hash algorithms so that on-disk formats (dm-verity
superblocks, certificates, attestation reports) can record which algorithm
they used and verifiers can look it up again.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
from typing import Callable, Dict

HashFn = Callable[[bytes], bytes]


def sha256(data: bytes) -> bytes:
    """SHA-256 digest of *data* (32 bytes)."""
    return hashlib.sha256(data).digest()


def sha384(data: bytes) -> bytes:
    """SHA-384 digest of *data* (48 bytes)."""
    return hashlib.sha384(data).digest()


def sha512(data: bytes) -> bytes:
    """SHA-512 digest of *data* (64 bytes)."""
    return hashlib.sha512(data).digest()


_REGISTRY: Dict[str, HashFn] = {
    "sha256": sha256,
    "sha384": sha384,
    "sha512": sha512,
}

_DIGEST_SIZES: Dict[str, int] = {
    "sha256": 32,
    "sha384": 48,
    "sha512": 64,
}


class UnknownHashError(ValueError):
    """Raised when an unregistered hash algorithm name is requested."""


def get_hash(name: str) -> HashFn:
    """Return the digest function registered under *name*."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownHashError(f"unknown hash algorithm {name!r}") from None


def digest_size(name: str) -> int:
    """Return the digest size in bytes of algorithm *name*."""
    try:
        return _DIGEST_SIZES[name]
    except KeyError:
        raise UnknownHashError(f"unknown hash algorithm {name!r}") from None


def hmac_digest(name: str, key: bytes, data: bytes) -> bytes:
    """HMAC of *data* under *key* using hash algorithm *name*."""
    if name not in _REGISTRY:
        raise UnknownHashError(f"unknown hash algorithm {name!r}")
    return _hmac.new(key, data, name).digest()
