"""Block cipher modes of operation: XTS-plain64, CTR, and an AEAD.

``XtsCipher`` is the construction dm-crypt uses as ``aes-xts-plain64``
(the exact cipher spec the paper configures in section 6.3.1): each
sector's tweak is the little-endian sector number encrypted under the
second key, advancing by multiplication with alpha in GF(2^128) per
16-byte block.  Tweak chains are vectorised across sectors, so the cost
of encrypting a volume is a fixed number of numpy passes regardless of
volume size.

``AeadCipher`` is an encrypt-then-MAC AEAD (AES-CTR + HMAC-SHA-256) used
for sealed storage payloads and TLS records.
"""

from __future__ import annotations

import hmac as _hmac
from hashlib import sha256

import numpy as np

from .aes import AES, AesError

_XTS_POLY = 0x87  # x^128 + x^7 + x^2 + x + 1 feedback byte


class XtsCipher:
    """AES-XTS with plain64 sector tweaks (dm-crypt compatible shape).

    Parameters
    ----------
    key:
        Concatenation of the data key and the tweak key; 32 bytes for
        AES-128-XTS or 64 bytes for AES-256-XTS.
    sector_size:
        Bytes per sector; must be a multiple of 16.  dm-crypt uses 512 or
        4096.
    """

    def __init__(self, key: bytes, sector_size: int = 4096):
        if len(key) not in (32, 64):
            raise AesError("XTS key must be 32 or 64 bytes (two AES keys)")
        if sector_size % 16 or sector_size <= 0:
            raise AesError("sector size must be a positive multiple of 16")
        half = len(key) // 2
        if key[:half] == key[half:]:
            raise AesError("XTS data and tweak keys must differ")
        self._data_cipher = AES(key[:half])
        self._tweak_cipher = AES(key[half:])
        self.sector_size = sector_size
        self._blocks_per_sector = sector_size // 16

    def _tweaks(self, first_sector: int, num_sectors: int) -> np.ndarray:
        """Return (num_sectors * blocks_per_sector, 16) tweak array."""
        sectors = np.arange(first_sector, first_sector + num_sectors, dtype=np.uint64)
        seed = np.zeros((num_sectors, 16), dtype=np.uint8)
        seed[:, :8] = sectors.astype("<u8").view(np.uint8).reshape(num_sectors, 8)
        initial = self._tweak_cipher.encrypt_state(seed)
        # Interpret each tweak as two little-endian 64-bit limbs and walk
        # the alpha-multiplication chain once per block position, for all
        # sectors simultaneously.
        limbs = np.ascontiguousarray(initial).view("<u8").reshape(num_sectors, 2)
        lo = limbs[:, 0].copy()
        hi = limbs[:, 1].copy()
        bps = self._blocks_per_sector
        out = np.empty((num_sectors, bps, 2), dtype="<u8")
        out[:, 0, 0] = lo
        out[:, 0, 1] = hi
        for block_index in range(1, bps):
            carry = hi >> np.uint64(63)
            hi = (hi << np.uint64(1)) | (lo >> np.uint64(63))
            lo = (lo << np.uint64(1)) ^ (carry * np.uint64(_XTS_POLY))
            out[:, block_index, 0] = lo
            out[:, block_index, 1] = hi
        return out.view(np.uint8).reshape(num_sectors * bps, 16)

    def _check(self, data: bytes, first_sector: int) -> int:
        if first_sector < 0:
            raise AesError("sector index must be non-negative")
        if len(data) % self.sector_size:
            raise AesError(
                f"data length {len(data)} is not a multiple of the "
                f"sector size {self.sector_size}"
            )
        return len(data) // self.sector_size

    def encrypt(self, plaintext: bytes, first_sector: int = 0) -> bytes:
        """Encrypt whole sectors starting at *first_sector*."""
        num_sectors = self._check(plaintext, first_sector)
        if num_sectors == 0:
            return b""
        tweaks = self._tweaks(first_sector, num_sectors)
        state = np.frombuffer(plaintext, dtype=np.uint8).reshape(-1, 16)
        state = state ^ tweaks
        state = self._data_cipher.encrypt_state(state)
        state ^= tweaks
        return state.tobytes()

    def decrypt(self, ciphertext: bytes, first_sector: int = 0) -> bytes:
        """Invert :meth:`encrypt` for the same sector range."""
        num_sectors = self._check(ciphertext, first_sector)
        if num_sectors == 0:
            return b""
        tweaks = self._tweaks(first_sector, num_sectors)
        data = (np.frombuffer(ciphertext, dtype=np.uint8).reshape(-1, 16) ^ tweaks)
        plain = np.frombuffer(
            self._data_cipher.decrypt_blocks(data.tobytes()), dtype=np.uint8
        ).reshape(-1, 16)
        return (plain ^ tweaks).tobytes()


class CtrCipher:
    """AES in counter mode with a 128-bit big-endian counter block."""

    def __init__(self, key: bytes):
        self._cipher = AES(key)

    def _keystream(self, initial_counter: bytes, length: int) -> bytes:
        if len(initial_counter) != 16:
            raise AesError("counter block must be 16 bytes")
        num_blocks = (length + 15) // 16
        base = int.from_bytes(initial_counter, "big")
        counters = b"".join(
            ((base + i) % (1 << 128)).to_bytes(16, "big") for i in range(num_blocks)
        )
        return self._cipher.encrypt_blocks(counters)[:length]

    def process(self, data: bytes, initial_counter: bytes) -> bytes:
        """Encrypt or decrypt (CTR is an involution) *data*."""
        stream = self._keystream(initial_counter, len(data))
        return (
            np.frombuffer(data, dtype=np.uint8)
            ^ np.frombuffer(stream, dtype=np.uint8)
        ).tobytes() if data else b""


class AeadError(ValueError):
    """Raised when AEAD authentication fails."""


class AeadCipher:
    """Encrypt-then-MAC AEAD: AES-CTR for confidentiality, HMAC-SHA-256
    over (aad, nonce, ciphertext) for integrity.

    The 32-byte key is split by HKDF-style labelled hashing into an
    encryption key and a MAC key so the two uses never share key bits.
    """

    TAG_SIZE = 32
    NONCE_SIZE = 12

    def __init__(self, key: bytes):
        if len(key) != 32:
            raise AesError("AEAD key must be 32 bytes")
        self._enc_key = sha256(b"aead-enc" + key).digest()
        self._mac_key = sha256(b"aead-mac" + key).digest()
        self._ctr = CtrCipher(self._enc_key)

    def _counter_block(self, nonce: bytes) -> bytes:
        if len(nonce) != self.NONCE_SIZE:
            raise AesError(f"nonce must be {self.NONCE_SIZE} bytes")
        return nonce + b"\x00\x00\x00\x01"

    def _tag(self, nonce: bytes, ciphertext: bytes, aad: bytes) -> bytes:
        mac = _hmac.new(self._mac_key, digestmod=sha256)
        mac.update(len(aad).to_bytes(8, "big"))
        mac.update(aad)
        mac.update(nonce)
        mac.update(ciphertext)
        return mac.digest()

    def seal(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Return ciphertext || tag."""
        ciphertext = self._ctr.process(plaintext, self._counter_block(nonce))
        return ciphertext + self._tag(nonce, ciphertext, aad)

    def open(self, nonce: bytes, sealed: bytes, aad: bytes = b"") -> bytes:
        """Verify and decrypt; raises :class:`AeadError` on any tampering."""
        if len(sealed) < self.TAG_SIZE:
            raise AeadError("sealed message too short")
        ciphertext, tag = sealed[: -self.TAG_SIZE], sealed[-self.TAG_SIZE :]
        expected = self._tag(nonce, ciphertext, aad)
        if not _hmac.compare_digest(tag, expected):
            raise AeadError("authentication tag mismatch")
        return self._ctr.process(ciphertext, self._counter_block(nonce))
