"""ECDSA signatures with RFC 6979 deterministic nonces, plus ECDH.

Deterministic nonces make the whole reproduction bit-reproducible and
remove the classic nonce-reuse foot-gun.  Signatures are encoded as the
fixed-width concatenation ``r || s`` (each ``curve.coordinate_size``
bytes), which is what the SEV-SNP attestation report format uses as well.

Verification runs on the fast-path engine in :mod:`repro.crypto.ec`:
``u1*G + u2*Q`` is a single Strauss–Shamir joint multiplication (or two
fixed-base table lookups once the public key is hot in the per-key
precompute cache) instead of two independent double-and-add walks.  The
old two-multiplication path survives as :func:`verify_rs_reference`, the
oracle the property tests and ``benchmarks/bench_crypto.py`` compare
against.
"""

from __future__ import annotations

import hashlib
import hmac
import warnings
from dataclasses import dataclass
from typing import Optional

from .drbg import HmacDrbg
from . import batch, ec
from .ec import Curve, Point, get_curve
from .hashes import digest_size, get_hash


class SignatureError(ValueError):
    """Raised when signature bytes are malformed (verification returns
    False for well-formed-but-wrong signatures instead)."""


class CurveHashMismatchWarning(UserWarning):
    """A hash narrower than the curve order was used to sign or verify.

    AMD signs SEV-SNP reports on P-384 with SHA-384; pairing a P-384 key
    with the default ``sha256`` silently truncates the security level
    and — when the signer used the matching hash — makes verification
    return False with no diagnostic.  The mismatch is legal (both sides
    using the same short hash still round-trips), so it warns instead of
    raising.
    """


def _warn_on_hash_mismatch(curve: Curve, hash_name: str, operation: str) -> None:
    if digest_size(hash_name) * 8 < curve.n.bit_length():
        warnings.warn(
            f"{operation} on {curve.name} with {hash_name} truncates the "
            f"digest below the curve order; use a >= {curve.n.bit_length()}"
            f"-bit hash (AMD uses sha384 for P-384)",
            CurveHashMismatchWarning,
            stacklevel=3,
        )


@dataclass(frozen=True)
class EcdsaPublicKey:
    """An ECDSA/ECDH public key: a validated point on a named curve."""

    point: Point

    @property
    def curve(self) -> Curve:
        """The curve this key lives on."""
        return self.point.curve

    def encode(self) -> bytes:
        """Serialise as curve-name-length-prefixed SEC1 point."""
        name = self.curve.name.encode("ascii")
        return bytes([len(name)]) + name + self.point.encode()

    @classmethod
    def decode(cls, data: bytes) -> "EcdsaPublicKey":
        """Parse an instance back out of canonical TLV bytes."""
        if not data:
            raise SignatureError("empty public key encoding")
        name_len = data[0]
        curve = get_curve(data[1 : 1 + name_len].decode("ascii"))
        return cls(Point.decode(curve, data[1 + name_len :]))

    def fingerprint(self) -> bytes:
        """SHA-256 over the canonical encoding; used in REPORT_DATA."""
        return hashlib.sha256(self.encode()).digest()

    def verify(self, message: bytes, signature: bytes, hash_name: str = "sha256") -> bool:
        """Verify ``r || s`` over H(message). Returns True/False."""
        size = self.curve.coordinate_size
        if len(signature) != 2 * size:
            return False
        r = int.from_bytes(signature[:size], "big")
        s = int.from_bytes(signature[size:], "big")
        return self.verify_rs(message, r, s, hash_name)

    def verify_rs(self, message: bytes, r: int, s: int, hash_name: str = "sha256") -> bool:
        """Verify a signature given as (r, s) integers.

        ``u1*G + u2*Q`` runs as one Strauss–Shamir joint multiplication
        through the engine in :mod:`repro.crypto.ec`; the result stays
        in Jacobian form and only its affine x-coordinate is ever
        normalised.
        """
        n = self.curve.n
        if not (1 <= r < n and 1 <= s < n):
            return False
        _warn_on_hash_mismatch(self.curve, hash_name, "ECDSA verification")
        digest = get_hash(hash_name)(message)
        e = _bits2int(digest, n)
        w = pow(s, -1, n)
        u1 = (e * w) % n
        u2 = (r * w) % n
        x = ec.verification_multiply(self.curve, u1, self.point.x, self.point.y, u2)
        if x is None:
            return False
        return x % n == r


@dataclass(frozen=True)
class EcdsaPrivateKey:
    """An ECDSA/ECDH private key (scalar) with its public counterpart."""

    curve: Curve
    d: int

    def __post_init__(self) -> None:
        if not (1 <= self.d < self.curve.n):
            raise ValueError("private scalar out of range")

    @classmethod
    def generate(cls, curve: Curve, rng: HmacDrbg) -> "EcdsaPrivateKey":
        """Generate a key with scalar drawn uniformly from [1, n)."""
        d = 1 + rng.randint_below(curve.n - 1)
        return cls(curve, d)

    def public_key(self) -> EcdsaPublicKey:
        """The corresponding public key."""
        return EcdsaPublicKey(self.d * self.curve.generator)

    def sign(self, message: bytes, hash_name: str = "sha256") -> bytes:
        """Sign H(message), returning fixed-width ``r || s``."""
        n = self.curve.n
        _warn_on_hash_mismatch(self.curve, hash_name, "ECDSA signing")
        digest = get_hash(hash_name)(message)
        e = _bits2int(digest, n)
        k = _rfc6979_nonce(self.d, digest, self.curve, hash_name)
        point = ec._jac_to_affine(ec.multiply_base(self.curve, k), self.curve)
        assert point is not None  # 1 <= k < n, so k*G is never infinity
        r = point[0] % n
        if r == 0:
            raise SignatureError("degenerate nonce (r == 0)")
        k_inv = pow(k, -1, n)
        s = (k_inv * (e + r * self.d)) % n
        if s == 0:
            raise SignatureError("degenerate nonce (s == 0)")
        # Leave the nonce point's recovery hint for the batch verifier
        # (the equivalent of a transmitted recovery id; untrusted, so a
        # stale entry costs a bisection, never correctness).
        batch.record_recovery_hint(self.curve, r, s, point[0], point[1])
        size = self.curve.coordinate_size
        return r.to_bytes(size, "big") + s.to_bytes(size, "big")

    def ecdh(self, peer: EcdsaPublicKey) -> bytes:
        """Raw ECDH shared secret: x-coordinate of d * peer point."""
        if peer.curve.name != self.curve.name:
            raise ValueError("ECDH keys on different curves")
        shared = self.d * peer.point
        if shared.is_infinity:
            raise ValueError("ECDH produced point at infinity")
        return shared.x.to_bytes(self.curve.coordinate_size, "big")

    def encode(self) -> bytes:
        """Serialise to canonical TLV bytes."""
        name = self.curve.name.encode("ascii")
        return (
            bytes([len(name)])
            + name
            + self.d.to_bytes(self.curve.coordinate_size, "big")
        )

    @classmethod
    def decode(cls, data: bytes) -> "EcdsaPrivateKey":
        """Parse an instance back out of canonical TLV bytes."""
        name_len = data[0]
        curve = get_curve(data[1 : 1 + name_len].decode("ascii"))
        return cls(curve, int.from_bytes(data[1 + name_len :], "big"))


def _bits2int(data: bytes, n: int) -> int:
    """Leftmost min(bitlen(n), bitlen(data)) bits of data, per ECDSA."""
    value = int.from_bytes(data, "big")
    excess = len(data) * 8 - n.bit_length()
    if excess > 0:
        value >>= excess
    return value


def _int2octets(value: int, n: int) -> bytes:
    return value.to_bytes((n.bit_length() + 7) // 8, "big")


def _bits2octets(data: bytes, n: int) -> bytes:
    value = _bits2int(data, n) % n
    return _int2octets(value, n)


def _rfc6979_nonce(d: int, digest: bytes, curve: Curve, hash_name: str) -> int:
    """Deterministic nonce per RFC 6979 section 3.2."""
    n = curve.n
    hash_ctor = getattr(hashlib, hash_name)
    hlen = hash_ctor().digest_size
    v = b"\x01" * hlen
    k = b"\x00" * hlen
    seed = _int2octets(d, n) + _bits2octets(digest, n)
    k = hmac.new(k, v + b"\x00" + seed, hash_ctor).digest()
    v = hmac.new(k, v, hash_ctor).digest()
    k = hmac.new(k, v + b"\x01" + seed, hash_ctor).digest()
    v = hmac.new(k, v, hash_ctor).digest()
    while True:
        t = b""
        while len(t) * 8 < n.bit_length():
            v = hmac.new(k, v, hash_ctor).digest()
            t += v
        candidate = _bits2int(t, n)
        if 1 <= candidate < n:
            return candidate
        k = hmac.new(k, v + b"\x00", hash_ctor).digest()
        v = hmac.new(k, v, hash_ctor).digest()


def _jac_to_affine_legacy(jac, curve: Curve):
    """Affine normalisation exactly as PR 2 shipped it: Fermat inversion
    (a full modular exponentiation) instead of extended-GCD."""
    x, y, z = jac
    if z == 0:
        return None
    p = curve.p
    z_inv = pow(z, p - 2, p)
    z_inv_sq = (z_inv * z_inv) % p
    return (x * z_inv_sq) % p, (y * z_inv_sq * z_inv) % p


def verify_rs_reference(
    public_key: EcdsaPublicKey, message: bytes, r: int, s: int,
    hash_name: str = "sha256",
) -> bool:
    """The pre-fast-path verification, replicated faithfully: two
    independent naive double-and-add multiplications, each normalised
    back to a validated affine :class:`Point` before the final addition
    (``u1 * G + u2 * Q`` over `Point.__mul__`/`__add__` round-tripped
    through affine on every operation).  Retained as the correctness
    oracle for property tests and the baseline for ``bench_crypto``."""
    curve = public_key.curve
    n = curve.n
    if not (1 <= r < n and 1 <= s < n):
        return False
    digest = get_hash(hash_name)(message)
    e = _bits2int(digest, n)
    w = pow(s, n - 2, n)
    u1 = (e * w) % n
    u2 = (r * w) % n
    terms = []
    for scalar, jac in (
        (u1, (curve.gx, curve.gy, 1)),
        (u2, public_key.point._jacobian()),
    ):
        affine = _jac_to_affine_legacy(ec._jac_multiply(jac, scalar, curve), curve)
        terms.append(
            Point.infinity(curve) if affine is None
            else Point(curve, affine[0], affine[1])  # revalidates, as PR 2 did
        )
    total = _jac_to_affine_legacy(
        ec._jac_add(terms[0]._jacobian(), terms[1]._jacobian(), curve), curve
    )
    if total is None:
        return False
    return total[0] % n == r


def generate_keypair(
    curve_name: str = "P-256", rng: Optional[HmacDrbg] = None
) -> EcdsaPrivateKey:
    """Convenience wrapper: generate a private key on the named curve."""
    from .drbg import system_drbg

    curve = get_curve(curve_name)
    return EcdsaPrivateKey.generate(curve, rng if rng is not None else system_drbg())
