"""ECDSA signatures with RFC 6979 deterministic nonces, plus ECDH.

Deterministic nonces make the whole reproduction bit-reproducible and
remove the classic nonce-reuse foot-gun.  Signatures are encoded as the
fixed-width concatenation ``r || s`` (each ``curve.coordinate_size``
bytes), which is what the SEV-SNP attestation report format uses as well.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Optional

from .drbg import HmacDrbg
from .ec import Curve, Point, get_curve
from .hashes import get_hash


class SignatureError(ValueError):
    """Raised when signature bytes are malformed (verification returns
    False for well-formed-but-wrong signatures instead)."""


@dataclass(frozen=True)
class EcdsaPublicKey:
    """An ECDSA/ECDH public key: a validated point on a named curve."""

    point: Point

    @property
    def curve(self) -> Curve:
        """The curve this key lives on."""
        return self.point.curve

    def encode(self) -> bytes:
        """Serialise as curve-name-length-prefixed SEC1 point."""
        name = self.curve.name.encode("ascii")
        return bytes([len(name)]) + name + self.point.encode()

    @classmethod
    def decode(cls, data: bytes) -> "EcdsaPublicKey":
        """Parse an instance back out of canonical TLV bytes."""
        if not data:
            raise SignatureError("empty public key encoding")
        name_len = data[0]
        curve = get_curve(data[1 : 1 + name_len].decode("ascii"))
        return cls(Point.decode(curve, data[1 + name_len :]))

    def fingerprint(self) -> bytes:
        """SHA-256 over the canonical encoding; used in REPORT_DATA."""
        return hashlib.sha256(self.encode()).digest()

    def verify(self, message: bytes, signature: bytes, hash_name: str = "sha256") -> bool:
        """Verify ``r || s`` over H(message). Returns True/False."""
        size = self.curve.coordinate_size
        if len(signature) != 2 * size:
            return False
        r = int.from_bytes(signature[:size], "big")
        s = int.from_bytes(signature[size:], "big")
        return self.verify_rs(message, r, s, hash_name)

    def verify_rs(self, message: bytes, r: int, s: int, hash_name: str = "sha256") -> bool:
        """Verify a signature given as (r, s) integers."""
        n = self.curve.n
        if not (1 <= r < n and 1 <= s < n):
            return False
        digest = get_hash(hash_name)(message)
        e = _bits2int(digest, n)
        w = pow(s, n - 2, n)
        u1 = (e * w) % n
        u2 = (r * w) % n
        point = u1 * self.curve.generator + u2 * self.point
        if point.is_infinity:
            return False
        return point.x % n == r


@dataclass(frozen=True)
class EcdsaPrivateKey:
    """An ECDSA/ECDH private key (scalar) with its public counterpart."""

    curve: Curve
    d: int

    def __post_init__(self) -> None:
        if not (1 <= self.d < self.curve.n):
            raise ValueError("private scalar out of range")

    @classmethod
    def generate(cls, curve: Curve, rng: HmacDrbg) -> "EcdsaPrivateKey":
        """Generate a key with scalar drawn uniformly from [1, n)."""
        d = 1 + rng.randint_below(curve.n - 1)
        return cls(curve, d)

    def public_key(self) -> EcdsaPublicKey:
        """The corresponding public key."""
        return EcdsaPublicKey(self.d * self.curve.generator)

    def sign(self, message: bytes, hash_name: str = "sha256") -> bytes:
        """Sign H(message), returning fixed-width ``r || s``."""
        n = self.curve.n
        digest = get_hash(hash_name)(message)
        e = _bits2int(digest, n)
        k = _rfc6979_nonce(self.d, digest, self.curve, hash_name)
        point = k * self.curve.generator
        r = point.x % n
        if r == 0:
            raise SignatureError("degenerate nonce (r == 0)")
        k_inv = pow(k, n - 2, n)
        s = (k_inv * (e + r * self.d)) % n
        if s == 0:
            raise SignatureError("degenerate nonce (s == 0)")
        size = self.curve.coordinate_size
        return r.to_bytes(size, "big") + s.to_bytes(size, "big")

    def ecdh(self, peer: EcdsaPublicKey) -> bytes:
        """Raw ECDH shared secret: x-coordinate of d * peer point."""
        if peer.curve.name != self.curve.name:
            raise ValueError("ECDH keys on different curves")
        shared = self.d * peer.point
        if shared.is_infinity:
            raise ValueError("ECDH produced point at infinity")
        return shared.x.to_bytes(self.curve.coordinate_size, "big")

    def encode(self) -> bytes:
        """Serialise to canonical TLV bytes."""
        name = self.curve.name.encode("ascii")
        return (
            bytes([len(name)])
            + name
            + self.d.to_bytes(self.curve.coordinate_size, "big")
        )

    @classmethod
    def decode(cls, data: bytes) -> "EcdsaPrivateKey":
        """Parse an instance back out of canonical TLV bytes."""
        name_len = data[0]
        curve = get_curve(data[1 : 1 + name_len].decode("ascii"))
        return cls(curve, int.from_bytes(data[1 + name_len :], "big"))


def _bits2int(data: bytes, n: int) -> int:
    """Leftmost min(bitlen(n), bitlen(data)) bits of data, per ECDSA."""
    value = int.from_bytes(data, "big")
    excess = len(data) * 8 - n.bit_length()
    if excess > 0:
        value >>= excess
    return value


def _int2octets(value: int, n: int) -> bytes:
    return value.to_bytes((n.bit_length() + 7) // 8, "big")


def _bits2octets(data: bytes, n: int) -> bytes:
    value = _bits2int(data, n) % n
    return _int2octets(value, n)


def _rfc6979_nonce(d: int, digest: bytes, curve: Curve, hash_name: str) -> int:
    """Deterministic nonce per RFC 6979 section 3.2."""
    n = curve.n
    hash_ctor = getattr(hashlib, hash_name)
    hlen = hash_ctor().digest_size
    v = b"\x01" * hlen
    k = b"\x00" * hlen
    seed = _int2octets(d, n) + _bits2octets(digest, n)
    k = hmac.new(k, v + b"\x00" + seed, hash_ctor).digest()
    v = hmac.new(k, v, hash_ctor).digest()
    k = hmac.new(k, v + b"\x01" + seed, hash_ctor).digest()
    v = hmac.new(k, v, hash_ctor).digest()
    while True:
        t = b""
        while len(t) * 8 < n.bit_length():
            v = hmac.new(k, v, hash_ctor).digest()
            t += v
        candidate = _bits2int(t, n)
        if 1 <= candidate < n:
            return candidate
        k = hmac.new(k, v + b"\x00", hash_ctor).digest()
        v = hmac.new(k, v, hash_ctor).digest()


def generate_keypair(
    curve_name: str = "P-256", rng: Optional[HmacDrbg] = None
) -> EcdsaPrivateKey:
    """Convenience wrapper: generate a private key on the named curve."""
    from .drbg import system_drbg

    curve = get_curve(curve_name)
    return EcdsaPrivateKey.generate(curve, rng if rng is not None else system_drbg())
