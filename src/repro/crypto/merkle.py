"""Merkle hash trees over fixed-size data blocks.

This is the data structure at the heart of dm-verity: a tree of digests
whose root commits to every block of the underlying device.  The layout
mirrors the kernel's: the tree is built bottom-up with a configurable
branching factor (how many child digests fit in one hash block), and the
verifier re-derives the path from a data block up to the trusted root.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .hashes import digest_size, get_hash


class MerkleError(ValueError):
    """Raised on invalid tree parameters or failed verification."""


@dataclass(frozen=True)
class MerkleProof:
    """Inclusion proof for one leaf: sibling digests level by level."""

    leaf_index: int
    # Each entry is (position_within_group, [digests of the full group]).
    levels: List[tuple]


class MerkleTree:
    """A Merkle tree with branching factor *arity* over leaf digests.

    The tree stores every level, so lookups and proofs are O(height).
    """

    def __init__(self, leaf_digests: Sequence[bytes], arity: int = 128,
                 hash_name: str = "sha256"):
        if arity < 2:
            raise MerkleError("arity must be at least 2")
        if not leaf_digests:
            raise MerkleError("tree needs at least one leaf")
        self.arity = arity
        self.hash_name = hash_name
        self._hash = get_hash(hash_name)
        expected = digest_size(hash_name)
        for digest in leaf_digests:
            if len(digest) != expected:
                raise MerkleError("leaf digest has wrong size")
        self.levels: List[List[bytes]] = [list(leaf_digests)]
        while len(self.levels[-1]) > 1:
            self.levels.append(self._parent_level(self.levels[-1]))

    def _parent_level(self, level: List[bytes]) -> List[bytes]:
        parents = []
        for start in range(0, len(level), self.arity):
            group = level[start : start + self.arity]
            parents.append(self._hash(b"".join(group)))
        return parents

    @property
    def root(self) -> bytes:
        """The root digest committing to all leaves."""
        return self.levels[-1][0]

    @property
    def num_leaves(self) -> int:
        """Number of leaves in the tree."""
        return len(self.levels[0])

    def prove(self, leaf_index: int) -> MerkleProof:
        """Produce an inclusion proof for leaf *leaf_index*."""
        if not (0 <= leaf_index < self.num_leaves):
            raise MerkleError("leaf index out of range")
        proof_levels = []
        index = leaf_index
        for level in self.levels[:-1]:
            group_start = (index // self.arity) * self.arity
            group = level[group_start : group_start + self.arity]
            proof_levels.append((index - group_start, list(group)))
            index //= self.arity
        return MerkleProof(leaf_index=leaf_index, levels=proof_levels)

    @classmethod
    def verify_proof(
        cls,
        leaf_digest: bytes,
        proof: MerkleProof,
        root: bytes,
        arity: int = 128,
        hash_name: str = "sha256",
    ) -> bool:
        """Check that *leaf_digest* is committed under *root*."""
        hash_fn = get_hash(hash_name)
        current = leaf_digest
        for position, group in proof.levels:
            if not (0 <= position < len(group)) or len(group) > arity:
                return False
            if group[position] != current:
                return False
            current = hash_fn(b"".join(group))
        return current == root

    @classmethod
    def from_blocks(
        cls, blocks: Sequence[bytes], arity: int = 128, hash_name: str = "sha256"
    ) -> "MerkleTree":
        """Hash raw data blocks into leaves and build the tree."""
        hash_fn = get_hash(hash_name)
        return cls([hash_fn(block) for block in blocks], arity, hash_name)
