"""Deterministic TLV (tag-length-value) encoding.

Every structure that is hashed, signed, or measured in this reproduction
(certificates, CSRs, attestation payloads, filesystem images) is serialised
through this module.  The encoding is *canonical*: a given Python value has
exactly one byte representation, so hashes and signatures over encoded
values are well defined.  This plays the role that DER/ASN.1 plays in the
real Revelio prototype, without the historical baggage.

Supported values: ``None``, ``bool``, ``int`` (arbitrary precision,
signed), ``bytes``, ``str`` (UTF-8), ``list``/``tuple`` (encoded
identically), and ``dict`` with string keys (encoded with keys sorted by
their UTF-8 bytes).

Wire format: a single tag byte, a big-endian 4-byte length, then the body.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Tuple, Union

Encodable = Union[None, bool, int, bytes, str, list, tuple, dict]

TAG_NONE = 0x00
TAG_FALSE = 0x01
TAG_TRUE = 0x02
TAG_INT_POS = 0x03
TAG_INT_NEG = 0x04
TAG_BYTES = 0x05
TAG_STR = 0x06
TAG_LIST = 0x07
TAG_DICT = 0x08

_LEN = struct.Struct(">I")


class EncodingError(ValueError):
    """Raised when a value cannot be canonically encoded."""


class DecodingError(ValueError):
    """Raised when a byte string is not a valid canonical encoding."""


def _frame(tag: int, body: bytes) -> bytes:
    if len(body) > 0xFFFFFFFF:
        raise EncodingError("value too large to frame")
    return bytes([tag]) + _LEN.pack(len(body)) + body


def _int_body(value: int) -> bytes:
    # Minimal big-endian magnitude; zero encodes as the empty body.
    magnitude = abs(value)
    length = (magnitude.bit_length() + 7) // 8
    return magnitude.to_bytes(length, "big")


def encode(value: Encodable) -> bytes:
    """Canonically encode *value* to bytes.

    Raises :class:`EncodingError` for unsupported types and for dicts with
    non-string or duplicate keys.
    """
    if value is None:
        return _frame(TAG_NONE, b"")
    if value is True:
        return _frame(TAG_TRUE, b"")
    if value is False:
        return _frame(TAG_FALSE, b"")
    if isinstance(value, int):
        tag = TAG_INT_NEG if value < 0 else TAG_INT_POS
        return _frame(tag, _int_body(value))
    if isinstance(value, bytes):
        return _frame(TAG_BYTES, value)
    if isinstance(value, bytearray):
        return _frame(TAG_BYTES, bytes(value))
    if isinstance(value, str):
        return _frame(TAG_STR, value.encode("utf-8"))
    if isinstance(value, (list, tuple)):
        body = b"".join(encode(item) for item in value)
        return _frame(TAG_LIST, body)
    if isinstance(value, dict):
        return _frame(TAG_DICT, _dict_body(value))
    raise EncodingError(f"cannot encode value of type {type(value).__name__}")


def _dict_body(mapping: Dict[str, Encodable]) -> bytes:
    items: List[Tuple[bytes, bytes]] = []
    for key, item in mapping.items():
        if not isinstance(key, str):
            raise EncodingError("dict keys must be str")
        items.append((key.encode("utf-8"), encode(item)))
    items.sort(key=lambda pair: pair[0])
    parts = []
    previous = None
    for key_bytes, encoded in items:
        if key_bytes == previous:
            raise EncodingError(f"duplicate dict key {key_bytes!r}")
        previous = key_bytes
        parts.append(_frame(TAG_STR, key_bytes))
        parts.append(encoded)
    return b"".join(parts)


def decode(data: bytes) -> Encodable:
    """Decode a canonical encoding produced by :func:`encode`.

    Raises :class:`DecodingError` on malformed or non-canonical input,
    including trailing bytes.
    """
    value, consumed = _decode_at(data, 0)
    if consumed != len(data):
        raise DecodingError("trailing bytes after encoded value")
    return value


def _decode_at(data: bytes, offset: int) -> Tuple[Encodable, int]:
    if offset + 5 > len(data):
        raise DecodingError("truncated frame header")
    tag = data[offset]
    (length,) = _LEN.unpack_from(data, offset + 1)
    body_start = offset + 5
    body_end = body_start + length
    if body_end > len(data):
        raise DecodingError("truncated frame body")
    body = data[body_start:body_end]

    if tag == TAG_NONE:
        _expect_empty(body)
        return None, body_end
    if tag == TAG_TRUE:
        _expect_empty(body)
        return True, body_end
    if tag == TAG_FALSE:
        _expect_empty(body)
        return False, body_end
    if tag in (TAG_INT_POS, TAG_INT_NEG):
        return _decode_int(tag, body), body_end
    if tag == TAG_BYTES:
        return body, body_end
    if tag == TAG_STR:
        try:
            return body.decode("utf-8"), body_end
        except UnicodeDecodeError as exc:
            raise DecodingError("invalid UTF-8 in string") from exc
    if tag == TAG_LIST:
        return _decode_list(body), body_end
    if tag == TAG_DICT:
        return _decode_dict(body), body_end
    raise DecodingError(f"unknown tag 0x{tag:02x}")


def _expect_empty(body: bytes) -> None:
    if body:
        raise DecodingError("unexpected body for singleton tag")


def _decode_int(tag: int, body: bytes) -> int:
    if body and body[0] == 0:
        raise DecodingError("non-minimal integer encoding")
    magnitude = int.from_bytes(body, "big")
    if tag == TAG_INT_NEG:
        if magnitude == 0:
            raise DecodingError("negative zero is not canonical")
        return -magnitude
    return magnitude


def _decode_list(body: bytes) -> list:
    items = []
    offset = 0
    while offset < len(body):
        value, offset = _decode_at(body, offset)
        items.append(value)
    return items


def _decode_dict(body: bytes) -> dict:
    result: Dict[str, Encodable] = {}
    offset = 0
    previous_key: bytes = b""
    first = True
    while offset < len(body):
        key, offset = _decode_at(body, offset)
        if not isinstance(key, str):
            raise DecodingError("dict key is not a string")
        key_bytes = key.encode("utf-8")
        if not first and key_bytes <= previous_key:
            raise DecodingError("dict keys not in canonical order")
        first = False
        previous_key = key_bytes
        if offset >= len(body):
            raise DecodingError("dict key without value")
        value, offset = _decode_at(body, offset)
        result[key] = value
    return result
