"""Random-linear-combination ECDSA batch verification.

A cold attestation storm pays three full ECDSA verifications per
first-contact backend (ARK -> ASK -> VCEK chain) plus one report
signature.  Each of those is ``u1*G + u2*Q == R`` in disguise, so a
batch of k signatures can be checked with *one* multi-scalar
multiplication instead of k joint multiplications:

    sum_i z_i * (u1_i*G + u2_i*Q_i)  ==  sum_i z_i * R_i

with fresh 128-bit blinders ``z_i`` drawn from an HMAC-DRBG.  If any
single equation failed, the randomized sum only matches with
probability ~2^-128 (the blinders prevent an adversary from crafting
signatures whose errors cancel).  The combined term list runs as one
interleaved Strauss wNAF pass: a single shared doubling chain, one
mixed addition per non-zero digit, generator term through the cached
fixed-base table, and repeated public keys (ARK, ASK across a storm)
collapsed into a single term by summing their scalars mod n.  Every
odd-multiples table the batch needs is normalised to affine with one
amortised Montgomery inversion (:func:`repro.crypto.ec._batch_to_affine`
over the whole batch, not per point), and cold public keys are seeded
into the :class:`~repro.crypto.ec.PointPrecomputeCache` so the
per-signature fast path benefits afterwards.

**R-point recovery.**  An ECDSA signature transmits only ``r`` — the
x-coordinate of the nonce point mod n — so the batch equation needs
``R_i`` lifted back onto the curve: candidate x is ``r`` (or ``r + n``
in the astronomically rare wrap case) and y is a modular square root
with an unknowable sign.  Deployed batch-verification schemes solve
this with an out-of-band *recovery hint* (Ethereum's ``v``); here the
signer records the nonce point's parity in a bounded, **untrusted**
side table at signing time (:func:`record_recovery_hint`).  Hints are
purely a performance channel: the batch equation itself is what
accepts, and either sign of a candidate R satisfying it proves the
signature valid, so a wrong or missing hint can only cause a spurious
batch failure — never a wrong verdict.

**Bisection fallback.**  A failed batch (a forged member, a bad hint,
or a blinder collision) is split in half and each half re-checked with
fresh blinders, recursing until single signatures are verified
individually through the engine's normal joint multiplication.  Every
verdict therefore equals :func:`repro.crypto.ecdsa.verify_rs_reference`
— DESIGN.md invariant 15: no verdict is ever emitted from an
unresolved failed batch.

Inputs that cannot join a batch fall back to per-signature
verification: signatures on a different curve than the batch group,
hash/curve pairings that truncate the digest (the PR-3 mismatch
warning fires on the per-signature path), and non-ECDSA keys.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from . import ec
from .drbg import HmacDrbg
from .ec import (
    _INFINITY,
    WNAF_WIDTH,
    Curve,
    _batch_to_affine,
    _jac_add,
    _jac_add_affine,
    _jac_double,
    _jac_to_affine,
    _wnaf,
    generator_table,
    get_point_cache,
)
from .hashes import digest_size, get_hash

#: Bit width of the random blinders.  128 bits keeps the forgery
#: probability of a malicious batch member at ~2^-128 while making the
#: per-signature R-term multiplication a third of a full scalar mul.
BLINDER_BITS = 128


class BlinderReuseError(ValueError):
    """An explicit blinder set was presented for a second batch.

    Fixed blinders turn the randomized check into a deterministic
    linear relation an adversary can solve for; every batch must draw a
    fresh set, so reuse is rejected loudly instead of silently
    weakening the check.
    """


def _bits2int(data: bytes, n: int) -> int:
    """Leftmost min(bitlen(n), bitlen(data)) bits of data, per ECDSA."""
    value = int.from_bytes(data, "big")
    excess = len(data) * 8 - n.bit_length()
    if excess > 0:
        value >>= excess
    return value


def _batch_invert(values: Sequence[int], modulus: int) -> List[int]:
    """Invert many non-zero residues with one inversion (Montgomery)."""
    prefix: List[int] = []
    acc = 1
    for value in values:
        prefix.append(acc)
        acc = (acc * value) % modulus
    inv = pow(acc, -1, modulus)
    out = [0] * len(values)
    for index in range(len(values) - 1, -1, -1):
        out[index] = (inv * prefix[index]) % modulus
        inv = (inv * values[index]) % modulus
    return out


# -- recovery hints ------------------------------------------------------------


class RecoveryHintTable:
    """Bounded LRU of nonce-point recovery hints, keyed (curve, r, s).

    A hint is ``(x_offset, y_parity)``: which candidate x the nonce
    point used (``r + x_offset * n``) and the parity of its y.  Entries
    are recorded by :meth:`repro.crypto.ecdsa.EcdsaPrivateKey.sign` and
    learned back from bisection leaves.  The table is untrusted — see
    the module docstring — so a poisoned entry costs retries, not
    soundness.
    """

    def __init__(self, capacity: int = 8192):
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple[str, int, int], Tuple[int, int]]" = (
            OrderedDict()
        )

    def record(self, curve_name: str, r: int, s: int,
               x_offset: int, y_parity: int) -> None:
        key = (curve_name, r, s)
        self._entries[key] = (x_offset, y_parity)
        self._entries.move_to_end(key)
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def lookup(self, curve_name: str, r: int, s: int) -> Optional[Tuple[int, int]]:
        entry = self._entries.get((curve_name, r, s))
        if entry is not None:
            self._entries.move_to_end((curve_name, r, s))
        return entry

    def __len__(self) -> int:
        return len(self._entries)


_hints = RecoveryHintTable()


def record_recovery_hint(curve: Curve, r: int, s: int,
                         nonce_x: int, nonce_y: int) -> None:
    """Record the nonce point's recovery hint for a fresh signature."""
    _hints.record(curve.name, r, s, (nonce_x - r) // curve.n, nonce_y & 1)


def recovery_hints() -> RecoveryHintTable:
    """The process-wide hint table."""
    return _hints


def reset_recovery_hints(capacity: int = 8192) -> RecoveryHintTable:
    """Install (and return) a fresh process-wide hint table."""
    global _hints
    _hints = RecoveryHintTable(capacity)
    return _hints


def _sqrt_mod(value: int, p: int) -> Optional[int]:
    """Square root mod p for p = 3 (mod 4) primes (both NIST curves)."""
    root = pow(value, (p + 1) >> 2, p)
    if (root * root) % p != value % p:
        return None
    return root


def _lift_x(curve: Curve, x: int) -> Optional[Tuple[int, int]]:
    """The curve point with this x and *even* y, if x lifts at all."""
    if not (0 <= x < curve.p):
        return None
    p = curve.p
    y_squared = (x * x * x + curve.a * x + curve.b) % p
    y = _sqrt_mod(y_squared, p)
    if y is None:
        return None
    if y & 1:
        y = p - y
    return (x, y)


# -- the batch itself ----------------------------------------------------------


class BatchItem:
    """One signature to verify: key, message, (r, s), hash."""

    __slots__ = ("key", "message", "signature", "hash_name")

    def __init__(self, key, message: bytes, signature: bytes,
                 hash_name: str = "sha256"):
        self.key = key
        self.message = message
        self.signature = bytes(signature)
        self.hash_name = hash_name


class BatchResult:
    """Verdicts (index-aligned with the submitted items) plus counters."""

    __slots__ = ("verdicts", "batch_size", "msm_checks", "bisections",
                 "per_sig_fallbacks", "hinted", "deduplicated")

    def __init__(self, verdicts: List[bool]):
        self.verdicts = verdicts
        self.batch_size = len(verdicts)
        self.msm_checks = 0          # batch equations evaluated (incl. splits)
        self.bisections = 0          # failed batches split in half
        self.per_sig_fallbacks = 0   # signatures verified individually
        self.hinted = 0              # items whose R came from a recovery hint
        self.deduplicated = 0        # repeated (key, digest, sig) collapsed

    def stats(self) -> dict:
        return {
            "batch_size": self.batch_size,
            "msm_checks": self.msm_checks,
            "bisections": self.bisections,
            "per_sig_fallbacks": self.per_sig_fallbacks,
            "hinted": self.hinted,
            "deduplicated": self.deduplicated,
        }


class _Prepared:
    """Per-item precomputation shared by the batch check and bisection."""

    __slots__ = ("index", "u1", "u2", "qx", "qy", "rx", "ry", "r", "s")

    def __init__(self, index, u1, u2, qx, qy, rx, ry, r, s):
        self.index = index
        self.u1 = u1
        self.u2 = u2
        self.qx = qx
        self.qy = qy
        self.rx = rx    # chosen candidate R (negated at MSM time)
        self.ry = ry
        self.r = r
        self.s = s


class BatchVerifier:
    """Verifies batches of same-curve ECDSA signatures with one MSM.

    ``drbg`` seeds the blinder stream; a fixed seed makes a run
    reproducible while still drawing a fresh blinder set per batch
    (the stream advances).  Explicit blinder sets (tests) are tracked
    and rejected on reuse — :class:`BlinderReuseError`.
    """

    def __init__(self, drbg: Optional[HmacDrbg] = None):
        self.drbg = drbg if drbg is not None else HmacDrbg(b"batch-verifier")
        self._seen_blinder_sets: set = set()

    # -- public entry ----------------------------------------------------------

    def verify(self, items: Sequence[BatchItem],
               blinders: Optional[Sequence[int]] = None) -> BatchResult:
        """Verify every item; verdicts match ``verify_rs_reference``."""
        result = BatchResult([False] * len(items))
        if not items:
            return result
        if blinders is not None:
            self._claim_blinders(tuple(blinders))

        batchable: List[_Prepared] = []
        fallback: List[int] = []
        # One curve per batch: the dominant curve is the first
        # batch-capable item's; everything else verifies individually.
        curve: Optional[Curve] = None
        seen: Dict[Tuple[bytes, str, bytes, bytes], List[int]] = {}

        parsed = []
        for index, item in enumerate(items):
            inner = getattr(item.key, "inner", item.key)
            point = getattr(inner, "point", None)
            if point is None:  # not an ECDSA key (RSA): per-signature path
                fallback.append(index)
                parsed.append(None)
                continue
            item_curve = inner.curve
            size = item_curve.coordinate_size
            if len(item.signature) != 2 * size:
                continue  # malformed: verdict stays False, like verify()
            r = int.from_bytes(item.signature[:size], "big")
            s = int.from_bytes(item.signature[size:], "big")
            if not (1 <= r < item_curve.n and 1 <= s < item_curve.n):
                continue
            if digest_size(item.hash_name) * 8 < item_curve.n.bit_length():
                # Curve/hash mismatch: the per-signature path owns the
                # truncation semantics (and the PR-3 warning).
                fallback.append(index)
                parsed.append(None)
                continue
            if curve is None:
                curve = item_curve
            if item_curve is not curve and item_curve.name != curve.name:
                fallback.append(index)
                parsed.append(None)
                continue
            digest = get_hash(item.hash_name)(item.message)
            dedup_key = (inner.fingerprint(), item.hash_name, digest,
                         item.signature)
            twin = seen.get(dedup_key)
            if twin is not None:
                twin.append(index)
                result.deduplicated += 1
                continue
            seen[dedup_key] = [index]
            parsed.append((index, inner, r, s, digest, dedup_key))

        live = [entry for entry in parsed if isinstance(entry, tuple)]
        if live:
            assert curve is not None
            n = curve.n
            inverses = _batch_invert([entry[3] for entry in live], n)
            for (index, inner, r, s, digest, dedup_key), w in zip(live, inverses):
                e = _bits2int(digest, n)
                u1 = (e * w) % n
                u2 = (r * w) % n
                lifted = self._recover_r(curve, r, s, result)
                if lifted is None:
                    # No candidate x lifts onto the curve: no R can
                    # exist, so the signature is invalid outright.
                    continue
                batchable.append(_Prepared(
                    index, u1, u2, inner.point.x, inner.point.y,
                    lifted[0], lifted[1], r, s,
                ))

        verdict_groups = seen  # alias: index fan-out for deduped items

        if batchable:
            self._resolve(curve, batchable, result, blinders)

        # Fan deduplicated verdicts out to their twins.
        for indices in verdict_groups.values():
            first = indices[0]
            for twin in indices[1:]:
                result.verdicts[twin] = result.verdicts[first]

        for index in fallback:
            item = items[index]
            result.verdicts[index] = bool(
                item.key.verify(item.message, item.signature, item.hash_name)
            )
            result.per_sig_fallbacks += 1
        return result

    # -- internals -------------------------------------------------------------

    def _claim_blinders(self, blinder_set: Tuple[int, ...]) -> None:
        if blinder_set in self._seen_blinder_sets:
            raise BlinderReuseError(
                "blinder set was already used for a previous batch; every "
                "batch must draw fresh blinders"
            )
        self._seen_blinder_sets.add(blinder_set)

    def _draw_blinder(self) -> int:
        while True:
            z = int.from_bytes(self.drbg.generate(BLINDER_BITS // 8), "big")
            if z != 0:
                return z

    def _recover_r(self, curve: Curve, r: int, s: int,
                   result: BatchResult) -> Optional[Tuple[int, int]]:
        """The candidate nonce point for (r, s), hint-directed."""
        hint = _hints.lookup(curve.name, r, s)
        if hint is not None:
            x_offset, parity = hint
            candidate = _lift_x(curve, r + x_offset * curve.n)
            if candidate is not None:
                result.hinted += 1
                x, y = candidate
                if (y & 1) != parity:
                    y = curve.p - y
                return (x, y)
        candidate = _lift_x(curve, r)
        if candidate is None and r + curve.n < curve.p:
            candidate = _lift_x(curve, r + curve.n)
        return candidate

    def _resolve(self, curve: Curve, group: List[_Prepared],
                 result: BatchResult,
                 blinders: Optional[Sequence[int]]) -> None:
        """Batch-check *group*; on failure bisect down to single items."""
        if len(group) == 1:
            self._verify_leaf(curve, group[0], result)
            return
        if blinders is not None and len(blinders) >= len(group):
            zs = [int(z) for z in blinders[: len(group)]]
        else:
            zs = [self._draw_blinder() for _ in group]
        result.msm_checks += 1
        if self._check(curve, group, zs):
            for prepared in group:
                result.verdicts[prepared.index] = True
            return
        result.bisections += 1
        mid = len(group) // 2
        # Sub-batches always redraw from the DRBG: the presented set is
        # spent the moment its batch fails.
        self._resolve(curve, group[:mid], result, None)
        self._resolve(curve, group[mid:], result, None)

    def _verify_leaf(self, curve: Curve, prepared: _Prepared,
                     result: BatchResult) -> None:
        """Single-signature ground truth via the engine's joint multiply
        (agrees with ``verify_rs_reference``); learns the recovery hint
        so the next batch containing this signature passes first try."""
        result.per_sig_fallbacks += 1
        jac = ec.verification_multiply_jac(
            curve, prepared.u1, prepared.qx, prepared.qy, prepared.u2
        )
        affine = _jac_to_affine(jac, curve)
        if affine is None:
            return
        if affine[0] % curve.n != prepared.r:
            return
        result.verdicts[prepared.index] = True
        # Learn the hint: the next batch carrying this signature gets
        # the right candidate R and passes without bisection.
        _hints.record(
            curve.name, prepared.r, prepared.s,
            (affine[0] - prepared.r) // curve.n, affine[1] & 1,
        )

    def _check(self, curve: Curve, group: List[_Prepared],
               zs: List[int]) -> bool:
        """One randomized batch equation over the combined term list."""
        n = curve.n
        p = curve.p

        gen_scalar = 0
        # Q terms with identical points merge by summing scalars; the
        # whole fleet's ARK and ASK collapse to one term each.
        q_terms: "OrderedDict[Tuple[int, int], int]" = OrderedDict()
        r_terms: List[Tuple[int, int, int]] = []  # (z, x, y) of -R
        for prepared, z in zip(group, zs):
            gen_scalar = (gen_scalar + z * prepared.u1) % n
            q_key = (prepared.qx, prepared.qy)
            q_terms[q_key] = (q_terms.get(q_key, 0) + z * prepared.u2) % n
            r_terms.append((z, prepared.rx, (p - prepared.ry) % p))

        # Table-backed portion: generator (cached fixed-base table) and
        # any public keys already hot in the point cache.
        accumulator = generator_table(curve).multiply(gen_scalar)
        cache = get_point_cache()
        cold_q: List[Tuple[Tuple[int, int], int]] = []
        cached_tables: Dict[Tuple[int, int], Sequence[Tuple[int, int]]] = {}
        for q_key, scalar in q_terms.items():
            if scalar == 0:
                continue
            entry = cache.peek(curve, q_key[0], q_key[1])
            if entry is not None and entry.fixed is not None:
                accumulator = _jac_add(
                    accumulator, entry.fixed.multiply(scalar), curve
                )
                continue
            if entry is not None:
                cached_tables[q_key] = entry.odd_multiples
            cold_q.append((q_key, scalar))

        # Build every odd-multiples table the interleave needs, then
        # normalise the whole lot with one amortised Montgomery
        # inversion.  Cold public keys get seeded into the point cache;
        # blinded R tables are one-shot.
        count = 1 << (WNAF_WIDTH - 2)
        flat: List[Tuple[int, int, int]] = []
        build_keys: List[Tuple[int, int]] = []
        for q_key, _ in cold_q:
            if q_key in cached_tables:
                continue
            build_keys.append(q_key)
            self._extend_odd_multiples(flat, q_key, curve, count)
        r_points = [(x, y) for _, x, y in r_terms]
        for r_point in r_points:
            self._extend_odd_multiples(flat, r_point, curve, count)
        if flat:
            affine = _batch_to_affine(flat, curve)
        else:
            affine = []
        offset = 0
        for q_key in build_keys:
            table = affine[offset : offset + count]
            offset += count
            cached_tables[q_key] = table
            cache.seed(curve, q_key[0], q_key[1], table)
        r_tables = []
        for r_point in r_points:
            r_tables.append(affine[offset : offset + count])
            offset += count

        # Interleaved Strauss pass: one shared doubling chain over the
        # combined (scalar, table) term list.
        terms: List[Tuple[List[int], Sequence[Tuple[int, int]]]] = []
        for q_key, scalar in cold_q:
            terms.append((_wnaf(scalar, WNAF_WIDTH), cached_tables[q_key]))
        for (z, _, _), table in zip(r_terms, r_tables):
            terms.append((_wnaf(z, WNAF_WIDTH), table))

        top = max((len(digits) for digits, _ in terms), default=0)
        schedule: List[List[Tuple[int, Sequence[Tuple[int, int]]]]] = [
            [] for _ in range(top)
        ]
        for digits, table in terms:
            for level, digit in enumerate(digits):
                if digit:
                    schedule[level].append((digit, table))

        running = _INFINITY
        for level in range(top - 1, -1, -1):
            running = _jac_double(running, curve)
            for digit, table in schedule[level]:
                if digit > 0:
                    ax, ay = table[digit >> 1]
                    running = _jac_add_affine(running, ax, ay, curve)
                else:
                    ax, ay = table[(-digit) >> 1]
                    running = _jac_add_affine(running, ax, (p - ay) % p, curve)

        total = _jac_add(running, accumulator, curve)
        return total[2] == 0

    @staticmethod
    def _extend_odd_multiples(flat: List[Tuple[int, int, int]],
                              point: Tuple[int, int], curve: Curve,
                              count: int) -> None:
        """Append [1P, 3P, ..] in Jacobian form (normalised later, all
        at once)."""
        base = (point[0], point[1], 1)
        twice = _jac_double(base, curve)
        entry = base
        flat.append(entry)
        for _ in range(count - 1):
            entry = _jac_add(entry, twice, curve)
            flat.append(entry)


def verify_batch(items: Sequence[BatchItem],
                 drbg: Optional[HmacDrbg] = None) -> List[bool]:
    """One-shot convenience: batch-verify *items*, return the verdicts."""
    return BatchVerifier(drbg).verify(items).verdicts
