"""Elliptic curve arithmetic over prime fields (short Weierstrass form).

Implements the NIST curves P-256 and P-384 from scratch.  P-384 is what
AMD uses to sign SEV-SNP attestation reports (the VCEK is an ECDSA P-384
key), and P-256 is used for VM/TLS identities where smaller signatures
suffice.

Internally points are manipulated in Jacobian projective coordinates so a
scalar multiplication costs no field inversions until the final
normalisation.

Beyond the textbook double-and-add (retained as :func:`_jac_multiply`, the
reference the property tests and benchmarks compare against), the module
carries a fast-path engine — every trust decision in Revelio bottoms out
here, so scalar multiplication is the system-wide throughput ceiling:

* **wNAF multiplication** (:func:`multiply_wnaf`) — width-5 windowed
  non-adjacent form over precomputed odd multiples, for arbitrary points.
* **Fixed-base tables** (:class:`FixedBaseTable`) — per-curve windowed
  tables for the generators, built lazily and cached, turning ``k * G``
  into ~n/width mixed additions with *no* doublings.  Table entries are
  batch-normalised to affine (one modular inversion for the whole table,
  Montgomery's trick) so every table addition is a cheap mixed add.
* **A per-public-key precompute cache** (:class:`PointPrecomputeCache`)
  — keyed by point, bounded LRU.  The first use of a key precomputes its
  wNAF odd multiples; from the second use on, the key is considered hot
  and gets its own fixed-base table, so the keys Revelio verifies
  constantly (VCEK, ASK, ARK, site certificates, subnet keys) run at
  fixed-base speed.
* **Strauss–Shamir joint multiplication** (:func:`verification_multiply`)
  — ``u1*G + u2*Q`` in one interleaved pass for ECDSA verification,
  sharing the doubling chain between both scalars; hot keys skip the
  doubling chain entirely (both halves table-backed).

Intermediate results stay in Jacobian form throughout the engine and are
normalised exactly once at the boundary; points produced internally are
constructed through :meth:`Point._trusted` and skip the on-curve
revalidation (they are on the curve by construction).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


class InvalidPointError(ValueError):
    """Raised when coordinates do not lie on the curve."""


@dataclass(frozen=True)
class Curve:
    """Domain parameters of a short Weierstrass curve y^2 = x^3 + ax + b."""

    name: str
    p: int  # field prime
    a: int
    b: int
    gx: int  # generator
    gy: int
    n: int  # group order
    h: int  # cofactor

    @property
    def coordinate_size(self) -> int:
        """Size in bytes of one field element."""
        return (self.p.bit_length() + 7) // 8

    @property
    def generator(self) -> "Point":
        """The curve's base point."""
        return Point(self, self.gx, self.gy)

    def point(self, x: int, y: int) -> "Point":
        """Construct and validate an affine point on this curve."""
        return Point(self, x, y)


P256 = Curve(
    name="P-256",
    p=0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF,
    a=-3,
    b=0x5AC635D8AA3A93E7B3EBBD55769886BC651D06B0CC53B0F63BCE3C3E27D2604B,
    gx=0x6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296,
    gy=0x4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5,
    n=0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551,
    h=1,
)

P384 = Curve(
    name="P-384",
    p=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFE
    * (1 << 128)
    + 0xFFFFFFFF0000000000000000FFFFFFFF,
    a=-3,
    b=0xB3312FA7E23EE7E4988E056BE3F82D19181D9C6EFE8141120314088F5013875A
    * (1 << 128)
    + 0xC656398D8A2ED19D2A85C8EDD3EC2AEF,
    gx=0xAA87CA22BE8B05378EB1C71EF320AD746E1D3B628BA79B9859F741E082542A38
    * (1 << 128)
    + 0x5502F25DBF55296C3A545E3872760AB7,
    gy=0x3617DE4A96262C6F5D9E98BF9292DC29F8F41DBD289A147CE9DA3113B5F0B8C0
    * (1 << 128)
    + 0x0A60B1CE1D7E819D7A431D7C90EA0E5F,
    n=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFC7634D81F4372DDF
    * (1 << 128)
    + 0x581A0DB248B0A77AECEC196ACCC52973,
    h=1,
)

CURVES = {curve.name: curve for curve in (P256, P384)}


def get_curve(name: str) -> Curve:
    """Look up a curve by its registered name ("P-256", "P-384")."""
    try:
        return CURVES[name]
    except KeyError:
        raise ValueError(f"unknown curve {name!r}") from None


# Jacobian coordinates: (X, Y, Z) with x = X/Z^2, y = Y/Z^3.
_Jacobian = Tuple[int, int, int]
_Affine = Tuple[int, int]
_INFINITY: _Jacobian = (1, 1, 0)

#: wNAF window width for arbitrary-point multiplication (2^(w-2) = 8
#: precomputed odd multiples per point).
WNAF_WIDTH = 5
#: Window width of the per-generator fixed-base tables.
GENERATOR_TABLE_WIDTH = 7
#: Window width of per-public-key fixed-base tables (smaller: these are
#: built at runtime for every hot key, so build cost matters).
POINT_TABLE_WIDTH = 5


def _jac_double(point: _Jacobian, curve: Curve) -> _Jacobian:
    x1, y1, z1 = point
    p = curve.p
    if z1 == 0 or y1 == 0:
        return _INFINITY
    ysq = (y1 * y1) % p
    s = (4 * x1 * ysq) % p
    zz = (z1 * z1) % p
    m = (3 * x1 * x1 + curve.a * zz * zz) % p
    x3 = (m * m - 2 * s) % p
    y3 = (m * (s - x3) - 8 * ysq * ysq) % p
    z3 = (2 * y1 * z1) % p
    return x3, y3, z3


def _jac_add(left: _Jacobian, right: _Jacobian, curve: Curve) -> _Jacobian:
    x1, y1, z1 = left
    x2, y2, z2 = right
    p = curve.p
    if z1 == 0:
        return right
    if z2 == 0:
        return left
    z1sq = (z1 * z1) % p
    z2sq = (z2 * z2) % p
    u1 = (x1 * z2sq) % p
    u2 = (x2 * z1sq) % p
    s1 = (y1 * z2sq * z2) % p
    s2 = (y2 * z1sq * z1) % p
    if u1 == u2:
        if s1 != s2:
            return _INFINITY
        return _jac_double(left, curve)
    h = (u2 - u1) % p
    r = (s2 - s1) % p
    hsq = (h * h) % p
    hcu = (h * hsq) % p
    u1hsq = (u1 * hsq) % p
    x3 = (r * r - hcu - 2 * u1hsq) % p
    y3 = (r * (u1hsq - x3) - s1 * hcu) % p
    z3 = (h * z1 * z2) % p
    return x3, y3, z3


def _jac_add_affine(left: _Jacobian, ax: int, ay: int, curve: Curve) -> _Jacobian:
    """Mixed addition: *left* (Jacobian) + an affine point (Z = 1).

    Saves ~6 field multiplications over the general formula; table
    entries are stored affine exactly so additions take this path.
    """
    x1, y1, z1 = left
    p = curve.p
    if z1 == 0:
        return (ax, ay, 1)
    z1sq = (z1 * z1) % p
    u2 = (ax * z1sq) % p
    s2 = (ay * z1sq * z1) % p
    if x1 == u2:
        if y1 != s2:
            return _INFINITY
        return _jac_double(left, curve)
    h = (u2 - x1) % p
    r = (s2 - y1) % p
    hsq = (h * h) % p
    hcu = (h * hsq) % p
    u1hsq = (x1 * hsq) % p
    x3 = (r * r - hcu - 2 * u1hsq) % p
    y3 = (r * (u1hsq - x3) - y1 * hcu) % p
    z3 = (h * z1) % p
    return x3, y3, z3


def _jac_neg(point: _Jacobian, curve: Curve) -> _Jacobian:
    x, y, z = point
    return (x, (-y) % curve.p, z)


def _jac_multiply(point: _Jacobian, scalar: int, curve: Curve) -> _Jacobian:
    """Reference binary double-and-add (the pre-fast-path implementation).

    Kept as the independent oracle the Hypothesis suite and
    ``benchmarks/bench_crypto.py`` compare the wNAF/table/Strauss–Shamir
    paths against.
    """
    if scalar % curve.n == 0 or point[2] == 0:
        return _INFINITY
    scalar = scalar % curve.n
    result = _INFINITY
    addend = point
    while scalar:
        if scalar & 1:
            result = _jac_add(result, addend, curve)
        addend = _jac_double(addend, curve)
        scalar >>= 1
    return result


def _jac_to_affine(point: _Jacobian, curve: Curve) -> Optional[_Affine]:
    x, y, z = point
    if z == 0:
        return None
    p = curve.p
    z_inv = pow(z, -1, p)
    z_inv_sq = (z_inv * z_inv) % p
    return (x * z_inv_sq) % p, (y * z_inv_sq * z_inv) % p


def _jac_x_affine(point: _Jacobian, curve: Curve) -> Optional[int]:
    """Affine x-coordinate only (ECDSA verification needs nothing else)."""
    x, _, z = point
    if z == 0:
        return None
    p = curve.p
    z_inv = pow(z, -1, p)
    return (x * z_inv * z_inv) % p


def _batch_to_affine(points: Sequence[_Jacobian], curve: Curve) -> List[_Affine]:
    """Normalise many Jacobian points with one inversion (Montgomery's
    trick).  Callers guarantee no point at infinity is in the batch."""
    p = curve.p
    prefix: List[int] = []
    acc = 1
    for _, _, z in points:
        prefix.append(acc)
        acc = (acc * z) % p
    inv = pow(acc, -1, p)
    affine: List[Optional[_Affine]] = [None] * len(points)
    for index in range(len(points) - 1, -1, -1):
        x, y, z = points[index]
        z_inv = (inv * prefix[index]) % p
        inv = (inv * z) % p
        z_inv_sq = (z_inv * z_inv) % p
        affine[index] = ((x * z_inv_sq) % p, (y * z_inv_sq * z_inv) % p)
    return affine  # type: ignore[return-value]


# -- wNAF ----------------------------------------------------------------------


def _wnaf(scalar: int, width: int) -> List[int]:
    """Width-*w* non-adjacent form of a non-negative scalar, LSB first.

    Every digit is zero or odd with |digit| < 2^(w-1); at most one in
    any *w* consecutive digits is non-zero.
    """
    digits: List[int] = []
    full = 1 << width
    half = 1 << (width - 1)
    mask = full - 1
    while scalar > 0:
        if scalar & 1:
            digit = scalar & mask
            if digit >= half:
                digit -= full
            digits.append(digit)
            scalar -= digit
        else:
            digits.append(0)
        scalar >>= 1
    return digits


def _odd_multiples_affine(
    point: _Jacobian, curve: Curve, width: int = WNAF_WIDTH
) -> List[_Affine]:
    """[1P, 3P, 5P, ... (2^(w-1)-1)P] normalised to affine in one batch."""
    count = 1 << (width - 2)
    twice = _jac_double(point, curve)
    table = [point]
    for _ in range(count - 1):
        table.append(_jac_add(table[-1], twice, curve))
    return _batch_to_affine(table, curve)


def multiply_wnaf(
    point: _Jacobian,
    scalar: int,
    curve: Curve,
    odd_multiples: Optional[Sequence[_Affine]] = None,
    width: int = WNAF_WIDTH,
) -> _Jacobian:
    """wNAF scalar multiplication; the generic (cold-key) fast path."""
    scalar = scalar % curve.n
    if scalar == 0 or point[2] == 0:
        return _INFINITY
    if odd_multiples is None:
        odd_multiples = _odd_multiples_affine(point, curve, width)
    p = curve.p
    result = _INFINITY
    for digit in reversed(_wnaf(scalar, width)):
        result = _jac_double(result, curve)
        if digit > 0:
            ax, ay = odd_multiples[digit >> 1]
            result = _jac_add_affine(result, ax, ay, curve)
        elif digit < 0:
            ax, ay = odd_multiples[(-digit) >> 1]
            result = _jac_add_affine(result, ax, (-ay) % p, curve)
    return result


# -- fixed-base tables ---------------------------------------------------------


class FixedBaseTable:
    """Windowed fixed-base multiplication: radix-2^w digit decomposition
    over a precomputed table ``table[j][d-1] = d * 2^(j*w) * B``.

    A multiplication is then one mixed addition per non-zero digit — no
    doublings at all.  Entries are batch-normalised to affine so every
    addition is the cheap :func:`_jac_add_affine`.
    """

    __slots__ = ("curve", "width", "windows", "_rows")

    def __init__(self, curve: Curve, x: int, y: int, width: int):
        self.curve = curve
        self.width = width
        self.windows = (curve.n.bit_length() + width - 1) // width
        per_row = (1 << width) - 1
        flat: List[_Jacobian] = []
        base: _Jacobian = (x, y, 1)
        for _ in range(self.windows):
            entry = base
            flat.append(entry)
            for _ in range(per_row - 1):
                entry = _jac_add(entry, base, curve)
                flat.append(entry)
            for _ in range(width):
                base = _jac_double(base, curve)
        affine = _batch_to_affine(flat, curve)
        self._rows: List[List[_Affine]] = [
            affine[row * per_row : (row + 1) * per_row]
            for row in range(self.windows)
        ]

    def multiply(self, scalar: int) -> _Jacobian:
        """``scalar * B`` (scalar reduced mod n), in Jacobian form."""
        scalar = scalar % self.curve.n
        result = _INFINITY
        mask = (1 << self.width) - 1
        curve = self.curve
        window = 0
        while scalar:
            digit = scalar & mask
            if digit:
                ax, ay = self._rows[window][digit - 1]
                result = _jac_add_affine(result, ax, ay, curve)
            scalar >>= self.width
            window += 1
        return result


_generator_tables: Dict[str, FixedBaseTable] = {}
_generator_odd_multiples: Dict[str, List[_Affine]] = {}
#: wNAF width for the generator inside Strauss–Shamir: the odd-multiple
#: table is per-curve and built once, so a wider window is free.
GENERATOR_WNAF_WIDTH = 7


def generator_table(curve: Curve) -> FixedBaseTable:
    """The curve's fixed-base generator table (built lazily, cached)."""
    table = _generator_tables.get(curve.name)
    if table is None:
        table = FixedBaseTable(curve, curve.gx, curve.gy, GENERATOR_TABLE_WIDTH)
        _generator_tables[curve.name] = table
    return table


def generator_odd_multiples(curve: Curve) -> List[_Affine]:
    """Cached wNAF odd multiples of the generator (for Strauss–Shamir)."""
    table = _generator_odd_multiples.get(curve.name)
    if table is None:
        table = _odd_multiples_affine(
            (curve.gx, curve.gy, 1), curve, GENERATOR_WNAF_WIDTH
        )
        _generator_odd_multiples[curve.name] = table
    return table


def multiply_base(curve: Curve, scalar: int) -> _Jacobian:
    """``scalar * G`` through the fixed-base table."""
    return generator_table(curve).multiply(scalar)


# -- per-public-key precompute cache -------------------------------------------


class _PointEntry:
    __slots__ = ("odd_multiples", "fixed", "uses")

    def __init__(self, odd_multiples: List[_Affine]):
        self.odd_multiples = odd_multiples
        self.fixed: Optional[FixedBaseTable] = None
        self.uses = 0


class PointPrecomputeCache:
    """Bounded LRU of per-point precomputations, keyed by the point.

    First use of a point builds its wNAF odd multiples (cheap — eight
    additions); from :attr:`hot_threshold` uses on, the point earns a
    private fixed-base table and multiplications stop doubling entirely.
    This is what makes the hot verification keys (VCEK, ASK, ARK, site
    certificates) effectively table-backed after first contact.
    """

    def __init__(self, capacity: int = 48, hot_threshold: int = 2):
        self.capacity = capacity
        self.hot_threshold = hot_threshold
        self._entries: "OrderedDict[Tuple[str, int, int], _PointEntry]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.fixed_builds = 0

    def lookup(self, curve: Curve, x: int, y: int) -> _PointEntry:
        """The precompute entry for an affine point, building on miss."""
        key = (curve.name, x, y)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            entry = _PointEntry(_odd_multiples_affine((x, y, 1), curve))
            self._entries[key] = entry
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        else:
            self.hits += 1
            self._entries.move_to_end(key)
        entry.uses += 1
        if entry.fixed is None and entry.uses >= self.hot_threshold:
            entry.fixed = FixedBaseTable(curve, x, y, POINT_TABLE_WIDTH)
            self.fixed_builds += 1
        return entry

    def peek(self, curve: Curve, x: int, y: int) -> Optional[_PointEntry]:
        """The entry for a point if present — never builds anything.

        The batch verifier uses this so cold keys don't get per-point
        odd-multiple builds (it amortises those across the whole batch
        and then :meth:`seed`\\ s the results back in).
        """
        key = (curve.name, x, y)
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            entry.uses += 1
        return entry

    def seed(self, curve: Curve, x: int, y: int,
             odd_multiples: List[_Affine]) -> _PointEntry:
        """Insert externally built odd multiples for a point (counted as
        the miss the builder absorbed), so later per-signature
        verifications of the same key start warm."""
        key = (curve.name, x, y)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            entry = _PointEntry(list(odd_multiples))
            self._entries[key] = entry
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        entry.uses += 1
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict:
        """Plain-data counters for benchmarks and the trace layer."""
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "fixed_tables_built": self.fixed_builds,
        }


_point_cache = PointPrecomputeCache()


def get_point_cache() -> PointPrecomputeCache:
    """The process-wide per-public-key precompute cache."""
    return _point_cache


def reset_point_cache(
    capacity: int = 48, hot_threshold: int = 2
) -> PointPrecomputeCache:
    """Install (and return) a fresh process-wide point cache."""
    global _point_cache
    _point_cache = PointPrecomputeCache(capacity, hot_threshold)
    return _point_cache


# -- joint multiplication (ECDSA verification) ---------------------------------


def shamir_multiply_jac(
    curve: Curve,
    u1: int,
    qx: int,
    qy: int,
    u2: int,
    q_odd_multiples: Optional[Sequence[_Affine]] = None,
) -> _Jacobian:
    """Strauss–Shamir joint multiplication ``u1*G + u2*Q``.

    Both wNAF expansions are interleaved over one shared doubling chain,
    so the combination costs barely more than a single multiplication.
    """
    u1 %= curve.n
    u2 %= curve.n
    g_table = generator_odd_multiples(curve)
    if q_odd_multiples is None:
        q_odd_multiples = _odd_multiples_affine((qx, qy, 1), curve)
    d1 = _wnaf(u1, GENERATOR_WNAF_WIDTH)
    d2 = _wnaf(u2, WNAF_WIDTH)
    p = curve.p
    result = _INFINITY
    for index in range(max(len(d1), len(d2)) - 1, -1, -1):
        result = _jac_double(result, curve)
        if index < len(d1):
            digit = d1[index]
            if digit > 0:
                ax, ay = g_table[digit >> 1]
                result = _jac_add_affine(result, ax, ay, curve)
            elif digit < 0:
                ax, ay = g_table[(-digit) >> 1]
                result = _jac_add_affine(result, ax, (-ay) % p, curve)
        if index < len(d2):
            digit = d2[index]
            if digit > 0:
                ax, ay = q_odd_multiples[digit >> 1]
                result = _jac_add_affine(result, ax, ay, curve)
            elif digit < 0:
                ax, ay = q_odd_multiples[(-digit) >> 1]
                result = _jac_add_affine(result, ax, (-ay) % p, curve)
    return result


def verification_multiply_jac(
    curve: Curve, u1: int, qx: int, qy: int, u2: int
) -> _Jacobian:
    """``u1*G + u2*Q`` choosing the fastest available strategy for Q.

    Hot Q (fixed-base table cached): both halves are table-backed mixed
    additions with no doubling chain at all.  Cold Q: one Strauss–Shamir
    pass over its freshly cached odd multiples.
    """
    entry = _point_cache.lookup(curve, qx, qy)
    if entry.fixed is not None:
        return _jac_add(
            generator_table(curve).multiply(u1),
            entry.fixed.multiply(u2),
            curve,
        )
    return shamir_multiply_jac(
        curve, u1, qx, qy, u2, q_odd_multiples=entry.odd_multiples
    )


def verification_multiply(
    curve: Curve, u1: int, qx: int, qy: int, u2: int
) -> Optional[int]:
    """Affine x-coordinate of ``u1*G + u2*Q`` (None for infinity) — the
    single normalisation at the engine boundary."""
    return _jac_x_affine(verification_multiply_jac(curve, u1, qx, qy, u2), curve)


class Point:
    """An affine point on a :class:`Curve`, or the point at infinity.

    Instances are immutable; arithmetic returns new points.
    """

    __slots__ = ("curve", "x", "y")

    def __init__(self, curve: Curve, x: Optional[int], y: Optional[int]):
        self.curve = curve
        self.x = x
        self.y = y
        if not self.is_infinity and not self._on_curve():
            raise InvalidPointError(f"point not on {curve.name}")

    @classmethod
    def infinity(cls, curve: Curve) -> "Point":
        """The point at infinity."""
        return cls(curve, None, None)

    @classmethod
    def _trusted(cls, curve: Curve, x: int, y: int) -> "Point":
        """Internal constructor for points produced by the engine itself:
        on the curve by construction, so the revalidation is skipped."""
        point = object.__new__(cls)
        point.curve = curve
        point.x = x
        point.y = y
        return point

    @property
    def is_infinity(self) -> bool:
        """Whether this is the point at infinity."""
        return self.x is None

    def _on_curve(self) -> bool:
        p = self.curve.p
        lhs = (self.y * self.y) % p
        rhs = (self.x * self.x * self.x + self.curve.a * self.x + self.curve.b) % p
        return lhs == rhs

    def _jacobian(self) -> _Jacobian:
        if self.is_infinity:
            return _INFINITY
        return (self.x, self.y, 1)

    @classmethod
    def _from_jacobian(cls, jac: _Jacobian, curve: Curve) -> "Point":
        affine = _jac_to_affine(jac, curve)
        if affine is None:
            return cls.infinity(curve)
        return cls._trusted(curve, affine[0], affine[1])

    @property
    def is_generator(self) -> bool:
        """Whether this is the curve's base point."""
        return self.x == self.curve.gx and self.y == self.curve.gy

    def __add__(self, other: "Point") -> "Point":
        if self.curve is not other.curve and self.curve != other.curve:
            raise ValueError("points on different curves")
        jac = _jac_add(self._jacobian(), other._jacobian(), self.curve)
        return Point._from_jacobian(jac, self.curve)

    def __mul__(self, scalar: int) -> "Point":
        if not isinstance(scalar, int):
            return NotImplemented
        if self.is_infinity:
            return self
        if self.is_generator:
            jac = multiply_base(self.curve, scalar)
        else:
            jac = multiply_wnaf(self._jacobian(), scalar, self.curve)
        return Point._from_jacobian(jac, self.curve)

    __rmul__ = __mul__

    def __neg__(self) -> "Point":
        if self.is_infinity:
            return self
        return Point._trusted(self.curve, self.x, (-self.y) % self.curve.p)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Point):
            return NotImplemented
        return (
            self.curve.name == other.curve.name
            and self.x == other.x
            and self.y == other.y
        )

    def __hash__(self) -> int:
        return hash((self.curve.name, self.x, self.y))

    def __repr__(self) -> str:
        if self.is_infinity:
            return f"Point({self.curve.name}, infinity)"
        return f"Point({self.curve.name}, x=0x{self.x:x}, y=0x{self.y:x})"

    def encode(self) -> bytes:
        """Uncompressed SEC1 encoding (0x04 || X || Y); infinity is 0x00."""
        if self.is_infinity:
            return b"\x00"
        size = self.curve.coordinate_size
        return b"\x04" + self.x.to_bytes(size, "big") + self.y.to_bytes(size, "big")

    @classmethod
    def decode(cls, curve: Curve, data: bytes) -> "Point":
        """Decode a point produced by :meth:`encode`, validating it."""
        if data == b"\x00":
            return cls.infinity(curve)
        size = curve.coordinate_size
        if len(data) != 1 + 2 * size or data[0] != 0x04:
            raise InvalidPointError("malformed point encoding")
        x = int.from_bytes(data[1 : 1 + size], "big")
        y = int.from_bytes(data[1 + size :], "big")
        if not (0 <= x < curve.p and 0 <= y < curve.p):
            raise InvalidPointError("coordinate out of range")
        return cls(curve, x, y)
