"""Elliptic curve arithmetic over prime fields (short Weierstrass form).

Implements the NIST curves P-256 and P-384 from scratch.  P-384 is what
AMD uses to sign SEV-SNP attestation reports (the VCEK is an ECDSA P-384
key), and P-256 is used for VM/TLS identities where smaller signatures
suffice.

Internally points are manipulated in Jacobian projective coordinates so a
scalar multiplication costs no field inversions until the final
normalisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


class InvalidPointError(ValueError):
    """Raised when coordinates do not lie on the curve."""


@dataclass(frozen=True)
class Curve:
    """Domain parameters of a short Weierstrass curve y^2 = x^3 + ax + b."""

    name: str
    p: int  # field prime
    a: int
    b: int
    gx: int  # generator
    gy: int
    n: int  # group order
    h: int  # cofactor

    @property
    def coordinate_size(self) -> int:
        """Size in bytes of one field element."""
        return (self.p.bit_length() + 7) // 8

    @property
    def generator(self) -> "Point":
        """The curve's base point."""
        return Point(self, self.gx, self.gy)

    def point(self, x: int, y: int) -> "Point":
        """Construct and validate an affine point on this curve."""
        return Point(self, x, y)


P256 = Curve(
    name="P-256",
    p=0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF,
    a=-3,
    b=0x5AC635D8AA3A93E7B3EBBD55769886BC651D06B0CC53B0F63BCE3C3E27D2604B,
    gx=0x6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296,
    gy=0x4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5,
    n=0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551,
    h=1,
)

P384 = Curve(
    name="P-384",
    p=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFE
    * (1 << 128)
    + 0xFFFFFFFF0000000000000000FFFFFFFF,
    a=-3,
    b=0xB3312FA7E23EE7E4988E056BE3F82D19181D9C6EFE8141120314088F5013875A
    * (1 << 128)
    + 0xC656398D8A2ED19D2A85C8EDD3EC2AEF,
    gx=0xAA87CA22BE8B05378EB1C71EF320AD746E1D3B628BA79B9859F741E082542A38
    * (1 << 128)
    + 0x5502F25DBF55296C3A545E3872760AB7,
    gy=0x3617DE4A96262C6F5D9E98BF9292DC29F8F41DBD289A147CE9DA3113B5F0B8C0
    * (1 << 128)
    + 0x0A60B1CE1D7E819D7A431D7C90EA0E5F,
    n=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFC7634D81F4372DDF
    * (1 << 128)
    + 0x581A0DB248B0A77AECEC196ACCC52973,
    h=1,
)

CURVES = {curve.name: curve for curve in (P256, P384)}


def get_curve(name: str) -> Curve:
    """Look up a curve by its registered name ("P-256", "P-384")."""
    try:
        return CURVES[name]
    except KeyError:
        raise ValueError(f"unknown curve {name!r}") from None


# Jacobian coordinates: (X, Y, Z) with x = X/Z^2, y = Y/Z^3.
_Jacobian = Tuple[int, int, int]
_INFINITY: _Jacobian = (1, 1, 0)


def _jac_double(point: _Jacobian, curve: Curve) -> _Jacobian:
    x1, y1, z1 = point
    p = curve.p
    if z1 == 0 or y1 == 0:
        return _INFINITY
    ysq = (y1 * y1) % p
    s = (4 * x1 * ysq) % p
    zz = (z1 * z1) % p
    m = (3 * x1 * x1 + curve.a * zz * zz) % p
    x3 = (m * m - 2 * s) % p
    y3 = (m * (s - x3) - 8 * ysq * ysq) % p
    z3 = (2 * y1 * z1) % p
    return x3, y3, z3


def _jac_add(left: _Jacobian, right: _Jacobian, curve: Curve) -> _Jacobian:
    x1, y1, z1 = left
    x2, y2, z2 = right
    p = curve.p
    if z1 == 0:
        return right
    if z2 == 0:
        return left
    z1sq = (z1 * z1) % p
    z2sq = (z2 * z2) % p
    u1 = (x1 * z2sq) % p
    u2 = (x2 * z1sq) % p
    s1 = (y1 * z2sq * z2) % p
    s2 = (y2 * z1sq * z1) % p
    if u1 == u2:
        if s1 != s2:
            return _INFINITY
        return _jac_double(left, curve)
    h = (u2 - u1) % p
    r = (s2 - s1) % p
    hsq = (h * h) % p
    hcu = (h * hsq) % p
    u1hsq = (u1 * hsq) % p
    x3 = (r * r - hcu - 2 * u1hsq) % p
    y3 = (r * (u1hsq - x3) - s1 * hcu) % p
    z3 = (h * z1 * z2) % p
    return x3, y3, z3


def _jac_multiply(point: _Jacobian, scalar: int, curve: Curve) -> _Jacobian:
    if scalar % curve.n == 0 or point[2] == 0:
        return _INFINITY
    scalar = scalar % curve.n
    result = _INFINITY
    addend = point
    while scalar:
        if scalar & 1:
            result = _jac_add(result, addend, curve)
        addend = _jac_double(addend, curve)
        scalar >>= 1
    return result


def _jac_to_affine(point: _Jacobian, curve: Curve) -> Optional[Tuple[int, int]]:
    x, y, z = point
    if z == 0:
        return None
    p = curve.p
    z_inv = pow(z, p - 2, p)
    z_inv_sq = (z_inv * z_inv) % p
    return (x * z_inv_sq) % p, (y * z_inv_sq * z_inv) % p


class Point:
    """An affine point on a :class:`Curve`, or the point at infinity.

    Instances are immutable; arithmetic returns new points.
    """

    __slots__ = ("curve", "x", "y")

    def __init__(self, curve: Curve, x: Optional[int], y: Optional[int]):
        self.curve = curve
        self.x = x
        self.y = y
        if not self.is_infinity and not self._on_curve():
            raise InvalidPointError(f"point not on {curve.name}")

    @classmethod
    def infinity(cls, curve: Curve) -> "Point":
        """The point at infinity."""
        return cls(curve, None, None)

    @property
    def is_infinity(self) -> bool:
        """Whether this is the point at infinity."""
        return self.x is None

    def _on_curve(self) -> bool:
        p = self.curve.p
        lhs = (self.y * self.y) % p
        rhs = (self.x * self.x * self.x + self.curve.a * self.x + self.curve.b) % p
        return lhs == rhs

    def _jacobian(self) -> _Jacobian:
        if self.is_infinity:
            return _INFINITY
        return (self.x, self.y, 1)

    @classmethod
    def _from_jacobian(cls, jac: _Jacobian, curve: Curve) -> "Point":
        affine = _jac_to_affine(jac, curve)
        if affine is None:
            return cls.infinity(curve)
        return cls(curve, affine[0], affine[1])

    def __add__(self, other: "Point") -> "Point":
        if self.curve is not other.curve and self.curve != other.curve:
            raise ValueError("points on different curves")
        jac = _jac_add(self._jacobian(), other._jacobian(), self.curve)
        return Point._from_jacobian(jac, self.curve)

    def __mul__(self, scalar: int) -> "Point":
        if not isinstance(scalar, int):
            return NotImplemented
        jac = _jac_multiply(self._jacobian(), scalar, self.curve)
        return Point._from_jacobian(jac, self.curve)

    __rmul__ = __mul__

    def __neg__(self) -> "Point":
        if self.is_infinity:
            return self
        return Point(self.curve, self.x, (-self.y) % self.curve.p)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Point):
            return NotImplemented
        return (
            self.curve.name == other.curve.name
            and self.x == other.x
            and self.y == other.y
        )

    def __hash__(self) -> int:
        return hash((self.curve.name, self.x, self.y))

    def __repr__(self) -> str:
        if self.is_infinity:
            return f"Point({self.curve.name}, infinity)"
        return f"Point({self.curve.name}, x=0x{self.x:x}, y=0x{self.y:x})"

    def encode(self) -> bytes:
        """Uncompressed SEC1 encoding (0x04 || X || Y); infinity is 0x00."""
        if self.is_infinity:
            return b"\x00"
        size = self.curve.coordinate_size
        return b"\x04" + self.x.to_bytes(size, "big") + self.y.to_bytes(size, "big")

    @classmethod
    def decode(cls, curve: Curve, data: bytes) -> "Point":
        """Decode a point produced by :meth:`encode`, validating it."""
        if data == b"\x00":
            return cls.infinity(curve)
        size = curve.coordinate_size
        if len(data) != 1 + 2 * size or data[0] != 0x04:
            raise InvalidPointError("malformed point encoding")
        x = int.from_bytes(data[1 : 1 + size], "big")
        y = int.from_bytes(data[1 + size :], "big")
        if not (0 <= x < curve.p and 0 <= y < curve.p):
            raise InvalidPointError("coordinate out of range")
        return cls(curve, x, y)
