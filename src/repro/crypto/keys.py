"""Algorithm-agnostic key handles.

Certificates, CSRs, and attestation flows shouldn't care whether a key
is ECDSA or RSA; these thin wrappers give both a uniform
sign/verify/encode surface and a stable fingerprint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from . import encoding, sigcache
from .drbg import HmacDrbg
from .ec import get_curve
from .ecdsa import EcdsaPrivateKey, EcdsaPublicKey
from .rsa import RsaPrivateKey, RsaPublicKey

_PublicInner = Union[EcdsaPublicKey, RsaPublicKey]
_PrivateInner = Union[EcdsaPrivateKey, RsaPrivateKey]


class KeyError_(ValueError):
    """Raised on malformed key encodings or algorithm mismatches."""


@dataclass(frozen=True)
class PublicKey:
    """A verification key of either algorithm."""

    algorithm: str  # "ecdsa" or "rsa"
    inner: _PublicInner

    def verify(self, message: bytes, signature: bytes, hash_name: str = "sha256") -> bool:
        """Check the signature; True if it verifies.

        Runs through the process-wide verification cache: x509 chain
        links, TLS handshake transcripts, and ACME proofs re-verify the
        same ``(key, message, signature)`` tuples constantly, and a hit
        binds all three so it is never weaker than a fresh check.
        """
        return sigcache.cached_verify(
            self, message, signature, hash_name, verifier=self.inner.verify
        )

    def encode(self) -> bytes:
        """Serialise to canonical TLV bytes."""
        return encoding.encode({"alg": self.algorithm, "key": self.inner.encode()})

    @classmethod
    def decode(cls, data: bytes) -> "PublicKey":
        """Parse an instance back out of canonical TLV bytes."""
        decoded = encoding.decode(data)
        if not isinstance(decoded, dict) or set(decoded) != {"alg", "key"}:
            raise KeyError_("malformed public key encoding")
        algorithm = decoded["alg"]
        if algorithm == "ecdsa":
            return cls(algorithm, EcdsaPublicKey.decode(decoded["key"]))
        if algorithm == "rsa":
            return cls(algorithm, RsaPublicKey.decode(decoded["key"]))
        raise KeyError_(f"unknown key algorithm {algorithm!r}")

    def fingerprint(self) -> bytes:
        """SHA-256 fingerprint over the canonical encoding."""
        import hashlib

        return hashlib.sha256(self.encode()).digest()


@dataclass(frozen=True)
class PrivateKey:
    """A signing key of either algorithm."""

    algorithm: str
    inner: _PrivateInner

    @classmethod
    def generate_ecdsa(cls, rng: HmacDrbg, curve_name: str = "P-256") -> "PrivateKey":
        """Generate an ECDSA key on the named curve."""
        return cls("ecdsa", EcdsaPrivateKey.generate(get_curve(curve_name), rng))

    @classmethod
    def generate_rsa(cls, rng: HmacDrbg, bits: int = 1024) -> "PrivateKey":
        """Generate an RSA key of the given modulus size."""
        return cls("rsa", RsaPrivateKey.generate(bits, rng))

    @property
    def preferred_hash(self) -> str:
        """The hash matching this key's strength: sha384 for ECDSA keys
        whose curve order exceeds 256 bits (P-384), sha256 otherwise."""
        if self.algorithm == "ecdsa" and self.inner.curve.coordinate_size >= 48:
            return "sha384"
        return "sha256"

    def sign(self, message: bytes, hash_name: str = "sha256") -> bytes:
        """Sign a message; returns the signature bytes."""
        return self.inner.sign(message, hash_name)

    def public_key(self) -> PublicKey:
        """The corresponding public key."""
        return PublicKey(self.algorithm, self.inner.public_key())
