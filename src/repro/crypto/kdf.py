"""Key derivation functions: HKDF (RFC 5869) and PBKDF2 (RFC 2898).

HKDF derives the AMD-SP sealing keys and TLS session keys; PBKDF2 with
1000 iterations is the key-slot KDF of the LUKS-like dm-crypt header,
matching the paper's cryptsetup configuration (section 6.3.1).
"""

from __future__ import annotations

import hashlib
import hmac


def hkdf_extract(salt: bytes, input_key_material: bytes, hash_name: str = "sha256") -> bytes:
    """HKDF-Extract: PRK = HMAC(salt, IKM)."""
    if not salt:
        salt = b"\x00" * hashlib.new(hash_name).digest_size
    return hmac.new(salt, input_key_material, hash_name).digest()


def hkdf_expand(prk: bytes, info: bytes, length: int, hash_name: str = "sha256") -> bytes:
    """HKDF-Expand: derive *length* bytes bound to *info*."""
    digest_size = hashlib.new(hash_name).digest_size
    if length > 255 * digest_size:
        raise ValueError("HKDF output length too large")
    if length < 0:
        raise ValueError("HKDF output length must be non-negative")
    output = b""
    block = b""
    counter = 1
    while len(output) < length:
        block = hmac.new(prk, block + info + bytes([counter]), hash_name).digest()
        output += block
        counter += 1
    return output[:length]


def hkdf(
    input_key_material: bytes,
    salt: bytes = b"",
    info: bytes = b"",
    length: int = 32,
    hash_name: str = "sha256",
) -> bytes:
    """One-shot HKDF extract-then-expand."""
    prk = hkdf_extract(salt, input_key_material, hash_name)
    return hkdf_expand(prk, info, length, hash_name)


def pbkdf2(
    password: bytes,
    salt: bytes,
    iterations: int = 1000,
    length: int = 32,
    hash_name: str = "sha256",
) -> bytes:
    """PBKDF2-HMAC key stretching (delegates to the C implementation)."""
    if iterations <= 0:
        raise ValueError("iterations must be positive")
    return hashlib.pbkdf2_hmac(hash_name, password, salt, iterations, dklen=length)
