"""Shamir secret sharing over a prime field.

Used by the Internet Computer substrate (``repro.ic``) to implement
threshold signing: the subnet's signing key is dealt as Shamir shares to
the replicas, and any t of them can reconstruct a signature contribution
while fewer than t learn nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from .drbg import HmacDrbg

# The order of P-256; sharing ECDSA scalars requires arithmetic mod n.
DEFAULT_PRIME = 0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551


class ShamirError(ValueError):
    """Raised on invalid sharing parameters or insufficient shares."""


@dataclass(frozen=True)
class Share:
    """One share: the evaluation of the secret polynomial at x = index."""

    index: int  # 1-based; x = 0 is the secret itself
    value: int


def split_secret(
    secret: int,
    threshold: int,
    num_shares: int,
    rng: HmacDrbg,
    prime: int = DEFAULT_PRIME,
) -> List[Share]:
    """Split *secret* into *num_shares* shares, any *threshold* of which
    reconstruct it."""
    if not (1 <= threshold <= num_shares):
        raise ShamirError("need 1 <= threshold <= num_shares")
    if num_shares >= prime:
        raise ShamirError("too many shares for field size")
    if not (0 <= secret < prime):
        raise ShamirError("secret out of field range")
    coefficients = [secret] + [rng.randint_below(prime) for _ in range(threshold - 1)]
    shares = []
    for index in range(1, num_shares + 1):
        value = 0
        for coefficient in reversed(coefficients):
            value = (value * index + coefficient) % prime
        shares.append(Share(index=index, value=value))
    return shares


def reconstruct_secret(
    shares: Iterable[Share], threshold: int, prime: int = DEFAULT_PRIME
) -> int:
    """Lagrange-interpolate the secret at x = 0 from *threshold* shares."""
    share_list = list(shares)
    if len(share_list) < threshold:
        raise ShamirError(
            f"need {threshold} shares, got {len(share_list)}"
        )
    share_list = share_list[:threshold]
    indices = [share.index for share in share_list]
    if len(set(indices)) != len(indices):
        raise ShamirError("duplicate share indices")
    secret = 0
    for i, share in enumerate(share_list):
        numerator = 1
        denominator = 1
        for j, other in enumerate(share_list):
            if i == j:
                continue
            numerator = (numerator * (-other.index)) % prime
            denominator = (denominator * (share.index - other.index)) % prime
        lagrange = (numerator * pow(denominator, prime - 2, prime)) % prime
        secret = (secret + share.value * lagrange) % prime
    return secret
