"""From-scratch cryptographic toolkit underpinning the Revelio reproduction.

Modules
-------
encoding
    Canonical TLV serialisation (the DER analogue everything signs over).
drbg
    Deterministic HMAC-DRBG randomness (SP 800-90A).
ec / ecdsa
    NIST P-256 / P-384 curves and ECDSA with RFC 6979 nonces; ECDH.
rsa
    RSA keygen (Miller-Rabin), PKCS#1-v1.5-style signatures, OAEP-style
    encryption.
aes / modes
    AES (numpy-batched) with XTS-plain64, CTR, and encrypt-then-MAC AEAD.
kdf
    HKDF and PBKDF2.
merkle
    Merkle trees (the dm-verity data structure).
x509
    Certificates, CSRs, chains, and validation.
keys
    Algorithm-agnostic key handles.
sigcache
    Bounded LRU memoization of signature verifications.
shamir
    Shamir secret sharing (threshold signing substrate for repro.ic).
"""

from .aes import AES, AesError
from .drbg import HmacDrbg, system_drbg
from .ec import P256, P384, Curve, Point, get_curve
from .ecdsa import (
    CurveHashMismatchWarning,
    EcdsaPrivateKey,
    EcdsaPublicKey,
    generate_keypair,
)
from .encoding import DecodingError, EncodingError, decode, encode
from .hashes import sha256, sha384, sha512
from .kdf import hkdf, hkdf_expand, hkdf_extract, pbkdf2
from .keys import PrivateKey, PublicKey
from .merkle import MerkleError, MerkleProof, MerkleTree
from .modes import AeadCipher, AeadError, CtrCipher, XtsCipher
from .rsa import RsaPrivateKey, RsaPublicKey
from .shamir import Share, reconstruct_secret, split_secret
from .sigcache import SignatureVerificationCache, cached_verify
from .x509 import (
    Certificate,
    CertificateError,
    CertificateIssuer,
    CertificateSigningRequest,
    Name,
    validate_chain,
)

__all__ = [
    "AES",
    "AesError",
    "AeadCipher",
    "AeadError",
    "Certificate",
    "CertificateError",
    "CertificateIssuer",
    "CertificateSigningRequest",
    "CtrCipher",
    "Curve",
    "CurveHashMismatchWarning",
    "DecodingError",
    "EcdsaPrivateKey",
    "EcdsaPublicKey",
    "EncodingError",
    "HmacDrbg",
    "MerkleError",
    "MerkleProof",
    "MerkleTree",
    "Name",
    "P256",
    "P384",
    "Point",
    "PrivateKey",
    "PublicKey",
    "RsaPrivateKey",
    "RsaPublicKey",
    "Share",
    "SignatureVerificationCache",
    "XtsCipher",
    "cached_verify",
    "decode",
    "encode",
    "generate_keypair",
    "get_curve",
    "hkdf",
    "hkdf_expand",
    "hkdf_extract",
    "pbkdf2",
    "reconstruct_secret",
    "sha256",
    "sha384",
    "sha512",
    "split_secret",
    "system_drbg",
    "validate_chain",
]
