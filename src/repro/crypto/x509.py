"""Certificates, certificate chains, and certificate signing requests.

A simplified but complete X.509 analogue over the canonical TLV encoding:
subject/issuer names, validity windows, subject-alternative names, basic
constraints (CA flag + path length), key usage, serial numbers, and
chain validation up to a set of trust anchors.  This is the PKI both the
web TLS stack (``repro.net.tls``) and the AMD VCEK chain
(``repro.amd.kds``) are built on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence

from . import encoding
from .keys import PrivateKey, PublicKey


class CertificateError(ValueError):
    """Raised on malformed certificates or failed chain validation."""


@dataclass(frozen=True)
class Name:
    """A distinguished name, reduced to the fields the system uses."""

    common_name: str
    organization: str = ""
    country: str = ""

    def to_dict(self) -> dict:
        """Dict form for canonical TLV embedding."""
        return {
            "cn": self.common_name,
            "o": self.organization,
            "c": self.country,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Name":
        """Rebuild from the dict form."""
        return cls(
            common_name=data["cn"],
            organization=data.get("o", ""),
            country=data.get("c", ""),
        )


@dataclass(frozen=True)
class Certificate:
    """A signed binding of a subject name to a public key."""

    subject: Name
    issuer: Name
    public_key: PublicKey
    serial: int
    not_before: int  # simulated epoch seconds
    not_after: int
    is_ca: bool = False
    path_length: Optional[int] = None
    san: tuple = ()  # subject alternative names (DNS names)
    key_usage: tuple = ()
    extensions: tuple = ()  # ((name, bytes), ...) opaque extensions
    signature: bytes = b""
    signature_hash: str = "sha256"

    def tbs_bytes(self) -> bytes:
        """The to-be-signed canonical serialisation."""
        return encoding.encode(
            {
                "subject": self.subject.to_dict(),
                "issuer": self.issuer.to_dict(),
                "public_key": self.public_key.encode(),
                "serial": self.serial,
                "not_before": self.not_before,
                "not_after": self.not_after,
                "is_ca": self.is_ca,
                "path_length": self.path_length,
                "san": list(self.san),
                "key_usage": list(self.key_usage),
                "extensions": [[name, value] for name, value in self.extensions],
                "signature_hash": self.signature_hash,
            }
        )

    def encode(self) -> bytes:
        """Serialise to canonical TLV bytes."""
        return encoding.encode({"tbs": self.tbs_bytes(), "sig": self.signature})

    @classmethod
    def decode(cls, data: bytes) -> "Certificate":
        """Parse an instance back out of canonical TLV bytes."""
        outer = encoding.decode(data)
        if not isinstance(outer, dict) or set(outer) != {"tbs", "sig"}:
            raise CertificateError("malformed certificate envelope")
        tbs = encoding.decode(outer["tbs"])
        if not isinstance(tbs, dict):
            raise CertificateError("malformed certificate body")
        try:
            cert = cls(
                subject=Name.from_dict(tbs["subject"]),
                issuer=Name.from_dict(tbs["issuer"]),
                public_key=PublicKey.decode(tbs["public_key"]),
                serial=tbs["serial"],
                not_before=tbs["not_before"],
                not_after=tbs["not_after"],
                is_ca=tbs["is_ca"],
                path_length=tbs["path_length"],
                san=tuple(tbs["san"]),
                key_usage=tuple(tbs["key_usage"]),
                extensions=tuple((n, v) for n, v in tbs["extensions"]),
                signature=outer["sig"],
                signature_hash=tbs["signature_hash"],
            )
        except (KeyError, TypeError) as exc:
            raise CertificateError("missing certificate field") from exc
        return cert

    def fingerprint(self) -> bytes:
        """SHA-256 over the full (signed) certificate."""
        return hashlib.sha256(self.encode()).digest()

    def verify_signature(self, issuer_key: PublicKey) -> bool:
        """Check this certificate's signature against *issuer_key*."""
        if not self.signature:
            return False
        return issuer_key.verify(self.tbs_bytes(), self.signature, self.signature_hash)

    def is_valid_at(self, now: int) -> bool:
        """Whether *now* falls inside the validity window."""
        return self.not_before <= now <= self.not_after

    def matches_hostname(self, hostname: str) -> bool:
        """True if *hostname* is covered by CN or a SAN entry
        (supports a single leading ``*.`` wildcard label)."""
        candidates = [self.common_name_str()] + list(self.san)
        for pattern in candidates:
            if _hostname_matches(pattern, hostname):
                return True
        return False

    def common_name_str(self) -> str:
        """The subject common name."""
        return self.subject.common_name

    def extension(self, name: str) -> Optional[bytes]:
        """Look up an opaque extension value by name."""
        for ext_name, value in self.extensions:
            if ext_name == name:
                return value
        return None


def _hostname_matches(pattern: str, hostname: str) -> bool:
    pattern = pattern.lower()
    hostname = hostname.lower()
    if pattern == hostname:
        return True
    if pattern.startswith("*."):
        suffix = pattern[1:]
        return hostname.endswith(suffix) and hostname.count(".") == pattern.count(".")
    return False


@dataclass(frozen=True)
class CertificateSigningRequest:
    """A CSR: the subject's name, public key, and SANs, self-signed to
    prove possession of the private key (PKCS#10 analogue, section 2.2
    of the paper)."""

    subject: Name
    public_key: PublicKey
    san: tuple = ()
    signature: bytes = b""

    def tbs_bytes(self) -> bytes:
        """The to-be-signed canonical serialisation."""
        return encoding.encode(
            {
                "subject": self.subject.to_dict(),
                "public_key": self.public_key.encode(),
                "san": list(self.san),
            }
        )

    @classmethod
    def create(
        cls,
        subject: Name,
        private_key: PrivateKey,
        san: Sequence[str] = (),
    ) -> "CertificateSigningRequest":
        """Construct and validate an instance."""
        unsigned = cls(subject=subject, public_key=private_key.public_key(),
                       san=tuple(san))
        signature = private_key.sign(unsigned.tbs_bytes())
        return replace(unsigned, signature=signature)

    def verify(self) -> bool:
        """Proof-of-possession check: the CSR signature must verify
        under the embedded public key."""
        if not self.signature:
            return False
        return self.public_key.verify(self.tbs_bytes(), self.signature)

    def encode(self) -> bytes:
        """Serialise to canonical TLV bytes."""
        return encoding.encode({"tbs": self.tbs_bytes(), "sig": self.signature})

    @classmethod
    def decode(cls, data: bytes) -> "CertificateSigningRequest":
        """Parse an instance back out of canonical TLV bytes."""
        outer = encoding.decode(data)
        if not isinstance(outer, dict) or set(outer) != {"tbs", "sig"}:
            raise CertificateError("malformed CSR envelope")
        tbs = encoding.decode(outer["tbs"])
        return cls(
            subject=Name.from_dict(tbs["subject"]),
            public_key=PublicKey.decode(tbs["public_key"]),
            san=tuple(tbs["san"]),
            signature=outer["sig"],
        )

    def fingerprint(self) -> bytes:
        """SHA-256 over the signed CSR — what goes into REPORT_DATA."""
        return hashlib.sha256(self.encode()).digest()


@dataclass
class CertificateIssuer:
    """A signing identity (key + certificate) that can issue children."""

    certificate: Certificate
    private_key: PrivateKey
    _next_serial: int = field(default=1)

    def issue(
        self,
        subject: Name,
        public_key: PublicKey,
        not_before: int,
        not_after: int,
        is_ca: bool = False,
        path_length: Optional[int] = None,
        san: Sequence[str] = (),
        key_usage: Sequence[str] = (),
        extensions: Sequence[tuple] = (),
    ) -> Certificate:
        """Issue and sign a child certificate."""
        if not self.certificate.is_ca:
            raise CertificateError("issuer certificate is not a CA")
        hash_name = self.private_key.preferred_hash
        unsigned = Certificate(
            subject=subject,
            issuer=self.certificate.subject,
            public_key=public_key,
            serial=self._next_serial,
            not_before=not_before,
            not_after=not_after,
            is_ca=is_ca,
            path_length=path_length,
            san=tuple(san),
            key_usage=tuple(key_usage),
            extensions=tuple(extensions),
            signature_hash=hash_name,
        )
        self._next_serial += 1
        signature = self.private_key.sign(unsigned.tbs_bytes(), hash_name)
        return replace(unsigned, signature=signature)

    @classmethod
    def self_signed_root(
        cls,
        subject: Name,
        private_key: PrivateKey,
        not_before: int,
        not_after: int,
        path_length: Optional[int] = None,
    ) -> "CertificateIssuer":
        """Create a self-signed root CA."""
        hash_name = private_key.preferred_hash
        unsigned = Certificate(
            subject=subject,
            issuer=subject,
            public_key=private_key.public_key(),
            serial=0,
            not_before=not_before,
            not_after=not_after,
            is_ca=True,
            path_length=path_length,
            key_usage=("cert_sign",),
            signature_hash=hash_name,
        )
        signature = private_key.sign(unsigned.tbs_bytes(), hash_name)
        return cls(replace(unsigned, signature=signature), private_key)


def validate_chain(
    chain: Sequence[Certificate],
    trust_anchors: Sequence[Certificate],
    now: int,
    hostname: Optional[str] = None,
) -> None:
    """Validate *chain* (leaf first) up to one of *trust_anchors*.

    Checks signatures link by link, validity windows, CA flags, path
    length constraints, and (if given) hostname coverage of the leaf.
    Raises :class:`CertificateError` describing the first failure.
    """
    if not chain:
        raise CertificateError("empty certificate chain")
    anchors: Dict[bytes, Certificate] = {a.fingerprint(): a for a in trust_anchors}

    for index, cert in enumerate(chain):
        if not cert.is_valid_at(now):
            raise CertificateError(
                f"certificate {cert.subject.common_name!r} expired or not yet valid"
            )
        if index > 0:
            if not cert.is_ca:
                raise CertificateError(
                    f"intermediate {cert.subject.common_name!r} is not a CA"
                )
            if cert.path_length is not None and index - 1 > cert.path_length:
                raise CertificateError(
                    f"path length constraint violated at {cert.subject.common_name!r}"
                )

    for child, parent in zip(chain, chain[1:]):
        if child.issuer != parent.subject:
            raise CertificateError(
                f"issuer mismatch: {child.subject.common_name!r} not issued by "
                f"{parent.subject.common_name!r}"
            )
        if not child.verify_signature(parent.public_key):
            raise CertificateError(
                f"bad signature on {child.subject.common_name!r}"
            )

    top = chain[-1]
    if top.fingerprint() in anchors:
        pass  # the chain terminates at a trust anchor included verbatim
    else:
        anchor = _find_anchor_for(top, anchors.values())
        if anchor is None:
            raise CertificateError("chain does not terminate at a trust anchor")
        if not top.verify_signature(anchor.public_key):
            raise CertificateError("top of chain not signed by trust anchor")

    if hostname is not None and not chain[0].matches_hostname(hostname):
        raise CertificateError(
            f"leaf certificate does not cover hostname {hostname!r}"
        )


def _find_anchor_for(cert: Certificate, anchors) -> Optional[Certificate]:
    for anchor in anchors:
        if anchor.subject == cert.issuer and anchor.is_ca:
            return anchor
        if anchor.subject == cert.subject and anchor.is_ca and cert.is_ca:
            # Self-signed root presented in-chain but trusted via store.
            return anchor
    return None
