"""Revelio reproduction: trustworthy confidential VMs for the masses.

A complete Python implementation of the Revelio architecture
(MIDDLEWARE 2023) together with simulated versions of every substrate
its prototype depends on: AMD SEV-SNP hardware (AMD-SP, VCEK, KDS),
QEMU/OVMF measured direct boot, dm-verity / dm-crypt storage targets,
reproducible image builds, a TLS/PKI/ACME stack, a browser with the
Revelio web extension, and the paper's two use cases (a CryptPad-like
collaboration suite and an Internet Computer boundary node).

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reproduced tables and figures.
"""

__version__ = "1.0.0"
