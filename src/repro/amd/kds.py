"""The AMD Key Distribution Server (KDS).

Serves the certificate material a verifier needs to authenticate an
attestation report, exactly as https://kdsintf.amd.com does for real
SEV-SNP platforms:

* the **ARK** (AMD Root Key) — a self-signed root certificate,
* the **ASK** (AMD SEV Key) — an intermediate signed by the ARK,
* per-chip **VCEK** certificates — issued on demand for a
  (chip id, TCB version) pair and signed by the ASK.

The paper's Table 3 shows the KDS round trip dominating end-user
attestation latency (427.3 ms of 778.9 ms), which is why the web
extension caches VCEKs; the latency itself is modelled where the KDS is
attached to the simulated network (``repro.net``).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..crypto.x509 import Certificate, CertificateIssuer, Name
from .secure_processor import AmdKeyInfrastructure, SevError
from .tcb import TcbVersion

#: Simulated-epoch validity bounds for AMD certificates (they are long-lived).
_CERT_NOT_BEFORE = 0
_CERT_NOT_AFTER = 2**62


class KdsError(LookupError):
    """Raised when the KDS has no material for a requested chip."""


class KeyDistributionServer:
    """AMD's certificate endpoint for one product line."""

    def __init__(self, infrastructure: AmdKeyInfrastructure, product: str = "Milan"):
        self._infrastructure = infrastructure
        self.product = product
        ark_name = Name(f"ARK-{product}", organization="Advanced Micro Devices")
        ask_name = Name(f"SEV-{product}", organization="Advanced Micro Devices")
        self._ark = CertificateIssuer.self_signed_root(
            ark_name, infrastructure.ark_key, _CERT_NOT_BEFORE, _CERT_NOT_AFTER
        )
        ask_cert = self._ark.issue(
            ask_name,
            infrastructure.ask_key.public_key(),
            _CERT_NOT_BEFORE,
            _CERT_NOT_AFTER,
            is_ca=True,
            path_length=0,
            key_usage=("cert_sign",),
        )
        self._ask = CertificateIssuer(ask_cert, infrastructure.ask_key)
        self._vcek_cache: Dict[Tuple[bytes, TcbVersion], Certificate] = {}

    @property
    def ark_certificate(self) -> Certificate:
        """The trust anchor verifiers pin."""
        return self._ark.certificate

    @property
    def ask_certificate(self) -> Certificate:
        """The ASK (intermediate) certificate."""
        return self._ask.certificate

    def cert_chain(self) -> List[Certificate]:
        """The ASK -> ARK chain, as served by the /cert_chain endpoint."""
        return [self._ask.certificate, self._ark.certificate]

    def get_vcek_certificate(self, chip_id: bytes, tcb: TcbVersion) -> Certificate:
        """Issue (or re-serve) the VCEK certificate for a platform.

        The chip id and TCB version are embedded as certificate
        extensions, which lets a verifier cross-check them against the
        corresponding attestation report fields.
        """
        cache_key = (bytes(chip_id), tcb)
        cached = self._vcek_cache.get(cache_key)
        if cached is not None:
            return cached
        try:
            vcek_public = self._infrastructure.vcek_public_key(chip_id, tcb)
        except SevError:
            raise KdsError(f"unknown chip id {chip_id[:8].hex()}...") from None
        from ..crypto.keys import PublicKey

        certificate = self._ask.issue(
            Name(f"VCEK-{self.product}", organization="Advanced Micro Devices"),
            PublicKey("ecdsa", vcek_public),
            _CERT_NOT_BEFORE,
            _CERT_NOT_AFTER,
            key_usage=("digital_signature",),
            extensions=(
                ("amd.chip_id", bytes(chip_id)),
                ("amd.tcb", tcb.encode()),
            ),
        )
        self._vcek_cache[cache_key] = certificate
        return certificate
