"""SEV-SNP guest policy.

The guest policy is supplied by the VM owner at launch and enforced by
the AMD-SP: it controls debugging, migration, SMT, and the minimum ABI
version.  It is included in the attestation report so a verifier can
reject e.g. debuggable guests — Revelio VMs must never set ``debug``.
"""

from __future__ import annotations

from dataclasses import dataclass

_BIT_SMT = 16
_BIT_MIGRATE_MA = 18
_BIT_DEBUG = 19
_BIT_SINGLE_SOCKET = 20


_MODELLED_MASK = (
    0xFFFF
    | (1 << _BIT_SMT)
    | (1 << _BIT_MIGRATE_MA)
    | (1 << _BIT_DEBUG)
    | (1 << _BIT_SINGLE_SOCKET)
)


@dataclass(frozen=True)
class GuestPolicy:
    """Launch policy bits, mirroring the SNP policy QWORD.

    Bits this model doesn't interpret are carried verbatim in
    ``reserved_bits`` so decode -> encode is lossless (a signed report's
    policy field must survive a round trip bit for bit).
    """

    abi_major: int = 0
    abi_minor: int = 0
    smt_allowed: bool = True
    migrate_ma_allowed: bool = False
    debug_allowed: bool = False
    single_socket_required: bool = False
    reserved_bits: int = 0

    def __post_init__(self) -> None:
        if not (0 <= self.abi_major <= 0xFF and 0 <= self.abi_minor <= 0xFF):
            raise ValueError("ABI version components must fit in one byte")
        if self.reserved_bits & _MODELLED_MASK:
            raise ValueError("reserved_bits overlap modelled policy bits")
        if not (0 <= self.reserved_bits < (1 << 64)):
            raise ValueError("reserved_bits out of qword range")

    def encode_qword(self) -> int:
        """Pack into the 64-bit policy value of the SNP ABI."""
        value = self.abi_minor | (self.abi_major << 8) | self.reserved_bits
        if self.smt_allowed:
            value |= 1 << _BIT_SMT
        if self.migrate_ma_allowed:
            value |= 1 << _BIT_MIGRATE_MA
        if self.debug_allowed:
            value |= 1 << _BIT_DEBUG
        if self.single_socket_required:
            value |= 1 << _BIT_SINGLE_SOCKET
        return value

    @classmethod
    def decode_qword(cls, value: int) -> "GuestPolicy":
        """Unpack the 64-bit policy value of the SNP ABI."""
        return cls(
            abi_minor=value & 0xFF,
            abi_major=(value >> 8) & 0xFF,
            smt_allowed=bool(value & (1 << _BIT_SMT)),
            migrate_ma_allowed=bool(value & (1 << _BIT_MIGRATE_MA)),
            debug_allowed=bool(value & (1 << _BIT_DEBUG)),
            single_socket_required=bool(value & (1 << _BIT_SINGLE_SOCKET)),
            reserved_bits=value & ~_MODELLED_MASK,
        )


#: The policy Revelio VMs launch with: no debug, no migration agent.
REVELIO_POLICY = GuestPolicy(
    abi_major=1,
    abi_minor=51,
    smt_allowed=True,
    migrate_ma_allowed=False,
    debug_allowed=False,
)
