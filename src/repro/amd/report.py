"""The SNP ATTESTATION_REPORT structure.

A fixed binary layout closely following the SEV-SNP ABI (the field set
and sizes match the spec; reserved gaps are collapsed).  The report is
signed by the platform's VCEK with ECDSA P-384 over SHA-384, exactly as
real hardware does, so every verification path a real verifier would
exercise — signature, measurement comparison, REPORT_DATA binding,
chip-id pinning, TCB checks — runs for real in this reproduction.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace

from ..crypto import sigcache
from ..crypto.ecdsa import EcdsaPrivateKey, EcdsaPublicKey
from .policy import GuestPolicy
from .tcb import TcbVersion

REPORT_VERSION = 2
SIGNATURE_ALGO_ECDSA_P384_SHA384 = 1

MEASUREMENT_SIZE = 48
REPORT_DATA_SIZE = 64
CHIP_ID_SIZE = 64
HOST_DATA_SIZE = 32
REPORT_ID_SIZE = 32
FAMILY_ID_SIZE = 16
IMAGE_ID_SIZE = 16
SIGNATURE_SIZE = 96  # P-384 r || s

_HEADER = struct.Struct("<IIQ")  # version, guest_svn, policy


class ReportError(ValueError):
    """Raised on malformed report bytes."""


@dataclass(frozen=True)
class AttestationReport:
    """A parsed (or to-be-signed) SNP attestation report."""

    version: int
    guest_svn: int
    policy: GuestPolicy
    family_id: bytes
    image_id: bytes
    vmpl: int
    signature_algo: int
    current_tcb: TcbVersion
    platform_info: int
    report_data: bytes
    measurement: bytes
    host_data: bytes
    id_key_digest: bytes
    report_id: bytes
    reported_tcb: TcbVersion
    chip_id: bytes
    signature: bytes = b""

    def __post_init__(self) -> None:
        _require_size("report_data", self.report_data, REPORT_DATA_SIZE)
        _require_size("measurement", self.measurement, MEASUREMENT_SIZE)
        _require_size("host_data", self.host_data, HOST_DATA_SIZE)
        _require_size("chip_id", self.chip_id, CHIP_ID_SIZE)
        _require_size("report_id", self.report_id, REPORT_ID_SIZE)
        _require_size("family_id", self.family_id, FAMILY_ID_SIZE)
        _require_size("image_id", self.image_id, IMAGE_ID_SIZE)
        _require_size("id_key_digest", self.id_key_digest, MEASUREMENT_SIZE)

    def signed_bytes(self) -> bytes:
        """The byte region covered by the VCEK signature."""
        return (
            _HEADER.pack(self.version, self.guest_svn, self.policy.encode_qword())
            + self.family_id
            + self.image_id
            + struct.pack("<II", self.vmpl, self.signature_algo)
            + self.current_tcb.encode()
            + struct.pack("<Q", self.platform_info)
            + self.report_data
            + self.measurement
            + self.host_data
            + self.id_key_digest
            + self.report_id
            + self.reported_tcb.encode()
            + self.chip_id
        )

    def encode(self) -> bytes:
        """Full wire format: signed region followed by the signature."""
        if len(self.signature) != SIGNATURE_SIZE:
            raise ReportError("report is unsigned or has a malformed signature")
        return self.signed_bytes() + self.signature

    @classmethod
    def decode(cls, data: bytes) -> "AttestationReport":
        """Parse an instance back out of canonical TLV bytes."""
        body_size = (
            _HEADER.size
            + FAMILY_ID_SIZE
            + IMAGE_ID_SIZE
            + 8  # vmpl + signature_algo
            + 8  # current tcb
            + 8  # platform info
            + REPORT_DATA_SIZE
            + MEASUREMENT_SIZE
            + HOST_DATA_SIZE
            + MEASUREMENT_SIZE  # id_key_digest
            + REPORT_ID_SIZE
            + 8  # reported tcb
            + CHIP_ID_SIZE
        )
        if len(data) != body_size + SIGNATURE_SIZE:
            raise ReportError(
                f"attestation report must be {body_size + SIGNATURE_SIZE} bytes, "
                f"got {len(data)}"
            )
        offset = 0

        def take(size: int) -> bytes:
            """Consume the next *size* bytes of the buffer."""
            nonlocal offset
            chunk = data[offset : offset + size]
            offset += size
            return chunk

        version, guest_svn, policy_qword = _HEADER.unpack(take(_HEADER.size))
        family_id = take(FAMILY_ID_SIZE)
        image_id = take(IMAGE_ID_SIZE)
        vmpl, signature_algo = struct.unpack("<II", take(8))
        current_tcb = TcbVersion.decode(take(8))
        (platform_info,) = struct.unpack("<Q", take(8))
        report_data = take(REPORT_DATA_SIZE)
        measurement = take(MEASUREMENT_SIZE)
        host_data = take(HOST_DATA_SIZE)
        id_key_digest = take(MEASUREMENT_SIZE)
        report_id = take(REPORT_ID_SIZE)
        reported_tcb = TcbVersion.decode(take(8))
        chip_id = take(CHIP_ID_SIZE)
        signature = take(SIGNATURE_SIZE)
        return cls(
            version=version,
            guest_svn=guest_svn,
            policy=GuestPolicy.decode_qword(policy_qword),
            family_id=family_id,
            image_id=image_id,
            vmpl=vmpl,
            signature_algo=signature_algo,
            current_tcb=current_tcb,
            platform_info=platform_info,
            report_data=report_data,
            measurement=measurement,
            host_data=host_data,
            id_key_digest=id_key_digest,
            report_id=report_id,
            reported_tcb=reported_tcb,
            chip_id=chip_id,
            signature=signature,
        )

    def sign(self, vcek_private: EcdsaPrivateKey) -> "AttestationReport":
        """Return a copy signed by *vcek_private* (ECDSA P-384/SHA-384)."""
        signature = vcek_private.sign(self.signed_bytes(), "sha384")
        return replace(self, signature=signature)

    def verify_signature(self, vcek_public: EcdsaPublicKey) -> bool:
        """Check the VCEK signature over the signed region.

        Memoized: the extension re-verifies the same report on every
        page load, so repeats are served from the verification cache.
        """
        if len(self.signature) != SIGNATURE_SIZE:
            return False
        return sigcache.cached_verify(
            vcek_public, self.signed_bytes(), self.signature, "sha384"
        )


def _require_size(name: str, value: bytes, size: int) -> None:
    if len(value) != size:
        raise ReportError(f"{name} must be {size} bytes, got {len(value)}")
