"""The AMD Secure Processor (AMD-SP) and its key infrastructure.

``AmdKeyInfrastructure`` plays the role of AMD the manufacturer: it owns
the ARK/ASK signing hierarchy and fuses a unique secret into every chip
it provisions.  ``SecureProcessor`` is the on-die security co-processor:
it measures guests at launch, signs attestation reports with the chip's
VCEK, and derives measurement-bound sealing keys over a protected
guest channel (``GuestContext``).

Everything the hypervisor does is *outside* this module — the AMD-SP is
the root of trust, and nothing here is reachable by host software except
through the modelled interfaces, mirroring the paper's threat model
(section 3.2: "the only component that is considered trusted on the
host platform ... is the CPU hardware along with the AMD Secure
Processor implementation").
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..crypto.drbg import HmacDrbg
from ..crypto.ec import P384
from ..crypto.ecdsa import EcdsaPrivateKey
from ..crypto.kdf import hkdf
from ..crypto.keys import PrivateKey
from .policy import GuestPolicy
from .report import (
    REPORT_VERSION,
    SIGNATURE_ALGO_ECDSA_P384_SHA384,
    AttestationReport,
    ReportError,
)
from .tcb import TcbVersion

_DEFAULT_FAMILY_ID = b"\x00" * 16
_DEFAULT_IMAGE_ID = b"\x00" * 16


class SevError(RuntimeError):
    """Raised on invalid AMD-SP operations."""


def launch_digest(initial_state: bytes, policy: GuestPolicy) -> bytes:
    """The SHA-384 launch measurement over a guest's initial memory
    contents and launch policy.

    The accumulation itself lives in :mod:`repro.build.measurement` —
    the single measurement path shared with the builder, which
    precomputes the very same digest to publish golden measurements
    (requirement F5).  Delegating (lazily, to keep ``repro.amd``
    importable on its own) guarantees the two match bit for bit.
    """
    from ..build.measurement import launch_digest as _launch_digest

    return _launch_digest(initial_state, policy)


def _derive_vcek_scalar(chip_secret: bytes, tcb: TcbVersion) -> int:
    """VCEK derivation: chip secret x TCB version -> P-384 scalar.

    Reproduces the *property* that matters: the VCEK changes whenever the
    TCB changes, and only AMD (who knows the fused secret) can compute
    the matching public key for certification.
    """
    material = hkdf(chip_secret, info=b"vcek" + tcb.encode(), length=72)
    return 1 + int.from_bytes(material, "big") % (P384.n - 1)


class AmdKeyInfrastructure:
    """AMD the manufacturer: ARK/ASK hierarchy + chip provisioning."""

    def __init__(self, rng: Optional[HmacDrbg] = None):
        self._rng = rng if rng is not None else HmacDrbg(b"amd-default-seed")
        self.ark_key = PrivateKey.generate_ecdsa(self._rng.fork(b"ark"), "P-384")
        self.ask_key = PrivateKey.generate_ecdsa(self._rng.fork(b"ask"), "P-384")
        self._master_secret = self._rng.fork(b"chips").generate(48)
        self._chips: Dict[bytes, bytes] = {}  # chip_id -> fused secret

    def provision_chip(
        self, serial: str, tcb: Optional[TcbVersion] = None
    ) -> "SecureProcessor":
        """Manufacture a chip: fuse a unique secret, register its id."""
        chip_secret = hkdf(self._master_secret, info=serial.encode(), length=48)
        chip_id = hashlib.sha512(b"chip-id" + chip_secret).digest()
        self._chips[chip_id] = chip_secret
        return SecureProcessor(
            chip_id=chip_id,
            chip_secret=chip_secret,
            current_tcb=tcb if tcb is not None else TcbVersion(3, 0, 8, 115),
        )

    def knows_chip(self, chip_id: bytes) -> bool:
        """Whether this infrastructure manufactured the chip."""
        return chip_id in self._chips

    def vcek_public_key(self, chip_id: bytes, tcb: TcbVersion):
        """Derive the VCEK public key for certification (AMD side)."""
        try:
            chip_secret = self._chips[chip_id]
        except KeyError:
            raise SevError("unknown chip id") from None
        scalar = _derive_vcek_scalar(chip_secret, tcb)
        return EcdsaPrivateKey(P384, scalar).public_key()


@dataclass
class GuestContext:
    """The protected guest <-> AMD-SP channel of one launched VM.

    This models ``/dev/sev-guest``: the guest kernel calls
    :meth:`get_report` and :meth:`derive_sealing_key`; the values are
    cryptographically bound to the launch measurement fixed at boot.
    """

    processor: "SecureProcessor"
    measurement: bytes
    policy: GuestPolicy
    vmpl: int
    host_data: bytes
    family_id: bytes
    image_id: bytes
    guest_svn: int
    report_id: bytes
    _terminated: bool = field(default=False)

    def get_report(self, report_data: bytes) -> AttestationReport:
        """Produce a VCEK-signed attestation report with *report_data*
        (64 bytes of guest-chosen data, e.g. a key or CSR hash)."""
        self._ensure_alive()
        if len(report_data) != 64:
            raise ReportError("REPORT_DATA must be exactly 64 bytes")
        report = AttestationReport(
            version=REPORT_VERSION,
            guest_svn=self.guest_svn,
            policy=self.policy,
            family_id=self.family_id,
            image_id=self.image_id,
            vmpl=self.vmpl,
            signature_algo=SIGNATURE_ALGO_ECDSA_P384_SHA384,
            current_tcb=self.processor.current_tcb,
            platform_info=0,
            report_data=report_data,
            measurement=self.measurement,
            host_data=self.host_data,
            id_key_digest=b"\x00" * 48,
            report_id=self.report_id,
            reported_tcb=self.processor.current_tcb,
            chip_id=self.processor.chip_id,
        )
        return report.sign(self.processor.vcek_private())

    def derive_sealing_key(self, context: bytes = b"") -> bytes:
        """Derive a 32-byte key bound to (chip, measurement, policy).

        Only a guest with an *identical* measurement on the *same*
        platform re-derives it — the property behind Revelio's
        persistent-state protection (F6, section 3.4.8).
        """
        self._ensure_alive()
        return self.processor.derive_key(self.measurement, self.policy, context)

    def terminate(self) -> None:
        """Tear down the guest channel (VM shutdown)."""
        self._terminated = True

    def _ensure_alive(self) -> None:
        if self._terminated:
            raise SevError("guest context has been terminated")


class SecureProcessor:
    """One physical chip's AMD-SP."""

    def __init__(self, chip_id: bytes, chip_secret: bytes, current_tcb: TcbVersion):
        self.chip_id = chip_id
        self._chip_secret = chip_secret
        self.current_tcb = current_tcb
        self._launch_counter = 0

    def vcek_private(self, tcb: Optional[TcbVersion] = None) -> EcdsaPrivateKey:
        """The chip's current VCEK (never leaves the AMD-SP in reality;
        exposed here only to the SecureProcessor itself and tests)."""
        effective = tcb if tcb is not None else self.current_tcb
        return EcdsaPrivateKey(P384, _derive_vcek_scalar(self._chip_secret, effective))

    def update_tcb(self, new_tcb: TcbVersion) -> None:
        """Apply an SNP firmware update; the VCEK rolls with the TCB."""
        if not new_tcb.at_least(self.current_tcb):
            raise SevError("TCB downgrade rejected by the AMD-SP")
        self.current_tcb = new_tcb

    def launch_vm(
        self,
        initial_state: bytes,
        policy: GuestPolicy,
        vmpl: int = 0,
        host_data: bytes = b"\x00" * 32,
        family_id: bytes = _DEFAULT_FAMILY_ID,
        image_id: bytes = _DEFAULT_IMAGE_ID,
        guest_svn: int = 0,
    ) -> GuestContext:
        """Measure *initial_state* (the pages loaded before launch — for
        a Revelio VM, the firmware volume with its embedded hash table)
        and finalise the launch.

        Returns the guest's protected channel.  The measurement is the
        SHA-384 launch digest the hardware would compute over the
        initial memory contents and launch metadata.
        """
        measurement = launch_digest(initial_state, policy)
        self._launch_counter += 1
        report_id = hashlib.sha256(
            self._chip_secret + b"report-id" + self._launch_counter.to_bytes(8, "big")
        ).digest()
        return GuestContext(
            processor=self,
            measurement=measurement,
            policy=policy,
            vmpl=vmpl,
            host_data=host_data,
            family_id=family_id,
            image_id=image_id,
            guest_svn=guest_svn,
            report_id=report_id,
        )

    def derive_key(self, measurement: bytes, policy: GuestPolicy, context: bytes) -> bytes:
        """Measurement-bound key derivation (MSG_KEY_REQ analogue)."""
        sealing_root = hkdf(self._chip_secret, info=b"sealing-root", length=32)
        return hkdf(
            sealing_root,
            info=b"seal"
            + measurement
            + policy.encode_qword().to_bytes(8, "little")
            + context,
            length=32,
        )
