"""Attestation report verification — the verifier side of SEV-SNP.

This module holds the *low-level* cryptographic checks every Revelio
verifier runs on a received report, each exposed as a primitive with a
stable machine-readable failure ``reason``:

1. certificate-chain validation of VCEK -> ASK -> ARK against pinned
   trust anchors,
2. cross-checks of the VCEK certificate's embedded chip id / TCB
   against the report fields,
3. ECDSA P-384 verification of the report signature,
4. policy sanity (no debug-enabled guests),
5. optional caller expectations: measurement, REPORT_DATA, chip-id
   allow-list, minimum TCB.

:func:`verify_attestation_report` composes the primitives in that order
and raises on the first failure.  Higher-level callers should not use
it directly: :class:`repro.attest.AttestationVerifier` drives the same
primitives as an observable step pipeline, and a CI gate keeps every
other module behind that seam.

Failures raise :class:`AttestationError` with a machine-readable
``reason`` so callers (and tests) can distinguish failure modes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..crypto.x509 import Certificate, CertificateError, validate_chain
from .report import AttestationReport
from .tcb import TcbVersion


class AttestationError(Exception):
    """A failed report verification, with a stable ``reason`` code."""

    def __init__(self, reason: str, detail: str = ""):
        self.reason = reason
        self.detail = detail
        super().__init__(f"{reason}: {detail}" if detail else reason)


@dataclass(frozen=True)
class VerifiedReport:
    """The outcome of a successful verification."""

    report: AttestationReport
    vcek_certificate: Certificate
    checked_measurement: bool
    checked_report_data: bool
    checked_chip_id: bool


# -- check primitives ----------------------------------------------------------


def check_certificate_chain(
    vcek_certificate: Certificate,
    cert_chain: Sequence[Certificate],
    trust_anchors: Sequence[Certificate],
    now: int,
) -> None:
    """VCEK -> ASK -> ARK must chain to a pinned trust anchor."""
    try:
        validate_chain(
            [vcek_certificate, *cert_chain], trust_anchors, now=now
        )
    except CertificateError as exc:
        raise AttestationError("bad_cert_chain", str(exc)) from exc


def check_chip_id_binding(
    report: AttestationReport, vcek_certificate: Certificate
) -> None:
    """The VCEK certificate must be issued for the reporting chip."""
    cert_chip_id = vcek_certificate.extension("amd.chip_id")
    if cert_chip_id is None or cert_chip_id != report.chip_id:
        raise AttestationError(
            "chip_id_mismatch",
            "VCEK certificate chip id does not match the report",
        )


def check_tcb_binding(
    report: AttestationReport, vcek_certificate: Certificate
) -> None:
    """The VCEK certificate must be derived for the reported TCB."""
    cert_tcb = vcek_certificate.extension("amd.tcb")
    if cert_tcb is None or TcbVersion.decode(cert_tcb) != report.reported_tcb:
        raise AttestationError(
            "tcb_mismatch", "VCEK certificate TCB does not match the report"
        )


def check_signature(
    report: AttestationReport, vcek_certificate: Certificate
) -> None:
    """The report signature must verify under the VCEK public key."""
    vcek_key = vcek_certificate.public_key
    if vcek_key.algorithm != "ecdsa" or not report.verify_signature(vcek_key.inner):
        raise AttestationError(
            "bad_signature", "report signature does not verify under the VCEK"
        )


def check_debug_policy(report: AttestationReport, allow_debug: bool = False) -> None:
    """Debug-enabled guests are rejected unless explicitly allowed."""
    if report.policy.debug_allowed and not allow_debug:
        raise AttestationError(
            "debug_policy", "guest was launched with debugging enabled"
        )


def check_measurement(
    report: AttestationReport, golden_measurements: Iterable[bytes]
) -> None:
    """The launch measurement must be in the golden set."""
    golden = {bytes(m) for m in golden_measurements}
    if bytes(report.measurement) not in golden:
        raise AttestationError(
            "measurement_mismatch",
            f"measurement {report.measurement.hex()[:16]}... is not in the "
            f"golden set ({len(golden)} value(s))",
        )


def check_report_data(
    report: AttestationReport, expected_report_data: bytes
) -> None:
    """REPORT_DATA must match the caller's expected binding."""
    if report.report_data != expected_report_data:
        raise AttestationError(
            "report_data_mismatch", "REPORT_DATA does not match expectation"
        )


def check_chip_id_allowed(
    report: AttestationReport, allowed_chip_ids: Iterable[bytes]
) -> None:
    """The reporting platform must be on the approved list."""
    allowed = {bytes(chip_id) for chip_id in allowed_chip_ids}
    if bytes(report.chip_id) not in allowed:
        raise AttestationError(
            "chip_id_not_allowed", "platform is not on the approved list"
        )


def check_minimum_tcb(report: AttestationReport, minimum_tcb: TcbVersion) -> None:
    """The platform TCB must meet the required floor."""
    if not report.reported_tcb.at_least(minimum_tcb):
        raise AttestationError(
            "tcb_too_old", "platform TCB below the required minimum"
        )


# -- composed verification -----------------------------------------------------


def verify_attestation_report(
    report: AttestationReport,
    vcek_certificate: Certificate,
    cert_chain: Sequence[Certificate],
    trust_anchors: Sequence[Certificate],
    now: int,
    expected_measurement: Optional[bytes] = None,
    expected_report_data: Optional[bytes] = None,
    allowed_chip_ids: Optional[Iterable[bytes]] = None,
    minimum_tcb: Optional[TcbVersion] = None,
    allow_debug: bool = False,
) -> VerifiedReport:
    """Verify *report* end to end; raise :class:`AttestationError` on
    the first failed check, return a :class:`VerifiedReport` otherwise."""
    check_certificate_chain(vcek_certificate, cert_chain, trust_anchors, now)
    check_chip_id_binding(report, vcek_certificate)
    check_tcb_binding(report, vcek_certificate)
    check_signature(report, vcek_certificate)
    check_debug_policy(report, allow_debug)
    if expected_measurement is not None:
        check_measurement(report, [expected_measurement])
    if expected_report_data is not None:
        check_report_data(report, expected_report_data)
    if allowed_chip_ids is not None:
        check_chip_id_allowed(report, allowed_chip_ids)
    if minimum_tcb is not None:
        check_minimum_tcb(report, minimum_tcb)

    return VerifiedReport(
        report=report,
        vcek_certificate=vcek_certificate,
        checked_measurement=expected_measurement is not None,
        checked_report_data=expected_report_data is not None,
        checked_chip_id=allowed_chip_ids is not None,
    )
