"""Attestation report verification — the verifier side of SEV-SNP.

This is the logic every Revelio verifier (the web extension, the SP
node, and peer VMs during mutual attestation) runs on a received
report.  It performs, in order:

1. certificate-chain validation of VCEK -> ASK -> ARK against pinned
   trust anchors,
2. cross-checks of the VCEK certificate's embedded chip id / TCB
   against the report fields,
3. ECDSA P-384 verification of the report signature,
4. policy sanity (no debug-enabled guests),
5. optional caller expectations: measurement, REPORT_DATA, chip-id
   allow-list, minimum TCB.

Failures raise :class:`AttestationError` with a machine-readable
``reason`` so callers (and tests) can distinguish failure modes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..crypto.x509 import Certificate, CertificateError, validate_chain
from .report import AttestationReport
from .tcb import TcbVersion


class AttestationError(Exception):
    """A failed report verification, with a stable ``reason`` code."""

    def __init__(self, reason: str, detail: str = ""):
        self.reason = reason
        self.detail = detail
        super().__init__(f"{reason}: {detail}" if detail else reason)


@dataclass(frozen=True)
class VerifiedReport:
    """The outcome of a successful verification."""

    report: AttestationReport
    vcek_certificate: Certificate
    checked_measurement: bool
    checked_report_data: bool
    checked_chip_id: bool


def verify_attestation_report(
    report: AttestationReport,
    vcek_certificate: Certificate,
    cert_chain: Sequence[Certificate],
    trust_anchors: Sequence[Certificate],
    now: int,
    expected_measurement: Optional[bytes] = None,
    expected_report_data: Optional[bytes] = None,
    allowed_chip_ids: Optional[Iterable[bytes]] = None,
    minimum_tcb: Optional[TcbVersion] = None,
    allow_debug: bool = False,
) -> VerifiedReport:
    """Verify *report* end to end; raise :class:`AttestationError` on
    the first failed check, return a :class:`VerifiedReport` otherwise."""
    try:
        validate_chain(
            [vcek_certificate, *cert_chain], trust_anchors, now=now
        )
    except CertificateError as exc:
        raise AttestationError("bad_cert_chain", str(exc)) from exc

    cert_chip_id = vcek_certificate.extension("amd.chip_id")
    if cert_chip_id is None or cert_chip_id != report.chip_id:
        raise AttestationError(
            "chip_id_mismatch",
            "VCEK certificate chip id does not match the report",
        )
    cert_tcb = vcek_certificate.extension("amd.tcb")
    if cert_tcb is None or TcbVersion.decode(cert_tcb) != report.reported_tcb:
        raise AttestationError(
            "tcb_mismatch", "VCEK certificate TCB does not match the report"
        )

    vcek_key = vcek_certificate.public_key
    if vcek_key.algorithm != "ecdsa" or not report.verify_signature(vcek_key.inner):
        raise AttestationError(
            "bad_signature", "report signature does not verify under the VCEK"
        )

    if report.policy.debug_allowed and not allow_debug:
        raise AttestationError(
            "debug_policy", "guest was launched with debugging enabled"
        )

    if expected_measurement is not None and report.measurement != expected_measurement:
        raise AttestationError(
            "measurement_mismatch",
            f"expected {expected_measurement.hex()[:16]}..., "
            f"got {report.measurement.hex()[:16]}...",
        )

    if expected_report_data is not None and report.report_data != expected_report_data:
        raise AttestationError(
            "report_data_mismatch", "REPORT_DATA does not match expectation"
        )

    if allowed_chip_ids is not None:
        allowed = {bytes(chip_id) for chip_id in allowed_chip_ids}
        if bytes(report.chip_id) not in allowed:
            raise AttestationError(
                "chip_id_not_allowed", "platform is not on the approved list"
            )

    if minimum_tcb is not None and not report.reported_tcb.at_least(minimum_tcb):
        raise AttestationError(
            "tcb_too_old", "platform TCB below the required minimum"
        )

    return VerifiedReport(
        report=report,
        vcek_certificate=vcek_certificate,
        checked_measurement=expected_measurement is not None,
        checked_report_data=expected_report_data is not None,
        checked_chip_id=allowed_chip_ids is not None,
    )
