"""SEV-SNP TCB (trusted computing base) version numbers.

The TCB version identifies the security patch level of the platform
firmware stack.  It appears twice in the attestation report (current and
reported TCB) and parameterises VCEK derivation: a platform whose
firmware is updated signs with a *different* VCEK, which is how rollback
of the SNP firmware itself is made visible to verifiers.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

_STRUCT = struct.Struct("<BB4xBB")


@dataclass(frozen=True, order=True)
class TcbVersion:
    """Component security patch levels, lowest-order first (per the SNP ABI)."""

    boot_loader: int = 0
    tee: int = 0
    snp: int = 0
    microcode: int = 0

    def __post_init__(self) -> None:
        for field_name in ("boot_loader", "tee", "snp", "microcode"):
            value = getattr(self, field_name)
            if not (0 <= value <= 0xFF):
                raise ValueError(f"TCB component {field_name} out of range: {value}")

    def encode(self) -> bytes:
        """Pack into the 8-byte SNP TCB_VERSION layout."""
        return _STRUCT.pack(self.boot_loader, self.tee, self.snp, self.microcode)

    @classmethod
    def decode(cls, data: bytes) -> "TcbVersion":
        """Parse an instance back out of canonical TLV bytes."""
        if len(data) != 8:
            raise ValueError("TCB_VERSION must be 8 bytes")
        if data[2:6] != b"\x00\x00\x00\x00":
            # Strict parsing: the ABI reserves these bytes as zero, and a
            # lossless round trip matters for signed structures.
            raise ValueError("TCB_VERSION reserved bytes must be zero")
        boot_loader, tee, snp, microcode = _STRUCT.unpack(data)
        return cls(boot_loader=boot_loader, tee=tee, snp=snp, microcode=microcode)

    def hwid_string(self) -> str:
        """Human-readable form used in KDS URLs."""
        return (
            f"blSPL={self.boot_loader:02d}&teeSPL={self.tee:02d}"
            f"&snpSPL={self.snp:02d}&ucodeSPL={self.microcode:02d}"
        )

    def at_least(self, other: "TcbVersion") -> bool:
        """Component-wise >= comparison (the meaningful TCB ordering)."""
        return (
            self.boot_loader >= other.boot_loader
            and self.tee >= other.tee
            and self.snp >= other.snp
            and self.microcode >= other.microcode
        )
