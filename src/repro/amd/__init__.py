"""Simulated AMD SEV-SNP hardware: AMD-SP, attestation, VCEK, KDS.

The substitution rationale is documented in DESIGN.md: the AMD-SP here
signs real ECDSA P-384 reports over the real SNP report layout, so all
verifier code paths are exercised faithfully even though no SEV silicon
is present.
"""

from .kds import KdsError, KeyDistributionServer
from .policy import REVELIO_POLICY, GuestPolicy
from .report import AttestationReport, ReportError
from .secure_processor import (
    AmdKeyInfrastructure,
    GuestContext,
    SecureProcessor,
    SevError,
)
from .tcb import TcbVersion
from .verify import AttestationError, VerifiedReport, verify_attestation_report

__all__ = [
    "AmdKeyInfrastructure",
    "AttestationError",
    "AttestationReport",
    "GuestContext",
    "GuestPolicy",
    "KdsError",
    "KeyDistributionServer",
    "REVELIO_POLICY",
    "ReportError",
    "SecureProcessor",
    "SevError",
    "TcbVersion",
    "VerifiedReport",
    "verify_attestation_report",
]
