"""TEE families and the generic evidence envelope.

The paper argues Revelio's verification procedure is TEE-agnostic: any
VM-model TEE that binds (measurement, report_data) to a genuine
platform can back the design.  This module is the neutral vocabulary
the unified pipeline dispatches on:

* :class:`TeeFamily` — the supported technologies (AMD SEV-SNP, Intel
  TDX, ARM CCA, and the SNP-endorsed e-vTPM quote bundle),
* :class:`Evidence` — a tagged envelope wrapping one family's native
  evidence bytes (an encoded ``AttestationReport``, ``TdQuote``,
  ``CcaToken``, or ``MonitoringEvidence``),
* the ``*_evidence`` helpers producing envelopes from native objects.

The family tag strings are wire-stable: they match the ``repro.tee``
evidence kinds, appear in trace events and per-family counters, and key
the per-family sub-policies of
:class:`~repro.attest.policy.VerificationPolicy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..crypto import encoding


class EvidenceError(ValueError):
    """Malformed evidence envelopes or unknown families."""


class TeeFamily(str, Enum):
    """The VM-model TEE technologies the unified pipeline can verify.

    A ``str`` subclass so family values compare equal to their stable
    wire names (``TeeFamily.TDX == "tdx"``) and serialise directly.
    """

    SEV_SNP = "sev-snp"
    TDX = "tdx"
    CCA = "arm-cca"
    VTPM = "e-vtpm"

    def __str__(self) -> str:
        return self.value


#: Every family, in canonical (documentation) order.
ALL_FAMILIES = (TeeFamily.SEV_SNP, TeeFamily.TDX, TeeFamily.CCA, TeeFamily.VTPM)


def family_of(value) -> TeeFamily:
    """Coerce a family name (or :class:`TeeFamily`) to the enum."""
    try:
        return TeeFamily(value)
    except ValueError:
        raise EvidenceError(f"unknown TEE family {value!r}") from None


@dataclass(frozen=True)
class Evidence:
    """A tagged envelope around one family's native evidence bytes."""

    family: TeeFamily
    body: bytes

    def __post_init__(self) -> None:
        object.__setattr__(self, "family", family_of(self.family))
        object.__setattr__(self, "body", bytes(self.body))

    def encode(self) -> bytes:
        """Serialise to canonical TLV bytes."""
        return encoding.encode({"family": self.family.value, "body": self.body})

    @classmethod
    def decode(cls, data: bytes) -> "Evidence":
        """Parse an instance back out of canonical TLV bytes."""
        try:
            decoded = encoding.decode(data)
            return cls(family=decoded["family"], body=decoded["body"])
        except EvidenceError:
            raise
        except (ValueError, KeyError, TypeError) as exc:
            raise EvidenceError("malformed evidence envelope") from exc


def snp_evidence(report) -> Evidence:
    """Wrap an SNP :class:`~repro.amd.report.AttestationReport`."""
    return Evidence(TeeFamily.SEV_SNP, report.encode())


def tdx_evidence(quote) -> Evidence:
    """Wrap a TDX :class:`~repro.tdx.module.TdQuote`."""
    return Evidence(TeeFamily.TDX, quote.encode())


def cca_evidence(token) -> Evidence:
    """Wrap a CCA :class:`~repro.cca.realms.CcaToken` bundle."""
    return Evidence(TeeFamily.CCA, token.encode())


def vtpm_evidence(monitoring_evidence) -> Evidence:
    """Wrap an e-vTPM
    :class:`~repro.vtpm.monitoring.MonitoringEvidence` bundle."""
    return Evidence(TeeFamily.VTPM, monitoring_evidence.encode())
