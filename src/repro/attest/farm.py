"""The verify farm: a batching front-end for attestation signatures.

Cold attestations are signature-bound: a 3-cert VCEK -> ASK -> ARK walk
plus the report signature is four independent ECDSA verifications, each
a full double-scalar multiplication.  The farm collects those
verifications from concurrent attestation runs into one queue and
settles the whole queue with a single randomized-linear-combination
batch equation (:mod:`repro.crypto.batch`) — one shared doubling chain
for the entire batch instead of one per signature, with the fleet's
common ARK/ASK keys collapsing into single scalar terms.

Queue semantics: jobs accumulate until the batch is full
(``max_batch``) or the oldest job has lingered ``max_linger`` simulated
seconds; either condition flushes.  A flush runs the batch equation,
advances the simulated clock by the amortised price
(``batch_verify_base`` per MSM pass + ``batch_verify_per_sig`` per job,
plus a full ``sig_verify`` for every per-signature fallback), and parks
the verdicts.

Verdict delivery rides the signature-cache oracle seam
(:func:`repro.crypto.sigcache.set_oracle`): the pipeline's unchanged
``cached_verify`` call sites consume the precomputed verdict for the
exact ``(key fingerprint, hash, digest, signature)`` tuple they would
have verified fresh.  Every parked verdict is consumable once per
submitted job (a reference count, not a cache): the farm never serves
crypto it did not perform and price, so ablating the memoization cache
ablates memoization only — batching remains honest.

Soundness (DESIGN.md invariant 15): a batch accept implies every member
verifies individually — the batch equation is checked with fresh
128-bit blinders and any failure bisects down to per-signature
reference verdicts, so no verdict is ever taken from an unresolved
failed batch.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Sequence, Tuple

from ..crypto import sigcache
from ..crypto.batch import BatchItem, BatchVerifier
from ..crypto.drbg import HmacDrbg
from ..crypto.hashes import get_hash
from .trace import get_tracer

#: One queued verification: the exact arguments some pipeline step will
#: hand to ``cached_verify``, plus the precomputed cache key the verdict
#: will be served under.
class FarmJob:
    __slots__ = ("key", "message", "signature", "hash_name", "cache_key")

    def __init__(self, key, message: bytes, signature: bytes,
                 hash_name: str = "sha256"):
        self.key = key
        self.message = bytes(message)
        self.signature = bytes(signature)
        self.hash_name = hash_name
        self.cache_key = (
            sigcache._key_fingerprint(key),
            hash_name,
            get_hash(hash_name)(self.message),
            self.signature,
        )


class VerifyFarm:
    """A worker-pool facade over :class:`~repro.crypto.batch.BatchVerifier`.

    ``clock``/``latency`` price flushes on the simulated clock (both
    optional — tests without time pass neither).  ``seed`` keys the
    blinder DRBG, so same-seed farms draw identical blinder sequences
    and produce byte-identical trace counters.

    The farm installs itself as the process-wide signature-verdict
    oracle on construction; :meth:`uninstall` detaches it (and a newer
    farm simply replaces an older one).
    """

    def __init__(
        self,
        clock=None,
        latency=None,
        max_batch: int = 32,
        max_linger: float = 0.002,
        seed: bytes = b"verify-farm",
        tracer=None,
        capacity: int = 4096,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        self.clock = clock
        self.latency = latency
        self.max_batch = max_batch
        self.max_linger = max_linger
        self.tracer = tracer
        self.capacity = capacity
        self.verifier = BatchVerifier(HmacDrbg(bytes(seed)))
        self._pending: List[FarmJob] = []
        #: Simulated deadline of the oldest queued job (None when empty
        #: or unclocked).
        self._deadline: Optional[float] = None
        #: cache_key -> [verdict, remaining serves].  Reference-counted:
        #: each submitted job buys exactly one oracle serve, so verdicts
        #: never outlive the batch that paid for them.
        self._recent: "OrderedDict[tuple, list]" = OrderedDict()
        self.install()

    # -- oracle lifecycle -------------------------------------------

    def install(self) -> None:
        """Become the process-wide verdict oracle."""
        sigcache.set_oracle(self._serve)

    def uninstall(self) -> None:
        """Detach from the oracle seam (no-op if another farm took it)."""
        # Compare the bound method's receiver: ``self._serve`` builds a
        # fresh bound-method object on every access, so identity on the
        # method itself would never match.
        if getattr(sigcache.get_oracle(), "__self__", None) is self:
            sigcache.set_oracle(None)

    def _serve(self, cache_key) -> Optional[bool]:
        entry = self._recent.get(cache_key)
        if entry is None:
            return None
        entry[1] -= 1
        if entry[1] <= 0:
            del self._recent[cache_key]
        tracer = self.tracer if self.tracer is not None else get_tracer()
        tracer.farm.serve()
        return entry[0]

    # -- queue ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._pending)

    def submit(self, key, message: bytes, signature: bytes,
               hash_name: str = "sha256") -> None:
        """Queue one verification; flushes when the batch fills."""
        self._pending.append(FarmJob(key, message, signature, hash_name))
        if self._deadline is None and self.clock is not None:
            self._deadline = self.clock.now + self.max_linger
        if len(self._pending) >= self.max_batch:
            self.flush()

    def poll(self) -> None:
        """Flush if the oldest queued job's linger deadline has passed."""
        if not self._pending:
            return
        if (
            self.clock is None
            or self._deadline is None
            or self.clock.now >= self._deadline
        ):
            self.flush()

    def verify_many(
        self, jobs: Sequence[Tuple]
    ) -> List[bool]:
        """Submit ``(key, message, signature, hash_name)`` tuples and
        settle them now, returning the verdicts in order.  One arrival
        burst is one (or, past ``max_batch``, a few) batch equations."""
        queued = []
        for job in jobs:
            farm_job = FarmJob(*job)
            queued.append(farm_job)
            self._pending.append(farm_job)
            if self._deadline is None and self.clock is not None:
                self._deadline = self.clock.now + self.max_linger
            if len(self._pending) >= self.max_batch:
                self.flush()
        self.flush()
        verdicts = []
        for farm_job in queued:
            entry = self._recent.get(farm_job.cache_key)
            # Refcounted entry is guaranteed present: flush() just parked
            # one serve per submitted job and nothing consumed it yet.
            verdicts.append(bool(entry[0]) if entry is not None else False)
        return verdicts

    def flush(self):
        """Settle the queue: one batch equation, one amortised clock
        charge, verdicts parked for the oracle seam.  Returns the
        :class:`~repro.crypto.batch.BatchResult` (None when idle)."""
        if not self._pending:
            return None
        jobs, self._pending = self._pending, []
        self._deadline = None
        items = [
            BatchItem(
                getattr(job.key, "inner", job.key),
                job.message,
                job.signature,
                job.hash_name,
            )
            for job in jobs
        ]
        result = self.verifier.verify(items)
        cost = 0.0
        if self.clock is not None and self.latency is not None:
            cost = (
                self.latency.batch_verify_base * max(1, result.msm_checks)
                + self.latency.batch_verify_per_sig * len(jobs)
                + self.latency.sig_verify * result.per_sig_fallbacks
            )
            if cost > 0.0:
                self.clock.advance(cost)
        for job, verdict in zip(jobs, result.verdicts):
            entry = self._recent.get(job.cache_key)
            if entry is not None and entry[0] == verdict:
                entry[1] += 1
                self._recent.move_to_end(job.cache_key)
            else:
                self._recent[job.cache_key] = [verdict, 1]
            if len(self._recent) > self.capacity:
                self._recent.popitem(last=False)
        tracer = self.tracer if self.tracer is not None else get_tracer()
        tracer.farm.record_batch(len(jobs), cost, result.stats())
        return result

    def stats(self) -> dict:
        """The tracer-side farm snapshot (convenience for benches)."""
        tracer = self.tracer if self.tracer is not None else get_tracer()
        return tracer.farm.snapshot()
