"""Observability for the attestation pipeline: sinks, counters, traces.

Every :class:`~repro.attest.engine.AttestationVerifier` run emits one
:class:`TraceEvent` to a tracer with pluggable sinks.  The default
tracer keeps an in-memory ring buffer of recent events plus a
:class:`CounterRegistry` — verifications by verdict, failures by stable
reason code, KDS cache hit rate, and per-step simulated-latency
histograms — that the bench harness, the CLI, and tests read.
"""

from __future__ import annotations

import bisect
from collections import Counter, deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Mapping, Optional, Sequence, Tuple

#: Upper bucket edges (simulated seconds) for per-step latency
#: histograms; the last bucket is unbounded.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, float("inf"),
)


@dataclass(frozen=True)
class TraceEvent:
    """One completed verification, as seen by the observability layer."""

    site: str
    verdict: str  # "pass" | "fail"
    reason: Optional[str]  # stable failure code, None on pass
    steps: Tuple  # the outcome's StepRecord tuple
    sim_cost: float  # total simulated seconds across steps
    kds_fetches: int  # KDS round trips charged by this verification
    kds_cache_hits: int  # KDS cache hits served to this verification
    sig_cache_hits: int = 0  # signature-cache hits during this verification
    sig_cache_misses: int = 0  # signature-cache misses (fresh EC math)
    family: str = "sev-snp"  # the evidence's TEE family


class Histogram:
    """A fixed-bucket latency histogram (simulated seconds)."""

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.buckets: Tuple[float, ...] = tuple(buckets)
        self.counts: List[int] = [0] * len(self.buckets)
        self.total = 0.0
        self.count = 0

    def record(self, value: float) -> None:
        """Count *value* into its bucket."""
        index = bisect.bisect_left(self.buckets, value)
        self.counts[min(index, len(self.buckets) - 1)] += 1
        self.total += value
        self.count += 1

    def mean(self) -> float:
        """Average recorded value (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0


class TraceSink:
    """A consumer of trace events; subclass and register on a tracer."""

    def record(self, event: TraceEvent) -> None:
        """Consume one event."""
        raise NotImplementedError


class RingBufferSink(TraceSink):
    """Keeps the last *capacity* events for inspection."""

    def __init__(self, capacity: int = 256):
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)

    def record(self, event: TraceEvent) -> None:
        self._events.append(event)

    @property
    def events(self) -> List[TraceEvent]:
        """The buffered events, oldest first."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)


class CounterRegistry(TraceSink):
    """Aggregated counters over every verification seen."""

    def __init__(self):
        self.verifications_by_verdict: Counter = Counter()
        self.failures_by_reason: Counter = Counter()
        self.verifications_by_family: Dict[str, Counter] = {}
        self.failures_by_family: Dict[str, Counter] = {}
        self.step_latency: Dict[str, Histogram] = {}
        self.kds_fetches = 0
        self.kds_cache_hits = 0
        self.sig_cache_hits = 0
        self.sig_cache_misses = 0

    def record(self, event: TraceEvent) -> None:
        self.verifications_by_verdict[event.verdict] += 1
        family_verdicts = self.verifications_by_family.get(event.family)
        if family_verdicts is None:
            family_verdicts = self.verifications_by_family[event.family] = Counter()
        family_verdicts[event.verdict] += 1
        if event.reason is not None:
            self.failures_by_reason[event.reason] += 1
            family_failures = self.failures_by_family.get(event.family)
            if family_failures is None:
                family_failures = self.failures_by_family[event.family] = Counter()
            family_failures[event.reason] += 1
        self.kds_fetches += event.kds_fetches
        self.kds_cache_hits += event.kds_cache_hits
        self.sig_cache_hits += event.sig_cache_hits
        self.sig_cache_misses += event.sig_cache_misses
        for step in event.steps:
            histogram = self.step_latency.get(step.name)
            if histogram is None:
                histogram = self.step_latency[step.name] = Histogram()
            histogram.record(step.sim_cost)

    def kds_cache_hit_rate(self) -> float:
        """Fraction of KDS lookups served from cache (0.0 when idle)."""
        lookups = self.kds_fetches + self.kds_cache_hits
        return self.kds_cache_hits / lookups if lookups else 0.0

    def reasons_reached(self) -> frozenset:
        """Every stable failure reason code observed so far — the
        coverage half of the campaign taxonomy check."""
        return frozenset(
            reason for reason, count in self.failures_by_reason.items() if count
        )

    def failures_since(self, before: Mapping[str, int]) -> Dict[str, int]:
        """Per-reason failure deltas against an earlier
        ``dict(failures_by_reason)`` snapshot — how scenario runners
        attribute reason codes to the attack window that produced them.
        Only positive deltas are reported."""
        deltas = {}
        for reason, count in self.failures_by_reason.items():
            delta = count - before.get(reason, 0)
            if delta > 0:
                deltas[reason] = delta
        return deltas

    def sig_cache_hit_rate(self) -> float:
        """Fraction of signature verifications served from the
        memoization cache (0.0 when idle)."""
        lookups = self.sig_cache_hits + self.sig_cache_misses
        return self.sig_cache_hits / lookups if lookups else 0.0

    def snapshot(self) -> dict:
        """A plain-data view for reports and JSON persistence."""
        return {
            "verifications_by_verdict": dict(self.verifications_by_verdict),
            "failures_by_reason": dict(self.failures_by_reason),
            "verifications_by_family": {
                family: dict(counter)
                for family, counter in sorted(self.verifications_by_family.items())
            },
            "failures_by_family": {
                family: dict(counter)
                for family, counter in sorted(self.failures_by_family.items())
            },
            "kds_fetches": self.kds_fetches,
            "kds_cache_hits": self.kds_cache_hits,
            "kds_cache_hit_rate": self.kds_cache_hit_rate(),
            "signature_cache_hits": self.sig_cache_hits,
            "signature_cache_misses": self.sig_cache_misses,
            "signature_cache_hit_rate": self.sig_cache_hit_rate(),
            "step_latency_ms_mean": {
                name: histogram.mean() * 1000.0
                for name, histogram in sorted(self.step_latency.items())
            },
        }

    def reset(self) -> None:
        """Zero every counter."""
        self.__init__()


class StorageCounters:
    """Aggregated device-mapper I/O counters (``repro.storage.dm``).

    Storage targets report per-operation counts (reads, writes, verity
    hits/misses, corruption rejections, cache hits, injected faults)
    and simulated latency here, alongside their per-target stats, so
    the CLI summary and the bench harness see boot-to-mount I/O cost in
    the same place as verification cost.
    """

    def __init__(self):
        self.counts: Counter = Counter()
        self.sim_seconds = 0.0

    def add(self, name: str, amount: int = 1) -> None:
        """Count *amount* operations under *name*."""
        self.counts[name] += amount

    def charge(self, seconds: float) -> None:
        """Accumulate simulated storage latency."""
        self.sim_seconds += seconds

    def verify_hit_rate(self) -> float:
        """Fraction of verity reads served without a full Merkle walk."""
        hits = self.counts["verify_hits"]
        lookups = hits + self.counts["verify_misses"]
        return hits / lookups if lookups else 0.0

    def snapshot(self) -> dict:
        """A plain-data view for reports and JSON persistence."""
        return {
            "io": dict(sorted(self.counts.items())),
            "verify_hit_rate": self.verify_hit_rate(),
            "sim_ms": self.sim_seconds * 1000.0,
        }

    def reset(self) -> None:
        """Zero every counter."""
        self.__init__()


class FarmCounters:
    """Aggregated verify-farm batch counters (:mod:`repro.attest.farm`).

    One record per batch flush: the batch-size histogram, the amortised
    simulated cost charged at flush time, and the batch verifier's own
    counters (MSM checks, bisections, per-signature fallbacks,
    dedup/hint rates).  ``oracle_served`` counts pipeline steps whose
    verdict was consumed from a precomputed batch.  Snapshots are
    plain sorted data so same-seed runs serialise byte-identically.
    """

    def __init__(self):
        self.batches = 0
        self.jobs = 0
        self.batch_sizes: Counter = Counter()
        self.amortised_sim_seconds = 0.0
        self.msm_checks = 0
        self.bisections = 0
        self.per_sig_fallbacks = 0
        self.deduplicated = 0
        self.hinted = 0
        self.oracle_served = 0

    def record_batch(self, size: int, sim_seconds: float, stats: dict) -> None:
        """Count one flushed batch and fold in its verifier stats."""
        self.batches += 1
        self.jobs += size
        self.batch_sizes[size] += 1
        self.amortised_sim_seconds += sim_seconds
        self.msm_checks += stats.get("msm_checks", 0)
        self.bisections += stats.get("bisections", 0)
        self.per_sig_fallbacks += stats.get("per_sig_fallbacks", 0)
        self.deduplicated += stats.get("deduplicated", 0)
        self.hinted += stats.get("hinted", 0)

    def serve(self, count: int = 1) -> None:
        """Count verdicts consumed from precomputed batches."""
        self.oracle_served += count

    def bisection_rate(self) -> float:
        """Fraction of batch equations that failed and split."""
        return self.bisections / self.msm_checks if self.msm_checks else 0.0

    def mean_batch_size(self) -> float:
        """Average jobs per flushed batch (0.0 when idle)."""
        return self.jobs / self.batches if self.batches else 0.0

    def amortised_cost_ms(self) -> float:
        """Mean simulated milliseconds charged per job (0.0 when idle)."""
        return (
            self.amortised_sim_seconds / self.jobs * 1000.0 if self.jobs else 0.0
        )

    def snapshot(self) -> dict:
        """A plain-data view for reports and JSON persistence."""
        return {
            "batches": self.batches,
            "jobs": self.jobs,
            "batch_size_histogram": {
                str(size): count
                for size, count in sorted(self.batch_sizes.items())
            },
            "mean_batch_size": self.mean_batch_size(),
            "amortised_cost_ms_per_job": self.amortised_cost_ms(),
            "amortised_sim_ms": self.amortised_sim_seconds * 1000.0,
            "msm_checks": self.msm_checks,
            "bisections": self.bisections,
            "bisection_rate": self.bisection_rate(),
            "per_sig_fallbacks": self.per_sig_fallbacks,
            "deduplicated": self.deduplicated,
            "hinted": self.hinted,
            "oracle_served": self.oracle_served,
        }

    def reset(self) -> None:
        """Zero every counter."""
        self.__init__()


class UpdateCounters:
    """Signed update-channel counters (:mod:`repro.build.channel`).

    The channel records every manifest verification outcome here —
    acceptances, rejections by stable reason code, bytes shipped as
    deltas vs the full images they replace, and apply-cache hits — so
    the fleet provisioner's per-phase summary and ``BENCH_update.json``
    read from the same place as attestation failures.  Snapshots are
    plain sorted data so same-seed runs serialise byte-identically.
    """

    def __init__(self):
        self.manifests_published = 0
        self.manifests_accepted = 0
        self.applied = 0
        self.rejections: Counter = Counter()
        self.delta_bytes_shipped = 0
        self.full_bytes_replaced = 0
        self.apply_cache_hits = 0

    def record_publish(self) -> None:
        """Count one signed manifest published to the channel."""
        self.manifests_published += 1

    def record_accept(self) -> None:
        """Count one manifest passing full verification."""
        self.manifests_accepted += 1

    def record_reject(self, code: str) -> None:
        """Count one typed rejection (manifest or delta)."""
        self.rejections[code] += 1

    def record_apply(self, delta_bytes: int, full_bytes: int,
                     cached: bool = False) -> None:
        """Count one applied update and its shipped-vs-full byte sizes."""
        self.applied += 1
        self.delta_bytes_shipped += delta_bytes
        self.full_bytes_replaced += full_bytes
        if cached:
            self.apply_cache_hits += 1

    def delta_ratio(self) -> float:
        """Shipped delta bytes as a fraction of the full images."""
        if not self.full_bytes_replaced:
            return 0.0
        return self.delta_bytes_shipped / self.full_bytes_replaced

    def snapshot(self) -> dict:
        """A plain-data view for reports and JSON persistence."""
        return {
            "manifests_published": self.manifests_published,
            "manifests_accepted": self.manifests_accepted,
            "applied": self.applied,
            "apply_cache_hits": self.apply_cache_hits,
            "rejections": dict(sorted(self.rejections.items())),
            "delta_bytes_shipped": self.delta_bytes_shipped,
            "full_bytes_replaced": self.full_bytes_replaced,
            "delta_ratio": self.delta_ratio(),
        }

    def reset(self) -> None:
        """Zero every counter."""
        self.__init__()


class AttestationTracer:
    """Fans events out to its sinks.

    The default construction wires a ring buffer and a counter registry
    (exposed as :attr:`ring` and :attr:`counters`); additional sinks can
    be attached with :meth:`add_sink`.  The tracer also owns the
    process-wide :class:`StorageCounters` (:attr:`storage`) that the
    device-mapper targets report into, the :class:`FarmCounters`
    (:attr:`farm`) the verify farm reports its batches to, and the
    :class:`UpdateCounters` (:attr:`update`) the signed update channel
    reports manifest verdicts and delta sizes to.
    """

    def __init__(self, ring_capacity: int = 256):
        self.ring = RingBufferSink(ring_capacity)
        self.counters = CounterRegistry()
        self.storage = StorageCounters()
        self.farm = FarmCounters()
        self.update = UpdateCounters()
        self._sinks: List[TraceSink] = [self.ring, self.counters]

    def add_sink(self, sink: TraceSink) -> None:
        """Register an extra consumer of trace events."""
        self._sinks.append(sink)

    def emit(self, event: TraceEvent) -> None:
        """Deliver *event* to every sink."""
        for sink in self._sinks:
            sink.record(event)


_default_tracer = AttestationTracer()


def get_tracer() -> AttestationTracer:
    """The process-wide tracer engines emit to by default."""
    return _default_tracer


def set_tracer(tracer: AttestationTracer) -> None:
    """Replace the process-wide tracer."""
    global _default_tracer
    _default_tracer = tracer


def reset_tracer() -> AttestationTracer:
    """Install (and return) a fresh process-wide tracer."""
    tracer = AttestationTracer()
    set_tracer(tracer)
    return tracer
