"""Per-TEE-family step providers for the unified verification engine.

Each supported :class:`~repro.attest.evidence.TeeFamily` registers a
:class:`StepProvider` that adapts its native verification primitives
(:mod:`repro.amd.verify`, :mod:`repro.tdx.module`,
:mod:`repro.cca.realms`, :mod:`repro.vtpm.vtpm`) into the engine's
ordered ``(step name, check callable)`` pipeline.  The engine stays
family-agnostic: it asks the provider to decode the evidence body, then
runs whatever steps the provider yields, recording each one with the
same :class:`~repro.attest.engine.StepRecord` machinery.

The step-name constants and the stable reason-code taxonomy live here
(re-exported by :mod:`repro.attest.engine` for compatibility).  Shared
checks keep their SNP-era names and codes across families — a TDX MRTD
not in the golden set fails ``measurement`` with
``measurement_mismatch``, exactly like an SNP launch digest — so policy
violations map to the *same* reason code in every family.  Checks with
no SNP analogue get family-scoped names (``lifecycle``, ``rak_binding``,
``quote_log``, ...).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Tuple

from ..amd.report import AttestationReport, ReportError
from ..amd.verify import (
    AttestationError,
    check_certificate_chain,
    check_chip_id_allowed,
    check_chip_id_binding,
    check_debug_policy,
    check_measurement,
    check_minimum_tcb,
    check_report_data,
    check_signature,
    check_tcb_binding,
)
from ..crypto import sigcache
from ..crypto.x509 import (
    Certificate,
    CertificateError,
    _find_anchor_for,
    validate_chain,
)
from .evidence import TeeFamily
from .policy import FamilyPolicy, VerificationPolicy

# -- step names ----------------------------------------------------------------
#
# The SNP pipeline's original step vocabulary (PR 2), now shared by
# every family that runs the equivalent check.

STEP_REVOCATION = "revocation"
STEP_VCEK_FETCH = "vcek_fetch"
STEP_CERT_CHAIN = "cert_chain"
STEP_CHIP_ID_BINDING = "chip_id_binding"
STEP_TCB_BINDING = "tcb_binding"
STEP_SIGNATURE = "signature"
STEP_DEBUG_POLICY = "debug_policy"
STEP_MEASUREMENT = "measurement"
STEP_REPORT_DATA = "report_data"
STEP_CHIP_ID_ALLOWLIST = "chip_id_allowlist"
STEP_TCB_FLOOR = "tcb_floor"

# Family-dispatch steps run by the engine before any provider step.
STEP_FAMILY_ALLOWED = "family_allowed"
STEP_EVIDENCE_DECODE = "evidence_decode"
STEP_TRUST_CONTEXT = "trust_context"

# Speculative verify-farm pass (engine-emitted, farm-wired runs only):
# endorsement fetch + one batched settlement of every signature the
# pipeline is about to check.
STEP_BATCH_PREPARE = "batch_prepare"

# Family-specific checks with no SNP analogue.
STEP_FAMILY_TCB_FLOOR = "family_tcb_floor"
STEP_ENDORSEMENT_FETCH = "endorsement_fetch"
STEP_PLATFORM_SIGNATURE = "platform_signature"
STEP_LIFECYCLE = "lifecycle"
STEP_RAK_BINDING = "rak_binding"
STEP_AK_ENDORSEMENT = "ak_endorsement"
STEP_QUOTE_SIGNATURE = "quote_signature"
STEP_QUOTE_LOG = "quote_log"
STEP_SERVICE_ALLOWLIST = "service_allowlist"

#: The SNP pipeline in execution order; optional steps are skipped
#: (not recorded) when the policy does not configure them.
STEP_ORDER: Tuple[str, ...] = (
    STEP_REVOCATION,
    STEP_VCEK_FETCH,
    STEP_CERT_CHAIN,
    STEP_CHIP_ID_BINDING,
    STEP_TCB_BINDING,
    STEP_SIGNATURE,
    STEP_DEBUG_POLICY,
    STEP_MEASUREMENT,
    STEP_REPORT_DATA,
    STEP_CHIP_ID_ALLOWLIST,
    STEP_TCB_FLOOR,
)


def _report_data_for(payload_digest: bytes) -> bytes:
    """A 32-byte digest in the 64-byte REPORT_DATA field (the
    :func:`repro.core.key_sharing.report_data_for` convention, local to
    avoid a layering cycle)."""
    return payload_digest + b"\x00" * 32


def _chain_signature_jobs(chain, anchors) -> list:
    """The ``(issuer key, tbs bytes, signature, hash)`` equations
    :func:`~repro.crypto.x509.validate_chain` will check for *chain*
    (leaf first) against *anchors* — mirrored exactly, so verify-farm
    batch verdicts land on the same signature-cache keys the chain walk
    looks up.  Link structure that the walk would reject (issuer
    mismatch, missing signature) stops enumeration: the pipeline step
    reports those failures itself."""
    jobs = []
    for child, parent in zip(chain, chain[1:]):
        if child.issuer != parent.subject or not child.signature:
            return jobs
        jobs.append(
            (parent.public_key, child.tbs_bytes(), child.signature,
             child.signature_hash)
        )
    top = chain[-1]
    anchor_map = {anchor.fingerprint(): anchor for anchor in anchors}
    if top.fingerprint() not in anchor_map and top.signature:
        anchor = _find_anchor_for(top, anchor_map.values())
        if anchor is not None:
            jobs.append(
                (anchor.public_key, top.tbs_bytes(), top.signature,
                 top.signature_hash)
            )
    return jobs


# -- trust contexts ------------------------------------------------------------
#
# What each family's verifier needs beyond the policy.  SEV-SNP and the
# e-vTPM use the KDS client the engine already holds; the others carry
# their own endorsement services.


@dataclass
class TdxTrust:
    """Verifier-side trust material for Intel TDX."""

    #: A :class:`~repro.tdx.module.ProvisioningCertificationService`.
    pcs: object
    #: Pinned anchors; ``None`` defaults to the PCS root certificate.
    trust_anchors: Optional[Tuple[Certificate, ...]] = None


@dataclass
class CcaTrust:
    """Verifier-side trust material for ARM CCA."""

    #: ``cpak_lookup(platform_id) -> Certificate`` (the CPAK endorsement).
    cpak_lookup: Callable[[bytes], Certificate]
    #: Pinned ARM root anchors.
    trust_anchors: Tuple[Certificate, ...] = ()


@dataclass
class VtpmTrust:
    """Verifier-side trust material for the SNP-endorsed e-vTPM."""

    #: The KDS client validating the AK endorsement report.
    kds: object
    #: Runtime-event allow-list; ``None`` skips the check.
    allowed_service_digests: Optional[frozenset] = None

    def __post_init__(self) -> None:
        if self.allowed_service_digests is not None:
            self.allowed_service_digests = frozenset(
                bytes(d) for d in self.allowed_service_digests
            )


# -- provider protocol and registry --------------------------------------------


class StepProvider:
    """One family's adapter: decode native evidence, yield check steps."""

    family: TeeFamily

    def decode(self, body: bytes):
        """Parse the envelope body into the family's native evidence;
        raise ``AttestationError("evidence_malformed", ...)`` on junk."""
        raise NotImplementedError

    def measurement(self, native) -> bytes:
        """The native evidence's launch measurement."""
        raise NotImplementedError

    def report_data(self, native) -> bytes:
        """The native evidence's challenge/REPORT_DATA binding."""
        raise NotImplementedError

    def steps(
        self,
        native,
        now: int,
        policy: VerificationPolicy,
        fam: FamilyPolicy,
        context,
        state: dict,
    ) -> Iterator[Tuple[str, Callable[[], None]]]:
        """Yield ``(step name, check)`` pairs in verification order."""
        raise NotImplementedError

    def signature_jobs(
        self,
        native,
        now: int,
        policy: VerificationPolicy,
        fam: FamilyPolicy,
        context,
        state: dict,
    ) -> list:
        """The speculative verify-farm pass: fetch endorsements into
        *state* (so the pipeline's fetch step becomes a no-op) and
        return every ``(key, message, signature, hash_name)`` the step
        list is about to verify, for one batched settlement.  Families
        that cannot prejudge (fetch failure, custom signature formats)
        return ``[]`` and the pipeline runs — and fails — normally."""
        return []


_PROVIDERS: Dict[TeeFamily, StepProvider] = {}


def register_step_provider(provider: StepProvider) -> StepProvider:
    """Register a family's step provider (module import time)."""
    _PROVIDERS[provider.family] = provider
    return provider


def provider_for(family: TeeFamily) -> Optional[StepProvider]:
    """The registered provider for *family* (None if unknown)."""
    return _PROVIDERS.get(family)


def registered_families() -> Tuple[TeeFamily, ...]:
    """Every family with a registered provider."""
    return tuple(_PROVIDERS)


def _malformed(exc: Exception) -> AttestationError:
    return AttestationError("evidence_malformed", f"undecodable evidence: {exc}")


# -- SEV-SNP -------------------------------------------------------------------


class SnpStepProvider(StepProvider):
    """The original PR-2 pipeline, expressed as a step provider.

    *context* is the engine's :class:`~repro.core.kds_client.KdsClient`.
    The step sequence is byte-identical to the historical SNP-only
    engine for any policy without family overlays; the only addition is
    a trailing ``family_tcb_floor`` step when a per-family floor is set.
    """

    family = TeeFamily.SEV_SNP

    def decode(self, body: bytes) -> AttestationReport:
        try:
            return AttestationReport.decode(body)
        except (ReportError, ValueError, KeyError, TypeError) as exc:
            raise _malformed(exc) from exc

    def measurement(self, native: AttestationReport) -> bytes:
        return native.measurement

    def report_data(self, native: AttestationReport) -> bytes:
        return native.report_data

    def signature_jobs(self, report, now, policy, fam, kds, state):
        try:
            state["vcek"] = kds.get_vcek(report.chip_id, report.reported_tcb)
            state["chain"] = kds.cert_chain()
        except LookupError:
            return []  # the vcek_fetch step reports unknown_platform
        anchors = (
            list(fam.trust_anchors)
            if fam.trust_anchors is not None
            else [kds.trust_anchor]
        )
        jobs = _chain_signature_jobs(
            [state["vcek"], *state["chain"]], anchors
        )
        vcek_key = state["vcek"].public_key
        if vcek_key.algorithm == "ecdsa" and report.signature:
            jobs.append(
                (vcek_key.inner, report.signed_bytes(), report.signature,
                 "sha384")
            )
        return jobs

    def steps(self, report, now, policy, fam, kds, state):
        revoked = {bytes(m) for m in fam.revoked_measurements}

        def revocation():
            if bytes(report.measurement) in revoked:
                raise AttestationError(
                    "measurement_revoked",
                    "measurement has been revoked (rollback?)",
                )

        if revoked:
            yield STEP_REVOCATION, revocation

        def vcek_fetch():
            if state["vcek"] is not None and state["chain"] is not None:
                return  # the verify-farm prepare pass already fetched
            try:
                state["vcek"] = kds.get_vcek(report.chip_id, report.reported_tcb)
                state["chain"] = kds.cert_chain()
            except LookupError as exc:
                raise AttestationError(
                    "unknown_platform", f"KDS has no VCEK for this chip: {exc}"
                ) from exc

        yield STEP_VCEK_FETCH, vcek_fetch

        anchors = (
            list(fam.trust_anchors)
            if fam.trust_anchors is not None
            else [kds.trust_anchor]
        )
        yield STEP_CERT_CHAIN, lambda: check_certificate_chain(
            state["vcek"], state["chain"], anchors, now
        )
        yield STEP_CHIP_ID_BINDING, lambda: check_chip_id_binding(
            report, state["vcek"]
        )
        yield STEP_TCB_BINDING, lambda: check_tcb_binding(report, state["vcek"])
        yield STEP_SIGNATURE, lambda: check_signature(report, state["vcek"])
        yield STEP_DEBUG_POLICY, lambda: check_debug_policy(
            report, policy.allow_debug
        )

        golden = fam.effective_golden()
        if golden is not None:
            yield STEP_MEASUREMENT, lambda: check_measurement(report, golden)
        if policy.expected_report_data is not None:
            yield STEP_REPORT_DATA, lambda: check_report_data(
                report, policy.expected_report_data
            )
        if policy.allowed_chip_ids is not None:
            yield STEP_CHIP_ID_ALLOWLIST, lambda: check_chip_id_allowed(
                report, policy.allowed_chip_ids
            )
        if policy.minimum_tcb is not None:
            yield STEP_TCB_FLOOR, lambda: check_minimum_tcb(
                report, policy.minimum_tcb
            )

        def family_tcb_floor():
            try:
                check_minimum_tcb(report, fam.minimum_tcb)
            except AttestationError as exc:
                raise AttestationError("family_tcb_floor", exc.detail) from exc

        if fam.minimum_tcb is not None:
            yield STEP_FAMILY_TCB_FLOOR, family_tcb_floor


# -- Intel TDX -----------------------------------------------------------------


class TdxStepProvider(StepProvider):
    """TDX quote verification (the go-tdx-guest flow) as engine steps.

    *context* is a :class:`TdxTrust` (or a bare PCS handle).
    """

    family = TeeFamily.TDX

    def decode(self, body: bytes):
        from ..tdx.module import TdQuote

        try:
            return TdQuote.decode(body)
        except (ValueError, KeyError, TypeError) as exc:
            raise _malformed(exc) from exc

    def measurement(self, native) -> bytes:
        return native.mrtd

    def report_data(self, native) -> bytes:
        return native.report_data

    def signature_jobs(self, quote, now, policy, fam, context, state):
        from ..tdx.module import TdxError

        trust = context if isinstance(context, TdxTrust) else TdxTrust(context)
        pcs = trust.pcs
        try:
            state["vcek"] = pcs.get_pck_certificate(
                quote.platform_id, quote.tee_tcb_svn
            )
            state["chain"] = pcs.cert_chain()
        except (TdxError, LookupError):
            return []  # the endorsement_fetch step reports unknown_platform
        anchors = (
            fam.trust_anchors or trust.trust_anchors or (pcs.root_certificate,)
        )
        jobs = _chain_signature_jobs(
            [state["vcek"], *state["chain"]], list(anchors)
        )
        if quote.signature:
            jobs.append(
                (state["vcek"].public_key, quote.signed_payload(),
                 quote.signature, "sha384")
            )
        return jobs

    def steps(self, quote, now, policy, fam, context, state):
        from ..tdx.module import TdxError

        trust = context if isinstance(context, TdxTrust) else TdxTrust(context)
        pcs = trust.pcs
        revoked = {bytes(m) for m in fam.revoked_measurements}

        def revocation():
            if bytes(quote.mrtd) in revoked:
                raise AttestationError(
                    "measurement_revoked",
                    "measurement has been revoked (rollback?)",
                )

        if revoked:
            yield STEP_REVOCATION, revocation

        def endorsement_fetch():
            if state["vcek"] is not None and state["chain"] is not None:
                return  # the verify-farm prepare pass already fetched
            try:
                state["vcek"] = pcs.get_pck_certificate(
                    quote.platform_id, quote.tee_tcb_svn
                )
                state["chain"] = pcs.cert_chain()
            except (TdxError, LookupError) as exc:
                raise AttestationError(
                    "unknown_platform", f"PCS has no PCK for this platform: {exc}"
                ) from exc

        yield STEP_ENDORSEMENT_FETCH, endorsement_fetch

        anchors = (
            fam.trust_anchors
            or trust.trust_anchors
            or (pcs.root_certificate,)
        )

        def cert_chain():
            try:
                validate_chain(
                    [state["vcek"], *state["chain"]], list(anchors), now=now
                )
            except CertificateError as exc:
                raise AttestationError("bad_cert_chain", str(exc)) from exc

        yield STEP_CERT_CHAIN, cert_chain

        def chip_id_binding():
            cert_platform = state["vcek"].extension("intel.platform_id")
            if cert_platform is None or cert_platform != quote.platform_id:
                raise AttestationError(
                    "chip_id_mismatch",
                    "PCK certificate platform id does not match the quote",
                )

        yield STEP_CHIP_ID_BINDING, chip_id_binding

        def tcb_binding():
            cert_svn = state["vcek"].extension("intel.tcb_svn")
            if (
                cert_svn is None
                or int.from_bytes(cert_svn, "little") != quote.tee_tcb_svn
            ):
                raise AttestationError(
                    "tcb_mismatch", "PCK certificate TCB SVN mismatch"
                )

        yield STEP_TCB_BINDING, tcb_binding

        def signature():
            if not state["vcek"].public_key.verify(
                quote.signed_payload(), quote.signature, "sha384"
            ):
                raise AttestationError(
                    "bad_signature",
                    "quote signature does not verify under the PCK",
                )

        yield STEP_SIGNATURE, signature

        golden = fam.effective_golden()

        def measurement():
            if bytes(quote.mrtd) not in golden:
                raise AttestationError(
                    "measurement_mismatch",
                    f"measurement {quote.mrtd.hex()[:16]}... is not in the "
                    f"golden set ({len(golden)} value(s))",
                )

        if golden is not None:
            yield STEP_MEASUREMENT, measurement

        def report_data():
            if quote.report_data != policy.expected_report_data:
                raise AttestationError(
                    "report_data_mismatch",
                    "REPORT_DATA does not match expectation",
                )

        if policy.expected_report_data is not None:
            yield STEP_REPORT_DATA, report_data

        def family_tcb_floor():
            if quote.tee_tcb_svn < fam.minimum_tcb:
                raise AttestationError(
                    "family_tcb_floor",
                    "platform TCB below the required minimum",
                )

        if fam.minimum_tcb is not None:
            yield STEP_FAMILY_TCB_FLOOR, family_tcb_floor


# -- ARM CCA -------------------------------------------------------------------


class CcaStepProvider(StepProvider):
    """CCA two-token verification (token chaining) as engine steps.

    *context* is a :class:`CcaTrust`.
    """

    family = TeeFamily.CCA

    def decode(self, body: bytes):
        from ..cca.realms import CcaError, CcaToken

        try:
            return CcaToken.decode(body)
        except (CcaError, ValueError, KeyError, TypeError) as exc:
            raise _malformed(exc) from exc

    def measurement(self, native) -> bytes:
        return native.realm_token.rim

    def report_data(self, native) -> bytes:
        return native.realm_token.challenge

    def signature_jobs(self, token, now, policy, fam, context, state):
        from ..cca.realms import CcaError
        from ..crypto.ecdsa import EcdsaPublicKey, SignatureError

        trust = (
            context
            if isinstance(context, CcaTrust)
            else CcaTrust(context[0], tuple(context[1]))
        )
        realm = token.realm_token
        platform = token.platform_token
        try:
            state["vcek"] = trust.cpak_lookup(platform.platform_id)
        except (CcaError, LookupError):
            return []  # the endorsement_fetch step reports unknown_platform
        anchors = fam.trust_anchors or tuple(trust.trust_anchors)
        jobs = _chain_signature_jobs([state["vcek"]], list(anchors))
        if platform.signature:
            jobs.append(
                (state["vcek"].public_key, platform.signed_payload(),
                 platform.signature, "sha384")
            )
        try:
            rak = EcdsaPublicKey.decode(realm.rak_public)
        except (SignatureError, ValueError):
            return jobs  # the signature step reports the bad RAK
        if realm.signature:
            jobs.append(
                (rak, realm.signed_payload(), realm.signature, "sha384")
            )
        return jobs

    def steps(self, token, now, policy, fam, context, state):
        from ..cca.realms import CcaError
        from ..crypto.ecdsa import EcdsaPublicKey

        trust = (
            context
            if isinstance(context, CcaTrust)
            else CcaTrust(context[0], tuple(context[1]))
        )
        realm = token.realm_token
        platform = token.platform_token
        revoked = {bytes(m) for m in fam.revoked_measurements}

        def revocation():
            if bytes(realm.rim) in revoked:
                raise AttestationError(
                    "measurement_revoked",
                    "measurement has been revoked (rollback?)",
                )

        if revoked:
            yield STEP_REVOCATION, revocation

        def endorsement_fetch():
            if state["vcek"] is not None:
                return  # the verify-farm prepare pass already fetched
            try:
                state["vcek"] = trust.cpak_lookup(platform.platform_id)
            except (CcaError, LookupError) as exc:
                raise AttestationError(
                    "unknown_platform", f"no CPAK for this platform: {exc}"
                ) from exc

        yield STEP_ENDORSEMENT_FETCH, endorsement_fetch

        anchors = fam.trust_anchors or tuple(trust.trust_anchors)

        def cert_chain():
            try:
                validate_chain([state["vcek"]], list(anchors), now=now)
            except CertificateError as exc:
                raise AttestationError("bad_cert_chain", str(exc)) from exc

        yield STEP_CERT_CHAIN, cert_chain

        def chip_id_binding():
            cert_platform = state["vcek"].extension("arm.platform_id")
            if cert_platform is None or cert_platform != platform.platform_id:
                raise AttestationError(
                    "chip_id_mismatch",
                    "CPAK certificate is for a different platform",
                )

        yield STEP_CHIP_ID_BINDING, chip_id_binding

        def platform_signature():
            if not state["vcek"].public_key.verify(
                platform.signed_payload(), platform.signature, "sha384"
            ):
                raise AttestationError(
                    "bad_signature", "platform token signature invalid"
                )

        yield STEP_PLATFORM_SIGNATURE, platform_signature

        def lifecycle():
            if platform.lifecycle_state != "secured":
                raise AttestationError(
                    "lifecycle_not_secured",
                    f"platform lifecycle is {platform.lifecycle_state!r}, "
                    "not secured",
                )

        yield STEP_LIFECYCLE, lifecycle

        def rak_binding():
            if hashlib.sha256(realm.rak_public).digest() != platform.rak_hash:
                raise AttestationError(
                    "rak_not_endorsed",
                    "platform token does not endorse this realm's RAK",
                )

        yield STEP_RAK_BINDING, rak_binding

        def signature():
            rak = EcdsaPublicKey.decode(realm.rak_public)
            if not sigcache.cached_verify(
                rak, realm.signed_payload(), realm.signature, "sha384"
            ):
                raise AttestationError(
                    "bad_signature", "realm token signature invalid"
                )

        yield STEP_SIGNATURE, signature

        golden = fam.effective_golden()

        def measurement():
            if bytes(realm.rim) not in golden:
                raise AttestationError(
                    "measurement_mismatch",
                    f"measurement {realm.rim.hex()[:16]}... is not in the "
                    f"golden set ({len(golden)} value(s))",
                )

        if golden is not None:
            yield STEP_MEASUREMENT, measurement

        def report_data():
            if realm.challenge != policy.expected_report_data:
                raise AttestationError(
                    "report_data_mismatch",
                    "REPORT_DATA does not match expectation",
                )

        if policy.expected_report_data is not None:
            yield STEP_REPORT_DATA, report_data

        def family_tcb_floor():
            if platform.platform_svn < fam.minimum_tcb:
                raise AttestationError(
                    "family_tcb_floor",
                    "platform TCB below the required minimum",
                )

        if fam.minimum_tcb is not None:
            yield STEP_FAMILY_TCB_FLOOR, family_tcb_floor


# -- SNP-endorsed e-vTPM -------------------------------------------------------


class VtpmStepProvider(StepProvider):
    """e-vTPM monitoring-evidence verification as engine steps.

    *context* is a :class:`VtpmTrust`.  The SNP endorsement report is
    verified with the full SNP sub-pipeline (the AK is only as strong
    as the hardware RoT vouching for it), then the quote/log half runs:
    nonce freshness, quote signature, event-log replay, and the runtime
    allow-list.  ``policy.expected_report_data`` binds the *quote
    nonce*; the endorsement's own REPORT_DATA binding to the AK is the
    dedicated ``ak_endorsement`` step.
    """

    family = TeeFamily.VTPM

    def decode(self, body: bytes):
        from ..vtpm.monitoring import MonitoringEvidence

        try:
            return MonitoringEvidence.decode(body)
        except (ReportError, ValueError, KeyError, TypeError) as exc:
            raise _malformed(exc) from exc

    def measurement(self, native) -> bytes:
        return native.ak_endorsement.measurement

    def report_data(self, native) -> bytes:
        return native.quote.nonce

    def signature_jobs(self, evidence, now, policy, fam, context, state):
        trust = context if isinstance(context, VtpmTrust) else VtpmTrust(context)
        kds = trust.kds
        endorsement = evidence.ak_endorsement
        try:
            state["vcek"] = kds.get_vcek(
                endorsement.chip_id, endorsement.reported_tcb
            )
            state["chain"] = kds.cert_chain()
        except LookupError:
            return []  # the vcek_fetch step reports unknown_platform
        anchors = (
            list(fam.trust_anchors)
            if fam.trust_anchors is not None
            else [kds.trust_anchor]
        )
        jobs = _chain_signature_jobs(
            [state["vcek"], *state["chain"]], anchors
        )
        vcek_key = state["vcek"].public_key
        if vcek_key.algorithm == "ecdsa" and endorsement.signature:
            jobs.append(
                (vcek_key.inner, endorsement.signed_bytes(),
                 endorsement.signature, "sha384")
            )
        # The TPM quote signature (STEP_QUOTE_SIGNATURE) uses the
        # quote's own composite verify and is not batchable here.
        return jobs

    def steps(self, evidence, now, policy, fam, context, state):
        from ..vtpm.vtpm import PCR_SERVICES, VtpmError, replay_event_log

        trust = context if isinstance(context, VtpmTrust) else VtpmTrust(context)
        kds = trust.kds
        endorsement = evidence.ak_endorsement
        revoked = {bytes(m) for m in fam.revoked_measurements}

        def revocation():
            if bytes(endorsement.measurement) in revoked:
                raise AttestationError(
                    "measurement_revoked",
                    "measurement has been revoked (rollback?)",
                )

        if revoked:
            yield STEP_REVOCATION, revocation

        def vcek_fetch():
            if state["vcek"] is not None and state["chain"] is not None:
                return  # the verify-farm prepare pass already fetched
            try:
                state["vcek"] = kds.get_vcek(
                    endorsement.chip_id, endorsement.reported_tcb
                )
                state["chain"] = kds.cert_chain()
            except LookupError as exc:
                raise AttestationError(
                    "unknown_platform", f"KDS has no VCEK for this chip: {exc}"
                ) from exc

        yield STEP_VCEK_FETCH, vcek_fetch

        anchors = (
            list(fam.trust_anchors)
            if fam.trust_anchors is not None
            else [kds.trust_anchor]
        )
        yield STEP_CERT_CHAIN, lambda: check_certificate_chain(
            state["vcek"], state["chain"], anchors, now
        )
        yield STEP_CHIP_ID_BINDING, lambda: check_chip_id_binding(
            endorsement, state["vcek"]
        )
        yield STEP_TCB_BINDING, lambda: check_tcb_binding(
            endorsement, state["vcek"]
        )
        yield STEP_SIGNATURE, lambda: check_signature(endorsement, state["vcek"])
        yield STEP_DEBUG_POLICY, lambda: check_debug_policy(
            endorsement, policy.allow_debug
        )

        def ak_endorsement():
            expected = _report_data_for(
                hashlib.sha256(evidence.ak_public.encode()).digest()
            )
            if endorsement.report_data != expected:
                raise AttestationError(
                    "ak_not_endorsed",
                    "endorsement REPORT_DATA does not bind this AK",
                )

        yield STEP_AK_ENDORSEMENT, ak_endorsement

        golden = fam.effective_golden()
        if golden is not None:
            yield STEP_MEASUREMENT, lambda: check_measurement(
                endorsement, golden
            )

        def report_data():
            if evidence.quote.nonce != policy.expected_report_data:
                raise AttestationError(
                    "report_data_mismatch", "quote nonce mismatch (replay?)"
                )

        if policy.expected_report_data is not None:
            yield STEP_REPORT_DATA, report_data

        if policy.allowed_chip_ids is not None:
            yield STEP_CHIP_ID_ALLOWLIST, lambda: check_chip_id_allowed(
                endorsement, policy.allowed_chip_ids
            )
        if policy.minimum_tcb is not None:
            yield STEP_TCB_FLOOR, lambda: check_minimum_tcb(
                endorsement, policy.minimum_tcb
            )

        def family_tcb_floor():
            try:
                check_minimum_tcb(endorsement, fam.minimum_tcb)
            except AttestationError as exc:
                raise AttestationError("family_tcb_floor", exc.detail) from exc

        if fam.minimum_tcb is not None:
            yield STEP_FAMILY_TCB_FLOOR, family_tcb_floor

        def quote_signature():
            if not evidence.quote.verify(evidence.ak_public):
                raise AttestationError(
                    "bad_signature", "quote signature invalid"
                )

        yield STEP_QUOTE_SIGNATURE, quote_signature

        def quote_log():
            try:
                replayed = replay_event_log(evidence.event_log)
            except VtpmError as exc:
                raise AttestationError("quote_log_mismatch", str(exc)) from exc
            for index, value in evidence.quote.pcr_values:
                expected = replayed.get(index, b"\x00" * 32)
                if value != expected:
                    raise AttestationError(
                        "quote_log_mismatch",
                        f"PCR {index} does not match the event log "
                        "(unlogged runtime event detected)",
                    )

        yield STEP_QUOTE_LOG, quote_log

        def service_allowlist():
            for entry in evidence.event_log:
                if entry.pcr_index != PCR_SERVICES:
                    continue
                if entry.digest not in trust.allowed_service_digests:
                    raise AttestationError(
                        "service_not_allowed",
                        f"unapproved runtime event: {entry.description!r}",
                    )

        if trust.allowed_service_digests is not None:
            yield STEP_SERVICE_ALLOWLIST, service_allowlist


register_step_provider(SnpStepProvider())
register_step_provider(TdxStepProvider())
register_step_provider(CcaStepProvider())
register_step_provider(VtpmStepProvider())
