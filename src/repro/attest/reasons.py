"""The canonical attestation reason-code taxonomy.

Every verification failure the unified pipeline can produce carries one
of these stable, machine-readable codes (PR-2 introduced the SNP set;
PR-6 extended it across TEE families).  The set is *closed*: step
providers must reuse an existing code or add it here, and the campaign
taxonomy test (`tests/scenarios/test_taxonomy.py`) asserts every code
is reached by at least one adversary scenario — an unreachable code is
either dead or untested, and both fail loudly.
"""

from __future__ import annotations

#: Codes producible by the family step providers
#: (:mod:`repro.attest.families`), the dispatch engine
#: (:mod:`repro.attest.engine`), and the SNP checker the SNP provider
#: delegates to (:mod:`repro.amd.verify`).
ATTEST_REASON_CODES = frozenset({
    # dispatch / envelope
    "evidence_malformed",     # undecodable evidence body
    "family_not_allowed",     # family outside the policy's admissible set
    "no_trust_context",       # verifier has no trust material for the family
    # endorsement chain
    "unknown_platform",       # KDS/PCS/CPAK lookup has no such platform
    "bad_cert_chain",         # endorsement chain fails to validate
    "chip_id_mismatch",       # endorsement bound to a different platform
    "chip_id_not_allowed",    # platform outside the chip-id allow-list
    "tcb_mismatch",           # endorsement TCB != reported TCB (stale replay)
    # report / token content
    "bad_signature",          # report/quote/token signature invalid
    "debug_policy",           # debug-enabled guest against a no-debug policy
    "measurement_mismatch",   # launch measurement not in the golden set
    "measurement_revoked",    # measurement revoked after a rollout
    "report_data_mismatch",   # REPORT_DATA / nonce does not bind the key
    "tcb_too_old",            # reported TCB below the policy floor
    "family_tcb_floor",       # reported TCB below the per-family floor
    # family-specific integrity
    "ak_not_endorsed",        # e-vTPM AK not bound by the SNP endorsement
    "lifecycle_not_secured",  # CCA platform not in the secured lifecycle
    "quote_log_mismatch",     # TPM quote PCRs disagree with the event log
    "rak_not_endorsed",       # CCA platform token does not endorse the RAK
    "service_not_allowed",    # runtime service event outside the allow-list
})
