"""The unified attestation verification pipeline (SNPGuard-style).

Every Revelio verifier — the web extension, RA-TLS peers, the SP node,
the vTPM monitor, key-sharing recipients, the hardware-agnostic TEE
dispatch — runs the *same* procedure with different expectations.  This
package makes that one observable pipeline:

* :class:`TeeFamily` / :class:`Evidence` — the TEE vocabulary and the
  tagged envelope the engine dispatches on (SEV-SNP, TDX, CCA, e-vTPM),
* :class:`VerificationPolicy` — the expectations, declaratively, with
  per-family :class:`FamilyPolicy` overlays,
* :class:`AttestationVerifier` — the engine: runs the registered
  :mod:`repro.attest.families` step provider for the evidence's family
  as an ordered step list,
* :class:`VerificationOutcome` — per-step results with stable reason
  codes and simulated-clock costs,
* :mod:`repro.attest.trace` — pluggable sinks, ring buffer, counters
  (globally and per family).
"""

from .engine import (
    AttestationVerifier,
    StepRecord,
    VerificationOutcome,
)
from .evidence import (
    ALL_FAMILIES,
    Evidence,
    EvidenceError,
    TeeFamily,
    cca_evidence,
    family_of,
    snp_evidence,
    tdx_evidence,
    vtpm_evidence,
)
from .families import (
    STEP_AK_ENDORSEMENT,
    STEP_BATCH_PREPARE,
    STEP_CERT_CHAIN,
    STEP_CHIP_ID_ALLOWLIST,
    STEP_CHIP_ID_BINDING,
    STEP_DEBUG_POLICY,
    STEP_ENDORSEMENT_FETCH,
    STEP_EVIDENCE_DECODE,
    STEP_FAMILY_ALLOWED,
    STEP_FAMILY_TCB_FLOOR,
    STEP_LIFECYCLE,
    STEP_MEASUREMENT,
    STEP_ORDER,
    STEP_PLATFORM_SIGNATURE,
    STEP_QUOTE_LOG,
    STEP_QUOTE_SIGNATURE,
    STEP_RAK_BINDING,
    STEP_REPORT_DATA,
    STEP_REVOCATION,
    STEP_SERVICE_ALLOWLIST,
    STEP_SIGNATURE,
    STEP_TCB_BINDING,
    STEP_TCB_FLOOR,
    STEP_TRUST_CONTEXT,
    STEP_VCEK_FETCH,
    CcaTrust,
    StepProvider,
    TdxTrust,
    VtpmTrust,
    provider_for,
    register_step_provider,
    registered_families,
)
from .farm import FarmJob, VerifyFarm
from .policy import FamilyPolicy, VerificationPolicy
from .reasons import ATTEST_REASON_CODES
from .trace import (
    AttestationTracer,
    CounterRegistry,
    FarmCounters,
    Histogram,
    RingBufferSink,
    StorageCounters,
    TraceEvent,
    TraceSink,
    get_tracer,
    reset_tracer,
    set_tracer,
)

__all__ = [
    "ALL_FAMILIES",
    "ATTEST_REASON_CODES",
    "AttestationTracer",
    "AttestationVerifier",
    "CcaTrust",
    "CounterRegistry",
    "Evidence",
    "EvidenceError",
    "FamilyPolicy",
    "FarmCounters",
    "FarmJob",
    "Histogram",
    "RingBufferSink",
    "STEP_AK_ENDORSEMENT",
    "STEP_BATCH_PREPARE",
    "STEP_CERT_CHAIN",
    "STEP_CHIP_ID_ALLOWLIST",
    "STEP_CHIP_ID_BINDING",
    "STEP_DEBUG_POLICY",
    "STEP_ENDORSEMENT_FETCH",
    "STEP_EVIDENCE_DECODE",
    "STEP_FAMILY_ALLOWED",
    "STEP_FAMILY_TCB_FLOOR",
    "STEP_LIFECYCLE",
    "STEP_MEASUREMENT",
    "STEP_ORDER",
    "STEP_PLATFORM_SIGNATURE",
    "STEP_QUOTE_LOG",
    "STEP_QUOTE_SIGNATURE",
    "STEP_RAK_BINDING",
    "STEP_REPORT_DATA",
    "STEP_REVOCATION",
    "STEP_SERVICE_ALLOWLIST",
    "STEP_SIGNATURE",
    "STEP_TCB_BINDING",
    "STEP_TCB_FLOOR",
    "STEP_TRUST_CONTEXT",
    "STEP_VCEK_FETCH",
    "StepProvider",
    "StepRecord",
    "StorageCounters",
    "TdxTrust",
    "TeeFamily",
    "TraceEvent",
    "TraceSink",
    "VerificationOutcome",
    "VerificationPolicy",
    "VerifyFarm",
    "VtpmTrust",
    "cca_evidence",
    "family_of",
    "get_tracer",
    "provider_for",
    "register_step_provider",
    "registered_families",
    "reset_tracer",
    "set_tracer",
    "snp_evidence",
    "tdx_evidence",
    "vtpm_evidence",
]
