"""The unified attestation verification pipeline (SNPGuard-style).

Every Revelio verifier — the web extension, RA-TLS peers, the SP node,
the vTPM monitor, key-sharing recipients, the hardware-agnostic TEE
dispatch — runs the *same* procedure with different expectations.  This
package makes that one observable pipeline:

* :class:`VerificationPolicy` — the expectations, declaratively,
* :class:`AttestationVerifier` — the engine: owns the KDS interaction
  and runs the :mod:`repro.amd.verify` primitives as an ordered step
  list,
* :class:`VerificationOutcome` — per-step results with stable reason
  codes and simulated-clock costs,
* :mod:`repro.attest.trace` — pluggable sinks, ring buffer, counters.
"""

from .engine import (
    STEP_CERT_CHAIN,
    STEP_CHIP_ID_ALLOWLIST,
    STEP_CHIP_ID_BINDING,
    STEP_DEBUG_POLICY,
    STEP_MEASUREMENT,
    STEP_ORDER,
    STEP_REPORT_DATA,
    STEP_REVOCATION,
    STEP_SIGNATURE,
    STEP_TCB_BINDING,
    STEP_TCB_FLOOR,
    STEP_VCEK_FETCH,
    AttestationVerifier,
    StepRecord,
    VerificationOutcome,
)
from .policy import VerificationPolicy
from .trace import (
    AttestationTracer,
    CounterRegistry,
    Histogram,
    RingBufferSink,
    StorageCounters,
    TraceEvent,
    TraceSink,
    get_tracer,
    reset_tracer,
    set_tracer,
)

__all__ = [
    "AttestationTracer",
    "AttestationVerifier",
    "CounterRegistry",
    "Histogram",
    "RingBufferSink",
    "STEP_CERT_CHAIN",
    "STEP_CHIP_ID_ALLOWLIST",
    "STEP_CHIP_ID_BINDING",
    "STEP_DEBUG_POLICY",
    "STEP_MEASUREMENT",
    "STEP_ORDER",
    "STEP_REPORT_DATA",
    "STEP_REVOCATION",
    "StorageCounters",
    "STEP_SIGNATURE",
    "STEP_TCB_BINDING",
    "STEP_TCB_FLOOR",
    "STEP_VCEK_FETCH",
    "StepRecord",
    "TraceEvent",
    "TraceSink",
    "VerificationOutcome",
    "VerificationPolicy",
    "get_tracer",
    "reset_tracer",
    "set_tracer",
]
