"""The unified attestation verification engine.

One :class:`AttestationVerifier` replaces the hand-rolled
fetch-VCEK/verify/map-error blocks that used to live in every verifier
(web extension, RA-TLS, key sharing, SP node, vTPM monitor, TEE
dispatch).  It runs an explicit ordered step list, producing a
:class:`VerificationOutcome` that records *per-step* results — name,
pass/fail, stable reason code, simulated-clock cost — instead of
raising opaquely on the first failure.  Every run is reported to the
tracing layer (:mod:`repro.attest.trace`).

The step list is family-dispatched: a bare SNP
:class:`~repro.amd.report.AttestationReport` runs the historical SNP
pipeline unchanged, while a tagged
:class:`~repro.attest.evidence.Evidence` envelope is routed to the
registered :mod:`~repro.attest.families` provider for its TEE family
(SEV-SNP, TDX, CCA, e-vTPM), after family admissibility and decode
steps.  One engine, one reason-code taxonomy, four backends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..amd.report import AttestationReport
from ..amd.verify import AttestationError, VerifiedReport
from ..crypto import sigcache
from ..crypto.x509 import Certificate
from .evidence import Evidence, TeeFamily
from .families import (
    STEP_AK_ENDORSEMENT,
    STEP_BATCH_PREPARE,
    STEP_CERT_CHAIN,
    STEP_CHIP_ID_ALLOWLIST,
    STEP_CHIP_ID_BINDING,
    STEP_DEBUG_POLICY,
    STEP_ENDORSEMENT_FETCH,
    STEP_EVIDENCE_DECODE,
    STEP_FAMILY_ALLOWED,
    STEP_FAMILY_TCB_FLOOR,
    STEP_LIFECYCLE,
    STEP_MEASUREMENT,
    STEP_ORDER,
    STEP_PLATFORM_SIGNATURE,
    STEP_QUOTE_LOG,
    STEP_QUOTE_SIGNATURE,
    STEP_RAK_BINDING,
    STEP_REPORT_DATA,
    STEP_REVOCATION,
    STEP_SERVICE_ALLOWLIST,
    STEP_SIGNATURE,
    STEP_TCB_BINDING,
    STEP_TCB_FLOOR,
    STEP_TRUST_CONTEXT,
    STEP_VCEK_FETCH,
    VtpmTrust,
    provider_for,
)
from .policy import VerificationPolicy
from .trace import AttestationTracer, TraceEvent, get_tracer

#: Crypto steps priced on the simulated clock, mapped to the
#: LatencyModel attribute carrying their calibrated cost.  Together the
#: defaults reproduce the paper's Table 2 ~13 ms client-side validation
#: — so cached-KDS runs no longer report 0.0 sim-ms per verification.
_CRYPTO_STEP_PRICES: dict = {
    STEP_CERT_CHAIN: "cert_chain_verify",
    STEP_SIGNATURE: "sig_verify",
    STEP_PLATFORM_SIGNATURE: "sig_verify",
    STEP_QUOTE_SIGNATURE: "sig_verify",
    STEP_MEASUREMENT: "measurement_check",
}

#: Fraction of the crypto price charged when the signature-verification
#: cache fully served a step (a hash + dict lookup instead of EC math).
#: The measurement step never hits the cache: policy checks are always
#: run fresh, so it is always charged in full.
_CACHED_VERIFY_DISCOUNT = 0.05


@dataclass(frozen=True)
class StepRecord:
    """One executed pipeline step."""

    name: str
    passed: bool
    reason: Optional[str] = None  # stable failure code, None on pass
    detail: str = ""
    sim_cost: float = 0.0  # simulated seconds spent in this step


@dataclass(frozen=True)
class VerificationOutcome:
    """A full verification result, step by step.

    The pipeline stops at the first failing step (later checks would be
    meaningless without, e.g., a validated VCEK), so ``steps`` lists
    every executed step and, on failure, ends with the failing one.
    """

    site: str
    verdict: str  # "pass" | "fail"
    steps: Tuple[StepRecord, ...]
    #: The family-native evidence object (an SNP AttestationReport, a
    #: TdQuote, a CcaToken, a MonitoringEvidence) — or ``None`` when the
    #: run failed before/at decode.
    report: object
    policy: VerificationPolicy
    vcek_certificate: Optional[Certificate] = None
    sim_cost: float = 0.0
    #: The evidence's TEE family name (``"sev-snp"`` for bare reports).
    family: str = str(TeeFamily.SEV_SNP)

    @property
    def ok(self) -> bool:
        """Did every step pass?"""
        return self.verdict == "pass"

    @property
    def failure(self) -> Optional[StepRecord]:
        """The failing step record (None on success)."""
        if self.steps and not self.steps[-1].passed:
            return self.steps[-1]
        return None

    @property
    def reason(self) -> Optional[str]:
        """The stable failure code (None on success)."""
        failure = self.failure
        return failure.reason if failure is not None else None

    @property
    def detail(self) -> str:
        """Human-readable failure detail ("" on success)."""
        failure = self.failure
        return failure.detail if failure is not None else ""

    def step(self, name: str) -> Optional[StepRecord]:
        """The record for a named step, if it executed."""
        for record in self.steps:
            if record.name == name:
                return record
        return None

    def raise_for_failure(self) -> None:
        """Re-raise a failed outcome as an :class:`AttestationError`
        carrying the failing step's stable reason code."""
        failure = self.failure
        if failure is not None:
            raise AttestationError(failure.reason, failure.detail)

    def verified_report(self) -> VerifiedReport:
        """The legacy success value (raises if the outcome failed)."""
        self.raise_for_failure()
        assert self.vcek_certificate is not None
        return VerifiedReport(
            report=self.report,
            vcek_certificate=self.vcek_certificate,
            checked_measurement=self.policy.golden_measurements is not None,
            checked_report_data=self.policy.expected_report_data is not None,
            checked_chip_id=self.policy.allowed_chip_ids is not None,
        )


class AttestationVerifier:
    """Runs the verification pipeline for one or more TEE families.

    ``kds`` must provide ``get_vcek``/``cert_chain``/``trust_anchor``
    and the ``fetches``/``cache_hits`` counters (i.e. a
    :class:`~repro.core.kds_client.KdsClient`); its simulated clock, if
    exposed as ``clock``, prices the per-step cost records.  It doubles
    as the SEV-SNP (and, wrapped in a
    :class:`~repro.attest.families.VtpmTrust`, the e-vTPM) trust
    context; ``contexts`` maps additional family names to their trust
    material (:class:`~repro.attest.families.TdxTrust`,
    :class:`~repro.attest.families.CcaTrust`, ...).  ``kds`` may be
    ``None`` for a verifier that only handles non-SNP families.
    """

    def __init__(
        self,
        kds,
        policy: Optional[VerificationPolicy] = None,
        tracer: Optional[AttestationTracer] = None,
        site: str = "verifier",
        contexts: Optional[dict] = None,
        farm=None,
    ):
        self.kds = kds
        self.policy = policy if policy is not None else VerificationPolicy()
        self.site = site
        #: None means "whatever the process-wide tracer is at run time".
        self.tracer = tracer
        #: family name -> trust context, consulted before the KDS
        #: defaults; mutable so fault injectors and fleet wiring can
        #: extend a live verifier.
        self.contexts: dict = {
            str(family): context for family, context in (contexts or {}).items()
        }
        #: Optional :class:`~repro.attest.farm.VerifyFarm`.  When set,
        #: every run starts with a speculative ``batch_prepare`` pass
        #: that fetches endorsements and settles all the pipeline's
        #: signature equations in one batch; the unchanged steps then
        #: consume the verdicts through the signature-cache oracle seam.
        self.farm = farm

    def _context_for(self, family: TeeFamily):
        """The trust material for *family* (None when unavailable)."""
        context = self.contexts.get(str(family))
        if context is not None:
            return context
        if family is TeeFamily.SEV_SNP:
            return self.kds
        if family is TeeFamily.VTPM and self.kds is not None:
            return VtpmTrust(self.kds)
        return None

    def verify(
        self,
        report,
        now: int,
        policy: Optional[VerificationPolicy] = None,
        site: Optional[str] = None,
        _prepared: Optional[dict] = None,
    ) -> VerificationOutcome:
        """Run the pipeline; never raises on a failed check.

        *report* is either a bare SNP
        :class:`~repro.amd.report.AttestationReport` (the historical
        call convention — runs the SNP pipeline with no dispatch steps)
        or an :class:`~repro.attest.evidence.Evidence` envelope, which
        prepends family admissibility and decode steps before the
        family provider's own checks.

        *_prepared* is a state dict that :meth:`verify_batch` already
        ran the farm prepare pass over (endorsements fetched, signature
        verdicts parked); a farm-wired verifier skips its own prepare
        for it.
        """
        policy = policy if policy is not None else self.policy
        site = site if site is not None else self.site
        clock = getattr(self.kds, "clock", None)
        latency = getattr(self.kds, "latency", None)
        fetches_before = getattr(self.kds, "fetches", 0)
        hits_before = getattr(self.kds, "cache_hits", 0)
        sig_hits_before, sig_misses_before = sigcache.counters()

        state = (
            _prepared
            if _prepared is not None
            else {"vcek": None, "chain": None, "native": None}
        )
        records = []
        if self.farm is not None and _prepared is None:
            prepare_record = self._prepare(report, now, policy, state, clock)
            if prepare_record is not None:
                records.append(prepare_record)
        if isinstance(report, Evidence):
            family = report.family
            step_iter = self._dispatched_steps(report, now, policy, state)
        else:
            family = TeeFamily.SEV_SNP
            state["native"] = report
            provider = provider_for(family)
            step_iter = provider.steps(
                report,
                now,
                policy,
                policy.for_family(family),
                self._context_for(family),
                state,
            )

        failed = False
        for name, run_check in step_iter:
            started = clock.now if clock is not None else 0.0
            step_hits, step_misses = sigcache.counters()
            step_oracle = sigcache.oracle_hits()
            reason: Optional[str] = None
            detail = ""
            passed = True
            try:
                run_check()
            except AttestationError as exc:
                passed = False
                reason, detail = exc.reason, exc.detail
            if clock is not None and latency is not None:
                self._charge_crypto_step(
                    name, clock, latency, step_hits, step_misses, step_oracle
                )
            cost = (clock.now - started) if clock is not None else 0.0
            records.append(StepRecord(name, passed, reason, detail, cost))
            if not passed:
                failed = True
                break

        outcome = VerificationOutcome(
            site=site,
            verdict="fail" if failed else "pass",
            steps=tuple(records),
            report=state["native"],
            policy=policy,
            vcek_certificate=state["vcek"],
            sim_cost=sum(record.sim_cost for record in records),
            family=str(family),
        )
        sig_hits_after, sig_misses_after = sigcache.counters()
        tracer = self.tracer if self.tracer is not None else get_tracer()
        tracer.emit(
            TraceEvent(
                site=site,
                verdict=outcome.verdict,
                reason=outcome.reason,
                steps=outcome.steps,
                sim_cost=outcome.sim_cost,
                kds_fetches=getattr(self.kds, "fetches", 0) - fetches_before,
                kds_cache_hits=getattr(self.kds, "cache_hits", 0) - hits_before,
                sig_cache_hits=sig_hits_after - sig_hits_before,
                sig_cache_misses=sig_misses_after - sig_misses_before,
                family=str(family),
            )
        )
        return outcome

    def _collect_jobs(
        self,
        report,
        now: int,
        policy: VerificationPolicy,
        state: dict,
    ) -> list:
        """The farm prepare pass for one report: ask the family provider
        to fetch endorsements into *state* and enumerate the signature
        equations its step list will check.  Returns ``[]`` whenever the
        pipeline could not be prejudged (unknown/forbidden family,
        undecodable evidence, fetch failure) — the run then proceeds,
        and fails, through the normal steps."""
        if isinstance(report, Evidence):
            family = report.family
            if policy.allowed_families is not None and not policy.family_allowed(
                family
            ):
                return []
            provider = provider_for(family)
            if provider is None:
                return []
            try:
                native = provider.decode(report.body)
            except AttestationError:
                return []
        else:
            family = TeeFamily.SEV_SNP
            provider = provider_for(family)
            native = report
        context = self._context_for(family)
        if context is None:
            return []
        try:
            return provider.signature_jobs(
                native, now, policy, policy.for_family(family), context, state
            )
        except AttestationError:
            return []

    def _prepare(
        self, report, now: int, policy: VerificationPolicy, state: dict, clock
    ) -> Optional[StepRecord]:
        """Run the farm prepare pass for a single verification and
        settle it immediately; the endorsement-fetch and batch cost land
        on a leading ``batch_prepare`` step record."""
        started = clock.now if clock is not None else 0.0
        jobs = self._collect_jobs(report, now, policy, state)
        if jobs:
            self.farm.verify_many(jobs)
        cost = (clock.now - started) if clock is not None else 0.0
        if not jobs and cost == 0.0:
            return None
        return StepRecord(
            STEP_BATCH_PREPARE,
            True,
            detail=f"{len(jobs)} signature job(s) batched",
            sim_cost=cost,
        )

    def verify_batch(
        self,
        reports,
        now: int,
        policies=None,
        site: Optional[str] = None,
    ) -> list:
        """Verify a group of reports with one shared farm settlement.

        All reports' signature equations (chain links, report
        signatures) are queued together, so fleet-wide common terms —
        the shared ARK/ASK certificates, duplicate chain links — are
        verified once per *batch* rather than once per report.
        *policies* is an optional per-report policy sequence.  Without a
        farm this degrades to sequential :meth:`verify` calls."""
        reports = list(reports)
        if policies is not None and len(policies) != len(reports):
            raise ValueError("policies must match reports one-to-one")
        if self.farm is None:
            return [
                self.verify(
                    report,
                    now,
                    policy=policies[index] if policies is not None else None,
                    site=site,
                )
                for index, report in enumerate(reports)
            ]
        prepared = []
        for index, report in enumerate(reports):
            policy = (
                policies[index] if policies is not None else self.policy
            )
            state = {"vcek": None, "chain": None, "native": None}
            for job in self._collect_jobs(report, now, policy, state):
                self.farm.submit(*job)
            prepared.append((report, policy, state))
        self.farm.flush()
        return [
            self.verify(report, now, policy=policy, site=site, _prepared=state)
            for report, policy, state in prepared
        ]

    def _dispatched_steps(
        self,
        evidence: Evidence,
        now: int,
        policy: VerificationPolicy,
        state: dict,
    ):
        """Family dispatch for tagged evidence: admissibility, decode,
        trust-context lookup, then the provider's own step list."""
        family = evidence.family
        provider = provider_for(family)

        def family_allowed():
            if not policy.family_allowed(family):
                raise AttestationError(
                    "family_not_allowed",
                    f"TEE family {family} is not admissible under this policy",
                )

        if policy.allowed_families is not None:
            yield STEP_FAMILY_ALLOWED, family_allowed

        def evidence_decode():
            state["native"] = provider.decode(evidence.body)

        yield STEP_EVIDENCE_DECODE, evidence_decode

        context = self._context_for(family)
        if context is None:

            def trust_context():
                raise AttestationError(
                    "no_trust_context",
                    f"verifier has no trust material for family {family}",
                )

            yield STEP_TRUST_CONTEXT, trust_context
            return

        # state["native"] is populated by the time the engine pulls the
        # first provider step (decode either ran or broke the loop).
        yield from provider.steps(
            state["native"], now, policy, policy.for_family(family), context, state
        )

    @staticmethod
    def _charge_crypto_step(
        name: str,
        clock,
        latency,
        hits_before: int,
        misses_before: int,
        oracle_before: int = 0,
    ) -> None:
        """Advance the simulated clock by the step's calibrated crypto
        cost.  A step whose verdicts all came from the verify farm's
        batch (oracle served, nothing missed) is free here — that EC
        math was performed and priced at batch-flush time.  A step fully
        served by the signature-verification cache (lookups happened,
        none missed) is charged the discounted rate; the measurement
        step never consults the cache and always pays full price."""
        attribute = _CRYPTO_STEP_PRICES.get(name)
        if attribute is None:
            return
        price = getattr(latency, attribute, 0.0)
        if price <= 0.0:
            return
        if name != STEP_MEASUREMENT:
            hits, misses = sigcache.counters()
            if (
                misses == misses_before
                and sigcache.oracle_hits() > oracle_before
            ):
                return  # served from a verify-farm batch, priced at flush
            served_from_cache = misses == misses_before and hits > hits_before
            if served_from_cache:
                price *= _CACHED_VERIFY_DISCOUNT
        clock.advance(price)

    def verify_or_raise(
        self,
        report: AttestationReport,
        now: int,
        policy: Optional[VerificationPolicy] = None,
        site: Optional[str] = None,
    ) -> VerifiedReport:
        """Run the pipeline; raise :class:`AttestationError` with the
        failing step's stable reason code, return the legacy
        :class:`VerifiedReport` on success."""
        return self.verify(report, now, policy=policy, site=site).verified_report()
