"""The unified attestation verification engine.

One :class:`AttestationVerifier` replaces the hand-rolled
fetch-VCEK/verify/map-error blocks that used to live in every verifier
(web extension, RA-TLS, key sharing, SP node, vTPM monitor, TEE
dispatch).  It owns the KDS interaction and runs the checks of
:mod:`repro.amd.verify` as an explicit ordered step list, producing a
:class:`VerificationOutcome` that records *per-step* results — name,
pass/fail, stable reason code, simulated-clock cost — instead of
raising opaquely on the first failure.  Every run is reported to the
tracing layer (:mod:`repro.attest.trace`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from ..amd.report import AttestationReport
from ..amd.verify import (
    AttestationError,
    VerifiedReport,
    check_certificate_chain,
    check_chip_id_allowed,
    check_chip_id_binding,
    check_debug_policy,
    check_measurement,
    check_minimum_tcb,
    check_report_data,
    check_signature,
    check_tcb_binding,
)
from ..crypto import sigcache
from ..crypto.x509 import Certificate
from .policy import VerificationPolicy
from .trace import AttestationTracer, TraceEvent, get_tracer

STEP_REVOCATION = "revocation"
STEP_VCEK_FETCH = "vcek_fetch"
STEP_CERT_CHAIN = "cert_chain"
STEP_CHIP_ID_BINDING = "chip_id_binding"
STEP_TCB_BINDING = "tcb_binding"
STEP_SIGNATURE = "signature"
STEP_DEBUG_POLICY = "debug_policy"
STEP_MEASUREMENT = "measurement"
STEP_REPORT_DATA = "report_data"
STEP_CHIP_ID_ALLOWLIST = "chip_id_allowlist"
STEP_TCB_FLOOR = "tcb_floor"

#: The full pipeline in execution order; optional steps are skipped
#: (not recorded) when the policy does not configure them.
STEP_ORDER: Tuple[str, ...] = (
    STEP_REVOCATION,
    STEP_VCEK_FETCH,
    STEP_CERT_CHAIN,
    STEP_CHIP_ID_BINDING,
    STEP_TCB_BINDING,
    STEP_SIGNATURE,
    STEP_DEBUG_POLICY,
    STEP_MEASUREMENT,
    STEP_REPORT_DATA,
    STEP_CHIP_ID_ALLOWLIST,
    STEP_TCB_FLOOR,
)

#: Crypto steps priced on the simulated clock, mapped to the
#: LatencyModel attribute carrying their calibrated cost.  Together the
#: defaults reproduce the paper's Table 2 ~13 ms client-side validation
#: — so cached-KDS runs no longer report 0.0 sim-ms per verification.
_CRYPTO_STEP_PRICES: dict = {
    STEP_CERT_CHAIN: "cert_chain_verify",
    STEP_SIGNATURE: "sig_verify",
    STEP_MEASUREMENT: "measurement_check",
}

#: Fraction of the crypto price charged when the signature-verification
#: cache fully served a step (a hash + dict lookup instead of EC math).
#: The measurement step never hits the cache: policy checks are always
#: run fresh, so it is always charged in full.
_CACHED_VERIFY_DISCOUNT = 0.05


@dataclass(frozen=True)
class StepRecord:
    """One executed pipeline step."""

    name: str
    passed: bool
    reason: Optional[str] = None  # stable failure code, None on pass
    detail: str = ""
    sim_cost: float = 0.0  # simulated seconds spent in this step


@dataclass(frozen=True)
class VerificationOutcome:
    """A full verification result, step by step.

    The pipeline stops at the first failing step (later checks would be
    meaningless without, e.g., a validated VCEK), so ``steps`` lists
    every executed step and, on failure, ends with the failing one.
    """

    site: str
    verdict: str  # "pass" | "fail"
    steps: Tuple[StepRecord, ...]
    report: AttestationReport
    policy: VerificationPolicy
    vcek_certificate: Optional[Certificate] = None
    sim_cost: float = 0.0

    @property
    def ok(self) -> bool:
        """Did every step pass?"""
        return self.verdict == "pass"

    @property
    def failure(self) -> Optional[StepRecord]:
        """The failing step record (None on success)."""
        if self.steps and not self.steps[-1].passed:
            return self.steps[-1]
        return None

    @property
    def reason(self) -> Optional[str]:
        """The stable failure code (None on success)."""
        failure = self.failure
        return failure.reason if failure is not None else None

    @property
    def detail(self) -> str:
        """Human-readable failure detail ("" on success)."""
        failure = self.failure
        return failure.detail if failure is not None else ""

    def step(self, name: str) -> Optional[StepRecord]:
        """The record for a named step, if it executed."""
        for record in self.steps:
            if record.name == name:
                return record
        return None

    def raise_for_failure(self) -> None:
        """Re-raise a failed outcome as an :class:`AttestationError`
        carrying the failing step's stable reason code."""
        failure = self.failure
        if failure is not None:
            raise AttestationError(failure.reason, failure.detail)

    def verified_report(self) -> VerifiedReport:
        """The legacy success value (raises if the outcome failed)."""
        self.raise_for_failure()
        assert self.vcek_certificate is not None
        return VerifiedReport(
            report=self.report,
            vcek_certificate=self.vcek_certificate,
            checked_measurement=self.policy.golden_measurements is not None,
            checked_report_data=self.policy.expected_report_data is not None,
            checked_chip_id=self.policy.allowed_chip_ids is not None,
        )


class AttestationVerifier:
    """Runs the verification pipeline against one KDS client.

    ``kds`` must provide ``get_vcek``/``cert_chain``/``trust_anchor``
    and the ``fetches``/``cache_hits`` counters (i.e. a
    :class:`~repro.core.kds_client.KdsClient`); its simulated clock, if
    exposed as ``clock``, prices the per-step cost records.
    """

    def __init__(
        self,
        kds,
        policy: Optional[VerificationPolicy] = None,
        tracer: Optional[AttestationTracer] = None,
        site: str = "verifier",
    ):
        self.kds = kds
        self.policy = policy if policy is not None else VerificationPolicy()
        self.site = site
        #: None means "whatever the process-wide tracer is at run time".
        self.tracer = tracer

    def verify(
        self,
        report: AttestationReport,
        now: int,
        policy: Optional[VerificationPolicy] = None,
        site: Optional[str] = None,
    ) -> VerificationOutcome:
        """Run the pipeline; never raises on a failed check."""
        policy = policy if policy is not None else self.policy
        site = site if site is not None else self.site
        clock = getattr(self.kds, "clock", None)
        latency = getattr(self.kds, "latency", None)
        fetches_before = self.kds.fetches
        hits_before = self.kds.cache_hits
        sig_hits_before, sig_misses_before = sigcache.counters()

        state = {"vcek": None, "chain": None}
        records = []
        failed = False
        for name, run_check in self._steps(report, now, policy, state):
            started = clock.now if clock is not None else 0.0
            step_hits, step_misses = sigcache.counters()
            reason: Optional[str] = None
            detail = ""
            passed = True
            try:
                run_check()
            except AttestationError as exc:
                passed = False
                reason, detail = exc.reason, exc.detail
            if clock is not None and latency is not None:
                self._charge_crypto_step(name, clock, latency, step_hits, step_misses)
            cost = (clock.now - started) if clock is not None else 0.0
            records.append(StepRecord(name, passed, reason, detail, cost))
            if not passed:
                failed = True
                break

        outcome = VerificationOutcome(
            site=site,
            verdict="fail" if failed else "pass",
            steps=tuple(records),
            report=report,
            policy=policy,
            vcek_certificate=state["vcek"],
            sim_cost=sum(record.sim_cost for record in records),
        )
        sig_hits_after, sig_misses_after = sigcache.counters()
        tracer = self.tracer if self.tracer is not None else get_tracer()
        tracer.emit(
            TraceEvent(
                site=site,
                verdict=outcome.verdict,
                reason=outcome.reason,
                steps=outcome.steps,
                sim_cost=outcome.sim_cost,
                kds_fetches=self.kds.fetches - fetches_before,
                kds_cache_hits=self.kds.cache_hits - hits_before,
                sig_cache_hits=sig_hits_after - sig_hits_before,
                sig_cache_misses=sig_misses_after - sig_misses_before,
            )
        )
        return outcome

    @staticmethod
    def _charge_crypto_step(
        name: str, clock, latency, hits_before: int, misses_before: int
    ) -> None:
        """Advance the simulated clock by the step's calibrated crypto
        cost.  A step fully served by the signature-verification cache
        (lookups happened, none missed) is charged the discounted rate;
        the measurement step never consults the cache and always pays
        full price."""
        attribute = _CRYPTO_STEP_PRICES.get(name)
        if attribute is None:
            return
        price = getattr(latency, attribute, 0.0)
        if price <= 0.0:
            return
        if name != STEP_MEASUREMENT:
            hits, misses = sigcache.counters()
            served_from_cache = misses == misses_before and hits > hits_before
            if served_from_cache:
                price *= _CACHED_VERIFY_DISCOUNT
        clock.advance(price)

    def verify_or_raise(
        self,
        report: AttestationReport,
        now: int,
        policy: Optional[VerificationPolicy] = None,
        site: Optional[str] = None,
    ) -> VerifiedReport:
        """Run the pipeline; raise :class:`AttestationError` with the
        failing step's stable reason code, return the legacy
        :class:`VerifiedReport` on success."""
        return self.verify(report, now, policy=policy, site=site).verified_report()

    # -- the ordered step list -------------------------------------------------

    def _steps(
        self,
        report: AttestationReport,
        now: int,
        policy: VerificationPolicy,
        state: dict,
    ) -> Iterator[Tuple[str, object]]:
        revoked = {bytes(m) for m in policy.revoked_measurements}

        def revocation():
            if bytes(report.measurement) in revoked:
                raise AttestationError(
                    "measurement_revoked",
                    "measurement has been revoked (rollback?)",
                )

        if revoked:
            yield STEP_REVOCATION, revocation

        def vcek_fetch():
            try:
                state["vcek"] = self.kds.get_vcek(
                    report.chip_id, report.reported_tcb
                )
                state["chain"] = self.kds.cert_chain()
            except LookupError as exc:
                raise AttestationError(
                    "unknown_platform", f"KDS has no VCEK for this chip: {exc}"
                ) from exc

        yield STEP_VCEK_FETCH, vcek_fetch

        anchors = (
            list(policy.trust_anchors)
            if policy.trust_anchors is not None
            else [self.kds.trust_anchor]
        )
        yield STEP_CERT_CHAIN, lambda: check_certificate_chain(
            state["vcek"], state["chain"], anchors, now
        )
        yield STEP_CHIP_ID_BINDING, lambda: check_chip_id_binding(
            report, state["vcek"]
        )
        yield STEP_TCB_BINDING, lambda: check_tcb_binding(report, state["vcek"])
        yield STEP_SIGNATURE, lambda: check_signature(report, state["vcek"])
        yield STEP_DEBUG_POLICY, lambda: check_debug_policy(
            report, policy.allow_debug
        )

        golden = policy.effective_golden()
        if golden is not None:
            yield STEP_MEASUREMENT, lambda: check_measurement(report, golden)
        if policy.expected_report_data is not None:
            yield STEP_REPORT_DATA, lambda: check_report_data(
                report, policy.expected_report_data
            )
        if policy.allowed_chip_ids is not None:
            yield STEP_CHIP_ID_ALLOWLIST, lambda: check_chip_id_allowed(
                report, policy.allowed_chip_ids
            )
        if policy.minimum_tcb is not None:
            yield STEP_TCB_FLOOR, lambda: check_minimum_tcb(
                report, policy.minimum_tcb
            )
