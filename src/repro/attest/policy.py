"""Declarative verification expectations for the attestation pipeline.

Revelio's security argument rests on one verification procedure run by
many parties (the web extension, RA-TLS peers, the SP node, the vTPM
monitor, key-sharing recipients).  What differs between them is not the
*procedure* but the *expectations*: which measurements are golden,
which are revoked, what REPORT_DATA must bind, which platforms are
approved, and how old the TCB may be.  :class:`VerificationPolicy`
captures those expectations as one immutable value that call sites
construct declaratively instead of threading positional arguments into
the low-level verifier.

Heterogeneous fleets add a second axis: expectations can differ *per
TEE family* (an SNP launch digest and a TDX MRTD are never the same
value).  :class:`FamilyPolicy` carries one family's overlay — golden
measurements, revocations, a family-native TCB floor, trust anchors —
and :meth:`VerificationPolicy.for_family` merges it over the global
single-value fields, so existing SNP-only call sites keep constructing
the same policies with zero behavior change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Mapping, Optional, Tuple

from ..amd.tcb import TcbVersion
from ..crypto.x509 import Certificate


def _frozen_bytes(items: Optional[Iterable[bytes]]) -> Optional[Tuple[bytes, ...]]:
    if items is None:
        return None
    return tuple(bytes(item) for item in items)


@dataclass(frozen=True)
class FamilyPolicy:
    """One TEE family's verification expectations.

    Semantics mirror the global fields of :class:`VerificationPolicy`,
    but the values are family-native: measurements are that family's
    launch digests (SNP measurement, TDX MRTD, CCA RIM, the vTPM's
    endorsement measurement) and ``minimum_tcb`` is a
    :class:`~repro.amd.tcb.TcbVersion` for SNP/e-vTPM but a plain SVN
    integer for TDX and CCA.  A floor violation fails with the
    family-scoped ``family_tcb_floor`` code, distinct from the legacy
    SNP ``tcb_too_old``.
    """

    #: Family-native golden measurements; ``None`` falls back to the
    #: global golden set.
    golden_measurements: Optional[Tuple[bytes, ...]] = None
    #: Family-scoped revocations, unioned with the global set.
    revoked_measurements: Tuple[bytes, ...] = ()
    #: Family-native TCB floor; ``None`` skips the check.
    minimum_tcb: Optional[object] = None
    #: Family trust anchors; ``None`` falls back to global/default ones.
    trust_anchors: Optional[Tuple[Certificate, ...]] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "golden_measurements", _frozen_bytes(self.golden_measurements)
        )
        object.__setattr__(
            self,
            "revoked_measurements",
            _frozen_bytes(self.revoked_measurements) or (),
        )
        if self.trust_anchors is not None:
            object.__setattr__(self, "trust_anchors", tuple(self.trust_anchors))

    def effective_golden(self) -> Optional[FrozenSet[bytes]]:
        """The golden set minus revocations (``None`` if unchecked)."""
        if self.golden_measurements is None:
            return None
        return frozenset(self.golden_measurements) - frozenset(
            self.revoked_measurements
        )


@dataclass(frozen=True)
class VerificationPolicy:
    """Everything a verifier expects of a report, in one value.

    ``None`` for an optional expectation means "do not check it"; the
    corresponding pipeline step is skipped entirely (and therefore does
    not appear in the outcome's step records).
    """

    #: Acceptable launch measurements; ``None`` skips the check.
    golden_measurements: Optional[Tuple[bytes, ...]] = None
    #: Measurements revoked after rollouts (section 6.1.4); always
    #: checked first, so a revoked value loses even if also golden.
    revoked_measurements: Tuple[bytes, ...] = ()
    #: Exact REPORT_DATA binding (64 bytes); ``None`` skips the check.
    expected_report_data: Optional[bytes] = None
    #: Chip-id allow-list; ``None`` skips the check.
    allowed_chip_ids: Optional[Tuple[bytes, ...]] = None
    #: Component-wise TCB floor; ``None`` skips the check.
    minimum_tcb: Optional[TcbVersion] = None
    #: Accept debug-enabled guests (never set in production).
    allow_debug: bool = False
    #: Override the pinned trust anchors (defaults to the KDS client's
    #: shipped ARK); used by tests to cross-examine hierarchies.
    trust_anchors: Optional[Tuple[Certificate, ...]] = None
    #: TEE families acceptable to this verifier ("sev-snp", "tdx",
    #: "arm-cca", "e-vtpm"); ``None`` accepts any family the verifier
    #: has trust material for, non-membership fails ``family_allowed``
    #: with the ``family_not_allowed`` code.
    allowed_families: Optional[Tuple[str, ...]] = None
    #: Per-family expectation overlays, keyed by family name.  Stored
    #: as a sorted tuple of (name, :class:`FamilyPolicy`) pairs so the
    #: policy value stays hashable.
    families: Optional[Mapping[str, "FamilyPolicy"]] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "golden_measurements", _frozen_bytes(self.golden_measurements)
        )
        object.__setattr__(
            self,
            "revoked_measurements",
            _frozen_bytes(self.revoked_measurements) or (),
        )
        object.__setattr__(
            self, "allowed_chip_ids", _frozen_bytes(self.allowed_chip_ids)
        )
        if self.expected_report_data is not None:
            object.__setattr__(
                self, "expected_report_data", bytes(self.expected_report_data)
            )
        if self.trust_anchors is not None:
            object.__setattr__(self, "trust_anchors", tuple(self.trust_anchors))
        if self.allowed_families is not None:
            object.__setattr__(
                self,
                "allowed_families",
                tuple(str(family) for family in self.allowed_families),
            )
        if self.families is not None:
            items = (
                self.families.items()
                if isinstance(self.families, Mapping)
                else self.families
            )
            object.__setattr__(
                self,
                "families",
                tuple(sorted((str(key), value) for key, value in items)),
            )

    def effective_golden(self) -> Optional[FrozenSet[bytes]]:
        """The golden set minus revocations (``None`` if unchecked)."""
        if self.golden_measurements is None:
            return None
        return frozenset(self.golden_measurements) - frozenset(
            self.revoked_measurements
        )

    # -- per-family resolution -------------------------------------------------

    def family_allowed(self, family) -> bool:
        """Is evidence of *family* admissible under this policy?"""
        if self.allowed_families is None:
            return True
        return str(family) in self.allowed_families

    def family_policy(self, family) -> "FamilyPolicy":
        """The raw overlay for *family* (an empty one when unset)."""
        if self.families is not None:
            wanted = str(family)
            for key, value in self.families:
                if key == wanted:
                    return value
        return _EMPTY_FAMILY_POLICY

    def for_family(self, family) -> "FamilyPolicy":
        """The overlay for *family* merged over the global fields.

        Golden measurements and trust anchors fall back to the global
        values when the overlay leaves them unset; revocations are the
        union of both sets; the family TCB floor comes from the overlay
        alone (the global ``minimum_tcb`` is the SNP-native legacy
        floor and keeps its own ``tcb_floor`` step).  With no overlays
        configured the result reproduces the global single-value policy
        exactly.
        """
        overlay = self.family_policy(family)
        golden = (
            overlay.golden_measurements
            if overlay.golden_measurements is not None
            else self.golden_measurements
        )
        if overlay.revoked_measurements:
            revoked = tuple(
                sorted(
                    set(self.revoked_measurements)
                    | set(overlay.revoked_measurements)
                )
            )
        else:
            revoked = self.revoked_measurements
        anchors = (
            overlay.trust_anchors
            if overlay.trust_anchors is not None
            else self.trust_anchors
        )
        return FamilyPolicy(
            golden_measurements=golden,
            revoked_measurements=revoked,
            minimum_tcb=overlay.minimum_tcb,
            trust_anchors=anchors,
        )


_EMPTY_FAMILY_POLICY = FamilyPolicy()
