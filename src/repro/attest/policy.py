"""Declarative verification expectations for the attestation pipeline.

Revelio's security argument rests on one verification procedure run by
many parties (the web extension, RA-TLS peers, the SP node, the vTPM
monitor, key-sharing recipients).  What differs between them is not the
*procedure* but the *expectations*: which measurements are golden,
which are revoked, what REPORT_DATA must bind, which platforms are
approved, and how old the TCB may be.  :class:`VerificationPolicy`
captures those expectations as one immutable value that call sites
construct declaratively instead of threading positional arguments into
the low-level verifier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Tuple

from ..amd.tcb import TcbVersion
from ..crypto.x509 import Certificate


def _frozen_bytes(items: Optional[Iterable[bytes]]) -> Optional[Tuple[bytes, ...]]:
    if items is None:
        return None
    return tuple(bytes(item) for item in items)


@dataclass(frozen=True)
class VerificationPolicy:
    """Everything a verifier expects of a report, in one value.

    ``None`` for an optional expectation means "do not check it"; the
    corresponding pipeline step is skipped entirely (and therefore does
    not appear in the outcome's step records).
    """

    #: Acceptable launch measurements; ``None`` skips the check.
    golden_measurements: Optional[Tuple[bytes, ...]] = None
    #: Measurements revoked after rollouts (section 6.1.4); always
    #: checked first, so a revoked value loses even if also golden.
    revoked_measurements: Tuple[bytes, ...] = ()
    #: Exact REPORT_DATA binding (64 bytes); ``None`` skips the check.
    expected_report_data: Optional[bytes] = None
    #: Chip-id allow-list; ``None`` skips the check.
    allowed_chip_ids: Optional[Tuple[bytes, ...]] = None
    #: Component-wise TCB floor; ``None`` skips the check.
    minimum_tcb: Optional[TcbVersion] = None
    #: Accept debug-enabled guests (never set in production).
    allow_debug: bool = False
    #: Override the pinned trust anchors (defaults to the KDS client's
    #: shipped ARK); used by tests to cross-examine hierarchies.
    trust_anchors: Optional[Tuple[Certificate, ...]] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "golden_measurements", _frozen_bytes(self.golden_measurements)
        )
        object.__setattr__(
            self,
            "revoked_measurements",
            _frozen_bytes(self.revoked_measurements) or (),
        )
        object.__setattr__(
            self, "allowed_chip_ids", _frozen_bytes(self.allowed_chip_ids)
        )
        if self.expected_report_data is not None:
            object.__setattr__(
                self, "expected_report_data", bytes(self.expected_report_data)
            )
        if self.trust_anchors is not None:
            object.__setattr__(self, "trust_anchors", tuple(self.trust_anchors))

    def effective_golden(self) -> Optional[FrozenSet[bytes]]:
        """The golden set minus revocations (``None`` if unchecked)."""
        if self.golden_measurements is None:
            return None
        return frozenset(self.golden_measurements) - frozenset(
            self.revoked_measurements
        )
