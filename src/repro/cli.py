"""Command-line interface: ``python -m repro <command>``.

Commands
--------
build
    Reproducibly build a use-case image, write it to disk, and print
    its golden values (root hash + expected launch measurement).
measure
    Recompute the golden values of an image file — what an auditor or
    technically-savvy end-user does to derive the value they register
    in the web extension (paper section 3.4.7).
verify-image
    Compare an image file's recomputed measurement against an expected
    golden value.
update
    Build the signed block-level delta between two image versions,
    show its manifest, and optionally apply it across a simulated
    gateway-mesh fleet with per-phase counters.
demo
    Run the full end-to-end flow: build, deploy a fleet, provision
    certificates, attest from a browser.
attack-demo
    Mount the section 6.1 attacks and report which layer caught each.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .build import (
    ImageSpec,
    Package,
    PackagePin,
    PackageRegistry,
    build_revelio_image,
)
from .build.measurement import expected_measurement_for_image
from .virt.image import VmImage


def _sample_registry():
    """The CLI's built-in demo software catalogue."""
    registry = PackageRegistry()
    pins = {}
    for package in [
        Package.create(
            "nginx", "1.24.0",
            files={
                "/usr/sbin/nginx": b"\x7fELF-nginx" + b"n" * 2000,
                "/etc/nginx/nginx.conf": b"server { listen 443 ssl; }",
            },
        ),
        Package.create(
            "cryptpad-server", "5.2.1",
            files={"/opt/cryptpad/server.js": b"// cryptpad " + b"c" * 3000},
        ),
        Package.create(
            "ic-boundary-node", "0.9.0",
            files={"/opt/ic/boundary-node": b"\x7fELF-bn" + b"b" * 4000},
        ),
        Package.create(
            "revelio-agent", "1.0.0",
            files={"/usr/bin/revelio-agent": b"\x7fELF-agent" + b"r" * 1000},
        ),
    ]:
        digest = registry.publish(package)
        pins[package.name] = PackagePin(package.name, package.version, digest)
    return registry, pins


def _spec_for(use_case: str, version: str) -> ImageSpec:
    registry, pins = _sample_registry()
    packages = {
        "boundary-node": ["nginx", "ic-boundary-node", "revelio-agent"],
        "cryptpad": ["nginx", "cryptpad-server", "revelio-agent"],
    }[use_case]
    return ImageSpec(
        name=use_case,
        version=version,
        registry=registry,
        package_pins=[pins[p] for p in packages],
        service_domain=f"{use_case}.example",
        services=("https",),
        data_volume_blocks=16,
    )


def cmd_build(args) -> int:
    """CLI: build an image and print its golden values."""
    result = build_revelio_image(_spec_for(args.use_case, args.version))
    output = Path(args.out)
    output.write_bytes(result.image.encode())
    print(f"image:       {args.use_case}-{args.version} -> {output}")
    print(f"size:        {output.stat().st_size} bytes")
    print(f"root hash:   {result.root_hash.hex()}")
    print(f"measurement: {result.expected_measurement.hex()}")
    return 0


def cmd_measure(args) -> int:
    """CLI: recompute an image file's golden measurement."""
    image = VmImage.decode(Path(args.image).read_bytes())
    measurement = expected_measurement_for_image(image)
    print(f"image:       {image.name}-{image.version}")
    print(f"cmdline:     {image.cmdline}")
    print(f"measurement: {measurement.hex()}")
    return 0


def cmd_verify_image(args) -> int:
    """CLI: compare an image against a golden value."""
    image = VmImage.decode(Path(args.image).read_bytes())
    measurement = expected_measurement_for_image(image)
    expected = bytes.fromhex(args.expected_measurement)
    if measurement == expected:
        print("OK: image measurement matches the golden value")
        return 0
    print("MISMATCH: image would NOT pass attestation")
    print(f"  expected: {expected.hex()}")
    print(f"  computed: {measurement.hex()}")
    return 1


def _print_trace_summary(show_failures: bool = False) -> None:
    """Print the unified verification pipeline's counters."""
    from .attest import get_tracer

    snapshot = get_tracer().counters.snapshot()
    verdicts = snapshot["verifications_by_verdict"]
    print("pipeline:")
    print(f"  verifications: {dict(sorted(verdicts.items()))}")
    by_family = snapshot.get("verifications_by_family", {})
    if len(by_family) > 1 or any(f != "sev-snp" for f in by_family):
        failures_by_family = snapshot.get("failures_by_family", {})
        for family, family_verdicts in sorted(by_family.items()):
            line = f"  family {family}: {dict(sorted(family_verdicts.items()))}"
            family_failures = failures_by_family.get(family)
            if family_failures:
                line += f" failures={dict(sorted(family_failures.items()))}"
            print(line)
    print(f"  kds cache hit rate: {snapshot['kds_cache_hit_rate']:.2f}")
    print(
        f"  signature cache hit rate: {snapshot['signature_cache_hit_rate']:.2f}"
        f" ({snapshot['signature_cache_hits']} hits /"
        f" {snapshot['signature_cache_misses']} misses)"
    )
    if show_failures and snapshot["failures_by_reason"]:
        failures = dict(sorted(snapshot["failures_by_reason"].items()))
        print(f"  failures by reason: {failures}")
    storage = get_tracer().storage.snapshot()
    if storage["io"]:
        print("storage:")
        print(f"  io: {storage['io']}")
        print(f"  verity verify hit rate: {storage['verify_hit_rate']:.2f}")
        print(f"  simulated io time: {storage['sim_ms']:.1f} ms")


def cmd_update(args) -> int:
    """CLI: build a signed delta update; optionally roll out a fleet."""
    from .attest import get_tracer, reset_tracer
    from .build import BuildCache, UpdateChannel, compute_delta
    from .crypto.drbg import HmacDrbg
    from .crypto.keys import PrivateKey

    reset_tracer()
    cache = BuildCache()
    base = build_revelio_image(
        _spec_for(args.use_case, args.from_version), cache=cache
    )
    target = build_revelio_image(
        _spec_for(args.use_case, args.to_version), cache=cache
    )
    delta = compute_delta(base.image, target.image)
    key = PrivateKey.generate_ecdsa(HmacDrbg(b"repro-cli-update"), "P-256")
    channel = UpdateChannel(key, image_name=base.image.name)
    signed = channel.publish(
        delta, base.expected_measurement, target.expected_measurement
    )

    full_bytes = len(target.image.disk_image)
    print(f"update:      {args.use_case} "
          f"{args.from_version} -> {args.to_version}")
    print(f"delta:       {len(delta.changed_blocks)} blocks, "
          f"{delta.delta_bytes()} bytes "
          f"({delta.delta_bytes() / full_bytes:.1%} of the "
          f"{full_bytes}-byte image)")
    print(f"build cache: {target.cache_stats}")
    print("manifest:")
    for field_name, value in signed.manifest.to_dict().items():
        print(f"  {field_name}: {value}")
    print(f"signer:      {signed.signer.hex()}")

    if not args.apply:
        return 0

    from .core import RevelioDeployment
    from .fleet import FleetProvisioner, GatewayMesh, LiteFleet
    from .sim import EventKernel, SimRng

    regions = tuple(f"region-{chr(ord('a') + i)}" for i in range(args.regions))
    deployment = RevelioDeployment(base, num_nodes=args.nodes).deploy()
    kernel = EventKernel(deployment.network.clock, SimRng(args.seed))
    deployment.network.enable_event_mode(kernel)
    mesh = GatewayMesh.for_deployment(deployment, kernel, regions=regions)
    lite_fleet = None
    if args.lite:
        families = ("sev-snp", "tdx", "arm-cca", "e-vtpm")
        lite_fleet = LiteFleet(deployment)
        for index in range(args.lite):
            lite_fleet.add_backend(
                f"10.8.{index // 200}.{index % 200 + 1}",
                families[index % len(families)],
                region=regions[index % len(regions)],
            )
        lite_fleet.adopt_deployment_nodes()
        mesh.attach_lite_fleet(lite_fleet)
    verdicts = mesh.admit_all()
    if not all(verdict.ok for verdict in verdicts):
        print("fleet bring-up failed admission")
        return 1
    kernel.run(until=kernel.clock.now + 1.0)

    provisioner = FleetProvisioner(
        mesh, deployment, key, lite_fleet=lite_fleet
    )
    process = kernel.spawn(provisioner.provision(target), name="provision")
    while not process.finished:
        kernel.run(until=kernel.clock.now + 10.0)
    kernel.run()
    if process.error is not None:
        raise process.error
    report = process.value

    print(f"fleet:       {report.discovered} backend(s) across "
          f"{len(report.regions)} region(s), epoch {report.epoch}")
    print("phases:")
    for phase, count in report.phase_counters().items():
        print(f"  {phase}: {count}")
    print(f"shipped:     {report.delta_bytes_shipped} delta bytes vs "
          f"{report.full_bytes_equivalent} full "
          f"({report.delta_ratio:.1%})")
    print(f"unattested requests: {report.requests_to_unattested}")
    print(f"sim time:    {report.sim_seconds:.2f} s")
    update = get_tracer().update.snapshot()
    print(f"channel:     published={update['manifests_published']} "
          f"accepted={update['manifests_accepted']} "
          f"applied={update['applied']} "
          f"rejections={update['rejections']}")
    return 0 if report.requests_to_unattested == 0 else 1


def cmd_demo(args) -> int:
    """CLI: run the end-to-end demo."""
    from .attest import reset_tracer
    from .core import RevelioDeployment

    reset_tracer()
    result = build_revelio_image(_spec_for(args.use_case, "1.0.0"))
    deployment = RevelioDeployment(result, num_nodes=args.nodes).deploy()
    print(f"fleet:       {args.nodes} node(s) at https://{deployment.domain}/")
    print(f"leader:      {deployment.provisioning.leader_ip}")
    print(f"measurement: {result.expected_measurement.hex()[:32]}...")
    browser, extension = deployment.make_user()
    page = browser.navigate(f"https://{deployment.domain}/")
    status = "BLOCKED" if page.blocked else f"OK ({page.response.status})"
    print(f"attested access: {status}")
    for event in extension.events:
        print(f"  extension: [{event.kind}] {event.detail or event.domain}")
    _print_trace_summary()
    return 0 if not page.blocked else 1


def cmd_attack_demo(args) -> int:
    """CLI: mount the section 6.1 attacks."""
    from .amd.verify import AttestationError
    from .attest import reset_tracer
    from .core import RevelioDeployment
    from .net.latency import ZERO_LATENCY
    from .virt.hypervisor import LaunchAttack
    from .virt.image import KernelBlob
    from .virt.vm import BootFailure

    reset_tracer()
    result = build_revelio_image(_spec_for("boundary-node", "1.0.0"))
    detected = 0

    print("[1/3] substitute kernel, keep honest hash table ...")
    deployment = RevelioDeployment(result, num_nodes=1, latency=ZERO_LATENCY,
                                   seed=b"cli-a1")
    try:
        deployment.launch_fleet(
            attack_for=lambda i: LaunchAttack(
                replace_kernel=KernelBlob("evil", "6").encode(),
                inject_expected_hashes=True,
            )
        )
        print("      MISSED")
    except BootFailure as error:
        detected += 1
        print(f"      DETECTED by measured direct boot: {error}")

    print("[2/3] substitute kernel with matching hashes ...")
    deployment = RevelioDeployment(result, num_nodes=1, latency=ZERO_LATENCY,
                                   seed=b"cli-a2")
    deployment.launch_fleet(
        attack_for=lambda i: LaunchAttack(
            replace_kernel=KernelBlob("evil", "6").encode()
        )
    )
    deployment.create_sp_node()
    try:
        deployment.sp.provision_fleet([deployment.node_ip(0)])
        print("      MISSED")
    except AttestationError as error:
        detected += 1
        print(f"      DETECTED by attestation: {error.reason}")

    print("[3/3] flip one bit in the rootfs ...")
    deployment = RevelioDeployment(result, num_nodes=1, latency=ZERO_LATENCY,
                                   seed=b"cli-a3")
    try:
        deployment.launch_fleet(
            attack_for=lambda i: LaunchAttack(
                tamper_disk=lambda disk: disk.corrupt(4096 * 4 + 1)
            )
        )
        print("      MISSED")
    except BootFailure as error:
        detected += 1
        print(f"      DETECTED by dm-verity: {error}")

    _print_trace_summary(show_failures=True)
    print(f"\n{detected}/3 attacks detected")
    return 0 if detected == 3 else 1


def cmd_scenarios(args) -> int:
    """CLI: list adversary campaigns or run one by name."""
    import dataclasses

    from .scenarios import CAMPAIGNS, CampaignRunner, get_campaign

    if args.list or not args.campaign:
        print("available campaigns:")
        for name in sorted(CAMPAIGNS):
            spec = CAMPAIGNS[name]
            print(
                f"  {name:<16} [{spec.arena:<8}] "
                f"{len(spec.scenarios):>2} scenarios  {spec.description}"
            )
        return 0

    try:
        campaign = get_campaign(args.campaign)
    except KeyError as error:
        print(error.args[0])
        return 2
    if args.sessions and campaign.arena == "storm":
        campaign = dataclasses.replace(campaign, sessions=args.sessions)

    build = build_v2 = None
    if campaign.arena != "pipeline":
        build = build_revelio_image(_spec_for("boundary-node", "1.0.0"))
        if args.rollout:
            build_v2 = build_revelio_image(_spec_for("boundary-node", "2.0.0"))
    report = CampaignRunner(
        build, campaign, seed=args.seed,
        sigcache_on=not args.cold_cache, rollout=args.rollout,
        farm=args.farm, build_v2=build_v2,
    ).run()

    print(f"campaign {report.campaign} [{report.arena}] seed={report.seed} "
          f"axes={report.axes}")
    for entry in report.scenarios:
        verdict = "LANDED" if entry["landed"] else "MISSED"
        twin = entry["benign"]
        twin_note = (
            "" if twin is None
            else f"  twin={'ok' if twin['ok'] else 'FAILED'}"
        )
        print(
            f"  {entry['name']:<34} {verdict:<6} "
            f"expect={entry['expect']:<28}"
            f" contained={'y' if entry['contained'] else 'N'}"
            f" recovered={'y' if entry['recovered'] else 'N'}{twin_note}"
        )
    if report.slo is not None:
        slo = report.slo
        print(
            f"benign SLO [{'ok' if slo['ok'] else 'VIOLATED'}]: "
            f"{slo['requests_failed']} failed, "
            f"{slo['requests_blocked']} blocked, "
            f"p99 {slo['p99_ms']:.1f} ms vs "
            f"{slo['p99_factor_limit']}x baseline "
            f"{slo['baseline_p99_ms']:.1f} ms"
        )
    print(f"reason codes reached: {len(report.codes_reached)}")
    if report.violations:
        print("violations:")
        for violation in report.violations:
            print(f"  - {violation}")
    print("campaign OK" if report.ok else "campaign FAILED")
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Revelio reproduction command-line interface",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    build_parser_ = subparsers.add_parser("build", help="build a use-case image")
    build_parser_.add_argument("--use-case", choices=("boundary-node", "cryptpad"),
                               default="boundary-node")
    build_parser_.add_argument("--version", default="1.0.0")
    build_parser_.add_argument("--out", default="revelio-image.rvm")
    build_parser_.set_defaults(func=cmd_build)

    measure_parser = subparsers.add_parser(
        "measure", help="recompute an image's golden measurement"
    )
    measure_parser.add_argument("image")
    measure_parser.set_defaults(func=cmd_measure)

    verify_parser = subparsers.add_parser(
        "verify-image", help="check an image against a golden measurement"
    )
    verify_parser.add_argument("image")
    verify_parser.add_argument("expected_measurement", help="hex golden value")
    verify_parser.set_defaults(func=cmd_verify_image)

    update_parser = subparsers.add_parser(
        "update", help="build (and optionally roll out) a signed delta update"
    )
    update_parser.add_argument("--use-case", choices=("boundary-node", "cryptpad"),
                               default="boundary-node")
    update_parser.add_argument("--from-version", default="1.0.0")
    update_parser.add_argument("--to-version", default="2.0.0")
    update_parser.add_argument(
        "--apply", action="store_true",
        help="roll the update out across a simulated mesh fleet",
    )
    update_parser.add_argument("--nodes", type=int, default=2)
    update_parser.add_argument(
        "--lite", type=int, default=4,
        help="mixed-family lite backends to include (0 = none)",
    )
    update_parser.add_argument("--regions", type=int, default=2)
    update_parser.add_argument("--seed", type=int, default=0)
    update_parser.set_defaults(func=cmd_update)

    demo_parser = subparsers.add_parser("demo", help="run the end-to-end demo")
    demo_parser.add_argument("--use-case", choices=("boundary-node", "cryptpad"),
                             default="boundary-node")
    demo_parser.add_argument("--nodes", type=int, default=3)
    demo_parser.set_defaults(func=cmd_demo)

    scenarios_parser = subparsers.add_parser(
        "scenarios",
        help="list adversary campaigns or run one under live traffic",
    )
    scenarios_parser.add_argument(
        "campaign", nargs="?", default="",
        help="campaign name (omit or use --list to enumerate)",
    )
    scenarios_parser.add_argument(
        "--list", action="store_true", help="list available campaigns"
    )
    scenarios_parser.add_argument("--seed", type=int, default=0)
    scenarios_parser.add_argument(
        "--sessions", type=int, default=0,
        help="override storm session count (0 = campaign default)",
    )
    scenarios_parser.add_argument(
        "--cold-cache", action="store_true",
        help="run with the signature cache disabled",
    )
    scenarios_parser.add_argument(
        "--rollout", action="store_true",
        help="run with a rolling rollout to v2 in progress",
    )
    scenarios_parser.add_argument(
        "--farm", action="store_true",
        help="run with a shared verify farm",
    )
    scenarios_parser.set_defaults(func=cmd_scenarios)

    attack_parser = subparsers.add_parser(
        "attack-demo", help="mount the section 6.1 attacks"
    )
    attack_parser.set_defaults(func=cmd_attack_demo)
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
