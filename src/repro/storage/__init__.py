"""Storage substrate: block devices, device-mapper targets, filesystem.

Simulates the Linux storage stack a Revelio VM relies on:

* :mod:`blockdev` — fixed-block devices (RAM-backed, slices, read-only
  views) with corruption/rollback primitives for attack simulation,
* :mod:`partition` — a GPT-like table with pinned UUIDs,
* :mod:`dm_verity` — verify-on-read integrity target (Merkle tree),
* :mod:`dm_crypt` — AES-XTS-plain64 encryption with a LUKS-like header,
* :mod:`dm` — declarative device-mapper tables stacking the targets
  above (plus caches and fault injectors) into named volumes,
* :mod:`filesystem` — a deterministic read-only filesystem image.
"""

from .blockdev import (
    DEFAULT_BLOCK_SIZE,
    BlockDevice,
    BlockDeviceError,
    RamBlockDevice,
    ReadOnlyDeviceError,
    ReadOnlyView,
    SliceView,
)
from .dm import (
    ZERO_STORAGE_LATENCY,
    BlockCache,
    CachedVerityDevice,
    DelayTarget,
    DmContext,
    DmError,
    DmTable,
    DmVolume,
    FaultTarget,
    LinearTarget,
    StorageLatencyModel,
    StorageMeter,
    TargetSpec,
    TargetStats,
    VolumeError,
    VolumeRegistry,
)
from .dm_crypt import (
    CryptDevice,
    DmCryptError,
    LuksHeader,
    is_luks,
    luks_add_key,
    luks_format,
    luks_open,
    read_header,
)
from .dm_verity import (
    VerityDevice,
    VerityError,
    VerityFormatResult,
    VeritySuperblock,
    verity_format,
    verity_open,
)
from .filesystem import (
    FileEntry,
    FileSystem,
    FileSystemError,
    build_image,
    image_to_device,
)
from .partition import PartitionEntry, PartitionError, PartitionTable

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "BlockCache",
    "BlockDevice",
    "BlockDeviceError",
    "CachedVerityDevice",
    "CryptDevice",
    "DelayTarget",
    "DmContext",
    "DmCryptError",
    "DmError",
    "DmTable",
    "DmVolume",
    "FaultTarget",
    "LinearTarget",
    "FileEntry",
    "FileSystem",
    "FileSystemError",
    "LuksHeader",
    "PartitionEntry",
    "PartitionError",
    "PartitionTable",
    "RamBlockDevice",
    "ReadOnlyDeviceError",
    "ReadOnlyView",
    "SliceView",
    "StorageLatencyModel",
    "StorageMeter",
    "TargetSpec",
    "TargetStats",
    "VerityDevice",
    "VerityError",
    "VerityFormatResult",
    "VeritySuperblock",
    "VolumeError",
    "VolumeRegistry",
    "ZERO_STORAGE_LATENCY",
    "build_image",
    "image_to_device",
    "is_luks",
    "luks_add_key",
    "luks_format",
    "luks_open",
    "read_header",
    "verity_format",
    "verity_open",
]
