"""Composable device-mapper tables: the one seam the storage stack goes through.

Mirrors how Linux's ``dmsetup`` assembles virtual block devices (paper
sections 5.1.2 and 6.3.1): a :class:`DmTable` is a declarative, ordered
stack of *targets* that composes any :class:`~repro.storage.blockdev.
BlockDevice` into a named volume.  The table has a one-line textual
form — targets separated by ``;`` , each ``kind key=value ...`` — that
the image builder emits next to the golden measurement and the guest's
(measured) initrd carries, so the boot-to-mount path is data, not code:

    linear partition=rootfs ; cache blocks=128 ; verity
    hash=partition:verity root=cmdline:verity_root_hash

Supported targets, bottom-up:

* ``linear`` — the base extent: a named partition of the context disk
  (``partition=``), a named context device (``device=``), or an
  explicit ``first=``/``blocks=`` slice.  Models physical I/O and is
  where the :class:`StorageLatencyModel` charges seek/transfer cost.
* ``cache`` — a bounded write-through LRU :class:`BlockCache` over the
  layer below; invalidated wholesale when the backing device mutates
  out-of-band (`mutation_count`), so tampering is never masked.
* ``crypt`` — dm-crypt (AES-XTS, LUKS header) opened with a key from
  the context (the Revelio sealing-key flow) or formatted on first
  boot (``format=auto``).
* ``verity`` — verify-on-read with hash-path memoisation: every
  hash-tree node is verified at most once per cache generation, and a
  bounded LRU of *verified* data blocks serves hot re-reads without
  re-walking the Merkle path.  Any verify failure drops the caches.
* ``delay`` / ``fault`` — operational fault injectors (slow disk,
  forced I/O errors, corrupt-on-read) for the deployment/fleet tests.

Every target keeps per-target I/O counters (:class:`TargetStats`) and
reports aggregates + simulated latency to the ``repro.attest`` trace
registry, so storage cost shows up in the same observability plane as
verification cost.
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from ..attest.trace import get_tracer
from ..crypto.drbg import HmacDrbg
from .blockdev import BlockDevice, BlockDeviceError, SliceView
from .dm_crypt import CryptDevice, is_luks, luks_format, luks_open
from .dm_verity import VerityDevice, VerityError
from .partition import PartitionTable


class DmError(ValueError):
    """Raised on malformed tables or unresolvable targets."""

    def __init__(self, message: str, reason: str = "dm_error"):
        super().__init__(message)
        #: Stable machine-readable failure code.
        self.reason = reason


class VolumeError(LookupError):
    """Raised by :class:`VolumeRegistry` on role conflicts or misses."""

    def __init__(self, message: str, reason: str):
        super().__init__(message)
        #: Stable machine-readable failure code
        #: (``duplicate_role`` | ``missing_role``).
        self.reason = reason


# -- latency model and metering ------------------------------------------------


@dataclass
class StorageLatencyModel:
    """Per-operation virtual storage latencies (seconds).

    Defaults model an NVMe-class device plus software crypto/hashing:
    fixed per-4KiB-block transfer cost at the physical (linear) layer,
    per-block hash cost on the verity path, per-block XTS cost on the
    crypt path, and a near-free cache hit.  The composition — verity
    multiplying read cost by the hash-path depth, crypt adding a
    roughly constant factor, caches collapsing hot reads — is what the
    paper's Figs. 5/6 report.
    """

    #: one 4 KiB block read at the physical layer
    block_read: float = 22e-6
    #: one 4 KiB block write at the physical layer
    block_write: float = 25e-6
    #: hashing one block on the verity verify path
    hash_block: float = 6e-6
    #: AES-XTS over one block (encrypt or decrypt)
    xts_block: float = 9e-6
    #: serving one block from a cache layer
    cache_hit: float = 0.5e-6


#: A model with everything zeroed, for exact-assertion unit tests.
ZERO_STORAGE_LATENCY = StorageLatencyModel(0.0, 0.0, 0.0, 0.0, 0.0)


class StorageMeter:
    """Prices storage operations on the sim clock and mirrors counters.

    One meter is shared by every layer of the volumes it opens: targets
    call :meth:`charge` with a :class:`StorageLatencyModel` field name
    and :meth:`count` with a counter name.  Charges advance the
    attached :class:`~repro.net.latency.SimClock` (when present) and
    accumulate locally; counts mirror into the process-wide
    ``repro.attest`` trace registry.
    """

    def __init__(self, model: Optional[StorageLatencyModel] = None, clock=None):
        self.model = model if model is not None else StorageLatencyModel()
        self.clock = clock
        self.sim_seconds = 0.0

    def charge(self, kind: str, count: int = 1) -> None:
        """Charge *count* operations of the model's *kind* cost."""
        cost = getattr(self.model, kind) * count
        if not cost:
            return
        self.sim_seconds += cost
        if self.clock is not None:
            self.clock.advance(cost)
        get_tracer().storage.charge(cost)

    def charge_seconds(self, seconds: float) -> None:
        """Charge an explicit latency (delay targets)."""
        if not seconds:
            return
        self.sim_seconds += seconds
        if self.clock is not None:
            self.clock.advance(seconds)
        get_tracer().storage.charge(seconds)

    def count(self, name: str, amount: int = 1) -> None:
        """Mirror a per-target counter into the global registry."""
        get_tracer().storage.add(name, amount)


class TargetStats:
    """Per-target I/O counters, exposed by every dm target."""

    __slots__ = ("kind", "counts")

    def __init__(self, kind: str):
        self.kind = kind
        self.counts: Counter = Counter()

    def bump(self, name: str, amount: int = 1) -> None:
        """Count *amount* operations under *name*."""
        self.counts[name] += amount

    def get(self, name: str) -> int:
        """Current value of one counter."""
        return self.counts[name]

    def as_dict(self) -> dict:
        """Plain-data view: the target kind plus its counters."""
        return {"kind": self.kind, **dict(sorted(self.counts.items()))}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TargetStats({self.as_dict()!r})"


# -- table specification -------------------------------------------------------


@dataclass(frozen=True)
class TargetSpec:
    """One target line: a kind plus ordered ``key=value`` parameters."""

    kind: str
    params: Tuple[Tuple[str, str], ...] = ()

    def get(self, key: str, default: Optional[str] = None) -> Optional[str]:
        """The value of parameter *key*, or *default*."""
        for name, value in self.params:
            if name == key:
                return value
        return default

    def require(self, key: str) -> str:
        """The value of parameter *key*; raises :class:`DmError` if absent."""
        value = self.get(key)
        if value is None:
            raise DmError(
                f"target {self.kind!r} requires parameter {key!r}",
                reason="missing_param",
            )
        return value

    def to_text(self) -> str:
        """The ``kind key=value ...`` line form."""
        parts = [self.kind]
        parts.extend(f"{key}={value}" for key, value in self.params)
        return " ".join(parts)

    @classmethod
    def parse(cls, text: str) -> "TargetSpec":
        """Parse one target line."""
        tokens = text.split()
        if not tokens:
            raise DmError("empty target line", reason="bad_table")
        params = []
        for token in tokens[1:]:
            if "=" not in token:
                raise DmError(
                    f"malformed parameter {token!r} (expected key=value)",
                    reason="bad_table",
                )
            key, _, value = token.partition("=")
            params.append((key, value))
        return cls(kind=tokens[0], params=tuple(params))


@dataclass(frozen=True)
class DmTable:
    """A named, ordered stack of targets — the ``dmsetup table`` analogue."""

    name: str
    targets: Tuple[TargetSpec, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise DmError("a table needs a name", reason="bad_table")
        if not self.targets:
            raise DmError("a table needs at least one target", reason="bad_table")

    def to_text(self) -> str:
        """The one-line form the image builder emits and initrds carry."""
        return " ; ".join(target.to_text() for target in self.targets)

    @classmethod
    def parse(cls, name: str, text: str) -> "DmTable":
        """Parse the one-line form back into a table."""
        lines = [line.strip() for line in text.split(";")]
        targets = tuple(TargetSpec.parse(line) for line in lines if line)
        return cls(name=name, targets=targets)

    def open(self, context: "DmContext",
             base: Optional[BlockDevice] = None) -> "DmVolume":
        """Compose the stack bottom-up and return the opened volume.

        *base* seeds the stack for tables whose first target is not a
        ``linear`` source (tests composing over an explicit device).
        """
        meter = context.meter if context.meter is not None else StorageMeter()
        device = base
        layers: List[BlockDevice] = []
        for spec in self.targets:
            builder = _TARGET_BUILDERS.get(spec.kind)
            if builder is None:
                raise DmError(
                    f"unknown target kind {spec.kind!r}", reason="unknown_target"
                )
            device = builder(spec, context, device, meter)
            layers.append(device)
        return DmVolume(self.name, self, device, layers, meter)


@dataclass
class DmContext:
    """Everything target resolution may need at open time.

    Device references in table parameters resolve against it:
    ``partition:<name>`` opens a partition of :attr:`disk`;
    ``device:<name>`` looks up :attr:`devices`.  Root-hash references
    are ``cmdline:<arg>`` (the measured kernel command line) or
    ``hex:<digits>``; crypt keys name entries of :attr:`keys` (the
    sealing-key flow keeps key bytes out of the table text).
    """

    disk: Optional[BlockDevice] = None
    devices: Dict[str, BlockDevice] = field(default_factory=dict)
    cmdline_args: Mapping[str, str] = field(default_factory=dict)
    keys: Dict[str, bytes] = field(default_factory=dict)
    rng: Optional[HmacDrbg] = None
    meter: Optional[StorageMeter] = None
    _partitions: Optional[PartitionTable] = None

    def partition_table(self) -> PartitionTable:
        """The (cached) partition table of the context disk."""
        if self.disk is None:
            raise DmError(
                "table references a partition but the context has no disk",
                reason="missing_device",
            )
        if self._partitions is None:
            self._partitions = PartitionTable.read_from(self.disk)
        return self._partitions

    def resolve_device(self, reference: str) -> BlockDevice:
        """Resolve a ``partition:`` / ``device:`` reference."""
        scheme, _, name = reference.partition(":")
        if scheme == "partition" and name:
            return self.partition_table().open(self.disk, name)
        if scheme == "device" and name:
            try:
                return self.devices[name]
            except KeyError:
                raise DmError(
                    f"no context device named {name!r}", reason="missing_device"
                ) from None
        raise DmError(
            f"unresolvable device reference {reference!r} "
            "(expected partition:<name> or device:<name>)",
            reason="bad_param",
        )

    def resolve_root_hash(self, reference: str) -> bytes:
        """Resolve a ``cmdline:`` / ``hex:`` root-hash reference."""
        scheme, _, value = reference.partition(":")
        if scheme == "cmdline":
            hex_digest = self.cmdline_args.get(value, "")
            if not hex_digest:
                raise DmError(
                    f"no verity root hash: cmdline argument {value!r} missing",
                    reason="missing_root_hash",
                )
            return bytes.fromhex(hex_digest)
        if scheme == "hex" and value:
            return bytes.fromhex(value)
        raise DmError(
            f"unresolvable root hash reference {reference!r}",
            reason="bad_param",
        )

    def resolve_key(self, name: str) -> bytes:
        """Resolve a named key from the context key material."""
        try:
            return self.keys[name]
        except KeyError:
            raise DmError(
                f"no context key named {name!r}", reason="missing_key"
            ) from None


# -- target devices ------------------------------------------------------------


class _TargetDevice(BlockDevice):
    """Shared plumbing: stats, metering, batched delegation."""

    kind = "target"

    def __init__(self, backing: BlockDevice, meter: StorageMeter):
        super().__init__(backing.num_blocks, backing.block_size)
        self._backing = backing
        self._meter = meter
        self.stats = TargetStats(self.kind)

    @property
    def mutation_count(self) -> int:
        return self._backing.mutation_count

    def _note(self, name: str, amount: int = 1) -> None:
        self.stats.bump(name, amount)
        self._meter.count(name, amount)


class LinearTarget(_TargetDevice):
    """The base extent; models the physical device and its I/O cost."""

    kind = "linear"

    def read_block(self, index: int) -> bytes:
        self._check_block(index)
        self._note("reads")
        self._meter.charge("block_read")
        return self._backing.read_block(index)

    def write_block(self, index: int, data: bytes) -> None:
        self._check_write(index, data)
        self._note("writes")
        self._meter.charge("block_write")
        self._backing.write_block(index, data)

    def read_blocks(self, first: int, count: int) -> bytes:
        if count < 0 or first < 0 or first + count > self.num_blocks:
            raise BlockDeviceError("block range out of bounds")
        self._note("reads", count)
        self._meter.charge("block_read", count)
        return self._backing.read_blocks(first, count)

    def write_blocks(self, first: int, data: bytes) -> None:
        count = len(data) // self.block_size
        self._note("writes", count)
        self._meter.charge("block_write", count)
        self._backing.write_blocks(first, data)


class BlockCache(_TargetDevice):
    """A bounded write-through LRU cache over the layer below.

    Hot re-reads are served from memory; writes go through and update
    the cached copy.  The cache watches its backing device's
    ``mutation_count`` and drops everything when the device mutated
    behind its back — stale (or deliberately poisoned) entries are
    never served after out-of-band writes, the property the
    cross-layer corruption suite pins down.
    """

    kind = "cache"

    def __init__(self, backing: BlockDevice, meter: StorageMeter,
                 capacity_blocks: int = 256):
        if capacity_blocks <= 0:
            raise DmError("cache capacity must be positive", reason="bad_param")
        super().__init__(backing, meter)
        self.capacity_blocks = capacity_blocks
        self._blocks: "OrderedDict[int, bytes]" = OrderedDict()
        self._expected_version = backing.mutation_count
        self._own_mutations = 0

    @property
    def mutation_count(self) -> int:
        # Own mutations cover cache-state tampering (corrupt_entry), so
        # layers above re-verify instead of trusting poisoned entries.
        return self._backing.mutation_count + self._own_mutations

    def _sync(self) -> None:
        if self._backing.mutation_count != self._expected_version:
            self._blocks.clear()
            self._note("invalidations")
            self._expected_version = self._backing.mutation_count

    def read_block(self, index: int) -> bytes:
        self._check_block(index)
        self._sync()
        cached = self._blocks.get(index)
        if cached is not None:
            self._blocks.move_to_end(index)
            self._note("cache_hits")
            self._meter.charge("cache_hit")
            return cached
        self._note("cache_misses")
        data = self._backing.read_block(index)
        self._insert(index, data)
        return data

    def write_block(self, index: int, data: bytes) -> None:
        self._check_write(index, data)
        self._sync()
        self._note("writes")
        self._backing.write_block(index, data)
        self._insert(index, data)
        # Our own write bumped the backing version; it is not
        # out-of-band, so resync instead of invalidating.
        self._expected_version = self._backing.mutation_count

    def _insert(self, index: int, data: bytes) -> None:
        self._blocks[index] = data
        self._blocks.move_to_end(index)
        while len(self._blocks) > self.capacity_blocks:
            self._blocks.popitem(last=False)
            self._note("evictions")

    def invalidate(self) -> None:
        """Drop every cached block."""
        self._blocks.clear()
        self._expected_version = self._backing.mutation_count

    def corrupt_entry(self, index: int, xor_mask: int = 0x01,
                      byte_offset: int = 0) -> None:
        """Flip bits inside a *cached* block — the attack-simulation
        primitive for cache-layer tampering.  Counts as a mutation, so
        verified layers above re-check instead of serving it."""
        if index not in self._blocks:
            raise BlockDeviceError(f"block {index} not cached")
        mutated = bytearray(self._blocks[index])
        mutated[byte_offset] ^= xor_mask
        self._blocks[index] = bytes(mutated)
        self._own_mutations += 1

    @property
    def cached_indices(self) -> List[int]:
        """Indices currently cached (LRU order, oldest first)."""
        return list(self._blocks)


class DelayTarget(_TargetDevice):
    """A slow disk: adds per-block read/write latency on the sim clock."""

    kind = "delay"

    def __init__(self, backing: BlockDevice, meter: StorageMeter,
                 read_delay: float = 0.0, write_delay: float = 0.0):
        if read_delay < 0 or write_delay < 0:
            raise DmError("delays cannot be negative", reason="bad_param")
        super().__init__(backing, meter)
        self.read_delay = read_delay
        self.write_delay = write_delay

    def read_block(self, index: int) -> bytes:
        self._note("delayed_reads")
        self._meter.charge_seconds(self.read_delay)
        return self._backing.read_block(index)

    def write_block(self, index: int, data: bytes) -> None:
        self._note("delayed_writes")
        self._meter.charge_seconds(self.write_delay)
        self._backing.write_block(index, data)

    def read_blocks(self, first: int, count: int) -> bytes:
        self._note("delayed_reads", count)
        self._meter.charge_seconds(self.read_delay * count)
        return self._backing.read_blocks(first, count)

    def write_blocks(self, first: int, data: bytes) -> None:
        count = len(data) // self.block_size
        self._note("delayed_writes", count)
        self._meter.charge_seconds(self.write_delay * count)
        self._backing.write_blocks(first, data)


class FaultTarget(_TargetDevice):
    """Deterministic fault injection: forced I/O errors and
    corrupt-on-read bit flips, armed per block at runtime."""

    kind = "fault"

    def __init__(self, backing: BlockDevice, meter: StorageMeter,
                 xor_mask: int = 0x01):
        super().__init__(backing, meter)
        self.xor_mask = xor_mask
        self._fail_blocks: set = set()
        self._flip_blocks: set = set()
        self._own_mutations = 0

    @property
    def mutation_count(self) -> int:
        # Arming a fault changes what reads observe: a mutation.
        return self._backing.mutation_count + self._own_mutations

    def fail_block(self, index: int) -> None:
        """Arm a forced I/O error for *index*."""
        self._fail_blocks.add(index)
        self._own_mutations += 1

    def corrupt_block(self, index: int) -> None:
        """Arm a corrupt-on-read bit flip for *index*."""
        self._flip_blocks.add(index)
        self._own_mutations += 1

    def heal(self) -> None:
        """Disarm every fault."""
        self._fail_blocks.clear()
        self._flip_blocks.clear()
        self._own_mutations += 1

    def disarm_block(self, index: int) -> None:
        """Disarm the faults on one block only — the symmetric revert
        of a single ``fail_block``/``corrupt_block`` injection, leaving
        any other armed faults in place (campaigns revert each attack
        individually mid-run)."""
        self._fail_blocks.discard(index)
        self._flip_blocks.discard(index)
        self._own_mutations += 1

    def read_block(self, index: int) -> bytes:
        if index in self._fail_blocks:
            self._note("errors_injected")
            raise BlockDeviceError(f"injected I/O error reading block {index}")
        data = self._backing.read_block(index)
        if index in self._flip_blocks:
            self._note("corruptions_served")
            mutated = bytearray(data)
            mutated[0] ^= self.xor_mask
            return bytes(mutated)
        return data

    def write_block(self, index: int, data: bytes) -> None:
        if index in self._fail_blocks:
            self._note("errors_injected")
            raise BlockDeviceError(f"injected I/O error writing block {index}")
        self._backing.write_block(index, data)


class CachedVerityDevice(VerityDevice):
    """dm-verity with hash-path memoisation and a verified-page LRU.

    Soundness of the caches rests on two rules the implementation never
    bends:

    1. A hash-tree node's content enters the node cache only after the
       chain from it to the root hash (or to an already-authenticated
       ancestor) verified; a data block enters the page cache only
       after its own path verified against authenticated nodes.
    2. Both caches are keyed to the backing devices' ``mutation_count``
       generation — any out-of-band write (including the corruption
       primitives) starts a new generation with empty caches, and any
       verify failure drops them too, so a failure is never followed by
       a stale-cache success.

    Hot re-reads therefore skip the Merkle walk entirely (page hit) or
    reduce it to one leaf hash (path hit) while retaining verify-on-read
    semantics against every modelled attacker.
    """

    kind = "verity"

    def __init__(self, data_device: BlockDevice, hash_device: BlockDevice,
                 root_hash: bytes, meter: Optional[StorageMeter] = None,
                 page_cache_blocks: int = 1024):
        super().__init__(data_device, hash_device, root_hash)
        self._meter = meter if meter is not None else StorageMeter()
        self.stats = TargetStats(self.kind)
        self.page_cache_blocks = page_cache_blocks
        self._pages: "OrderedDict[int, bytes]" = OrderedDict()
        self._leaf_digests: "OrderedDict[int, bytes]" = OrderedDict()
        self._nodes: Dict[int, bytes] = {}
        self.generation = 0
        self._expected_version = self.mutation_count

    def _note(self, name: str, amount: int = 1) -> None:
        self.stats.bump(name, amount)
        self._meter.count(name, amount)

    def invalidate(self) -> None:
        """Start a new cache generation (drops every memoised node)."""
        self._pages.clear()
        self._leaf_digests.clear()
        self._nodes.clear()
        self.generation += 1
        self._expected_version = self.mutation_count

    def _sync_generation(self) -> None:
        if self.mutation_count != self._expected_version:
            self.invalidate()

    def read_block(self, index: int) -> bytes:
        self._check_block(index)
        self._sync_generation()
        page = self._pages.get(index)
        if page is not None:
            self._pages.move_to_end(index)
            self._note("verify_hits")
            self.stats.bump("page_hits")
            self._meter.charge("cache_hit")
            return page
        data = self._data.read_block(index)
        digest = self._hash_fn(self._superblock.salt + data)
        self._meter.charge("hash_block")
        cached_leaf = self._leaf_digests.get(index)
        if cached_leaf is not None:
            if digest == cached_leaf:
                self._note("verify_hits")
                self.stats.bump("path_hits")
                self._cache_page(index, data)
                return data
            # The device no longer matches its authenticated digest:
            # reject AND invalidate so the caches never paper over it.
            self._note("corruption_rejections")
            self.invalidate()
            raise VerityError(
                f"integrity violation reading block {index} "
                "(authenticated digest mismatch)"
            )
        return self._verified_walk(index, data, digest)

    def _verified_walk(self, index: int, data: bytes, digest: bytes) -> bytes:
        """The cold path: walk up to the root (or to an authenticated
        ancestor), then memoise every node the walk proved."""
        self._note("verify_misses")
        current = digest
        position = index
        salt = self._superblock.salt
        dpb = self._superblock.digests_per_block
        path: List[Tuple[int, bytes]] = []
        authenticated = False
        for level_offset in self._offsets:
            block_index, slot = divmod(position, dpb)
            absolute = level_offset + block_index
            content = self._nodes.get(absolute)
            from_cache = content is not None
            if not from_cache:
                content = self._hashes.read_block(absolute)
            start = slot * self._digest_size
            if content[start : start + self._digest_size] != current:
                self._note("corruption_rejections")
                self.invalidate()
                raise VerityError(
                    f"integrity violation reading block {index} "
                    f"(level at hash block {absolute})"
                )
            if from_cache:
                authenticated = True
                break
            path.append((absolute, content))
            current = self._hash_fn(salt + content)
            self._meter.charge("hash_block")
            position = block_index
        if not authenticated and current != self._root_hash:
            self._note("corruption_rejections")
            self.invalidate()
            raise VerityError(f"root hash mismatch reading block {index}")
        for absolute, content in path:
            self._nodes[absolute] = content
        self._leaf_digests[index] = digest
        while len(self._leaf_digests) > 4 * self.page_cache_blocks:
            self._leaf_digests.popitem(last=False)
        self._cache_page(index, data)
        return data

    def _cache_page(self, index: int, data: bytes) -> None:
        self._pages[index] = data
        self._pages.move_to_end(index)
        while len(self._pages) > self.page_cache_blocks:
            self._pages.popitem(last=False)


class CryptTarget(_TargetDevice):
    """Instrumentation wrapper around an opened dm-crypt device."""

    kind = "crypt"

    def __init__(self, crypt: CryptDevice, meter: StorageMeter):
        super().__init__(crypt, meter)

    def read_block(self, index: int) -> bytes:
        self._note("reads")
        self._meter.charge("xts_block")
        return self._backing.read_block(index)

    def write_block(self, index: int, data: bytes) -> None:
        self._note("writes")
        self._meter.charge("xts_block")
        self._backing.write_block(index, data)

    def read_blocks(self, first: int, count: int) -> bytes:
        self._note("reads", count)
        self._meter.charge("xts_block", count)
        return self._backing.read_blocks(first, count)

    def write_blocks(self, first: int, data: bytes) -> None:
        count = len(data) // self.block_size
        self._note("writes", count)
        self._meter.charge("xts_block", count)
        self._backing.write_blocks(first, data)


# -- target builders -----------------------------------------------------------


def _require_base(spec: TargetSpec, below: Optional[BlockDevice]) -> BlockDevice:
    if below is None:
        raise DmError(
            f"target {spec.kind!r} needs a layer below it", reason="missing_base"
        )
    return below


def _int_param(spec: TargetSpec, key: str, default: int) -> int:
    raw = spec.get(key)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise DmError(
            f"parameter {key}={raw!r} is not an integer", reason="bad_param"
        ) from None


def _float_param(spec: TargetSpec, key: str, default: float) -> float:
    raw = spec.get(key)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        raise DmError(
            f"parameter {key}={raw!r} is not a number", reason="bad_param"
        ) from None


def _build_linear(spec: TargetSpec, context: DmContext,
                  below: Optional[BlockDevice], meter: StorageMeter) -> BlockDevice:
    partition = spec.get("partition")
    device_ref = spec.get("device")
    if partition is not None and device_ref is not None:
        raise DmError(
            "linear takes partition= or device=, not both", reason="bad_param"
        )
    if partition is not None:
        source = context.resolve_device(f"partition:{partition}")
    elif device_ref is not None:
        source = context.resolve_device(f"device:{device_ref}")
    elif below is not None:
        source = below
    elif context.disk is not None:
        source = context.disk
    else:
        raise DmError(
            "linear target has no source (partition=, device=, or a layer below)",
            reason="missing_device",
        )
    first = _int_param(spec, "first", 0)
    blocks = _int_param(spec, "blocks", source.num_blocks - first)
    if first != 0 or blocks != source.num_blocks:
        source = SliceView(source, first, blocks)
    return LinearTarget(source, meter)


def _build_cache(spec: TargetSpec, context: DmContext,
                 below: Optional[BlockDevice], meter: StorageMeter) -> BlockDevice:
    backing = _require_base(spec, below)
    return BlockCache(backing, meter,
                      capacity_blocks=_int_param(spec, "blocks", 256))


def _build_verity(spec: TargetSpec, context: DmContext,
                  below: Optional[BlockDevice], meter: StorageMeter) -> BlockDevice:
    data_device = _require_base(spec, below)
    hash_device = context.resolve_device(spec.require("hash"))
    root_hash = context.resolve_root_hash(spec.require("root"))
    return CachedVerityDevice(
        data_device,
        hash_device,
        root_hash,
        meter=meter,
        page_cache_blocks=_int_param(spec, "cache_blocks", 1024),
    )


def _build_crypt(spec: TargetSpec, context: DmContext,
                 below: Optional[BlockDevice], meter: StorageMeter) -> BlockDevice:
    backing = _require_base(spec, below)
    key_name = spec.get("key")
    passphrase_name = spec.get("passphrase")
    if (key_name is None) == (passphrase_name is None):
        raise DmError(
            "crypt takes exactly one of key= or passphrase=", reason="bad_param"
        )
    mode = spec.get("format", "open")
    if mode not in ("open", "auto"):
        raise DmError(f"unknown crypt format mode {mode!r}", reason="bad_param")
    if passphrase_name is not None:
        crypt = luks_open(backing, passphrase=context.resolve_key(passphrase_name))
    else:
        master_key = context.resolve_key(key_name)
        if mode == "auto" and not is_luks(backing):
            if context.rng is None:
                raise DmError(
                    "crypt format=auto needs an rng in the context",
                    reason="missing_param",
                )
            crypt = luks_format(backing, context.rng, master_key=master_key)
            if spec.get("fill") == "zero":
                # First boot: encrypt the whole volume in place (the
                # paper's size-dependent "encryption service"), batched
                # to keep the XTS passes vectorised.
                batch = 256
                zero = bytes(batch * crypt.block_size)
                for start in range(0, crypt.num_blocks, batch):
                    count = min(batch, crypt.num_blocks - start)
                    crypt.write_blocks(start, zero[: count * crypt.block_size])
        else:
            crypt = luks_open(backing, master_key=master_key)
    return CryptTarget(crypt, meter)


def _build_delay(spec: TargetSpec, context: DmContext,
                 below: Optional[BlockDevice], meter: StorageMeter) -> BlockDevice:
    backing = _require_base(spec, below)
    return DelayTarget(
        backing,
        meter,
        read_delay=_float_param(spec, "read_ms", 0.0) / 1000.0,
        write_delay=_float_param(spec, "write_ms", 0.0) / 1000.0,
    )


def _build_fault(spec: TargetSpec, context: DmContext,
                 below: Optional[BlockDevice], meter: StorageMeter) -> BlockDevice:
    backing = _require_base(spec, below)
    return FaultTarget(backing, meter,
                       xor_mask=_int_param(spec, "mask", 0x01))


_TARGET_BUILDERS = {
    "linear": _build_linear,
    "cache": _build_cache,
    "verity": _build_verity,
    "crypt": _build_crypt,
    "delay": _build_delay,
    "fault": _build_fault,
}


# -- the opened volume ---------------------------------------------------------


class DmVolume(BlockDevice):
    """An opened named volume: the top of the stack plus its layers."""

    def __init__(self, name: str, table: DmTable, top: BlockDevice,
                 layers: List[BlockDevice], meter: StorageMeter):
        super().__init__(top.num_blocks, top.block_size)
        self.name = name
        self.table = table
        self.meter = meter
        self._top = top
        self.layers = list(layers)

    @property
    def mutation_count(self) -> int:
        return self._top.mutation_count

    def read_block(self, index: int) -> bytes:
        return self._top.read_block(index)

    def write_block(self, index: int, data: bytes) -> None:
        self._top.write_block(index, data)

    def read_blocks(self, first: int, count: int) -> bytes:
        return self._top.read_blocks(first, count)

    def write_blocks(self, first: int, data: bytes) -> None:
        self._top.write_blocks(first, data)

    def verify_all(self) -> None:
        """Full-volume verification (boot-time rootfs check, Table 1)."""
        verify = getattr(self._top, "verify_all", None)
        if verify is None:
            raise DmError(
                f"volume {self.name!r} has no verifying target",
                reason="not_verifiable",
            )
        verify()

    def layer(self, kind: str) -> BlockDevice:
        """The topmost layer of the given target kind."""
        for device in reversed(self.layers):
            if getattr(device, "kind", None) == kind:
                return device
        raise DmError(f"volume has no {kind!r} target", reason="missing_target")

    def has_layer(self, kind: str) -> bool:
        """Whether any layer of the given kind is stacked."""
        return any(getattr(d, "kind", None) == kind for d in self.layers)

    def invalidate_caches(self) -> None:
        """Drop every caching layer's state (remount semantics)."""
        for device in self.layers:
            invalidate = getattr(device, "invalidate", None)
            if invalidate is not None:
                invalidate()

    def stats(self) -> List[dict]:
        """Per-target counters, bottom-up."""
        return [
            device.stats.as_dict()
            for device in self.layers
            if hasattr(device, "stats")
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DmVolume({self.name!r}, {self.table.to_text()!r})"


# -- the typed volume registry -------------------------------------------------


class VolumeRegistry:
    """Role → opened volume, with stable failure codes.

    Replaces the untyped ``VM.storage`` dict: registering a role twice
    raises ``duplicate_role``; looking up an unknown role raises
    ``missing_role``.  Mapping-style access (``registry["data"]``,
    ``.get``) is kept so storage consumers read naturally.
    """

    def __init__(self, meter: Optional[StorageMeter] = None):
        self.meter = meter if meter is not None else StorageMeter()
        self._volumes: "OrderedDict[str, BlockDevice]" = OrderedDict()

    def register(self, role: str, volume: BlockDevice) -> BlockDevice:
        """Attach *volume* under *role*; the role must be free."""
        if role in self._volumes:
            raise VolumeError(
                f"role {role!r} already has a volume", reason="duplicate_role"
            )
        self._volumes[role] = volume
        return volume

    def replace(self, role: str, volume: BlockDevice) -> BlockDevice:
        """Swap the volume under an *existing* role (fault injection)."""
        if role not in self._volumes:
            raise VolumeError(
                f"no volume registered for role {role!r}", reason="missing_role"
            )
        self._volumes[role] = volume
        return volume

    def open(self, role: str) -> BlockDevice:
        """The volume registered under *role*."""
        try:
            return self._volumes[role]
        except KeyError:
            raise VolumeError(
                f"no volume registered for role {role!r}", reason="missing_role"
            ) from None

    def get(self, role: str, default=None):
        """The volume under *role*, or *default*."""
        return self._volumes.get(role, default)

    def roles(self) -> List[str]:
        """Registered roles, in registration order."""
        return list(self._volumes)

    def items(self):
        """(role, volume) pairs, in registration order."""
        return self._volumes.items()

    def stats(self) -> Dict[str, List[dict]]:
        """Per-volume, per-target counters for every registered role."""
        return {
            role: volume.stats()
            for role, volume in self._volumes.items()
            if hasattr(volume, "stats")
        }

    def __getitem__(self, role: str) -> BlockDevice:
        return self.open(role)

    def __setitem__(self, role: str, volume: BlockDevice) -> None:
        self.register(role, volume)

    def __contains__(self, role: str) -> bool:
        return role in self._volumes

    def __iter__(self) -> Iterator[str]:
        return iter(self._volumes)

    def __len__(self) -> int:
        return len(self._volumes)
