"""dm-crypt with a LUKS-like on-disk header.

Reimplements the Linux disk-encryption stack the paper configures in
section 6.3.1: the volume is encrypted with ``aes-xts-plain64`` under a
random *master key*; the master key is stored in the header, wrapped
either by a passphrase slot (PBKDF2, 1000 iterations — the paper's
cryptsetup settings) or used directly when the caller already holds a
key.  Revelio VMs take the second path: the master key is the AMD-SP
sealing key derived from the launch measurement, so only an untampered
VM on the same platform can open the volume (requirement F6).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Optional

from ..crypto import encoding
from ..crypto.drbg import HmacDrbg
from ..crypto.kdf import pbkdf2
from ..crypto.modes import AeadCipher, AeadError, XtsCipher
from .blockdev import BlockDevice, BlockDeviceError

_HEADER_MAGIC = "repro-luks-v1"
_HEADER_BLOCKS = 2
_MASTER_KEY_SIZE = 64  # AES-256-XTS
_DEFAULT_ITERATIONS = 1000


class DmCryptError(IOError):
    """Raised on format/open failures (including wrong keys)."""


@dataclass
class KeySlot:
    """One passphrase slot: PBKDF2 parameters + AEAD-wrapped master key."""

    salt: bytes
    iterations: int
    sealed_master_key: bytes

    def to_dict(self) -> dict:
        """Dict form for canonical TLV embedding."""
        return {
            "salt": self.salt,
            "iterations": self.iterations,
            "sealed": self.sealed_master_key,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "KeySlot":
        """Rebuild from the dict form."""
        return cls(
            salt=data["salt"],
            iterations=data["iterations"],
            sealed_master_key=data["sealed"],
        )


@dataclass
class LuksHeader:
    """The on-disk header occupying the first blocks of the volume."""

    cipher: str
    sector_size: int
    key_digest_salt: bytes
    key_digest: bytes  # binds the header to the master key
    uuid: str
    slots: List[KeySlot] = field(default_factory=list)

    def encode(self) -> bytes:
        """Serialise to canonical TLV bytes."""
        return encoding.encode(
            {
                "magic": _HEADER_MAGIC,
                "cipher": self.cipher,
                "sector_size": self.sector_size,
                "kd_salt": self.key_digest_salt,
                "kd": self.key_digest,
                "uuid": self.uuid,
                "slots": [slot.to_dict() for slot in self.slots],
            }
        )

    @classmethod
    def decode(cls, data: bytes) -> "LuksHeader":
        """Parse an instance back out of canonical TLV bytes."""
        try:
            length = 5 + int.from_bytes(data[1:5], "big")
            decoded = encoding.decode(data[:length])
        except (IndexError, ValueError) as exc:
            raise DmCryptError("unreadable LUKS header") from exc
        if not isinstance(decoded, dict) or decoded.get("magic") != _HEADER_MAGIC:
            raise DmCryptError("not a LUKS volume")
        return cls(
            cipher=decoded["cipher"],
            sector_size=decoded["sector_size"],
            key_digest_salt=decoded["kd_salt"],
            key_digest=decoded["kd"],
            uuid=decoded["uuid"],
            slots=[KeySlot.from_dict(d) for d in decoded["slots"]],
        )


def _key_digest(master_key: bytes, salt: bytes) -> bytes:
    return hashlib.sha256(b"luks-key-digest" + salt + master_key).digest()


def _slot_cipher(passphrase: bytes, slot_salt: bytes, iterations: int) -> AeadCipher:
    slot_key = pbkdf2(passphrase, slot_salt, iterations=iterations, length=32)
    return AeadCipher(slot_key)


class CryptDevice(BlockDevice):
    """The decrypted logical view of an opened dm-crypt volume.

    Logical block *i* maps to underlying block ``i + header_blocks`` and
    is encrypted with the XTS tweak for sector *i* (plain64).
    """

    def __init__(self, backing: BlockDevice, master_key: bytes):
        if backing.num_blocks <= _HEADER_BLOCKS:
            raise DmCryptError("volume too small for a LUKS header")
        super().__init__(backing.num_blocks - _HEADER_BLOCKS, backing.block_size)
        self._backing = backing
        self._xts = XtsCipher(master_key, sector_size=backing.block_size)

    @property
    def mutation_count(self) -> int:
        return self._backing.mutation_count

    def read_block(self, index: int) -> bytes:
        """Read one block by index."""
        self._check_block(index)
        ciphertext = self._backing.read_block(index + _HEADER_BLOCKS)
        return self._xts.decrypt(ciphertext, first_sector=index)

    def write_block(self, index: int, data: bytes) -> None:
        """Write one full block at index."""
        self._check_write(index, data)
        ciphertext = self._xts.encrypt(data, first_sector=index)
        self._backing.write_block(index + _HEADER_BLOCKS, ciphertext)

    def read_blocks(self, first: int, count: int) -> bytes:
        """Batched sequential read (one vectorised XTS pass)."""
        if count < 0 or first < 0 or first + count > self.num_blocks:
            raise BlockDeviceError("block range out of bounds")
        ciphertext = self._backing.read_blocks(first + _HEADER_BLOCKS, count)
        return self._xts.decrypt(ciphertext, first_sector=first)

    def write_blocks(self, first: int, data: bytes) -> None:
        """Batched sequential write (one vectorised XTS pass)."""
        if len(data) % self.block_size:
            raise BlockDeviceError("write must be whole blocks")
        count = len(data) // self.block_size
        if first < 0 or first + count > self.num_blocks:
            raise BlockDeviceError("block range out of bounds")
        ciphertext = self._xts.encrypt(data, first_sector=first)
        self._backing.write_blocks(first + _HEADER_BLOCKS, ciphertext)


def luks_format(
    device: BlockDevice,
    rng: HmacDrbg,
    passphrase: Optional[bytes] = None,
    master_key: Optional[bytes] = None,
    iterations: int = _DEFAULT_ITERATIONS,
    uuid: str = "00000000-0000-0000-0000-000000000000",
) -> CryptDevice:
    """Initialise a LUKS volume on *device* and open it.

    Exactly one key source is required: a *passphrase* (a slot is
    created) or a caller-provided *master_key* (the Revelio sealing-key
    flow — no slot is stored, the key never touches the disk).
    """
    if device.num_blocks <= _HEADER_BLOCKS:
        raise DmCryptError("device too small for a LUKS volume")
    if (passphrase is None) == (master_key is None):
        raise DmCryptError("provide exactly one of passphrase or master_key")
    if master_key is None:
        master_key = rng.generate(_MASTER_KEY_SIZE)
    if len(master_key) != _MASTER_KEY_SIZE:
        raise DmCryptError(f"master key must be {_MASTER_KEY_SIZE} bytes")

    kd_salt = rng.generate(16)
    header = LuksHeader(
        cipher="aes-xts-plain64",
        sector_size=device.block_size,
        key_digest_salt=kd_salt,
        key_digest=_key_digest(master_key, kd_salt),
        uuid=uuid,
    )
    if passphrase is not None:
        slot_salt = rng.generate(16)
        aead = _slot_cipher(passphrase, slot_salt, iterations)
        sealed = aead.seal(b"\x00" * 12, master_key, aad=b"luks-slot")
        header.slots.append(
            KeySlot(salt=slot_salt, iterations=iterations, sealed_master_key=sealed)
        )
    _write_header(device, header)
    return CryptDevice(device, master_key)


def luks_open(
    device: BlockDevice,
    passphrase: Optional[bytes] = None,
    master_key: Optional[bytes] = None,
) -> CryptDevice:
    """Open an existing LUKS volume with a passphrase or a direct key.

    Raises :class:`DmCryptError` if the passphrase matches no slot or
    the provided key does not match the volume's key digest.
    """
    if (passphrase is None) == (master_key is None):
        raise DmCryptError("provide exactly one of passphrase or master_key")
    header = read_header(device)
    if master_key is not None:
        if _key_digest(master_key, header.key_digest_salt) != header.key_digest:
            raise DmCryptError("master key does not match this volume")
        return CryptDevice(device, master_key)

    for slot in header.slots:
        aead = _slot_cipher(passphrase, slot.salt, slot.iterations)
        try:
            candidate = aead.open(b"\x00" * 12, slot.sealed_master_key, aad=b"luks-slot")
        except AeadError:
            continue
        if _key_digest(candidate, header.key_digest_salt) == header.key_digest:
            return CryptDevice(device, candidate)
    raise DmCryptError("no key slot matches the passphrase")


def luks_add_key(
    device: BlockDevice,
    rng: HmacDrbg,
    existing_passphrase: Optional[bytes],
    new_passphrase: bytes,
    master_key: Optional[bytes] = None,
    iterations: int = _DEFAULT_ITERATIONS,
) -> None:
    """Add a passphrase slot, authorised by an existing credential."""
    header = read_header(device)
    if master_key is not None:
        if _key_digest(master_key, header.key_digest_salt) != header.key_digest:
            raise DmCryptError("master key does not match this volume")
    key = _recover_master_key(header, existing_passphrase, master_key)
    slot_salt = rng.generate(16)
    aead = _slot_cipher(new_passphrase, slot_salt, iterations)
    header.slots.append(
        KeySlot(
            salt=slot_salt,
            iterations=iterations,
            sealed_master_key=aead.seal(b"\x00" * 12, key, aad=b"luks-slot"),
        )
    )
    _write_header(device, header)


def _recover_master_key(
    header: LuksHeader,
    passphrase: Optional[bytes],
    master_key: Optional[bytes],
) -> bytes:
    if master_key is not None:
        return master_key
    for slot in header.slots:
        aead = _slot_cipher(passphrase, slot.salt, slot.iterations)
        try:
            candidate = aead.open(b"\x00" * 12, slot.sealed_master_key, aad=b"luks-slot")
        except AeadError:
            continue
        if _key_digest(candidate, header.key_digest_salt) == header.key_digest:
            return candidate
    raise DmCryptError("no key slot matches the passphrase")


def read_header(device: BlockDevice) -> LuksHeader:
    """Parse the LUKS header from the start of *device*."""
    raw = b"".join(device.read_block(i) for i in range(_HEADER_BLOCKS))
    return LuksHeader.decode(raw)


def is_luks(device: BlockDevice) -> bool:
    """Cheap probe: does *device* carry a LUKS header?"""
    try:
        read_header(device)
        return True
    except (DmCryptError, BlockDeviceError):
        return False


def _write_header(device: BlockDevice, header: LuksHeader) -> None:
    encoded = header.encode()
    capacity = _HEADER_BLOCKS * device.block_size
    if len(encoded) > capacity:
        raise DmCryptError("LUKS header too large")
    padded = encoded.ljust(capacity, b"\x00")
    for index in range(_HEADER_BLOCKS):
        start = index * device.block_size
        device.write_block(index, padded[start : start + device.block_size])
