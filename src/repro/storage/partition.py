"""A GPT-like partition table.

The Revelio VM image is a single disk with several partitions (rootfs,
verity hash metadata, encrypted data volume, ...).  The table lives in
block 0 and records, per partition: name, first block, size, and a
*fixed* UUID — the paper's reproducible build pins partition UUIDs
because generated ones are a classic source of image non-determinism
(section 5.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..crypto import encoding
from .blockdev import BlockDevice, BlockDeviceError, SliceView

_TABLE_MAGIC = "repro-gpt-v1"


class PartitionError(ValueError):
    """Raised on malformed tables or unknown partitions."""


@dataclass(frozen=True)
class PartitionEntry:
    """One partition's extent and identity."""

    name: str
    first_block: int
    num_blocks: int
    uuid: str

    def to_dict(self) -> dict:
        """Dict form for canonical TLV embedding."""
        return {
            "name": self.name,
            "first": self.first_block,
            "blocks": self.num_blocks,
            "uuid": self.uuid,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PartitionEntry":
        """Rebuild from the dict form."""
        return cls(
            name=data["name"],
            first_block=data["first"],
            num_blocks=data["blocks"],
            uuid=data["uuid"],
        )


class PartitionTable:
    """An ordered set of non-overlapping partitions on one device."""

    def __init__(self, entries: List[PartitionEntry]):
        names = [entry.name for entry in entries]
        if len(set(names)) != len(names):
            raise PartitionError("duplicate partition names")
        spans: List[Tuple[int, int]] = sorted(
            (entry.first_block, entry.first_block + entry.num_blocks)
            for entry in entries
        )
        for (_, end), (start, _) in zip(spans, spans[1:]):
            if start < end:
                raise PartitionError("overlapping partitions")
        for entry in entries:
            if entry.first_block < 1:
                raise PartitionError("partitions may not cover block 0 (the table)")
        self.entries = list(entries)
        self._by_name: Dict[str, PartitionEntry] = {e.name: e for e in entries}

    def encode(self) -> bytes:
        """Serialise to canonical TLV bytes."""
        return encoding.encode(
            {"magic": _TABLE_MAGIC, "parts": [e.to_dict() for e in self.entries]}
        )

    @classmethod
    def decode(cls, data: bytes) -> "PartitionTable":
        """Parse an instance back out of canonical TLV bytes."""
        decoded = encoding.decode(data)
        if not isinstance(decoded, dict) or decoded.get("magic") != _TABLE_MAGIC:
            raise PartitionError("not a partition table")
        return cls([PartitionEntry.from_dict(d) for d in decoded["parts"]])

    def write_to(self, device: BlockDevice) -> None:
        """Serialise the table into block 0 of *device*."""
        encoded = self.encode()
        if len(encoded) > device.block_size:
            raise PartitionError("partition table larger than one block")
        device.write_block(0, encoded.ljust(device.block_size, b"\x00"))

    @classmethod
    def read_from(cls, device: BlockDevice) -> "PartitionTable":
        """Parse from block 0 of a device."""
        raw = device.read_block(0)
        # The encoded table is zero-padded to a full block; the TLV frame
        # carries its own length, so strip padding by decoding a prefix.
        try:
            length = 5 + int.from_bytes(raw[1:5], "big")
            return cls.decode(raw[:length])
        except (IndexError, ValueError) as exc:
            raise PartitionError("unreadable partition table") from exc

    def find(self, name: str) -> PartitionEntry:
        """The entry for the named partition."""
        try:
            return self._by_name[name]
        except KeyError:
            raise PartitionError(f"no partition named {name!r}") from None

    def open(self, device: BlockDevice, name: str) -> SliceView:
        """Return a block-device view of the named partition."""
        entry = self.find(name)
        if entry.first_block + entry.num_blocks > device.num_blocks:
            raise BlockDeviceError("partition extends past device end")
        return SliceView(device, entry.first_block, entry.num_blocks)

    def names(self) -> List[str]:
        """Partition names in table order."""
        return [entry.name for entry in self.entries]
