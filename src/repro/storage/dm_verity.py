"""dm-verity: transparent block-level integrity verification.

Reimplements the Linux device-mapper verity target (section 5.1.2 of
the paper): at format time a Merkle tree of salted SHA-256 digests is
built over the data device's 4 KiB blocks and stored on a hash device;
at runtime every read re-hashes the data block and verifies the full
path to the *root hash*, which for a Revelio VM travels on the kernel
command line and is therefore covered by the launch measurement.

A single flipped bit anywhere in the data or hash device causes reads
to fail with :class:`VerityError` — the property the paper's security
analysis (section 6.1.3) and Figure 6's latency overhead both rest on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..crypto import encoding
from ..crypto.hashes import digest_size, get_hash
from .blockdev import BlockDevice, RamBlockDevice, ReadOnlyDeviceError

_SUPERBLOCK_MAGIC = "repro-verity-v1"


class VerityError(IOError):
    """Integrity verification failed: the device has been tampered with."""


@dataclass(frozen=True)
class VeritySuperblock:
    """Parameters stored in block 0 of the hash device."""

    hash_name: str
    data_blocks: int
    block_size: int
    salt: bytes

    def encode(self) -> bytes:
        """Serialise to canonical TLV bytes."""
        return encoding.encode(
            {
                "magic": _SUPERBLOCK_MAGIC,
                "hash": self.hash_name,
                "data_blocks": self.data_blocks,
                "block_size": self.block_size,
                "salt": self.salt,
            }
        )

    @classmethod
    def decode(cls, data: bytes) -> "VeritySuperblock":
        """Parse an instance back out of canonical TLV bytes."""
        try:
            length = 5 + int.from_bytes(data[1:5], "big")
            decoded = encoding.decode(data[:length])
        except (IndexError, ValueError) as exc:
            raise VerityError("unreadable verity superblock") from exc
        if not isinstance(decoded, dict) or decoded.get("magic") != _SUPERBLOCK_MAGIC:
            raise VerityError("not a verity superblock")
        return cls(
            hash_name=decoded["hash"],
            data_blocks=decoded["data_blocks"],
            block_size=decoded["block_size"],
            salt=decoded["salt"],
        )

    @property
    def digests_per_block(self) -> int:
        """How many digests fit in one hash block."""
        return self.block_size // digest_size(self.hash_name)

    def level_block_counts(self) -> List[int]:
        """Blocks per tree level, bottom (leaf digests) first."""
        counts = []
        entries = self.data_blocks
        while True:
            blocks = -(-entries // self.digests_per_block)  # ceil division
            counts.append(blocks)
            if blocks == 1:
                return counts
            entries = blocks

    def level_offsets(self) -> List[int]:
        """First hash-device block of each level (block 0 is the superblock)."""
        offsets = []
        position = 1
        for count in self.level_block_counts():
            offsets.append(position)
            position += count
        return offsets

    def hash_device_blocks(self) -> int:
        """Total hash-device size needed, in blocks."""
        return 1 + sum(self.level_block_counts())


@dataclass(frozen=True)
class VerityFormatResult:
    """What ``veritysetup format`` hands back."""

    superblock: VeritySuperblock
    root_hash: bytes
    hash_device: RamBlockDevice


def verity_format(
    data_device: BlockDevice,
    salt: bytes = b"",
    hash_name: str = "sha256",
) -> VerityFormatResult:
    """Build the hash tree for *data_device* (the ``veritysetup format``
    step of the image build, Fig. 3)."""
    if data_device.num_blocks == 0:
        raise VerityError("cannot format an empty device")
    superblock = VeritySuperblock(
        hash_name=hash_name,
        data_blocks=data_device.num_blocks,
        block_size=data_device.block_size,
        salt=salt,
    )
    hash_fn = get_hash(hash_name)
    block_size = data_device.block_size

    # Leaf digests, reading the data device in large batches so devices
    # with a vectorised read path (or plain RAM) are touched once per
    # chunk instead of once per block.
    current_level: List[bytes] = []
    chunk_blocks = 512
    for start in range(0, data_device.num_blocks, chunk_blocks):
        count = min(chunk_blocks, data_device.num_blocks - start)
        buffer = data_device.read_blocks(start, count)
        current_level.extend(
            hash_fn(salt + buffer[i * block_size : (i + 1) * block_size])
            for i in range(count)
        )
    levels_packed: List[List[bytes]] = []
    dpb = superblock.digests_per_block
    while True:
        # Batch the sibling digests of each group: join the whole level
        # once and slice hash blocks out of it (identical bytes to the
        # per-group construction, far fewer small allocations).
        level_bytes = b"".join(current_level)
        group_bytes = dpb * digest_size(hash_name)
        packed = [
            level_bytes[start : start + group_bytes].ljust(block_size, b"\x00")
            for start in range(0, len(level_bytes), group_bytes)
        ]
        levels_packed.append(packed)
        if len(packed) == 1:
            break
        current_level = [hash_fn(salt + block) for block in packed]

    root_hash = hash_fn(salt + levels_packed[-1][0])

    hash_device = RamBlockDevice(superblock.hash_device_blocks(), block_size)
    hash_device.write_block(0, superblock.encode().ljust(block_size, b"\x00"))
    position = 1
    for level in levels_packed:
        for block in level:
            hash_device.write_block(position, block)
            position += 1
    return VerityFormatResult(
        superblock=superblock, root_hash=root_hash, hash_device=hash_device
    )


class VerityDevice(BlockDevice):
    """The mapped, read-only, verify-on-read virtual device.

    Created by :func:`verity_open`; every :meth:`read_block` walks the
    hash path up to the trusted root hash.
    """

    def __init__(
        self,
        data_device: BlockDevice,
        hash_device: BlockDevice,
        root_hash: bytes,
    ):
        superblock = VeritySuperblock.decode(hash_device.read_block(0))
        if superblock.block_size != data_device.block_size:
            raise VerityError("hash/data device block size mismatch")
        if superblock.data_blocks != data_device.num_blocks:
            raise VerityError("hash tree covers a different device size")
        if hash_device.num_blocks < superblock.hash_device_blocks():
            raise VerityError("hash device too small for recorded tree")
        super().__init__(superblock.data_blocks, superblock.block_size)
        self._data = data_device
        self._hashes = hash_device
        self._superblock = superblock
        self._root_hash = root_hash
        self._hash_fn = get_hash(superblock.hash_name)
        self._digest_size = digest_size(superblock.hash_name)
        self._offsets = superblock.level_offsets()

    @property
    def mutation_count(self) -> int:
        return self._data.mutation_count + self._hashes.mutation_count

    def read_block(self, index: int) -> bytes:
        """Read one block by index."""
        self._check_block(index)
        data = self._data.read_block(index)
        current = self._hash_fn(self._superblock.salt + data)
        position = index
        dpb = self._superblock.digests_per_block
        for level_offset in self._offsets:
            block_index, slot = divmod(position, dpb)
            hash_block = self._hashes.read_block(level_offset + block_index)
            start = slot * self._digest_size
            stored = hash_block[start : start + self._digest_size]
            if stored != current:
                raise VerityError(
                    f"integrity violation reading block {index} "
                    f"(level at hash block {level_offset + block_index})"
                )
            current = self._hash_fn(self._superblock.salt + hash_block)
            position = block_index
        if current != self._root_hash:
            raise VerityError(f"root hash mismatch reading block {index}")
        return data

    def write_block(self, index: int, data: bytes) -> None:
        """Write one full block at index."""
        raise ReadOnlyDeviceError("dm-verity devices are read-only")

    def verify_all(self) -> None:
        """Full-device verification — the boot-time rootfs check whose
        cost Table 1 reports as 'dm-verity verify'."""
        for index in range(self.num_blocks):
            self.read_block(index)


def verity_open(
    data_device: BlockDevice, hash_device: BlockDevice, root_hash: bytes
) -> VerityDevice:
    """``veritysetup open``: map the verified virtual device."""
    return VerityDevice(data_device, hash_device, root_hash)
