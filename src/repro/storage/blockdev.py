"""Block device abstractions.

Everything storage-related in the reproduction — dm-crypt, dm-verity,
the filesystem, partitions — stacks on the small interface defined
here, just like Linux's block layer.  Devices are addressed in
fixed-size blocks (default 4 KiB, the paper's dm-verity data/hash block
size).
"""

from __future__ import annotations

from typing import Optional

DEFAULT_BLOCK_SIZE = 4096


class BlockDeviceError(IOError):
    """Raised on out-of-range or otherwise invalid block operations."""


class ReadOnlyDeviceError(BlockDeviceError):
    """Raised when writing to a read-only device (dm-verity targets)."""


class BlockDevice:
    """Abstract fixed-block-size random-access device."""

    def __init__(self, num_blocks: int, block_size: int = DEFAULT_BLOCK_SIZE):
        if num_blocks < 0:
            raise BlockDeviceError("device cannot have negative size")
        if block_size <= 0:
            raise BlockDeviceError("block size must be positive")
        self.num_blocks = num_blocks
        self.block_size = block_size

    # -- interface to implement ------------------------------------------

    def read_block(self, index: int) -> bytes:
        """Read one block by index."""
        raise NotImplementedError

    def write_block(self, index: int, data: bytes) -> None:
        """Write one full block at index."""
        raise NotImplementedError

    # -- shared helpers ----------------------------------------------------

    @property
    def size_bytes(self) -> int:
        """Device capacity in bytes."""
        return self.num_blocks * self.block_size

    @property
    def mutation_count(self) -> int:
        """Monotonic count of content mutations visible at this device.

        Caching layers (``repro.storage.dm``) record the value at fill
        time and re-verify when it changes, so out-of-band writes —
        including the corruption primitives attack simulations use —
        can never be served from a stale (or poisoned) cache.  Wrappers
        delegate to their backing device; only devices that own bytes
        count.
        """
        return 0

    def _check_block(self, index: int) -> None:
        if not (0 <= index < self.num_blocks):
            raise BlockDeviceError(
                f"block {index} out of range (device has {self.num_blocks})"
            )

    def _check_write(self, index: int, data: bytes) -> None:
        self._check_block(index)
        if len(data) != self.block_size:
            raise BlockDeviceError(
                f"write must be exactly one block ({self.block_size} bytes), "
                f"got {len(data)}"
            )

    def read_blocks(self, first: int, count: int) -> bytes:
        """Batched sequential read.  Targets with a vectorised fast path
        (dm-crypt's single XTS pass) override this; the default loops."""
        if count < 0 or first < 0 or first + count > self.num_blocks:
            raise BlockDeviceError("block range out of bounds")
        return b"".join(self.read_block(first + i) for i in range(count))

    def write_blocks(self, first: int, data: bytes) -> None:
        """Batched sequential write of whole blocks (see read_blocks)."""
        if len(data) % self.block_size:
            raise BlockDeviceError("write must be whole blocks")
        count = len(data) // self.block_size
        if first < 0 or first + count > self.num_blocks:
            raise BlockDeviceError("block range out of bounds")
        for i in range(count):
            start = i * self.block_size
            self.write_block(first + i, data[start : start + self.block_size])

    def read_bytes(self, offset: int, length: int) -> bytes:
        """Byte-granular read spanning blocks (read-modify on the edges).

        Routed through :meth:`read_blocks` so devices with a multi-block
        fast path (dm-crypt) decrypt the span in one pass instead of one
        block at a time.
        """
        if offset < 0 or length < 0 or offset + length > self.size_bytes:
            raise BlockDeviceError("byte range out of device bounds")
        if length == 0:
            return b""
        first = offset // self.block_size
        last = (offset + length - 1) // self.block_size
        chunk = self.read_blocks(first, last - first + 1)
        start = offset - first * self.block_size
        return chunk[start : start + length]

    def write_bytes(self, offset: int, data: bytes) -> None:
        """Byte-granular write spanning blocks (see read_bytes)."""
        if offset < 0 or offset + len(data) > self.size_bytes:
            raise BlockDeviceError("byte range out of device bounds")
        if not data:
            return
        first = offset // self.block_size
        last = (offset + len(data) - 1) // self.block_size
        buffer = bytearray(self.read_blocks(first, last - first + 1))
        start = offset - first * self.block_size
        buffer[start : start + len(data)] = data
        self.write_blocks(first, bytes(buffer))

    def read_all(self) -> bytes:
        """Read the whole device (small devices / tests only)."""
        return b"".join(self.read_block(i) for i in range(self.num_blocks))


class RamBlockDevice(BlockDevice):
    """An in-memory block device."""

    def __init__(self, num_blocks: int, block_size: int = DEFAULT_BLOCK_SIZE,
                 initial: Optional[bytes] = None):
        super().__init__(num_blocks, block_size)
        self._data = bytearray(num_blocks * block_size)
        if initial is not None:
            if len(initial) > len(self._data):
                raise BlockDeviceError("initial contents larger than device")
            self._data[: len(initial)] = initial
        self.reads = 0
        self.writes = 0
        self._mutations = 0

    @property
    def mutation_count(self) -> int:
        return self._mutations

    def read_block(self, index: int) -> bytes:
        """Read one block by index."""
        self._check_block(index)
        self.reads += 1
        start = index * self.block_size
        return bytes(self._data[start : start + self.block_size])

    def write_block(self, index: int, data: bytes) -> None:
        """Write one full block at index."""
        self._check_write(index, data)
        self.writes += 1
        self._mutations += 1
        start = index * self.block_size
        self._data[start : start + self.block_size] = data

    def corrupt(self, byte_offset: int, xor_mask: int = 0x01) -> None:
        """Flip bits at *byte_offset* — the attacker's primitive in tests
        and the security benchmarks (offline disk tampering)."""
        if not (0 <= byte_offset < len(self._data)):
            raise BlockDeviceError("corruption offset out of range")
        self._data[byte_offset] ^= xor_mask
        self._mutations += 1

    def snapshot(self) -> bytes:
        """A copy of the raw contents (for rollback-attack simulations)."""
        return bytes(self._data)

    def restore(self, snapshot: bytes) -> None:
        """Overwrite contents with an earlier snapshot (rollback attack)."""
        if len(snapshot) != len(self._data):
            raise BlockDeviceError("snapshot size mismatch")
        self._data[:] = snapshot
        self._mutations += 1


class ReadOnlyView(BlockDevice):
    """A read-only wrapper around another device."""

    def __init__(self, backing: BlockDevice):
        super().__init__(backing.num_blocks, backing.block_size)
        self._backing = backing

    @property
    def mutation_count(self) -> int:
        return self._backing.mutation_count

    def read_block(self, index: int) -> bytes:
        """Read one block by index."""
        return self._backing.read_block(index)

    def write_block(self, index: int, data: bytes) -> None:
        """Write one full block at index."""
        raise ReadOnlyDeviceError("device is read-only")


class SliceView(BlockDevice):
    """A contiguous sub-range of another device (a partition's extent)."""

    def __init__(self, backing: BlockDevice, first_block: int, num_blocks: int):
        if first_block < 0 or first_block + num_blocks > backing.num_blocks:
            raise BlockDeviceError("slice out of backing device bounds")
        super().__init__(num_blocks, backing.block_size)
        self._backing = backing
        self._first = first_block

    @property
    def mutation_count(self) -> int:
        return self._backing.mutation_count

    def read_block(self, index: int) -> bytes:
        """Read one block by index."""
        self._check_block(index)
        return self._backing.read_block(self._first + index)

    def write_block(self, index: int, data: bytes) -> None:
        """Write one full block at index."""
        self._check_write(index, data)
        self._backing.write_block(self._first + index, data)
