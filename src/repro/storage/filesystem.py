"""A deterministic read-only filesystem image format.

Plays the role of the squashed ext4 rootfs in the Revelio image: the
builder lays files out *canonically* (paths sorted, timestamps squashed
to zero, fixed label) so that identical inputs produce a byte-identical
image — the linchpin of requirement F5 (reproducible builds).  At
runtime the filesystem is mounted read-only on top of a block device,
typically a :class:`~repro.storage.dm_verity.VerityDevice`, so every
file read is integrity-verified.

Layout: block 0 is the superblock (magic + table extent); the file
table occupies the following blocks; each file's data starts on a block
boundary after the table, in path-sorted order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping

from ..crypto import encoding
from .blockdev import BlockDevice, RamBlockDevice

_FS_MAGIC = "repro-fs-v1"
_SQUASHED_MTIME = 0
_DEFAULT_MODE = 0o755


class FileSystemError(IOError):
    """Raised on malformed images or missing files."""


@dataclass(frozen=True)
class FileEntry:
    """One file's metadata in the table."""

    path: str
    first_block: int
    size: int
    mode: int
    mtime: int

    def to_dict(self) -> dict:
        """Dict form for canonical TLV embedding."""
        return {
            "path": self.path,
            "first": self.first_block,
            "size": self.size,
            "mode": self.mode,
            "mtime": self.mtime,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FileEntry":
        """Rebuild from the dict form."""
        return cls(
            path=data["path"],
            first_block=data["first"],
            size=data["size"],
            mode=data["mode"],
            mtime=data["mtime"],
        )


def build_image(
    files: Mapping[str, bytes],
    block_size: int = 4096,
    label: str = "rootfs",
) -> bytes:
    """Serialise *files* into a deterministic filesystem image.

    Identical inputs yield identical bytes: paths are sorted, mtimes are
    squashed, and no randomness enters the layout.
    """
    for path in files:
        if not path or path.startswith("/") is False:
            raise FileSystemError(f"paths must be absolute, got {path!r}")
    ordered = sorted(files.items())

    def blocks_for(size: int) -> int:
        return max(1, -(-size // block_size))

    # The table size depends on file offsets which depend on the table
    # size; iterate to a fixed point (converges in a couple of rounds).
    table_blocks = 1
    while True:
        entries = []
        position = 1 + table_blocks
        for path, content in ordered:
            entries.append(
                FileEntry(
                    path=path,
                    first_block=position,
                    size=len(content),
                    mode=_DEFAULT_MODE,
                    mtime=_SQUASHED_MTIME,
                )
            )
            position += blocks_for(len(content))
        table = encoding.encode(
            {"label": label, "entries": [entry.to_dict() for entry in entries]}
        )
        needed = max(1, -(-len(table) // block_size))
        if needed == table_blocks:
            break
        table_blocks = needed

    superblock = encoding.encode(
        {
            "magic": _FS_MAGIC,
            "block_size": block_size,
            "table_blocks": table_blocks,
            "total_blocks": position,
        }
    )
    if len(superblock) > block_size:
        raise FileSystemError("superblock overflow")

    image = bytearray(position * block_size)
    image[: len(superblock)] = superblock
    table_start = block_size
    image[table_start : table_start + len(table)] = table
    for entry, (_, content) in zip(entries, ordered):
        start = entry.first_block * block_size
        image[start : start + len(content)] = content
    return bytes(image)


def image_to_device(image: bytes, block_size: int = 4096) -> RamBlockDevice:
    """Load an image produced by :func:`build_image` into a RAM device."""
    if len(image) % block_size:
        raise FileSystemError("image is not a whole number of blocks")
    return RamBlockDevice(len(image) // block_size, block_size, initial=image)


class FileSystem:
    """A mounted (read-only) filesystem on top of any block device."""

    def __init__(self, device: BlockDevice):
        self._device = device
        superblock = self._decode_block(device.read_block(0))
        if superblock.get("magic") != _FS_MAGIC:
            raise FileSystemError("not a repro filesystem")
        if superblock["block_size"] != device.block_size:
            raise FileSystemError("filesystem/device block size mismatch")
        table_blocks = superblock["table_blocks"]
        raw_table = b"".join(
            device.read_block(1 + index) for index in range(table_blocks)
        )
        table = self._decode_block(raw_table)
        self.label: str = table["label"]
        self._entries: Dict[str, FileEntry] = {
            entry["path"]: FileEntry.from_dict(entry) for entry in table["entries"]
        }

    @staticmethod
    def _decode_block(raw: bytes) -> dict:
        try:
            length = 5 + int.from_bytes(raw[1:5], "big")
            decoded = encoding.decode(raw[:length])
        except (IndexError, ValueError) as exc:
            raise FileSystemError("corrupt filesystem metadata") from exc
        if not isinstance(decoded, dict):
            raise FileSystemError("corrupt filesystem metadata")
        return decoded

    def list_files(self) -> List[str]:
        """All file paths, sorted."""
        return sorted(self._entries)

    def exists(self, path: str) -> bool:
        """Whether the path exists."""
        return path in self._entries

    def file_size(self, path: str) -> int:
        """Size of a file in bytes."""
        return self._entry(path).size

    def read_file(self, path: str) -> bytes:
        """Read a whole file (every underlying block read is subject to
        whatever the backing device enforces, e.g. verity checks)."""
        entry = self._entry(path)
        if entry.size == 0:
            return b""
        num_blocks = -(-entry.size // self._device.block_size)
        data = b"".join(
            self._device.read_block(entry.first_block + index)
            for index in range(num_blocks)
        )
        return data[: entry.size]

    def stat(self, path: str) -> FileEntry:
        """The file's table entry."""
        return self._entry(path)

    def _entry(self, path: str) -> FileEntry:
        try:
            return self._entries[path]
        except KeyError:
            raise FileSystemError(f"no such file: {path}") from None
