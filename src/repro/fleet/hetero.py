"""Heterogeneous-TEE fleet wiring.

The paper claims TEE portability ("Revelio can be deployed in a
hardware-agnostic fashion, as long as the TEE follows the VM model");
this module makes the fleet layer prove it.  A
:class:`HeterogeneousFleet` stands up TDX, CCA, and SNP-endorsed
e-vTPM backends *next to* an existing SNP deployment:

* every backend serves the deployment's **shared attested TLS
  identity** (same certificate chain, same private key), so end-users'
  pinned key never depends on which family served them;
* every backend answers the well-known attestation URL with a tagged
  :class:`~repro.attest.Evidence` envelope whose challenge /
  REPORT_DATA binds the shared TLS key — the same binding the SNP
  nodes prove;
* :meth:`HeterogeneousFleet.attach_gateway` hands the gateway the
  per-family trust contexts (Intel PCS, ARM anchors, the e-vTPM KDS
  client) and :class:`~repro.attest.FamilyPolicy` golden overlays,
  registers each backend under its family, and admits it through the
  family-dispatched pipeline.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..amd.policy import GuestPolicy
from ..attest import (
    CcaTrust,
    Evidence,
    FamilyPolicy,
    TdxTrust,
    TeeFamily,
    VtpmTrust,
)
from ..cca.realms import ArmInfrastructure
from ..core.deployment import MINIMAL_PAGE
from ..core.guest import WELL_KNOWN_ATTESTATION_PATH
from ..core.key_sharing import report_data_for
from ..crypto.keys import PrivateKey
from ..net.http import HttpResponse, HttpServer
from ..tdx.module import IntelInfrastructure, ProvisioningCertificationService
from ..vtpm.monitoring import MonitoringEvidence
from ..vtpm.vtpm import PCR_SERVICES, Vtpm
from .gateway import FleetGateway


@dataclass
class HeteroBackend:
    """One non-SNP fleet member: its host, server, and golden value."""

    ip_address: str
    family: str
    host: object
    server: HttpServer
    measurement: bytes


class HeterogeneousFleet:
    """TDX / CCA / e-vTPM backends joined to an SNP deployment's fleet.

    Requires a deployed :class:`~repro.core.deployment.RevelioDeployment`
    (the shared TLS identity must already be provisioned)."""

    def __init__(self, deployment, rng=None):
        self.deployment = deployment
        self._rng = (
            rng if rng is not None else deployment.rng.fork(b"hetero-fleet")
        )
        #: Intel's side of the TDX world (PCK hierarchy + PCS).
        self.intel = IntelInfrastructure(self._rng.fork(b"intel"))
        self.pcs = ProvisioningCertificationService(self.intel)
        #: ARM's side of the CCA world (CPAK endorsements).
        self.arm = ArmInfrastructure(self._rng.fork(b"arm"))
        self._cpaks: Dict[bytes, object] = {}
        #: KDS client for e-vTPM endorsement verification.
        self.kds = deployment._new_kds_client()

        leader = deployment.leader
        if leader.node.certificate_chain is None or (
            leader.node.tls_private_key is None
        ):
            raise RuntimeError(
                "deployment has no provisioned TLS identity to share"
            )
        self._chain = list(leader.node.certificate_chain)
        self._tls_key = PrivateKey("ecdsa", leader.node.tls_private_key)
        #: The REPORT_DATA / challenge every backend's evidence binds:
        #: the shared TLS key's fingerprint, exactly like the SNP nodes.
        self.binding = report_data_for(self._tls_key.public_key().fingerprint())

        self.backends: List[HeteroBackend] = []
        self._goldens: Dict[str, Set[bytes]] = {}

    # -- backend factories ------------------------------------------

    def add_tdx_backend(self, ip_address: str,
                        serial: Optional[str] = None) -> HeteroBackend:
        """Launch a trust domain on a fresh Intel platform and serve its
        quote (bound to the shared TLS key) at *ip_address*."""
        platform = self.intel.provision_platform(
            serial or f"hetero-tdx-{len(self.backends)}"
        )
        td = platform.launch_td(self._initial_state(b"td"))
        quote = td.get_quote(self.binding)
        return self._serve(TeeFamily.TDX, ip_address, quote.encode(), td.mrtd)

    def add_cca_backend(self, ip_address: str,
                        serial: Optional[str] = None) -> HeteroBackend:
        """Launch a realm on a fresh ARM platform and serve its
        two-token bundle (challenged with the shared TLS key binding)."""
        platform = self.arm.provision_platform(
            serial or f"hetero-cca-{len(self.backends)}"
        )
        self._cpaks[platform.platform_id] = self.arm.cpak_certificate(platform)
        realm = platform.launch_realm(self._initial_state(b"realm"))
        token = realm.attest(self.binding)
        return self._serve(TeeFamily.CCA, ip_address, token.encode(), realm.rim)

    def add_vtpm_backend(self, ip_address: str,
                         serial: Optional[str] = None) -> HeteroBackend:
        """Launch an SNP guest with an attached vTPM whose AK the
        AMD-SP endorses; serve (quote over the TLS binding, event log,
        AK, endorsement) as e-vTPM evidence."""
        chip = self.deployment.amd.provision_chip(
            serial or f"hetero-vtpm-{len(self.backends)}"
        )
        guest = chip.launch_vm(self._initial_state(b"vtpm-vm"), GuestPolicy())
        vtpm = Vtpm(self._rng.fork(b"vtpm:" + ip_address.encode()))
        endorsement = guest.get_report(
            report_data_for(hashlib.sha256(vtpm.ak_public.encode()).digest())
        )
        evidence = MonitoringEvidence(
            quote=vtpm.quote(self.binding, [PCR_SERVICES]),
            event_log=list(vtpm.event_log),
            ak_public=vtpm.ak_public,
            ak_endorsement=endorsement,
        )
        return self._serve(
            TeeFamily.VTPM, ip_address, evidence.encode(), guest.measurement
        )

    def _initial_state(self, kind: bytes) -> bytes:
        """One deterministic initial state per (fleet, kind): every
        backend of a family measures identically — one golden value."""
        return b"hetero-" + kind + b"-" + self.deployment.domain.encode()

    def _serve(self, family, ip_address: str, evidence_body: bytes,
               measurement: bytes) -> HeteroBackend:
        family = str(family)
        name = f"{family}-backend-{ip_address}"
        host = self.deployment.network.add_host(name, ip_address)
        server = HttpServer(name)
        payload = Evidence(family, evidence_body).encode()
        latency = self.deployment.latency
        server.add_route(
            "GET",
            WELL_KNOWN_ATTESTATION_PATH,
            lambda request, context: HttpResponse.ok(
                payload, "application/octet-stream"
            ),
            processing_time=latency.report_endpoint_processing,
        )
        server.add_route(
            "GET",
            "/",
            lambda request, context: HttpResponse.ok(MINIMAL_PAGE),
            processing_time=latency.page_processing,
        )
        server.serve_tls(
            host,
            self._chain,
            self._tls_key,
            self._rng.fork(b"tls:" + ip_address.encode()),
        )
        backend = HeteroBackend(
            ip_address=ip_address,
            family=family,
            host=host,
            server=server,
            measurement=bytes(measurement),
        )
        self.backends.append(backend)
        self._goldens.setdefault(family, set()).add(bytes(measurement))
        return backend

    # -- gateway wiring ---------------------------------------------

    def contexts(self) -> Dict[str, object]:
        """Per-family trust material for a verifier's ``contexts``."""
        return {
            str(TeeFamily.TDX): TdxTrust(self.pcs),
            str(TeeFamily.CCA): CcaTrust(
                lambda platform_id: self._cpaks[platform_id],
                (self.arm.root.certificate,),
            ),
            str(TeeFamily.VTPM): VtpmTrust(self.kds),
        }

    def family_policies(self) -> Dict[str, FamilyPolicy]:
        """Golden overlays for every family this fleet launched."""
        return {
            family: FamilyPolicy(golden_measurements=sorted(goldens))
            for family, goldens in sorted(self._goldens.items())
        }

    def attach_gateway(self, gateway: FleetGateway,
                       concurrency: int = 4) -> List:
        """Teach *gateway* to verify this fleet's families, register
        every backend under its family, and attest-and-admit each.
        Returns the admission verdicts."""
        gateway.verifier.contexts.update(self.contexts())
        gateway.family_policies.update(self.family_policies())
        verdicts = []
        for backend in self.backends:
            if backend.ip_address not in gateway.backends:
                gateway.add_backend(
                    backend.ip_address,
                    concurrency=concurrency,
                    family=backend.family,
                )
            verdicts.append(gateway.attest_and_admit(backend.ip_address))
        return verdicts
