"""Connection draining and the zero-downtime rolling rollout.

The drain protocol: mark the backend *draining* (the gateway stops
sending it new sessions; existing sessions keep working), poll until
its outstanding request count hits zero (session think-time guarantees
gaps), then *retire* it — remaining idle sessions are severed and their
clients transparently re-handshake onto a healthy peer, losing zero
requests because every fleet node serves the same attested TLS key.

:func:`rolling_rollout` turns :func:`repro.core.rollout.roll_out_image`
into a traffic-safe procedure: one node at a time is drained, replaced
with the new image on the same address (``replace_node``), admitted
back into the fleet by the SP (``admit_node`` — the newcomer pulls the
*existing* TLS private key from a still-serving peer over the mutually
attested bootstrap channel, so end-users' pinned keys never change),
and re-attested by the gateway against the widened golden set before it
takes traffic again.  Only after every node runs the new image is the
old measurement revoked fleet-wide.

Prerequisite (documented in PROTOCOLS.md): during the transition both
measurements must be endorsed — old nodes attest new peers during key
hand-over and vice versa, so a cross-version trusted registry (or the
equivalent baked goldens) is installed on the nodes, and end-users'
extensions must know both goldens to ride through without disruption.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.deployment import AppFactory, default_app
from ..core.rollout import RolloutError, replace_node, update_golden_set
from ..core.trusted_registry import StaticRegistry
from ..sim.kernel import sleep
from .gateway import FleetGateway


@dataclass
class RollingRolloutReport:
    """What a rollout under load did, in simulated time."""

    old_measurement: str
    new_measurement: str
    replacements: List[dict] = field(default_factory=list)
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def sim_seconds(self) -> float:
        return self.finished_at - self.started_at


def drain_backend(
    gateway: FleetGateway,
    ip_address: str,
    poll_interval: float = 0.05,
    deadline: float = 60.0,
):
    """Kernel process: drain one backend, then retire it.

    Returns the number of poll rounds waited.
    """
    backend = gateway.backends[ip_address]
    gateway.mark_draining(ip_address)
    started = gateway.network.clock.now
    rounds = 0
    while backend.server is not None and backend.server.outstanding > 0:
        if gateway.network.clock.now - started >= deadline:
            break
        rounds += 1
        yield sleep(poll_interval)
    gateway.retire(ip_address)
    return rounds


def _key_holder_ip(deployment, exclude_ip: str) -> str:
    """Any still-serving node other than *exclude_ip* — every
    provisioned node holds the shared TLS private key, so any of them
    can answer a newcomer's key request."""
    for deployed in deployment.nodes:
        if (
            deployed.host.ip_address != exclude_ip
            and deployed.node.serving
            and deployed.vm.state == "running"
        ):
            return deployed.host.ip_address
    raise RolloutError("no serving node left to hand over the TLS key")


def rolling_rollout(
    gateway: FleetGateway,
    deployment,
    new_build,
    app_factory: AppFactory = default_app,
    node_registry=None,
    drain_poll: float = 0.05,
    drain_deadline: float = 60.0,
    concurrency: int = 4,
    report: Optional[RollingRolloutReport] = None,
    families=None,
):
    """Kernel process: replace the whole fleet under load, one node at
    a time, with zero failed end-user requests.  Pass *report* to
    observe progress; it is also the generator's return value.

    In a heterogeneous fleet an image rollout only concerns the nodes
    that *run* that image: *families* restricts the rollout to backends
    whose registered TEE family is in the set (``None`` = every
    deployment node, the homogeneous-SNP behaviour)."""
    if deployment.sp is None or deployment.provisioning is None:
        raise RolloutError("fleet not provisioned; nothing to roll out")
    old_measurement = bytes(deployment.build.expected_measurement)
    new_measurement = bytes(new_build.expected_measurement)
    if old_measurement == new_measurement:
        raise RolloutError("new image has the identical measurement; nothing to do")
    clock = gateway.network.clock
    if report is None:
        report = RollingRolloutReport(
            old_measurement=old_measurement.hex(),
            new_measurement=new_measurement.hex(),
        )
    report.started_at = clock.now

    # Transition trust: both images endorsed on every node (key
    # hand-over attests in both directions), at the SP, and at the
    # gateway, until the last old node is gone.
    registry = node_registry
    if registry is None:
        registry = StaticRegistry(
            golden={deployment.domain: [old_measurement, new_measurement]}
        )
    for deployed in deployment.nodes:
        deployed.node.trusted_registry = registry
    if new_measurement not in deployment.sp.expected_measurements:
        deployment.sp.expected_measurements.append(new_measurement)
    gateway.golden_measurements = sorted({old_measurement, new_measurement})

    allowed_families = (
        None if families is None else {str(family) for family in families}
    )
    for index in range(len(deployment.nodes)):
        ip_address = deployment.nodes[index].host.ip_address
        if allowed_families is not None:
            backend = gateway.backends.get(ip_address)
            if backend is None or backend.family not in allowed_families:
                continue
        node_started = clock.now
        rounds = yield from drain_backend(
            gateway, ip_address, poll_interval=drain_poll, deadline=drain_deadline
        )
        key_holder = _key_holder_ip(deployment, exclude_ip=ip_address)
        replace_node(
            deployment, index, new_build, app_factory, node_registry=registry
        )
        deployment.sp.admit_node(
            ip_address, key_holder, deployment.provisioning.certificate_chain
        )
        gateway.add_backend(ip_address, concurrency=concurrency)
        verdict = gateway.attest_and_admit(ip_address)
        if not verdict.ok:
            raise RolloutError(
                f"replacement node {ip_address} failed admission: "
                f"{verdict.reason} ({verdict.detail})"
            )
        report.replacements.append(
            {
                "ip_address": ip_address,
                "drain_poll_rounds": rounds,
                "sim_seconds": clock.now - node_started,
            }
        )

    # Finalise: the fleet is homogeneous on the new image — revoke the
    # old measurement everywhere (section 6.1.4 rollback prevention).
    update_golden_set(deployment, old_measurement, new_measurement)
    deployment.build = new_build
    gateway.golden_measurements = [new_measurement]
    gateway.revoked_measurements = sorted(
        {*gateway.revoked_measurements, old_measurement}
    )
    report.finished_at = clock.now
    return report
