"""Attestation-aware fleet serving: gateway, health, drains, workloads.

The paper's deployments (CryptPad, IC boundary nodes — sections
6.2-6.3) are *fleets* behind a load balancer, serving end-users at
scale.  This package puts a gateway in front of N
:class:`~repro.core.guest.RevelioNode` VMs that admits a backend only
while its :mod:`repro.attest` verdict is fresh and passing (DESIGN.md
invariant 11), probes liveness and re-attests periodically, drains
connections for zero-downtime rollouts under load, and generates open-
and closed-loop end-user traffic on the :mod:`repro.sim` event kernel.
"""

from repro.fleet.drain import RollingRolloutReport, drain_backend, rolling_rollout
from repro.fleet.faults import (
    FaultHandle,
    KdsBlackhole,
    blackhole_kds,
    corrupt_disk,
    kill_backend,
    raise_family_tcb_floor,
    raise_tcb_floor,
    revoke_family,
    slow_disk,
)
from repro.fleet.gateway import (
    GATEWAY_REASON_CODES,
    AdmissionVerdict,
    BackendState,
    FleetGateway,
    GatewayError,
)
from repro.fleet.health import HealthMonitor
from repro.fleet.hetero import HeteroBackend, HeterogeneousFleet
from repro.fleet.mesh import (
    GOSSIP_REJECT_REASONS,
    ConsistentHashRing,
    GatewayMesh,
    GossipedVerdict,
    LiteBackend,
    LiteFleet,
    MeshRolloutReport,
    MeshWorkload,
    region_rollout,
)
from repro.fleet.provision import FleetProvisioner, ProvisionReport
from repro.fleet.workload import FleetWorkload, UserPool

__all__ = [
    "GATEWAY_REASON_CODES",
    "GOSSIP_REJECT_REASONS",
    "AdmissionVerdict",
    "BackendState",
    "ConsistentHashRing",
    "FaultHandle",
    "FleetGateway",
    "FleetProvisioner",
    "FleetWorkload",
    "GatewayError",
    "GatewayMesh",
    "GossipedVerdict",
    "HealthMonitor",
    "HeteroBackend",
    "HeterogeneousFleet",
    "KdsBlackhole",
    "LiteBackend",
    "LiteFleet",
    "MeshRolloutReport",
    "MeshWorkload",
    "ProvisionReport",
    "RollingRolloutReport",
    "UserPool",
    "blackhole_kds",
    "corrupt_disk",
    "drain_backend",
    "kill_backend",
    "raise_family_tcb_floor",
    "raise_tcb_floor",
    "region_rollout",
    "revoke_family",
    "rolling_rollout",
    "slow_disk",
]
