"""The sharded control plane: gateway mesh, verdict gossip, lite fleet.

One gateway cannot front "the masses".  A :class:`GatewayMesh` shards
the control plane across N regional :class:`~repro.fleet.gateway.
FleetGateway` instances behind **consistent-hash session routing**
(clients land on a stable gateway per session key, so affinity never
crosses shards) and keeps their admission state coherent with
**verdict gossip**: every locally produced attestation verdict is
broadcast to the peer gateways, which honor it only within a bounded
staleness window and inside their own family policy (DESIGN.md
invariant 14).  One re-attestation of a backend — any TEE family —
therefore admits it fleet-wide without N duplicate probes; SNPGuard's
argument (arXiv:2406.01186) that attestation scales only when
verification work is shared across deployments, made concrete.

Scale pieces for the million-session storm:

* :class:`LiteFleet` — ~100 synthetic mixed-family backends that serve
  the deployment's real shared TLS identity and real per-family
  evidence at the well-known URL (attestation probes are the genuine
  article) but answer storm traffic through a cheap *lite* session
  protocol: cleartext envelopes tagged ``lite`` that skip the
  per-session TLS handshake while still exercising the gateway's
  cleartext routing (hello -> affinity -> records) unchanged.
* :class:`MeshWorkload` — an open-loop storm over the mesh that holds
  O(pool) memory instead of O(sessions): a countdown plus one
  completion event replaces the per-process handle list, and sessions
  close their gateway affinity when they end.
* :func:`region_rollout` — the PR-4 rolling rollout lifted to the
  mesh: regions drain **hierarchically** (region by region, node by
  node inside each), every gateway stops routing to the node being
  replaced, and the home gateway's re-attestation of the replacement
  is gossiped to the rest of the mesh.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..amd.policy import GuestPolicy
from ..attest import Evidence, FamilyPolicy, TeeFamily
from ..core.deployment import MINIMAL_PAGE, AppFactory, default_app
from ..core.guest import WELL_KNOWN_ATTESTATION_PATH
from ..core.key_sharing import report_data_for
from ..core.rollout import RolloutError, replace_node, update_golden_set
from ..core.trusted_registry import StaticRegistry
from ..crypto import encoding
from ..crypto.keys import PrivateKey
from ..net.http import HTTPS_PORT, HttpResponse, HttpServer
from ..net.simnet import Network
from ..sim.kernel import EventKernel, Interrupt, sleep, spawn, wait
from ..sim.metrics import MetricsRegistry
from ..sim.resources import Server
from ..sim.rng import SimRng
from ..vtpm.monitoring import MonitoringEvidence
from ..vtpm.vtpm import PCR_SERVICES, Vtpm
from .drain import _key_holder_ip
from .gateway import FleetGateway
from .health import HealthMonitor
from .hetero import HeterogeneousFleet


def _hash_point(key: bytes) -> int:
    return int.from_bytes(hashlib.sha256(key).digest()[:8], "big")


class ConsistentHashRing:
    """A sha256 hash ring with virtual nodes.

    Adding or removing one gateway moves only ~1/N of the keyspace, so
    session->gateway placement stays stable as the mesh grows."""

    def __init__(self, replicas: int = 64):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._points: List[int] = []
        self._owners: List[str] = []
        self._nodes: set = set()

    def add(self, node: str) -> None:
        if node in self._nodes:
            return
        self._nodes.add(node)
        pairs = list(zip(self._points, self._owners))
        for replica in range(self.replicas):
            point = _hash_point(f"{node}#{replica}".encode())
            pairs.append((point, node))
        pairs.sort()
        self._points = [point for point, _ in pairs]
        self._owners = [owner for _, owner in pairs]

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        pairs = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != node
        ]
        self._points = [point for point, _ in pairs]
        self._owners = [owner for _, owner in pairs]

    def node_for(self, key: bytes) -> str:
        """The owner of *key*: first virtual node clockwise of its hash."""
        if not self._points:
            raise ValueError("empty hash ring")
        index = bisect_right(self._points, _hash_point(bytes(key)))
        if index == len(self._points):
            index = 0
        return self._owners[index]


#: Stable rejection codes for gossiped verdicts (the ``gossip.rejected.*``
#: counter namespace on every gateway).  Forged, replayed, or stale
#: records must land on exactly one of these — campaign taxonomy tests
#: assert each is reached by at least one abuse scenario.
GOSSIP_REJECT_REASONS = frozenset({
    "family_mismatch",       # record's family != local registration
    "family_not_allowed",    # family revoked / outside the admissible set
    "older",                 # not newer than the verdict already held
    "stale",                 # aged past min(verdict_ttl, max_staleness)
    "unknown_backend",       # backend not registered on this shard
})


@dataclass(frozen=True)
class GossipedVerdict:
    """One attestation verdict travelling between gateways.

    ``verdict_time`` is the **origin's** verification time — receivers
    age the record against it, so a verdict expires at the same
    simulated instant on every gateway that honored it."""

    backend_ip: str
    family: str
    ok: bool
    reason: str
    verdict_time: float


@dataclass
class LiteBackend:
    """One synthetic storm backend: real evidence, lite sessions."""

    ip_address: str
    family: str
    region: Optional[str]
    host: object
    measurement: bytes
    sessions_opened: int = 0
    records_served: int = 0


class LiteFleet:
    """Mixed-family storm backends sharing the deployment's identity.

    Every backend launches a real TEE workload for its family (an SNP
    guest, a trust domain, a realm, or an SNP-endorsed vTPM), serves the
    deployment's shared certificate chain + TLS key, and answers the
    well-known URL with that workload's evidence bound to the shared
    key — so gateway attestation probes are indistinguishable from the
    full fleet's.  Storm traffic uses the lite envelope protocol
    (``{"lite": True, "type": "client_hello" | "record", ...}``)
    dispatched *before* TLS on the same port, keeping per-request cost
    flat enough for a million-session run."""

    def __init__(self, deployment, rng=None, processing_time: float = 0.002):
        self.deployment = deployment
        self._rng = (
            rng if rng is not None else deployment.rng.fork(b"lite-fleet")
        )
        self.processing_time = processing_time
        # Reuse the heterogeneous fleet's per-family infrastructure
        # (Intel PCS, ARM anchors, KDS client) and shared TLS identity.
        self._hetero = HeterogeneousFleet(deployment, rng=self._rng.fork(b"hetero"))
        self.binding = self._hetero.binding
        self._chain = self._hetero._chain
        self._tls_key: PrivateKey = self._hetero._tls_key
        self.backends: List[LiteBackend] = []
        self._servers: Dict[str, HttpServer] = {}
        self._snp_goldens: set = set()
        self._family_goldens: Dict[str, set] = {}
        self._update_serial = 0

    # -- backend factories ------------------------------------------

    def add_backend(self, ip_address: str, family,
                    region: Optional[str] = None) -> LiteBackend:
        """Launch one backend of *family* at *ip_address*."""
        family = str(family)
        index = len(self.backends)
        if family == str(TeeFamily.SEV_SNP):
            chip = self.deployment.amd.provision_chip(f"lite-snp-{index}")
            guest = chip.launch_vm(self._initial_state(b"snp"), GuestPolicy())
            report = guest.get_report(self.binding)
            body, measurement = report.encode(), guest.measurement
        elif family == str(TeeFamily.TDX):
            platform = self._hetero.intel.provision_platform(f"lite-tdx-{index}")
            td = platform.launch_td(self._initial_state(b"td"))
            body, measurement = td.get_quote(self.binding).encode(), td.mrtd
        elif family == str(TeeFamily.CCA):
            platform = self._hetero.arm.provision_platform(f"lite-cca-{index}")
            self._hetero._cpaks[platform.platform_id] = (
                self._hetero.arm.cpak_certificate(platform)
            )
            realm = platform.launch_realm(self._initial_state(b"realm"))
            body, measurement = realm.attest(self.binding).encode(), realm.rim
        elif family == str(TeeFamily.VTPM):
            hetero_backend = self._hetero.add_vtpm_backend(ip_address)
            return self._adopt(hetero_backend, region)
        else:
            raise ValueError(f"unknown TEE family {family!r}")
        return self._serve(family, ip_address, body, measurement, region)

    def _initial_state(self, kind: bytes) -> bytes:
        # One golden value per (fleet, family), like the hetero fleet.
        return b"lite-" + kind + b"-" + self.deployment.domain.encode()

    def adopt_deployment_nodes(self) -> List[LiteBackend]:
        """Teach the deployment's real SNP nodes the lite protocol too
        (their TLS serving and attestation endpoint stay untouched), so
        a storm can span the whole mixed fleet."""
        return [
            self.adopt_node(deployed) for deployed in self.deployment.nodes
        ]

    def adopt_node(self, deployed) -> LiteBackend:
        """Wrap one deployed SNP node's current TLS handler with the
        lite dispatcher (used again after a rollout replaces it)."""
        host = deployed.host
        backend = LiteBackend(
            ip_address=host.ip_address,
            family=str(TeeFamily.SEV_SNP),
            region=host.region,
            host=host,
            measurement=bytes(self.deployment.build.expected_measurement),
        )
        self._wrap_lite(backend)
        return backend

    def _adopt(self, hetero_backend, region: Optional[str]) -> LiteBackend:
        """Wrap a backend the hetero fleet already serves (vTPM path)
        with the lite dispatcher and track it here."""
        hetero_backend.host.region = region
        backend = LiteBackend(
            ip_address=hetero_backend.ip_address,
            family=hetero_backend.family,
            region=region,
            host=hetero_backend.host,
            measurement=hetero_backend.measurement,
        )
        self._servers[backend.ip_address] = hetero_backend.server
        self._family_goldens.setdefault(backend.family, set()).add(
            bytes(backend.measurement)
        )
        self._wrap_lite(backend)
        self.backends.append(backend)
        return backend

    def _serve(self, family: str, ip_address: str, evidence_body: bytes,
               measurement: bytes, region: Optional[str]) -> LiteBackend:
        name = f"lite-{family}-{ip_address}"
        host = self.deployment.network.add_host(name, ip_address, region=region)
        server = HttpServer(name)
        payload = Evidence(family, evidence_body).encode()
        latency = self.deployment.latency
        server.add_route(
            "GET",
            WELL_KNOWN_ATTESTATION_PATH,
            lambda request, context: HttpResponse.ok(
                payload, "application/octet-stream"
            ),
            processing_time=latency.report_endpoint_processing,
        )
        server.add_route(
            "GET",
            "/",
            lambda request, context: HttpResponse.ok(MINIMAL_PAGE),
            processing_time=latency.page_processing,
        )
        server.serve_tls(
            host,
            self._chain,
            self._tls_key,
            self._rng.fork(b"tls:" + ip_address.encode()),
        )
        backend = LiteBackend(
            ip_address=ip_address,
            family=family,
            region=region,
            host=host,
            measurement=bytes(measurement),
        )
        self._servers[ip_address] = server
        if family == str(TeeFamily.SEV_SNP):
            self._snp_goldens.add(bytes(measurement))
        else:
            self._family_goldens.setdefault(family, set()).add(
                bytes(measurement)
            )
        self._wrap_lite(backend)
        self.backends.append(backend)
        return backend

    def _wrap_lite(self, backend: LiteBackend) -> None:
        """Dispatch lite envelopes ahead of the TLS handler on 443."""
        tls_handler = backend.host.handler_for(HTTPS_PORT)
        processing = self.processing_time
        suffix = backend.ip_address.encode()

        def dispatch(payload: bytes, context) -> bytes:
            try:
                message = encoding.decode(payload)
            except ValueError:
                message = None
            if not (isinstance(message, dict) and message.get("lite")):
                return tls_handler(payload, context)
            context.add_processing_time(processing)
            if message.get("type") == "client_hello":
                backend.sessions_opened += 1
                session_id = (
                    b"lite:" + suffix + b":"
                    + str(backend.sessions_opened).encode()
                )
                return encoding.encode(
                    {"type": "server_hello", "lite": True,
                     "session_id": session_id}
                )
            backend.records_served += 1
            return encoding.encode(
                {"type": "record", "lite": True,
                 "session_id": message.get("session_id"), "data": b"ok"}
            )

        backend.host.listen(HTTPS_PORT, dispatch)

    # -- signed-update support --------------------------------------

    def update_backend(self, backend: LiteBackend, token: bytes) -> bytes:
        """Relaunch *backend*'s TEE workload at the post-update state.

        *token* names the update (the provisioner passes the target
        launch measurement of the new image), so every family of the
        lite fleet converges on one new golden value per update:
        ``initial_state + b"@" + token``.  The backend's well-known
        attestation endpoint is re-served with fresh evidence for the
        new workload (``add_route`` overwrites), the new measurement
        joins the family's golden set, and the old one stays admissible
        until the provisioner revokes it after the rollout finishes.
        Returns the new measurement."""
        self._update_serial += 1
        serial = f"lite-update-{self._update_serial}"
        family = backend.family
        if family == str(TeeFamily.SEV_SNP):
            state = self._initial_state(b"snp") + b"@" + token
            chip = self.deployment.amd.provision_chip(serial)
            guest = chip.launch_vm(state, GuestPolicy())
            body = guest.get_report(self.binding).encode()
            measurement = guest.measurement
        elif family == str(TeeFamily.TDX):
            state = self._initial_state(b"td") + b"@" + token
            platform = self._hetero.intel.provision_platform(serial)
            td = platform.launch_td(state)
            body, measurement = td.get_quote(self.binding).encode(), td.mrtd
        elif family == str(TeeFamily.CCA):
            state = self._initial_state(b"realm") + b"@" + token
            platform = self._hetero.arm.provision_platform(serial)
            self._hetero._cpaks[platform.platform_id] = (
                self._hetero.arm.cpak_certificate(platform)
            )
            realm = platform.launch_realm(state)
            body, measurement = realm.attest(self.binding).encode(), realm.rim
        elif family == str(TeeFamily.VTPM):
            state = self._hetero._initial_state(b"vtpm-vm") + b"@" + token
            chip = self.deployment.amd.provision_chip(serial)
            guest = chip.launch_vm(state, GuestPolicy())
            vtpm = Vtpm(self._rng.fork(b"vtpm-update:" + serial.encode()))
            endorsement = guest.get_report(
                report_data_for(hashlib.sha256(vtpm.ak_public.encode()).digest())
            )
            body = MonitoringEvidence(
                quote=vtpm.quote(self.binding, [PCR_SERVICES]),
                event_log=list(vtpm.event_log),
                ak_public=vtpm.ak_public,
                ak_endorsement=endorsement,
            ).encode()
            measurement = guest.measurement
        else:
            raise ValueError(f"unknown TEE family {family!r}")

        server = self._servers[backend.ip_address]
        payload = Evidence(family, body).encode()
        server.add_route(
            "GET",
            WELL_KNOWN_ATTESTATION_PATH,
            lambda request, context: HttpResponse.ok(
                payload, "application/octet-stream"
            ),
            processing_time=self.deployment.latency.report_endpoint_processing,
        )
        measurement = bytes(measurement)
        if family == str(TeeFamily.SEV_SNP):
            self._snp_goldens.add(measurement)
        else:
            self._family_goldens.setdefault(family, set()).add(measurement)
        backend.measurement = measurement
        return measurement

    def retire_measurement(self, family: str, measurement: bytes) -> None:
        """Drop an old golden after a completed update (the provisioner
        calls this once no backend of *family* still runs it)."""
        measurement = bytes(measurement)
        if family == str(TeeFamily.SEV_SNP):
            self._snp_goldens.discard(measurement)
        else:
            self._family_goldens.get(family, set()).discard(measurement)

    # -- gateway wiring ---------------------------------------------

    def snp_goldens(self) -> List[bytes]:
        """Lite SNP launch measurements, to merge into the gateways'
        *global* golden set (next to the deployment build's), so the
        family overlay never shadows the real SNP nodes."""
        return sorted(self._snp_goldens)

    def contexts(self) -> Dict[str, object]:
        return self._hetero.contexts()

    def family_policies(self) -> Dict[str, FamilyPolicy]:
        """Golden overlays for the non-SNP families only (SNP goldens
        ride the global set; see :meth:`snp_goldens`)."""
        return {
            family: FamilyPolicy(golden_measurements=sorted(goldens))
            for family, goldens in sorted(self._family_goldens.items())
        }


class GatewayMesh:
    """N regional gateways sharing one admission truth via gossip."""

    def __init__(
        self,
        network: Network,
        kernel: Optional[EventKernel] = None,
        max_staleness: float = 120.0,
        gossip_interval: float = 5.0,
        ring_replicas: int = 64,
    ):
        self.network = network
        self.kernel = kernel
        #: A gossiped verdict older than this is never honored, even if
        #: the receiver's ``verdict_ttl`` would still accept it.
        self.max_staleness = max_staleness
        self.gossip_interval = gossip_interval
        self.gateways: Dict[str, FleetGateway] = {}
        self._ring = ConsistentHashRing(ring_replicas)
        self._pending: List[Tuple[str, GossipedVerdict]] = []
        self._servers: Dict[str, Server] = {}
        self.counters: Dict[str, int] = {}

    # -- construction -----------------------------------------------

    @classmethod
    def for_deployment(
        cls,
        deployment,
        kernel: Optional[EventKernel] = None,
        regions: Tuple[str, ...] = ("region-a", "region-b"),
        concurrency: int = 4,
        extra_goldens=(),
        register_dns: bool = True,
        mesh_kwargs: Optional[dict] = None,
        shared_farm: bool = False,
        **gateway_kwargs,
    ) -> "GatewayMesh":
        """One gateway per region; the deployment's nodes are placed
        round-robin across *regions* and registered on every gateway
        (sharing one service station per backend).  DNS points the
        service domain at the first region's gateway; storm clients
        route by consistent hash instead.

        ``shared_farm=True`` wires one
        :class:`~repro.attest.farm.VerifyFarm` across every regional
        gateway, so any gateway's re-attestation round batches against
        the same blinder DRBG and counter stream (an explicit ``farm``
        in *gateway_kwargs* wins)."""
        mesh = cls(deployment.network, kernel, **(mesh_kwargs or {}))
        if shared_farm and "farm" not in gateway_kwargs:
            from ..attest.farm import VerifyFarm

            gateway_kwargs["farm"] = VerifyFarm(
                clock=deployment.network.clock,
                latency=deployment.network.latency,
                seed=b"mesh-verify-farm",
            )
        goldens = sorted(
            {bytes(deployment.build.expected_measurement),
             *(bytes(g) for g in extra_goldens)}
        )
        for index, region in enumerate(regions):
            name = f"gateway-{region}"
            gateway = FleetGateway(
                network=deployment.network,
                ip_address=f"10.9.{index}.1",
                domain=deployment.domain,
                kds=deployment._new_kds_client(),
                trust_anchors=[deployment.web_pki.trust_anchor],
                golden_measurements=goldens,
                rng=deployment.rng.fork(b"mesh-gateway:" + name.encode()),
                kernel=kernel,
                name=name,
                region=region,
                **gateway_kwargs,
            )
            mesh.add_gateway(gateway)
        for index, deployed in enumerate(deployment.nodes):
            region = regions[index % len(regions)]
            deployed.host.region = region
            mesh.add_backend(
                deployed.host.ip_address,
                concurrency=concurrency,
                region=region,
            )
        if register_dns:
            deployment.network.dns.register(deployment.domain, "10.9.0.1")
        return mesh

    def add_gateway(self, gateway: FleetGateway) -> None:
        """Join a gateway to the mesh (and the hash ring) and start
        forwarding its locally produced verdicts into the gossip queue."""
        if gateway.name in self.gateways:
            raise ValueError(f"gateway {gateway.name!r} already in mesh")
        self.gateways[gateway.name] = gateway
        gateway.on_verdict = self._on_verdict
        self._ring.add(gateway.name)

    def add_backend(self, ip_address: str, concurrency: int = 4,
                    family=TeeFamily.SEV_SNP,
                    region: Optional[str] = None) -> None:
        """Register a backend on **every** gateway, all sharing one
        kernel service station — the VM has one concurrency limit no
        matter which shard routes to it."""
        server = self._servers.get(ip_address)
        if server is None and self.kernel is not None:
            server = Server(
                self.kernel, concurrency, name=f"backend-{ip_address}"
            )
            self._servers[ip_address] = server
        for name in sorted(self.gateways):
            self.gateways[name].add_backend(
                ip_address, concurrency=concurrency, family=family,
                region=region, server=server,
            )

    def attach_lite_fleet(self, fleet: LiteFleet, concurrency: int = 4) -> None:
        """Teach every gateway the lite fleet's trust contexts and
        family overlays, widen the global golden set with the lite SNP
        measurements, and register each backend mesh-wide."""
        snp_goldens = fleet.snp_goldens()
        for name in sorted(self.gateways):
            gateway = self.gateways[name]
            gateway.verifier.contexts.update(fleet.contexts())
            gateway.family_policies.update(fleet.family_policies())
            gateway.golden_measurements = sorted(
                {*gateway.golden_measurements, *snp_goldens}
            )
        for backend in fleet.backends:
            self.add_backend(
                backend.ip_address,
                concurrency=concurrency,
                family=backend.family,
                region=backend.region,
            )

    # -- lookup ------------------------------------------------------

    def gateway_for(self, session_key: bytes) -> FleetGateway:
        """The shard owning a session key (consistent hash)."""
        return self.gateways[self._ring.node_for(session_key)]

    def _backend_region(self, ip_address: str) -> Optional[str]:
        for name in sorted(self.gateways):
            backend = self.gateways[name].backends.get(ip_address)
            if backend is not None:
                return backend.region
        return None

    def home_gateway(self, ip_address: str) -> FleetGateway:
        """The gateway responsible for probing a backend: the first
        gateway in its region, or its hash owner if no region matches."""
        region = self._backend_region(ip_address)
        if region is not None:
            for name in sorted(self.gateways):
                if self.gateways[name].region == region:
                    return self.gateways[name]
        return self.gateway_for(ip_address.encode())

    def backend_regions(self) -> List[str]:
        regions = set()
        for name in sorted(self.gateways):
            for backend in self.gateways[name].backends.values():
                if backend.region is not None:
                    regions.add(backend.region)
        return sorted(regions)

    # -- admission + gossip -----------------------------------------

    def admit_all(self) -> List:
        """Initial bring-up: each backend is attested **once**, by its
        home gateway; the verdicts gossip to the other shards (which is
        the point — N gateways, one probe per backend)."""
        verdicts = []
        seen = set()
        for name in sorted(self.gateways):
            for ip_address in sorted(self.gateways[name].backends):
                if ip_address in seen:
                    continue
                seen.add(ip_address)
                home = self.home_gateway(ip_address)
                if home.backends[ip_address].state == "pending":
                    verdicts.append(home.attest_and_admit(ip_address))
        self.flush_gossip()
        return verdicts

    def _on_verdict(self, gateway: FleetGateway, ip_address: str,
                    family: str, ok: bool, reason: str,
                    verdict_time: float) -> None:
        self._pending.append(
            (
                gateway.name,
                GossipedVerdict(ip_address, family, ok, reason, verdict_time),
            )
        )
        self._count("gossip.published")

    def flush_gossip(self) -> int:
        """Broadcast every queued verdict to the peer gateways.  With a
        kernel, each delivery is a process that pays the one-way
        inter-gateway network delay; synchronously it applies at once.
        Returns the number of deliveries initiated."""
        records, self._pending = self._pending, []
        deliveries = 0
        for origin_name, record in records:
            origin = self.gateways[origin_name]
            for name in sorted(self.gateways):
                if name == origin_name:
                    continue
                target = self.gateways[name]
                deliveries += 1
                if self.kernel is None:
                    target.accept_gossip(record, self.max_staleness)
                    continue
                delay = self.network.rtt_between(origin.host, target.host) / 2.0
                self.kernel.spawn(
                    self._deliver(target, record, delay),
                    name=f"gossip:{origin_name}->{name}:{record.backend_ip}",
                )
        if deliveries:
            self._count("gossip.deliveries", deliveries)
        return deliveries

    def _deliver(self, target: FleetGateway, record: GossipedVerdict,
                 delay: float):
        if delay > 0:
            yield sleep(delay)
        target.accept_gossip(record, self.max_staleness)

    def gossip_process(self):
        """Kernel process: flush the gossip queue periodically."""
        try:
            while True:
                yield sleep(self.gossip_interval)
                self.flush_gossip()
        except Interrupt:
            return

    def monitors(self, **monitor_kwargs) -> List[HealthMonitor]:
        """One health monitor per gateway, scoped (in a regioned mesh)
        to that gateway's own region — each backend is probed and
        re-attested by exactly one shard per round, and gossip keeps
        the others fresh."""
        monitors = []
        for name in sorted(self.gateways):
            gateway = self.gateways[name]
            backend_filter = None
            if gateway.region is not None:
                home = self.home_gateway
                backend_filter = (
                    lambda backend, _gw=gateway: home(
                        backend.ip_address
                    ) is _gw
                )
            monitors.append(
                HealthMonitor(
                    gateway, backend_filter=backend_filter, **monitor_kwargs
                )
            )
        return monitors

    # -- faults ------------------------------------------------------

    def revoke_family(self, family, reason: str = "family_not_allowed") -> None:
        """Fleet-wide family revocation on every shard at once (policy
        changes are control-plane config, not gossip)."""
        for name in sorted(self.gateways):
            self.gateways[name].revoke_family(family, reason)

    # -- instrumentation --------------------------------------------

    def _count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def counters_snapshot(self) -> Dict[str, int]:
        """Mesh counters plus every gateway's, namespaced and sorted."""
        out = dict(self.counters)
        for name in sorted(self.gateways):
            for key, value in self.gateways[name].counters_snapshot().items():
                out[f"{name}.{key}"] = value
        return {key: out[key] for key in sorted(out)}


#: Sentinel returned by :meth:`MeshWorkload._exchange` when the gateway
#: severed the session's affinity (a drain/retire mid-session) — the
#: client recovers by re-handshaking, it is not a request failure.
_SEVERED = object()


class MeshWorkload:
    """An open-loop lite-session storm over a :class:`GatewayMesh`.

    Unlike :class:`~repro.fleet.workload.FleetWorkload`, memory stays
    bounded at million-session scale: no per-session process handles
    are retained (a countdown fires one completion event) and each
    session closes its gateway affinity when it ends.  A session whose
    affinity is severed by a rollout transparently re-handshakes onto a
    healthy backend (the paper's end-user contract) instead of failing."""

    def __init__(
        self,
        mesh: GatewayMesh,
        kernel: EventKernel,
        rng: Optional[SimRng] = None,
        metrics: Optional[MetricsRegistry] = None,
        think_time_mean: float = 2.0,
        records_per_session: int = 2,
        client_regions: Optional[Tuple[str, ...]] = None,
        client_ip_prefix: str = "10.3",
        tier_weights=None,
    ):
        self.mesh = mesh
        self.kernel = kernel
        rng = rng or SimRng(0)
        self._think_rng = rng.fork("think")
        self._arrival_rng = rng.fork("arrivals")
        self._tier_rng = rng.fork("tiers")
        self.metrics = metrics if metrics is not None else MetricsRegistry(
            kernel.clock, rng=rng.fork("metrics")
        )
        self.think_time_mean = think_time_mean
        self.records_per_session = records_per_session
        self.tier_weights = dict(tier_weights) if tier_weights else None
        regions = tuple(client_regions or mesh.backend_regions() or (None,))
        self._clients = []
        for index, region in enumerate(regions):
            label = region if region is not None else "flat"
            self._clients.append(
                mesh.network.add_host(
                    f"mesh-client-{label}",
                    f"{client_ip_prefix}.{index}.1",
                    region=region,
                )
            )
        self.sessions_completed = 0
        self.sessions_failed = 0
        self._remaining = 0
        self._done = None

    def _pick_tier(self):
        if not self.tier_weights:
            return None
        total = sum(self.tier_weights.values())
        draw = self._tier_rng.random() * total
        cumulative = 0.0
        for tier, weight in sorted(self.tier_weights.items()):
            cumulative += weight
            if draw < cumulative:
                return tier
        return sorted(self.tier_weights)[-1]

    # -- one exchange -----------------------------------------------

    def _exchange(self, client, gateway: FleetGateway, message: dict,
                  kind: str):
        """Send one lite envelope through *gateway*, replay the
        backend's share against its shared service station, sleep the
        client-side remainder, and record latency.  Returns the decoded
        response, or None on a routing failure."""
        network = self.mesh.network
        started = network.clock.now
        payload = encoding.encode(message)
        failure = None
        raw = b""
        with network.measure() as scope:
            try:
                raw = client.request(
                    gateway.host.ip_address, HTTPS_PORT, payload
                )
            except ConnectionError as exc:
                failure = getattr(exc, "reason", "") or "connection_error"
        replayed = 0.0
        for backend_ip, share in gateway.take_routes():
            backend = gateway.backends.get(backend_ip)
            if backend is not None and backend.server is not None:
                yield from backend.server.process(share)
            elif share > 0:
                yield sleep(share)
            replayed += share
        remainder = scope.elapsed - replayed
        if remainder > 0:
            yield sleep(remainder)
        metrics = self.metrics
        metrics.increment("requests_total")
        if failure == "session_severed":
            metrics.increment("requests_severed")
            return _SEVERED
        if failure is not None:
            metrics.increment("requests_failed")
            return None
        metrics.increment("requests_ok")
        metrics.reservoir("latency.all").observe(network.clock.now - started)
        metrics.reservoir(f"latency.{kind}").observe(
            network.clock.now - started
        )
        return encoding.decode(raw)

    def _session(self, index: int):
        client = self._clients[index % len(self._clients)]
        session_key = b"session:%d" % index
        gateway = self.mesh.gateway_for(session_key)
        hello = {"type": "client_hello", "lite": True, "n": index}
        tier = self._pick_tier()
        if tier is not None:
            hello["tier"] = tier
        session_id = None
        try:
            response = yield from self._exchange(
                client, gateway, hello, "hello"
            )
            if response is None or response is _SEVERED:
                self.sessions_failed += 1
                return
            session_id = response["session_id"]
            for _ in range(self.records_per_session):
                yield sleep(
                    self._think_rng.expovariate(1.0 / self.think_time_mean)
                )
                for attempt in range(3):
                    record = {
                        "type": "record", "lite": True,
                        "session_id": session_id,
                    }
                    response = yield from self._exchange(
                        client, gateway, record, "record"
                    )
                    if response is not _SEVERED:
                        break
                    # A rollout severed our affinity mid-session:
                    # re-handshake onto a healthy backend and resend.
                    self.metrics.increment("sessions_rehandshaked")
                    response = yield from self._exchange(
                        client, gateway, dict(hello), "hello"
                    )
                    if response is None or response is _SEVERED:
                        break
                    session_id = response["session_id"]
                    response = _SEVERED  # not yet resent
                if response is None or response is _SEVERED:
                    self.sessions_failed += 1
                    return
            self.sessions_completed += 1
        finally:
            if session_id is not None:
                gateway.close_session(session_id)
            self._remaining -= 1
            if self._remaining == 0 and self._done is not None:
                self._done.succeed()

    # -- drive -------------------------------------------------------

    def open_loop(self, sessions: int, arrival_rate: float):
        """Kernel process: Poisson arrivals at *arrival_rate* per
        virtual second; finishes when the last session does."""
        if sessions < 1:
            return
        self._remaining = sessions
        self._done = self.kernel.event("mesh-storm-done")
        for index in range(sessions):
            yield sleep(self._arrival_rng.expovariate(arrival_rate))
            yield spawn(self._session(index), name=f"lite-session-{index}")
        yield wait(self._done)

    # -- results -----------------------------------------------------

    def snapshot(self) -> dict:
        """Workload metrics + mesh counters, sorted and JSON-safe."""
        out = dict(self.metrics.snapshot())
        for key, value in self.mesh.counters_snapshot().items():
            out[f"mesh.{key}"] = value
        out["sessions_completed"] = self.sessions_completed
        out["sessions_failed"] = self.sessions_failed
        return {key: out[key] for key in sorted(out)}


@dataclass
class MeshRolloutReport:
    """What a hierarchical mesh rollout did, in simulated time."""

    old_measurement: str
    new_measurement: str
    regions: List[dict] = field(default_factory=list)
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def sim_seconds(self) -> float:
        return self.finished_at - self.started_at


def region_rollout(
    mesh: GatewayMesh,
    deployment,
    new_build,
    app_factory: AppFactory = default_app,
    node_registry=None,
    drain_poll: float = 0.05,
    drain_deadline: float = 60.0,
    concurrency: int = 4,
    report: Optional[MeshRolloutReport] = None,
    regions: Optional[List[str]] = None,
    lite_fleet: Optional[LiteFleet] = None,
):
    """Kernel process: the PR-4 rolling rollout, hierarchically over a
    mesh.  Regions are processed one at a time (sorted, or *regions*
    order); inside a region, one node at a time is drained on **every**
    gateway simultaneously, replaced, re-admitted by the SP, attested
    by its home gateway, and the passing verdict is gossiped to the
    rest of the mesh — so the other shards route to the replacement
    without probing it themselves."""
    if deployment.sp is None or deployment.provisioning is None:
        raise RolloutError("fleet not provisioned; nothing to roll out")
    old_measurement = bytes(deployment.build.expected_measurement)
    new_measurement = bytes(new_build.expected_measurement)
    if old_measurement == new_measurement:
        raise RolloutError("new image has the identical measurement; nothing to do")
    clock = mesh.network.clock
    if report is None:
        report = MeshRolloutReport(
            old_measurement=old_measurement.hex(),
            new_measurement=new_measurement.hex(),
        )
    report.started_at = clock.now

    registry = node_registry
    if registry is None:
        registry = StaticRegistry(
            golden={deployment.domain: [old_measurement, new_measurement]}
        )
    for deployed in deployment.nodes:
        deployed.node.trusted_registry = registry
    if new_measurement not in deployment.sp.expected_measurements:
        deployment.sp.expected_measurements.append(new_measurement)
    gateways = [mesh.gateways[name] for name in sorted(mesh.gateways)]
    for gateway in gateways:
        gateway.golden_measurements = sorted(
            {*gateway.golden_measurements, new_measurement}
        )

    node_region = {
        deployed.host.ip_address: mesh._backend_region(deployed.host.ip_address)
        for deployed in deployment.nodes
    }
    rollout_regions = regions
    if rollout_regions is None:
        rollout_regions = sorted(
            {region for region in node_region.values() if region is not None}
        ) or [None]

    for region in rollout_regions:
        region_started = clock.now
        replaced = []
        for index in range(len(deployment.nodes)):
            ip_address = deployment.nodes[index].host.ip_address
            if node_region.get(ip_address) != region:
                continue
            node_started = clock.now
            for gateway in gateways:
                gateway.mark_draining(ip_address)
            server = mesh._servers.get(ip_address)
            drain_started = clock.now
            rounds = 0
            while server is not None and server.outstanding > 0:
                if clock.now - drain_started >= drain_deadline:
                    break
                rounds += 1
                yield sleep(drain_poll)
            for gateway in gateways:
                gateway.retire(ip_address)
            key_holder = _key_holder_ip(deployment, exclude_ip=ip_address)
            replace_node(
                deployment, index, new_build, app_factory,
                node_registry=registry,
            )
            deployment.sp.admit_node(
                ip_address, key_holder, deployment.provisioning.certificate_chain
            )
            if lite_fleet is not None:
                # The replacement re-bound port 443; restore the lite
                # dispatcher in front of its fresh TLS handler.
                lite_fleet.adopt_node(deployment.nodes[index])
            mesh._servers.pop(ip_address, None)  # fresh station for the new VM
            mesh.add_backend(
                ip_address, concurrency=concurrency, region=region
            )
            home = mesh.home_gateway(ip_address)
            verdict = home.attest_and_admit(ip_address)
            if not verdict.ok:
                raise RolloutError(
                    f"replacement node {ip_address} failed admission: "
                    f"{verdict.reason} ({verdict.detail})"
                )
            mesh.flush_gossip()
            replaced.append(
                {
                    "ip_address": ip_address,
                    "drain_poll_rounds": rounds,
                    "sim_seconds": clock.now - node_started,
                }
            )
        report.regions.append(
            {
                "region": region,
                "replacements": replaced,
                "sim_seconds": clock.now - region_started,
            }
        )

    update_golden_set(deployment, old_measurement, new_measurement)
    deployment.build = new_build
    for gateway in gateways:
        gateway.golden_measurements = [new_measurement]
        gateway.revoked_measurements = sorted(
            {*gateway.revoked_measurements, old_measurement}
        )
    report.finished_at = clock.now
    return report
