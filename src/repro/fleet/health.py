"""Periodic liveness probes and re-attestation for gateway backends.

Runs as one kernel process: every ``interval`` virtual seconds each
active backend is probed through the real end-user path (fresh TLS
handshake + well-known fetch).  A probe that errors or exceeds
``timeout`` counts a consecutive failure; at ``failure_threshold`` the
backend is evicted (``backend_unreachable`` / ``health_timeout``).
Backends whose attestation verdict is older than ``reattest_every`` are
re-verified through the pipeline — a failing re-attestation evicts with
the pipeline's own reason code (e.g. ``tcb_too_old``), and an
unreachable KDS evicts with ``kds_unreachable`` (the gateway cannot
confirm freshness, so it stops serving; DESIGN.md invariant 11).
"""

from __future__ import annotations

from ..core.guest import WELL_KNOWN_ATTESTATION_PATH
from ..net.http import HTTPS_PORT, HttpRequest, HttpResponse
from ..net.tls import tls_connect
from ..sim.kernel import Interrupt, sleep
from .gateway import BackendState, FleetGateway


class HealthMonitor:
    """The probe loop; spawn :meth:`process` on the kernel."""

    def __init__(
        self,
        gateway: FleetGateway,
        interval: float = 5.0,
        timeout: float = 1.0,
        failure_threshold: int = 2,
        reattest_every: float = 60.0,
        backend_filter=None,
    ):
        self.gateway = gateway
        self.interval = interval
        self.timeout = timeout
        self.failure_threshold = failure_threshold
        self.reattest_every = reattest_every
        #: Optional predicate over :class:`BackendState` restricting
        #: which backends this monitor probes — a mesh runs one monitor
        #: per region so each backend is re-attested once per round and
        #: gossip (not duplicate probes) keeps the other gateways fresh.
        self.backend_filter = backend_filter
        self.probes_ok = 0
        self.probes_failed = 0
        self.reattestations = 0

    def process(self):
        """Kernel process: probe until interrupted."""
        try:
            while True:
                yield sleep(self.interval)
                self.probe_all()
        except Interrupt:
            return

    def probe_all(self) -> None:
        """One synchronous probe round over the active backends.

        Liveness probes run per backend; the backends whose verdicts
        went stale are collected and re-attested as one group at the end
        of the round, so a verify-farm-wired gateway settles the whole
        round's signature checks in a single batch equation."""
        due = []
        for ip_address in sorted(self.gateway.backends):
            backend = self.gateway.backends[ip_address]
            if not backend.active():
                continue
            if self.backend_filter is not None and not self.backend_filter(backend):
                continue
            if self._probe(backend):
                due.append(ip_address)
        if due:
            self.reattestations += len(due)
            self.gateway.attest_and_admit_many(due)

    def _probe(self, backend: BackendState) -> bool:
        gateway = self.gateway
        network = gateway.network
        try:
            with network.measure() as scope:
                connection = tls_connect(
                    gateway.host,
                    backend.ip_address,
                    HTTPS_PORT,
                    gateway.domain,
                    gateway.trust_anchors,
                    gateway._rng,
                    now=network.clock.epoch_seconds(),
                )
                raw = connection.request(
                    HttpRequest("GET", WELL_KNOWN_ATTESTATION_PATH).encode()
                )
                response = HttpResponse.decode(raw)
        except ConnectionError:
            self._failure(backend, "backend_unreachable")
            return False
        if scope.elapsed > self.timeout:
            self._failure(backend, "health_timeout")
            return False
        if response.status != 200:
            self._failure(backend, "report_unavailable")
            return False
        backend.consecutive_failures = 0
        self.probes_ok += 1
        verdict_age = (
            network.clock.now - backend.verdict_time
            if backend.verdict_time is not None
            else None
        )
        # Stale verdicts are re-attested by the caller, batched per round.
        return backend.state == "admitted" and (
            verdict_age is None or verdict_age >= self.reattest_every
        )

    def _failure(self, backend: BackendState, reason: str) -> None:
        self.probes_failed += 1
        backend.consecutive_failures += 1
        if backend.consecutive_failures >= self.failure_threshold:
            self.gateway.evict(backend.ip_address, reason)
