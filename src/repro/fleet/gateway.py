"""The attestation-aware L7 gateway.

An opaque-forwarding load balancer: TLS terminates on the *backends*
(every fleet node serves the shared attested identity), so the gateway
routes on the cleartext envelope fields only — ``client_hello`` starts
a session on a backend chosen by the balancing policy, ``record``
messages follow their session's affinity.  End-to-end the client still
pins the fleet TLS key through the attested well-known flow; the
gateway cannot read or forge traffic.

Admission is attestation-gated: a backend serves *new* sessions only
while its latest :mod:`repro.attest` verdict is passing and fresh
(``verdict_ttl``).  On verification failure, health-check timeout, or a
dead peer the backend is evicted with a stable reason code from the
PR-2 taxonomy (extended with the gateway-level codes
``backend_unreachable``, ``health_timeout``, ``kds_unreachable``,
``family_mismatch``, ``no_healthy_backend``), its sessions are
severed, and clients transparently re-handshake onto a healthy peer
(the fleet key is shared, so their pinned key stays valid).

The fleet may be **heterogeneous**: every backend is registered with
its TEE family (SEV-SNP, TDX, CCA, e-vTPM), probes run through the
family-dispatched pipeline against per-family
:class:`~repro.attest.FamilyPolicy` overlays, and sessions are
**tier-routed** — the cleartext ``tier`` tag in the client hello picks
which families may serve the session (``tier_families``; e.g.
high-sensitivity sessions only land on SNP or SNP-endorsed e-vTPM
backends, bulk sessions on any passing family).  Fleet-wide family
revocation (:meth:`FleetGateway.revoke_family`) and per-family TCB
floors (:meth:`FleetGateway.set_family_tcb_floor`) evict with the
family-scoped codes ``family_not_allowed`` / ``family_tcb_floor``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dataclass_replace
from typing import Dict, List, Optional, Tuple

from ..attest import (
    ALL_FAMILIES,
    AttestationVerifier,
    FamilyPolicy,
    TeeFamily,
    VerificationPolicy,
)
from ..core.guest import WELL_KNOWN_ATTESTATION_PATH, decode_attestation_evidence
from ..core.key_sharing import report_data_for
from ..crypto import encoding
from ..net.http import HTTPS_PORT, HttpRequest, HttpResponse
from ..net.simnet import Network, NetworkError
from ..net.tls import tls_connect
from ..sim.resources import Server

#: Balancing policies (pluggable via the ``balancer`` argument).
BALANCERS = ("round_robin", "least_outstanding", "weighted_latency")

#: The gateway layer's own stable reason codes — everything the probe,
#: routing, and health machinery can emit *in addition to* the
#: pipeline's ``ATTEST_REASON_CODES``.  Campaign taxonomy tests diff
#: this set against the codes their scenarios actually reached, so a
#: new code added here without a scenario fails loudly.
GATEWAY_REASON_CODES = frozenset({
    "backend_unreachable",   # probe/forward TLS connect failed
    "family_mismatch",       # evidence family != registered family
    "health_timeout",        # liveness probe exceeded the monitor budget
    "kds_unreachable",       # verdict freshness unconfirmable (fail closed)
    "malformed_report",      # well-known body undecodable
    "malformed_request",     # client envelope undecodable
    "no_healthy_backend",    # zero admitted backends for the session tier
    "report_unavailable",    # well-known endpoint non-200
    "session_severed",       # record for a session whose backend died
    "unknown_backend",       # operation on an unregistered address
})


class GatewayError(NetworkError):
    """A routing failure with a stable machine-readable reason code."""

    def __init__(self, reason: str, detail: str = ""):
        message = f"gateway: {reason}"
        if detail:
            message += f" ({detail})"
        super().__init__(message)
        self.reason = reason


@dataclass
class AdmissionVerdict:
    """Outcome of one backend attestation probe."""

    ip_address: str
    ok: bool
    reason: str = ""
    detail: str = ""


@dataclass
class BackendState:
    """What the gateway knows about one fleet VM."""

    ip_address: str
    #: pending -> admitted -> draining -> retired, or -> evicted/rejected
    state: str = "pending"
    #: Kernel service station replaying this backend's share of each
    #: request (models its concurrency limit); None in synchronous mode.
    server: Optional[Server] = None
    verdict_ok: bool = False
    verdict_reason: str = ""
    verdict_time: Optional[float] = None
    #: EWMA of recent forward latency (the weighted_latency signal).
    ewma_latency: Optional[float] = None
    consecutive_failures: int = 0
    requests_forwarded: int = 0
    #: Forwards attempted after retirement — the rollout acceptance
    #: criterion requires this to stay 0 for every drained backend.
    requests_after_retired: int = 0
    #: The TEE family this backend was registered under; its evidence
    #: must match (``family_mismatch`` otherwise) and tier routing
    #: filters on it.
    family: str = str(TeeFamily.SEV_SNP)
    #: Topology placement (mesh routing + hierarchical drains).
    region: Optional[str] = None

    def admittable(self, now: float, verdict_ttl: float) -> bool:
        """Eligible for *new* sessions: admitted + fresh passing verdict."""
        return (
            self.state == "admitted"
            and self.verdict_ok
            and self.verdict_time is not None
            and now - self.verdict_time <= verdict_ttl
        )

    def active(self) -> bool:
        """Still allowed to serve existing sessions."""
        return self.state in ("admitted", "draining")


class FleetGateway:
    """The gateway host plus its admission and routing state."""

    def __init__(
        self,
        network: Network,
        ip_address: str,
        domain: str,
        kds,
        trust_anchors,
        golden_measurements,
        revoked_measurements=(),
        minimum_tcb=None,
        rng=None,
        balancer: str = "round_robin",
        verdict_ttl: float = 300.0,
        max_retries: int = 3,
        kernel=None,
        name: str = "fleet-gateway",
        family_policies=None,
        allowed_families=None,
        tier_families=None,
        default_tier: str = "bulk",
        contexts=None,
        region: Optional[str] = None,
        farm=None,
    ):
        if balancer not in BALANCERS:
            raise ValueError(f"unknown balancer {balancer!r}; pick from {BALANCERS}")
        self.network = network
        self.domain = domain
        self.kds = kds
        self.trust_anchors = list(trust_anchors)
        self.golden_measurements = sorted(bytes(m) for m in golden_measurements)
        self.revoked_measurements = sorted(bytes(m) for m in revoked_measurements)
        self.minimum_tcb = minimum_tcb
        self._rng = rng
        self.balancer = balancer
        self.verdict_ttl = verdict_ttl
        self.max_retries = max_retries
        self.kernel = kernel
        #: Per-family :class:`FamilyPolicy` overlays (goldens, anchors,
        #: family TCB floors) merged into every admission policy.
        self.family_policies: Dict[str, FamilyPolicy] = {
            str(family): overlay
            for family, overlay in (family_policies or {}).items()
        }
        #: ``None`` = any registered family; otherwise the admissible set.
        self.allowed_families = (
            None
            if allowed_families is None
            else {str(family) for family in allowed_families}
        )
        #: Families revoked fleet-wide (subtracted from the admissible
        #: set; re-attestation of their backends fails closed).
        self.revoked_families: set = set()
        #: Per-family TCB floors overlaid onto admission policies.
        self.family_tcb_floors: Dict[str, object] = {}
        if tier_families is None:
            tier_families = {
                "high": (str(TeeFamily.SEV_SNP), str(TeeFamily.VTPM)),
                "bulk": None,
            }
        #: Session tier -> families allowed to serve it (None = any).
        self.tier_families: Dict[str, Optional[Tuple[str, ...]]] = {
            tier: (
                None
                if families is None
                else tuple(str(family) for family in families)
            )
            for tier, families in tier_families.items()
        }
        self.default_tier = default_tier
        #: Optional :class:`~repro.attest.farm.VerifyFarm` shared by
        #: this gateway's verifier (and, in a mesh, its peers): health
        #: re-attestation rounds settle every backend's signature
        #: checks in one batch equation.
        self.farm = farm
        self.verifier = AttestationVerifier(
            kds, site=name, contexts=contexts, farm=farm
        )
        self.name = name
        self.region = region
        #: Mesh hook: called as ``on_verdict(gateway, ip, family, ok,
        #: reason, verdict_time)`` after every locally produced verdict,
        #: so a :class:`~repro.fleet.mesh.GatewayMesh` can gossip it.
        self.on_verdict = None

        self.host = network.add_host(name, ip_address, region=region)
        self.host.listen(HTTPS_PORT, self._handle)

        self._backends: Dict[str, BackendState] = {}
        self._affinity: Dict[bytes, str] = {}
        self._rr_cursor = 0
        self._route_log: List[Tuple[str, float]] = []
        self.counters: Dict[str, int] = {}

    # -- construction -----------------------------------------------

    @classmethod
    def for_deployment(
        cls,
        deployment,
        kernel=None,
        ip_address: str = "10.9.0.1",
        concurrency: int = 4,
        register_dns: bool = True,
        **kwargs,
    ) -> "FleetGateway":
        """Front an existing :class:`RevelioDeployment`: one backend per
        fleet node, the service domain pointed at the gateway."""
        gateway = cls(
            network=deployment.network,
            ip_address=ip_address,
            domain=deployment.domain,
            kds=deployment._new_kds_client(),
            trust_anchors=[deployment.web_pki.trust_anchor],
            golden_measurements=[deployment.build.expected_measurement],
            rng=deployment.rng.fork(b"fleet-gateway"),
            kernel=kernel,
            **kwargs,
        )
        for deployed in deployment.nodes:
            gateway.add_backend(deployed.host.ip_address, concurrency=concurrency)
        if register_dns:
            deployment.network.dns.register(deployment.domain, ip_address)
        return gateway

    # -- backend lifecycle ------------------------------------------

    @property
    def backends(self) -> Dict[str, BackendState]:
        return self._backends

    def add_backend(self, ip_address: str, concurrency: int = 4,
                    family=TeeFamily.SEV_SNP, region: Optional[str] = None,
                    server: Optional[Server] = None) -> BackendState:
        """Register (or re-register, after a replacement) a backend in
        the ``pending`` state; it serves nothing until admitted.
        *family* declares the TEE technology the backend must prove.
        Pass an existing *server* to share one service station across
        every gateway of a mesh (the backend VM has one concurrency
        limit no matter how many gateways route to it)."""
        if server is None and self.kernel is not None:
            server = Server(
                self.kernel, concurrency, name=f"backend-{ip_address}"
            )
        backend = BackendState(
            ip_address=ip_address, server=server, family=str(family),
            region=region,
        )
        self._backends[ip_address] = backend
        return backend

    def _admission_policy(self, connection) -> VerificationPolicy:
        """The policy for one probe: the global (SNP-legacy) fields plus
        the per-family overlays, family TCB floors, and the admissible
        family set after fleet-wide revocations."""
        families = dict(self.family_policies)
        for family, floor in self.family_tcb_floors.items():
            base = families.get(family, FamilyPolicy())
            families[family] = dataclass_replace(base, minimum_tcb=floor)
        allowed = self.allowed_families
        if self.revoked_families:
            base_allowed = (
                allowed
                if allowed is not None
                else {str(family) for family in ALL_FAMILIES}
            )
            allowed = base_allowed - self.revoked_families
        return VerificationPolicy(
            golden_measurements=tuple(self.golden_measurements),
            revoked_measurements=tuple(self.revoked_measurements),
            expected_report_data=report_data_for(
                connection.peer_public_key.fingerprint()
            ),
            minimum_tcb=self.minimum_tcb,
            allowed_families=(
                None if allowed is None else tuple(sorted(allowed))
            ),
            families=families or None,
        )

    def _probe_evidence(self, ip_address: str):
        """The probe half of an attestation: fresh TLS handshake,
        well-known evidence fetch, family sanity check.  Returns
        ``(evidence, policy)`` on success or a failure
        :class:`AdmissionVerdict` (already recorded)."""
        clock = self.network.clock
        try:
            connection = tls_connect(
                self.host,
                ip_address,
                HTTPS_PORT,
                self.domain,
                self.trust_anchors,
                self._rng,
                now=clock.epoch_seconds(),
            )
            raw = connection.request(
                HttpRequest("GET", WELL_KNOWN_ATTESTATION_PATH).encode()
            )
            response = HttpResponse.decode(raw)
        except ConnectionError as exc:
            return self._verdict(ip_address, False, "backend_unreachable", str(exc))
        if response.status != 200:
            return self._verdict(
                ip_address, False, "report_unavailable",
                f"well-known endpoint returned {response.status}",
            )
        try:
            evidence = decode_attestation_evidence(response.body)
        except Exception as exc:
            return self._verdict(ip_address, False, "malformed_report", str(exc))
        backend = self._backends.get(ip_address)
        if backend is not None and str(evidence.family) != backend.family:
            return self._verdict(
                ip_address, False, "family_mismatch",
                f"backend registered as {backend.family}, "
                f"evidence is {evidence.family}",
            )
        return evidence, self._admission_policy(connection)

    def attest_backend(self, ip_address: str) -> AdmissionVerdict:
        """Probe one backend through the full end-user flow: fresh TLS
        handshake, well-known evidence fetch, family-dispatched pipeline
        verification with the REPORT_DATA bound to the *probed
        connection's* key."""
        probe = self._probe_evidence(ip_address)
        if isinstance(probe, AdmissionVerdict):
            return probe
        evidence, policy = probe
        try:
            outcome = self.verifier.verify(
                evidence, now=self.network.clock.epoch_seconds(), policy=policy
            )
        except ConnectionError as exc:
            return self._verdict(ip_address, False, "kds_unreachable", str(exc))
        if not outcome.ok:
            return self._verdict(
                ip_address, False, outcome.reason, outcome.detail
            )
        return self._verdict(ip_address, True, "", "")

    def attest_many(self, ip_addresses) -> list:
        """Probe a group of backends, then settle every probe's
        signature equations in one verify-farm batch — shared ARK/ASK
        chain terms across the fleet are verified once per *round*, not
        once per backend.  Without a farm this degrades to sequential
        :meth:`attest_backend` semantics.  Returns one
        :class:`AdmissionVerdict` per address, in order."""
        ips = list(ip_addresses)
        verdicts: list = [None] * len(ips)
        pending = []  # (slot, ip, evidence, policy)
        for slot, ip_address in enumerate(ips):
            probe = self._probe_evidence(ip_address)
            if isinstance(probe, AdmissionVerdict):
                verdicts[slot] = probe
            else:
                pending.append((slot, ip_address, probe[0], probe[1]))
        if pending:
            now = self.network.clock.epoch_seconds()
            try:
                outcomes = self.verifier.verify_batch(
                    [evidence for _, _, evidence, _ in pending],
                    now=now,
                    policies=[policy for _, _, _, policy in pending],
                )
            except ConnectionError as exc:
                for slot, ip_address, _, _ in pending:
                    verdicts[slot] = self._verdict(
                        ip_address, False, "kds_unreachable", str(exc)
                    )
            else:
                for (slot, ip_address, _, _), outcome in zip(pending, outcomes):
                    verdicts[slot] = (
                        self._verdict(ip_address, True, "", "")
                        if outcome.ok
                        else self._verdict(
                            ip_address, False, outcome.reason, outcome.detail
                        )
                    )
        return verdicts

    def _verdict(self, ip_address: str, ok: bool, reason: str,
                 detail: str) -> AdmissionVerdict:
        backend = self._backends.get(ip_address)
        if backend is not None:
            backend.verdict_ok = ok
            backend.verdict_reason = reason
            backend.verdict_time = self.network.clock.now
        self._count("attestations_ok" if ok else f"attestations_failed.{reason}")
        if backend is not None:
            self._count(
                f"family.{backend.family}.attestations_ok"
                if ok
                else f"family.{backend.family}.attestations_failed.{reason}"
            )
            if self.on_verdict is not None:
                self.on_verdict(
                    self, ip_address, backend.family, ok, reason,
                    backend.verdict_time,
                )
        return AdmissionVerdict(ip_address, ok, reason, detail)

    def _apply_admission(
        self, ip_address: str, verdict: AdmissionVerdict
    ) -> AdmissionVerdict:
        """State transition for one attestation verdict: admit on pass,
        evict/reject (with the verdict's reason code) on fail."""
        backend = self._backends[ip_address]
        if verdict.ok:
            if backend.state in ("pending", "admitted"):
                if backend.state == "pending":
                    self._count(f"admissions.{backend.family}")
                backend.state = "admitted"
                backend.consecutive_failures = 0
        elif backend.state in ("admitted", "draining"):
            self.evict(ip_address, verdict.reason, verdict.detail)
        elif backend.state == "pending":
            backend.state = "rejected"
            self._count(f"admissions_rejected.{verdict.reason}")
        return verdict

    def attest_and_admit(self, ip_address: str) -> AdmissionVerdict:
        """Attest; admit on pass, evict/reject (with the verdict's
        reason code) on fail."""
        if ip_address not in self._backends:
            raise GatewayError("unknown_backend", ip_address)
        return self._apply_admission(ip_address, self.attest_backend(ip_address))

    def attest_and_admit_many(self, ip_addresses) -> list:
        """Group :meth:`attest_and_admit`: one verify-farm settlement
        covers the whole round's signature checks."""
        ips = list(ip_addresses)
        for ip_address in ips:
            if ip_address not in self._backends:
                raise GatewayError("unknown_backend", ip_address)
        return [
            self._apply_admission(ip_address, verdict)
            for ip_address, verdict in zip(ips, self.attest_many(ips))
        ]

    def accept_gossip(self, record, max_staleness: float) -> bool:
        """Apply a verdict gossiped by a peer gateway (DESIGN.md
        invariant 14: never honored past its TTL or outside this
        gateway's family policy).

        *record* carries ``backend_ip``, ``family``, ``ok``, ``reason``
        and the **origin's** ``verdict_time`` — freshness is judged
        against when the origin verified, not when the gossip arrived,
        so TTL expiry stays fleet-uniform.  A record is honored only if

        * the backend is registered here under the same family,
        * its age is within ``min(verdict_ttl, max_staleness)``,
        * the family is admissible under *this* gateway's policy
          (not revoked, inside ``allowed_families``), and
        * it is newer than the verdict this gateway already holds.

        Passing records admit pending backends (one re-attestation
        anywhere admits fleet-wide); failing records evict, propagating
        the origin's reason code.  Returns whether it was applied."""
        now = self.network.clock.now
        backend = self._backends.get(record.backend_ip)
        if backend is None:
            self._count("gossip.rejected.unknown_backend")
            return False
        if record.family != backend.family:
            self._count("gossip.rejected.family_mismatch")
            return False
        age = now - record.verdict_time
        if age < 0 or age > min(self.verdict_ttl, max_staleness):
            self._count("gossip.rejected.stale")
            return False
        if record.family in self.revoked_families or (
            self.allowed_families is not None
            and record.family not in self.allowed_families
        ):
            self._count("gossip.rejected.family_not_allowed")
            return False
        if (
            backend.verdict_time is not None
            and record.verdict_time <= backend.verdict_time
        ):
            self._count("gossip.rejected.older")
            return False
        backend.verdict_ok = record.ok
        backend.verdict_reason = record.reason
        backend.verdict_time = record.verdict_time
        self._count("gossip.applied")
        if record.ok:
            if backend.state == "pending":
                backend.state = "admitted"
                backend.consecutive_failures = 0
                self._count(f"admissions.{backend.family}")
                self._count("gossip.admissions")
        elif backend.active():
            self.evict(record.backend_ip, record.reason, "gossiped verdict")
        return True

    def admit_all(self) -> List[AdmissionVerdict]:
        """Attest every pending backend (initial fleet bring-up)."""
        return [
            self.attest_and_admit(ip)
            for ip in sorted(self._backends)
            if self._backends[ip].state == "pending"
        ]

    def evict(self, ip_address: str, reason: str, detail: str = "") -> None:
        """Stop routing to a backend and sever its sessions."""
        backend = self._backends.get(ip_address)
        if backend is None or backend.state in ("evicted", "retired"):
            return
        backend.state = "evicted"
        backend.verdict_ok = False
        backend.verdict_reason = reason
        self._count(f"evictions.{reason}")
        self._count(f"family.{backend.family}.evictions.{reason}")
        self._sever_sessions(ip_address)

    def revoke_family(self, family, reason: str = "family_not_allowed") -> None:
        """Fleet-wide family revocation (e.g. an architectural break
        disclosed for one vendor's TEE): remove *family* from the
        admissible set — its backends fail re-attestation with
        ``family_not_allowed`` from now on — and evict every active
        backend of that family immediately."""
        family = str(family)
        self.revoked_families.add(family)
        for ip_address in sorted(self._backends):
            backend = self._backends[ip_address]
            if backend.family == family and backend.active():
                self.evict(
                    ip_address, reason, f"family {family} revoked fleet-wide"
                )

    def set_family_tcb_floor(self, family, minimum_tcb) -> None:
        """Mandate a per-family TCB floor; backends of *family* whose
        platform TCB is older fail their next re-attestation with the
        family-scoped ``family_tcb_floor`` code."""
        self.family_tcb_floors[str(family)] = minimum_tcb

    def mark_draining(self, ip_address: str) -> None:
        """No new sessions; existing sessions keep being served."""
        backend = self._backends.get(ip_address)
        if backend is not None and backend.state == "admitted":
            backend.state = "draining"
            self._count("drains_started")

    def retire(self, ip_address: str) -> None:
        """Final removal after a drain: sever whatever sessions remain."""
        backend = self._backends.get(ip_address)
        if backend is None or backend.state == "retired":
            return
        backend.state = "retired"
        backend.verdict_ok = False
        self._count("retirements")
        self._sever_sessions(ip_address)

    def close_session(self, session_id) -> None:
        """Forget a finished session's affinity (storm workloads close
        sessions explicitly so affinity memory stays bounded at
        million-session scale)."""
        if self._affinity.pop(session_id, None) is not None:
            self._count("sessions_closed")

    def _sever_sessions(self, ip_address: str) -> None:
        severed = [
            sid for sid, ip in self._affinity.items() if ip == ip_address
        ]
        for sid in severed:
            del self._affinity[sid]
        if severed:
            self._count("sessions_severed", len(severed))

    # -- routing ----------------------------------------------------

    def _handle(self, payload: bytes, context) -> bytes:
        try:
            message = encoding.decode(payload)
        except ValueError:
            self._count("requests_malformed")
            raise GatewayError("malformed_request") from None
        if not isinstance(message, dict):
            self._count("requests_malformed")
            raise GatewayError("malformed_request")
        message_type = message.get("type")
        if message_type == "client_hello":
            return self._route_new_session(payload, message)
        if message_type == "record":
            return self._route_record(message, payload)
        self._count("requests_malformed")
        raise GatewayError("malformed_request", f"type={message_type!r}")

    def _session_tier(self, message: Optional[dict]) -> str:
        """The effective tier of a hello: its cleartext ``tier`` tag if
        the gateway knows that tier, the default tier otherwise."""
        tier = (message or {}).get("tier") or self.default_tier
        if tier not in self.tier_families:
            tier = self.default_tier
        return tier

    def _route_new_session(self, payload: bytes,
                           message: Optional[dict] = None) -> bytes:
        now = self.network.clock.now
        tier = self._session_tier(message)
        tier_allowed = self.tier_families.get(tier)
        candidates = [
            self._backends[ip]
            for ip in sorted(self._backends)
            if self._backends[ip].admittable(now, self.verdict_ttl)
            and (tier_allowed is None
                 or self._backends[ip].family in tier_allowed)
        ]
        if not candidates:
            self._count("routing_failed.no_healthy_backend")
            self._count(f"tier.{tier}.routing_failed")
            raise GatewayError("no_healthy_backend", f"tier={tier}")
        attempts = 0
        for backend in self._preference_order(candidates):
            if attempts >= self.max_retries:
                break
            if not backend.active():  # evicted by an earlier attempt
                continue
            attempts += 1
            try:
                raw, elapsed = self._forward(backend, payload)
            except ConnectionError as exc:
                self.evict(backend.ip_address, "backend_unreachable", str(exc))
                self._count("retries")
                continue
            response = encoding.decode(raw)
            session_id = (
                response.get("session_id") if isinstance(response, dict) else None
            )
            if session_id is not None:
                self._affinity[session_id] = backend.ip_address
            self._count("sessions_opened")
            self._count(f"tier.{tier}.sessions_opened")
            return raw
        self._count("routing_failed.no_healthy_backend")
        self._count(f"tier.{tier}.routing_failed")
        raise GatewayError(
            "no_healthy_backend", f"all forward attempts failed (tier={tier})"
        )

    def _route_record(self, message: dict, payload: bytes) -> bytes:
        session_id = message.get("session_id")
        backend_ip = self._affinity.get(session_id)
        if backend_ip is None:
            self._count("records_severed")
            raise GatewayError("session_severed")
        backend = self._backends.get(backend_ip)
        if backend is None or not backend.active():
            self._affinity.pop(session_id, None)
            self._count("records_severed")
            raise GatewayError("session_severed", backend_ip)
        try:
            raw, _elapsed = self._forward(backend, payload)
        except ConnectionError as exc:
            self.evict(backend_ip, "backend_unreachable", str(exc))
            raise GatewayError("backend_unreachable", str(exc)) from exc
        return raw

    def _forward(self, backend: BackendState, payload: bytes) -> Tuple[bytes, float]:
        if backend.state == "retired":  # accounting guard; never routed
            backend.requests_after_retired += 1
        with self.network.measure() as scope:
            raw = self.host.request(backend.ip_address, HTTPS_PORT, payload)
        elapsed = scope.elapsed
        backend.requests_forwarded += 1
        if backend.ewma_latency is None:
            backend.ewma_latency = elapsed
        else:
            backend.ewma_latency = 0.8 * backend.ewma_latency + 0.2 * elapsed
        self._route_log.append((backend.ip_address, elapsed))
        self._count("requests_routed")
        return raw, elapsed

    def _preference_order(self, candidates: List[BackendState]) -> List[BackendState]:
        if self.balancer == "round_robin":
            self._rr_cursor += 1
            pivot = self._rr_cursor % len(candidates)
            return candidates[pivot:] + candidates[:pivot]
        if self.balancer == "least_outstanding":
            return sorted(
                candidates,
                key=lambda b: (
                    b.server.outstanding if b.server is not None else 0,
                    b.ip_address,
                ),
            )
        # weighted_latency: prefer the lowest recent forward latency;
        # unmeasured backends first so every backend gets sampled.
        return sorted(
            candidates,
            key=lambda b: (
                b.ewma_latency if b.ewma_latency is not None else -1.0,
                b.ip_address,
            ),
        )

    # -- instrumentation --------------------------------------------

    def take_routes(self) -> List[Tuple[str, float]]:
        """Drain the (backend_ip, elapsed) log of forwards since the
        last call — the workload replays these against each backend's
        kernel :class:`Server` to model contention."""
        routes, self._route_log = self._route_log, []
        return routes

    def _count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def counters_snapshot(self) -> Dict[str, int]:
        """Sorted counters in the ``attest/trace`` style, including the
        per-backend post-retirement forward counts (must stay 0)."""
        out = dict(self.counters)
        for ip in sorted(self._backends):
            backend = self._backends[ip]
            out[f"backend.{ip}.requests_forwarded"] = backend.requests_forwarded
            out[f"backend.{ip}.requests_after_retired"] = (
                backend.requests_after_retired
            )
        out["sessions_active"] = len(self._affinity)
        return {key: out[key] for key in sorted(out)}
