"""Fleet provisioning: signed delta updates across the gateway mesh.

The last mile of "confidential VMs for the masses": one measured build
has to reach a thousand nodes without the fleet ever serving traffic
from a machine whose new software is not yet attested.  A
:class:`FleetProvisioner` drives the full pipeline as a kernel process:

discover → build → deliver → apply → re-attest → admit

* **discover** — enumerate every backend the mesh routes to (the
  deployment's real SNP nodes plus the lite fleet's mixed families),
  grouped by region;
* **build** — compute the block-level delta between the installed and
  target builds (:func:`repro.build.delta.compute_delta`) and publish
  it on the signed, epoch-versioned update channel
  (:class:`repro.build.channel.UpdateChannel`);
* **deliver / apply** — every node runs the client pipeline
  (:class:`repro.build.channel.UpdateClient`): pinned-key signature,
  epoch monotonicity, base-measurement chain, blob digest, block
  hashes, then the delta apply that re-roots the verity tree and
  replays the signed target measurement.  A shared content-addressed
  apply cache deduplicates the patch + re-root across nodes on the
  same base — verification still runs per node;
* **re-attest / admit** — regions update serially, nodes inside a
  region roll one at a time: drained on every gateway, retired,
  relaunched at the new measurement, re-admitted by the SP, attested
  by the home gateway, and gossiped mesh-wide.  A replacement is
  routable only after its *new* measurement verifies — the gateway's
  admission machinery (``pending`` until a fresh verdict) enforces the
  zero-unattested-requests property rather than the provisioner
  promising it.

Old measurements are revoked (globally and per family) only after the
whole fleet has moved, so a region mid-rollout keeps serving from
still-golden bases — DESIGN.md invariant 17's "reachable from golden
via signed-manifest epochs", operationally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..attest import TeeFamily
from ..attest.trace import get_tracer
from ..build.channel import SignedManifest, UpdateChannel, UpdateClient
from ..build.delta import compute_delta
from ..core.deployment import AppFactory, default_app
from ..core.rollout import RolloutError, replace_node, update_golden_set
from ..core.trusted_registry import StaticRegistry
from ..crypto.keys import PrivateKey
from ..sim.kernel import sleep
from .drain import _key_holder_ip
from .mesh import GatewayMesh, LiteFleet


@dataclass
class ProvisionReport:
    """Per-phase counters for one fleet provisioning run."""

    image_name: str = ""
    base_version: str = ""
    target_version: str = ""
    old_measurement: str = ""
    new_measurement: str = ""
    epoch: int = 0
    #: Phase counters, in pipeline order.
    discovered: int = 0
    delivered: int = 0
    verified: int = 0
    applied: int = 0
    apply_cache_hits: int = 0
    reattested: int = 0
    admitted: int = 0
    #: Bytes actually shipped (encoded delta blob × deliveries) vs the
    #: bytes a full-image push would have moved.
    delta_bytes_shipped: int = 0
    full_bytes_equivalent: int = 0
    #: Requests any gateway routed to a retired backend during the run
    #: (the zero-unattested property; must be 0).
    requests_to_unattested: int = 0
    regions: List[dict] = field(default_factory=list)
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def sim_seconds(self) -> float:
        return self.finished_at - self.started_at

    @property
    def delta_ratio(self) -> float:
        """Shipped bytes as a fraction of a full-image push."""
        if not self.full_bytes_equivalent:
            return 0.0
        return self.delta_bytes_shipped / self.full_bytes_equivalent

    def phase_counters(self) -> Dict[str, int]:
        """The per-phase counter summary, in pipeline order."""
        return {
            "discovered": self.discovered,
            "delivered": self.delivered,
            "verified": self.verified,
            "applied": self.applied,
            "apply_cache_hits": self.apply_cache_hits,
            "reattested": self.reattested,
            "admitted": self.admitted,
        }

    def to_dict(self) -> dict:
        """A plain-data (JSON-ready) snapshot."""
        return {
            "image": self.image_name,
            "base_version": self.base_version,
            "target_version": self.target_version,
            "old_measurement": self.old_measurement,
            "new_measurement": self.new_measurement,
            "epoch": self.epoch,
            "phases": self.phase_counters(),
            "delta_bytes_shipped": self.delta_bytes_shipped,
            "full_bytes_equivalent": self.full_bytes_equivalent,
            "delta_ratio": self.delta_ratio,
            "requests_to_unattested": self.requests_to_unattested,
            "regions": list(self.regions),
            "sim_seconds": self.sim_seconds,
        }


class FleetProvisioner:
    """Drives signed delta updates across a :class:`GatewayMesh`.

    One provisioner serves one deployment; its :class:`UpdateChannel`
    is created on first use and keeps the monotonic epoch across
    successive :meth:`provision` runs (so a re-served old manifest is a
    ``stale_epoch`` everywhere, forever).
    """

    def __init__(
        self,
        mesh: GatewayMesh,
        deployment,
        signing_key: PrivateKey,
        lite_fleet: Optional[LiteFleet] = None,
    ):
        self.mesh = mesh
        self.deployment = deployment
        self.lite_fleet = lite_fleet
        self.channel = UpdateChannel(
            signing_key, image_name=deployment.build.image.name
        )
        self.trusted_key = self.channel.signer
        #: Content-addressed apply results shared across every node of
        #: every run (keyed by delta digest + base measurement).
        self._apply_cache: Dict[bytes, object] = {}

    # -- phases ------------------------------------------------------

    def _discover(self) -> Dict[Optional[str], dict]:
        """Group the fleet by region: the deployment's SNP node indices
        and the lite fleet's backends."""
        plan: Dict[Optional[str], dict] = {}
        for index, deployed in enumerate(self.deployment.nodes):
            ip_address = deployed.host.ip_address
            region = self.mesh._backend_region(ip_address)
            entry = plan.setdefault(region, {"nodes": [], "lite": []})
            entry["nodes"].append(index)
        if self.lite_fleet is not None:
            deployment_ips = {
                deployed.host.ip_address for deployed in self.deployment.nodes
            }
            for backend in self.lite_fleet.backends:
                if backend.ip_address in deployment_ips:
                    continue
                entry = plan.setdefault(
                    backend.region, {"nodes": [], "lite": []}
                )
                entry["lite"].append(backend)
        return plan

    def _node_update(self, installed, signed: SignedManifest, blob: bytes,
                     report: ProvisionReport, node_measurement=None):
        """One node's deliver → verify → apply, with the shared cache."""
        tracer = get_tracer()
        report.delivered += 1
        report.delta_bytes_shipped += len(blob)
        report.full_bytes_equivalent += len(installed.disk_image)
        client = UpdateClient(
            self.trusted_key, epoch=signed.manifest.epoch - 1,
            apply_cache=self._apply_cache,
        )
        hits_before = tracer.update.apply_cache_hits
        applied = client.apply(
            installed, signed, blob, node_measurement=node_measurement
        )
        report.verified += 1
        report.applied += 1
        report.apply_cache_hits += tracer.update.apply_cache_hits - hits_before
        return applied

    def provision(
        self,
        target_build,
        app_factory: AppFactory = default_app,
        node_registry=None,
        drain_poll: float = 0.05,
        drain_deadline: float = 60.0,
        concurrency: int = 4,
        report: Optional[ProvisionReport] = None,
        regions: Optional[List[str]] = None,
    ):
        """Kernel process: move the whole fleet to *target_build*.

        Regions update serially; inside a region, deployment nodes roll
        one at a time (drain → retire → replace → SP re-admission →
        home-gateway attestation → gossip), then the region's lite
        backends relaunch at the new token and re-attest the same way.
        Raises :class:`RolloutError` if any replacement fails
        admission; raises :class:`~repro.build.channel.ChannelError` if
        any node rejects the update — in both cases the fleet keeps
        serving from the old, still-golden measurement.
        """
        deployment, mesh = self.deployment, self.mesh
        if deployment.sp is None or deployment.provisioning is None:
            raise RolloutError("fleet not provisioned; nothing to update")
        base_build = deployment.build
        old_measurement = bytes(base_build.expected_measurement)
        new_measurement = bytes(target_build.expected_measurement)
        if old_measurement == new_measurement:
            raise RolloutError(
                "target build has the identical measurement; nothing to do"
            )
        clock = mesh.network.clock
        if report is None:
            report = ProvisionReport()
        report.image_name = base_build.image.name
        report.base_version = base_build.image.version
        report.target_version = target_build.image.version
        report.old_measurement = old_measurement.hex()
        report.new_measurement = new_measurement.hex()
        report.started_at = clock.now

        # -- discover ------------------------------------------------
        plan = self._discover()
        report.discovered = sum(
            len(entry["nodes"]) + len(entry["lite"]) for entry in plan.values()
        )

        # -- build + publish -----------------------------------------
        delta = compute_delta(base_build.image, target_build.image)
        signed = self.channel.publish(delta, old_measurement, new_measurement)
        report.epoch = signed.manifest.epoch
        blob = self.channel.blob(signed.manifest.delta_digest)

        # Widen trust to the target measurement *before* any node moves
        # (both must be golden while the fleet is mixed).
        registry = node_registry
        if registry is None:
            registry = StaticRegistry(
                golden={
                    deployment.domain: [old_measurement, new_measurement]
                }
            )
        for deployed in deployment.nodes:
            deployed.node.trusted_registry = registry
        if new_measurement not in deployment.sp.expected_measurements:
            deployment.sp.expected_measurements.append(new_measurement)
        gateways = [mesh.gateways[name] for name in sorted(mesh.gateways)]
        for gateway in gateways:
            gateway.golden_measurements = sorted(
                {*gateway.golden_measurements, new_measurement}
            )

        lite = self.lite_fleet
        old_snp_goldens = set(lite.snp_goldens()) if lite is not None else set()
        old_family_goldens = (
            {
                family: set(goldens)
                for family, goldens in lite._family_goldens.items()
            }
            if lite is not None
            else {}
        )
        retired_requests_before = self._retired_requests()

        update_regions = regions
        if update_regions is None:
            update_regions = sorted(
                (region for region in plan if region is not None),
                key=str,
            )
            if None in plan:
                update_regions.append(None)

        # -- deliver / apply / re-attest / admit, region-serial ------
        for region in update_regions:
            entry = plan.get(region)
            if entry is None:
                continue
            region_started = clock.now
            replaced: List[dict] = []

            for index in entry["nodes"]:
                ip_address = deployment.nodes[index].host.ip_address
                node_started = clock.now
                applied = self._node_update(
                    base_build.image, signed, blob, report,
                    node_measurement=old_measurement,
                )
                if applied.disk_image != target_build.image.disk_image:
                    raise RolloutError(
                        f"applied image for {ip_address} is not the target"
                    )
                for gateway in gateways:
                    gateway.mark_draining(ip_address)
                server = mesh._servers.get(ip_address)
                drain_started = clock.now
                rounds = 0
                while server is not None and server.outstanding > 0:
                    if clock.now - drain_started >= drain_deadline:
                        break
                    rounds += 1
                    yield sleep(drain_poll)
                for gateway in gateways:
                    gateway.retire(ip_address)
                key_holder = _key_holder_ip(deployment, exclude_ip=ip_address)
                replace_node(
                    deployment, index, target_build, app_factory,
                    node_registry=registry,
                )
                deployment.sp.admit_node(
                    ip_address, key_holder,
                    deployment.provisioning.certificate_chain,
                )
                if lite is not None:
                    # The replacement re-bound port 443; restore the
                    # lite dispatcher in front of its fresh TLS handler.
                    lite.adopt_node(deployment.nodes[index])
                mesh._servers.pop(ip_address, None)
                mesh.add_backend(
                    ip_address, concurrency=concurrency, region=region
                )
                home = mesh.home_gateway(ip_address)
                verdict = home.attest_and_admit(ip_address)
                report.reattested += 1
                if not verdict.ok:
                    raise RolloutError(
                        f"replacement node {ip_address} failed admission: "
                        f"{verdict.reason} ({verdict.detail})"
                    )
                report.admitted += 1
                mesh.flush_gossip()
                replaced.append(
                    {
                        "ip_address": ip_address,
                        "kind": "deployment",
                        "drain_poll_rounds": rounds,
                        "sim_seconds": clock.now - node_started,
                    }
                )

            for backend in entry["lite"]:
                ip_address = backend.ip_address
                node_started = clock.now
                self._node_update(
                    base_build.image, signed, blob, report,
                    node_measurement=old_measurement,
                )
                for gateway in gateways:
                    gateway.mark_draining(ip_address)
                server = mesh._servers.get(ip_address)
                drain_started = clock.now
                rounds = 0
                while server is not None and server.outstanding > 0:
                    if clock.now - drain_started >= drain_deadline:
                        break
                    rounds += 1
                    yield sleep(drain_poll)
                for gateway in gateways:
                    gateway.retire(ip_address)
                assert lite is not None
                lite.update_backend(backend, token=new_measurement)
                mesh._servers.pop(ip_address, None)
                mesh.add_backend(
                    ip_address, concurrency=concurrency,
                    family=backend.family, region=region,
                )
                # The updated workload's golden joined the lite fleet's
                # sets; sync it to every shard before re-attesting.
                snp_goldens = lite.snp_goldens()
                family_policies = lite.family_policies()
                for gateway in gateways:
                    gateway.golden_measurements = sorted(
                        {*gateway.golden_measurements, *snp_goldens}
                    )
                    gateway.family_policies.update(family_policies)
                home = mesh.home_gateway(ip_address)
                verdict = home.attest_and_admit(ip_address)
                report.reattested += 1
                if not verdict.ok:
                    raise RolloutError(
                        f"updated backend {ip_address} failed admission: "
                        f"{verdict.reason} ({verdict.detail})"
                    )
                report.admitted += 1
                mesh.flush_gossip()
                replaced.append(
                    {
                        "ip_address": ip_address,
                        "kind": f"lite-{backend.family}",
                        "drain_poll_rounds": rounds,
                        "sim_seconds": clock.now - node_started,
                    }
                )

            report.regions.append(
                {
                    "region": region,
                    "replacements": replaced,
                    "sim_seconds": clock.now - region_started,
                }
            )

        # -- finalize: revoke the old world --------------------------
        update_golden_set(deployment, old_measurement, new_measurement)
        deployment.build = target_build
        revoked = {old_measurement}
        if lite is not None:
            live = {bytes(b.measurement) for b in lite.backends}
            for family, goldens in old_family_goldens.items():
                for golden in goldens:
                    if golden not in live:
                        lite.retire_measurement(family, golden)
            snp_family = str(TeeFamily.SEV_SNP)
            for golden in old_snp_goldens:
                if golden not in live:
                    lite.retire_measurement(snp_family, golden)
                    revoked.add(golden)
            family_policies = lite.family_policies()
            snp_goldens = set(lite.snp_goldens())
        else:
            family_policies = None
            snp_goldens = set()
        for gateway in gateways:
            gateway.golden_measurements = sorted(
                {new_measurement, *snp_goldens}
            )
            gateway.revoked_measurements = sorted(
                {*gateway.revoked_measurements, *revoked}
            )
            if family_policies is not None:
                gateway.family_policies.update(family_policies)

        report.requests_to_unattested = (
            self._retired_requests() - retired_requests_before
        )
        report.finished_at = clock.now
        return report

    # -- instrumentation --------------------------------------------

    def _retired_requests(self) -> int:
        """Total requests any gateway routed to a retired backend."""
        total = 0
        for name in sorted(self.mesh.gateways):
            for counter, value in (
                self.mesh.gateways[name].counters_snapshot().items()
            ):
                if counter.endswith(".requests_after_retired"):
                    total += value
        return total
