"""End-user traffic generators on the event kernel.

Each simulated user is a real :class:`~repro.core.browser.Browser` with
the Revelio extension attached: a session opens a fresh browser context,
does a *first visit* (attested TLS — well-known fetch, KDS, pipeline
verification, key pinning), then cached *revisits* separated by
exponential think time.  Sessions run concurrently; a visit's virtual
cost is measured in an isolated clock scope, the backend's share is
replayed against that backend's kernel :class:`Server` (modelling its
concurrency limit and queueing), and the client-side remainder is slept
— so tail latency reflects real contention.

Two drive modes: *open-loop* (Poisson arrivals at a target session
rate, independent of system state) and *closed-loop* (a fixed worker
population, each running sessions back to back).
"""

from __future__ import annotations

from typing import List, Optional

from ..sim.kernel import EventKernel, sleep, spawn, wait
from ..sim.metrics import MetricsRegistry
from ..sim.resources import FifoQueue
from ..sim.rng import SimRng
from .gateway import FleetGateway


class UserPool:
    """A fixed population of browsers, checked out per session.

    Users are created once (host + extension + browser) and reused —
    their KDS/VCEK caches persist across sessions, exactly like a real
    returning user's extension storage.
    """

    def __init__(
        self,
        deployment,
        kernel: EventKernel,
        size: int,
        expected_measurements=None,
        reattest_on_rekey: bool = True,
        ip_prefix: str = "10.2",
        extension_setup=None,
    ):
        self.size = size
        self._queue = FifoQueue(kernel, name="user-pool")
        self.browsers: List = []
        for index in range(size):
            ip_address = f"{ip_prefix}.{index // 250}.{index % 250 + 1}"
            browser, extension = deployment.make_user(
                name=f"user-{index}",
                ip_address=ip_address,
                reattest_on_rekey=reattest_on_rekey,
            )
            if expected_measurements is not None:
                extension.register_site(
                    deployment.domain,
                    expected_measurements=expected_measurements,
                )
            # Heterogeneous fleets need more than a flat golden set:
            # the hook registers per-family goldens / trust contexts.
            if extension_setup is not None:
                extension_setup(extension)
            self.browsers.append(browser)
            self._queue.put(browser)

    def checkout(self):
        """``yield from`` this; waits until a browser is free."""
        browser = yield from self._queue.get()
        return browser

    def checkin(self, browser) -> None:
        self._queue.put(browser)


class FleetWorkload:
    """Session generators driving a gateway-fronted fleet."""

    def __init__(
        self,
        kernel: EventKernel,
        gateway: FleetGateway,
        pool: UserPool,
        url: Optional[str] = None,
        metrics: Optional[MetricsRegistry] = None,
        rng: Optional[SimRng] = None,
        think_time_mean: float = 2.0,
        revisits_per_session: int = 3,
        tier_weights=None,
    ):
        self.kernel = kernel
        self.gateway = gateway
        self.pool = pool
        self.url = url or f"https://{gateway.domain}/"
        rng = rng or SimRng(0)
        self._think_rng = rng.fork("think")
        self._arrival_rng = rng.fork("arrivals")
        #: tier name -> weight; each session draws its sensitivity tier
        #: from this distribution and tags the browser's client hello.
        #: ``None`` keeps sessions untagged (the gateway's default tier).
        self.tier_weights = dict(tier_weights) if tier_weights else None
        self._tier_rng = rng.fork("tiers")
        self.metrics = metrics if metrics is not None else MetricsRegistry(
            kernel.clock, rng=rng.fork("metrics")
        )
        self.think_time_mean = think_time_mean
        self.revisits_per_session = revisits_per_session
        self.sessions_completed = 0
        self._sessions_remaining = 0

    def _pick_tier(self):
        """Draw a session tier from ``tier_weights`` (None = untagged)."""
        if not self.tier_weights:
            return None
        total = sum(self.tier_weights.values())
        draw = self._tier_rng.random() * total
        cumulative = 0.0
        for tier, weight in sorted(self.tier_weights.items()):
            cumulative += weight
            if draw < cumulative:
                return tier
        return sorted(self.tier_weights)[-1]

    # -- one visit --------------------------------------------------

    def _visit(self, browser, kind: str, tier=None):
        network = self.gateway.network
        started = network.clock.now
        blocked = failed = False
        with network.measure() as scope:
            try:
                result = browser.navigate(self.url)
                blocked = result.blocked
            except ConnectionError:
                failed = True
        # Replay each backend's share against its service station (the
        # queueing model), then sleep the client-side remainder.
        replayed = 0.0
        for backend_ip, share in self.gateway.take_routes():
            backend = self.gateway.backends.get(backend_ip)
            if backend is not None and backend.server is not None:
                yield from backend.server.process(share)
            elif share > 0:
                yield sleep(share)
            replayed += share
        remainder = scope.elapsed - replayed
        if remainder > 0:
            yield sleep(remainder)

        latency = network.clock.now - started
        metrics = self.metrics
        metrics.increment("requests_total")
        if failed:
            metrics.increment("requests_failed")
            return
        if blocked:
            metrics.increment("requests_blocked")
            return
        metrics.increment("requests_ok")
        metrics.reservoir("latency.all").observe(latency)
        metrics.reservoir(f"latency.{kind}").observe(latency)
        if tier is not None:
            metrics.reservoir(f"latency.tier.{tier}").observe(latency)
        metrics.window("throughput").record()

    def _session(self, browser):
        tier = self._pick_tier()
        browser.session_tier = tier
        browser.new_session()
        yield from self._visit(browser, "first_visit", tier=tier)
        for _ in range(self.revisits_per_session):
            yield sleep(self._think_rng.expovariate(1.0 / self.think_time_mean))
            yield from self._visit(browser, "revisit", tier=tier)
        self.sessions_completed += 1

    def _session_with_checkin(self, browser):
        try:
            yield from self._session(browser)
        finally:
            self.pool.checkin(browser)

    # -- drive modes ------------------------------------------------

    def open_loop(self, sessions: int, arrival_rate: float):
        """Kernel process: Poisson session arrivals at *arrival_rate*
        per virtual second, then wait for every session to finish."""
        processes = []
        for index in range(sessions):
            yield sleep(self._arrival_rng.expovariate(arrival_rate))
            browser = yield from self.pool.checkout()
            process = yield spawn(
                self._session_with_checkin(browser), name=f"session-{index}"
            )
            processes.append(process)
        for process in processes:
            yield wait(process)

    def closed_loop(self, sessions: int, workers: int):
        """Kernel process: *workers* concurrent users running sessions
        back to back until *sessions* have been generated."""
        self._sessions_remaining = sessions
        processes = []
        for index in range(workers):
            process = yield spawn(self._worker(), name=f"worker-{index}")
            processes.append(process)
        for process in processes:
            yield wait(process)

    def _worker(self):
        while self._sessions_remaining > 0:
            self._sessions_remaining -= 1
            browser = yield from self.pool.checkout()
            try:
                yield from self._session(browser)
            finally:
                self.pool.checkin(browser)

    # -- results ----------------------------------------------------

    def snapshot(self) -> dict:
        """Workload metrics + gateway counters, sorted and JSON-safe."""
        out = dict(self.metrics.snapshot())
        for key, value in self.gateway.counters_snapshot().items():
            out[f"gateway.{key}"] = value
        out["sessions_completed"] = self.sessions_completed
        return {key: out[key] for key in sorted(out)}
