"""Fault injection for the gateway path and backend storage.

Failures from the operational threat model, each surfacing a stable
reason code or a typed storage error:

* :func:`kill_backend` — the VM's host vanishes mid-flight (hardware
  failure / hypervisor kill); in-flight forwards raise, the gateway
  evicts with ``backend_unreachable`` and retries on a healthy peer.
* :class:`KdsBlackhole` — AMD's KDS becomes unreachable during
  re-attestation; the gateway cannot confirm verdict freshness and
  evicts with ``kds_unreachable``.
* :func:`raise_tcb_floor` — the platform operator mandates a newer TCB
  than a backend reports (stale firmware); the next re-attestation
  fails with the pipeline's ``tcb_too_old``.
* :func:`revoke_family` — an architectural break is disclosed for one
  TEE family in a mixed fleet; its active backends are evicted at once
  and its re-attestations fail with ``family_not_allowed``.
* :func:`raise_family_tcb_floor` — one family's platform firmware is
  mandated newer; its backends fail re-attestation with the
  family-scoped ``family_tcb_floor``.
* :func:`slow_disk` — a degrading physical device: a ``delay`` target
  is spliced over a VM volume, charging per-block latency to the sim
  clock (the gateway sees the slow backend through its tail latency).
* :func:`corrupt_disk` — offline tampering with the host-controlled
  disk: a bit flip inside a named partition's extent; the next read
  through a verity/crypt stack rejects it.

Every injector returns a :class:`FaultHandle` whose ``revert()``
symmetrically undoes the fault mid-run (the ``repro.scenarios``
injector registry builds on this to make every campaign attack
revertible mid-storm).  Reverting restores *pre-attack admission
behaviour* — an evicted backend still needs a re-registration +
re-attestation to serve again, exactly like a recovered machine."""

from __future__ import annotations

from typing import Callable, Optional

from ..attest import AttestationVerifier
from ..net.simnet import NetworkError
from ..storage.dm import DelayTarget
from ..storage.partition import PartitionTable
from .gateway import FleetGateway

_MISSING = object()


class FaultHandle:
    """A revertible fault: ``revert()`` undoes the injection once."""

    def __init__(self, name: str, undo: Optional[Callable[[], None]] = None):
        self.name = name
        self.active = True
        self._undo = undo

    def revert(self) -> None:
        """Undo the fault (idempotent; later calls are no-ops)."""
        if not self.active:
            return
        self.active = False
        if self._undo is not None:
            self._undo()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "active" if self.active else "reverted"
        return f"<FaultHandle {self.name} {state}>"


def kill_backend(gateway: FleetGateway, ip_address: str) -> FaultHandle:
    """Detach a backend's host from the network without telling anyone.

    ``revert()`` re-attaches the same host (machine repaired, listeners
    intact); the gateway still holds its eviction until the backend is
    re-registered and re-attested."""
    host = gateway.network.host_at(ip_address)
    gateway.network.remove_host(ip_address)
    return FaultHandle(
        f"kill_backend:{ip_address}",
        lambda: gateway.network.attach_host(host),
    )


class KdsBlackhole:
    """A :class:`~repro.core.kds_client.KdsClient` stand-in whose
    fetches fail while ``active`` — the WAN path to AMD is down.
    Cache-served lookups still work (the point of the VCEK cache)."""

    def __init__(self, inner):
        self.inner = inner
        self.active = True
        #: Set by :func:`blackhole_kds` so :meth:`revert` can undo the
        #: gateway-side swap, not just clear the flag.
        self._restore: Optional[Callable[[], None]] = None

    @property
    def clock(self):
        return self.inner.clock

    @property
    def latency(self):
        return self.inner.latency

    @property
    def fetches(self):
        return self.inner.fetches

    @property
    def cache_hits(self):
        return self.inner.cache_hits

    @property
    def coalesced_hits(self):
        return self.inner.coalesced_hits

    @property
    def trust_anchor(self):
        return self.inner.trust_anchor

    def get_vcek(self, chip_id, tcb):
        if self.active:
            # Fail closed: no new round trips, and no joining an
            # in-flight response either — the WAN path is down, so only
            # the local cache may answer.
            key = (bytes(chip_id), tcb)
            if self.inner.cache_enabled and key in self.inner._vcek_cache:
                self.inner.cache_hits += 1
                return self.inner._vcek_cache[key]
            raise NetworkError("KDS black-holed (no route to kdsintf.amd.com)")
        return self.inner.get_vcek(chip_id, tcb)

    def cert_chain(self):
        if self.active:
            if self.inner.cache_enabled and self.inner._chain_cache is not None:
                self.inner.cache_hits += 1
                return self.inner._chain_cache
            if self.inner._bundled_chain is not None:
                return self.inner._bundled_chain
            raise NetworkError("KDS black-holed (no route to kdsintf.amd.com)")
        return self.inner.cert_chain()

    def revert(self) -> None:
        """Route to AMD restored: clear the flag and swap the gateway
        back onto its original client/verifier (when installed via
        :func:`blackhole_kds`)."""
        self.active = False
        if self._restore is not None:
            restore, self._restore = self._restore, None
            restore()


def blackhole_kds(gateway: FleetGateway,
                  clear_cache: bool = False) -> KdsBlackhole:
    """Swap the gateway's verifier onto a black-holed KDS client; the
    returned handle's ``active`` flag restores service when cleared and
    its ``revert()`` swaps the original client/verifier back in.
    With ``clear_cache`` the cached VCEKs are dropped too (e.g. the
    backend's TCB changed, so the cache can't answer) — only then does
    re-attestation actually fail with ``kds_unreachable``."""
    original_kds = gateway.kds
    original_verifier = gateway.verifier
    blackhole = KdsBlackhole(original_kds)
    if clear_cache:
        gateway.kds.clear_cache()
    gateway.kds = blackhole
    # Per-family trust contexts (TDX PCS, CCA anchors, e-vTPM) and the
    # verify farm survive the swap: only the WAN path to AMD is down.
    gateway.verifier = AttestationVerifier(
        blackhole,
        site="fleet-gateway",
        contexts=gateway.verifier.contexts,
        farm=gateway.verifier.farm,
    )

    def restore():
        gateway.kds = original_kds
        gateway.verifier = original_verifier

    blackhole._restore = restore
    return blackhole


def raise_tcb_floor(gateway: FleetGateway, minimum_tcb) -> FaultHandle:
    """Mandate a TCB floor for admission; backends reporting an older
    TCB fail their next re-attestation with ``tcb_too_old``.
    ``revert()`` restores the previous floor."""
    previous = gateway.minimum_tcb
    gateway.minimum_tcb = minimum_tcb

    def restore():
        gateway.minimum_tcb = previous

    return FaultHandle("raise_tcb_floor", restore)


def revoke_family(gateway: FleetGateway, family,
                  reason: str = "family_not_allowed") -> FaultHandle:
    """Revoke one TEE family fleet-wide (a disclosed architectural
    break): active backends of that family are evicted immediately with
    the family-scoped *reason* code, and every later re-attestation of
    the family fails closed with ``family_not_allowed``.

    ``revert()`` lifts the revocation (vendor fix rolled out): the
    family is admissible again, but each evicted backend still needs a
    re-registration + passing re-attestation to serve."""
    family = str(family)
    already_revoked = family in gateway.revoked_families
    gateway.revoke_family(family, reason=reason)

    def restore():
        if not already_revoked:
            gateway.revoked_families.discard(family)

    return FaultHandle(f"revoke_family:{family}", restore)


def raise_family_tcb_floor(gateway: FleetGateway, family,
                           minimum_tcb) -> FaultHandle:
    """Mandate a per-family platform TCB floor; backends of *family*
    reporting an older platform TCB fail their next re-attestation with
    the family-scoped ``family_tcb_floor``.  ``revert()`` lowers the
    floor back to its previous value (or removes it)."""
    family = str(family)
    previous = gateway.family_tcb_floors.get(family, _MISSING)
    gateway.set_family_tcb_floor(family, minimum_tcb)

    def restore():
        if previous is _MISSING:
            gateway.family_tcb_floors.pop(family, None)
        else:
            gateway.family_tcb_floors[family] = previous

    return FaultHandle(f"raise_family_tcb_floor:{family}", restore)


def slow_disk(vm, role: str, read_ms: float = 0.0,
              write_ms: float = 0.0) -> FaultHandle:
    """Degrade a VM volume: splice a ``delay`` target over the volume
    registered under *role*, charging per-block latency to the VM's
    storage meter (and so to the sim clock it is attached to).

    The handle exposes the injected target as ``target``; ``revert()``
    un-splices it, restoring the original volume."""
    volume = vm.storage.open(role)
    delayed = DelayTarget(
        volume,
        vm.storage.meter,
        read_delay=read_ms / 1000.0,
        write_delay=write_ms / 1000.0,
    )
    vm.storage.replace(role, delayed)
    handle = FaultHandle(
        f"slow_disk:{role}", lambda: vm.storage.replace(role, volume)
    )
    handle.target = delayed
    return handle


def corrupt_disk(vm, partition: str, block_index: int = 0,
                 byte_offset: int = 0, xor_mask: int = 0x01) -> FaultHandle:
    """Flip bits on the *raw host disk* inside the named partition's
    extent — the offline-tampering attack (paper §6.1.3), injected
    below every device-mapper layer.  Reads through a verity- or
    crypt-backed volume covering that extent subsequently fail (cold or
    warm: the mutation invalidates every cache above it).

    The handle exposes the absolute byte offset corrupted as
    ``offset``; ``revert()`` re-applies the XOR mask (a second mutation
    — caches above stay invalidated, but reads verify again)."""
    table = PartitionTable.read_from(vm.disk)
    entry = table.find(partition)
    if not (0 <= block_index < entry.num_blocks):
        raise ValueError(
            f"block {block_index} outside partition {partition!r} "
            f"({entry.num_blocks} blocks)"
        )
    absolute = (entry.first_block + block_index) * vm.disk.block_size + byte_offset
    vm.disk.corrupt(absolute, xor_mask)
    handle = FaultHandle(
        f"corrupt_disk:{partition}", lambda: vm.disk.corrupt(absolute, xor_mask)
    )
    handle.offset = absolute
    return handle
