"""The discrete-event kernel.

Processes are plain generators that yield *commands*:

``yield sleep(seconds)``
    Suspend for virtual time.

``yield wait(event_or_process)``
    Suspend until a :class:`SimEvent` fires (resumes with its value) or
    another :class:`SimProcess` finishes (resumes with its return
    value).  Waiting on something already finished resumes immediately.

``yield spawn(generator, name=...)``
    Start a concurrent child process; the parent resumes immediately
    with the child's :class:`SimProcess` handle (so it can later
    ``wait`` on it or ``interrupt`` it).

The kernel owns a single event heap keyed on ``(virtual time, sequence
number)`` over the shared :class:`repro.net.latency.SimClock`, which
makes every run fully deterministic: same seed, same interleaving.
Unhandled exceptions in a process propagate out of :meth:`EventKernel.run`
unless another process is waiting on it, in which case the exception is
re-raised in the waiter (structured error propagation).

The run loop is flattened for throughput: dispatch is keyed on the
command's concrete class (``command.__class__ is sleep``) instead of an
``isinstance`` chain, a process that sleeps again — by far the hottest
transition in open-loop storms — re-uses its just-popped heap slot via
``heapq.heapreplace`` (one sift instead of pop-plus-push), and event
waiters live in an insertion-ordered dict so an interrupt unlinks its
waiter in O(1) instead of ``list.remove``'s O(n).  :class:`KernelStats`
counts only deterministic quantities (steps, per-command counts, stale
heap entries, peak heap size); wall-clock rates belong to benchmarks.
"""

from __future__ import annotations

import heapq
from math import inf as _INF
from math import isfinite
from typing import Any, Dict, Generator, List, Optional, Tuple


class sleep:  # noqa: N801 - command, reads as a verb at yield sites
    """Command: suspend the yielding process for ``seconds`` of virtual time."""

    __slots__ = ("seconds",)

    def __init__(self, seconds: float):
        seconds = float(seconds)
        if seconds < 0:
            raise ValueError("cannot sleep for negative time")
        if not isfinite(seconds):
            # NaN passes every comparison-based guard and would corrupt
            # heap ordering; inf would wedge the run loop forever.
            raise ValueError(f"sleep duration must be finite, got {seconds!r}")
        self.seconds = seconds


class wait:  # noqa: N801
    """Command: suspend until an event fires or a process finishes."""

    __slots__ = ("target",)

    def __init__(self, target: "SimEvent | SimProcess"):
        self.target = target


class spawn:  # noqa: N801
    """Command: start a child process; parent resumes with its handle."""

    __slots__ = ("generator", "name")

    def __init__(self, generator: Generator, name: Optional[str] = None):
        self.generator = generator
        self.name = name


class Interrupt(Exception):
    """Thrown into a process by :meth:`SimProcess.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class KernelStats:
    """Deterministic counters for one :class:`EventKernel`.

    Everything here is a pure function of the simulated workload — no
    wall-clock reads — so snapshots are reproducible across runs and
    safe to embed in benchmark reports that must be byte-identical for
    the same seed.  Wall events/sec is a benchmark-side division:
    ``steps / wall_elapsed``.
    """

    __slots__ = (
        "steps",
        "sleeps",
        "waits",
        "spawns",
        "scheduled",
        "stale_entries",
        "peak_heap",
    )

    def __init__(self) -> None:
        self.steps = 0          # generator resumptions (events processed)
        self.sleeps = 0         # sleep commands dispatched
        self.waits = 0          # wait commands dispatched
        self.spawns = 0         # spawn commands dispatched
        self.scheduled = 0      # heap entries ever created
        self.stale_entries = 0  # entries dropped (interrupt/re-schedule)
        self.peak_heap = 0      # high-water heap length

    @property
    def stale_ratio(self) -> float:
        """Fraction of popped heap entries that were stale."""
        popped = self.steps + self.stale_entries
        return self.stale_entries / popped if popped else 0.0

    def snapshot(self) -> Dict[str, float]:
        """A sorted, JSON-friendly view of every counter."""
        return {
            "peak_heap": self.peak_heap,
            "scheduled": self.scheduled,
            "sleeps": self.sleeps,
            "spawns": self.spawns,
            "stale_entries": self.stale_entries,
            "stale_ratio": round(self.stale_ratio, 6),
            "steps": self.steps,
            "waits": self.waits,
        }


class SimEvent:
    """A one-shot event processes can ``wait`` on.

    Waiters are kept in an insertion-ordered dict: iteration preserves
    FIFO wake order while :meth:`_remove_waiter` (the interrupt path) is
    a single O(1) ``pop`` — under interrupt-heavy storms the old
    ``list.remove`` made cancelling N waiters quadratic.
    """

    __slots__ = ("_kernel", "name", "triggered", "value", "_waiters")

    def __init__(self, kernel: "EventKernel", name: str = "event"):
        self._kernel = kernel
        self.name = name
        self.triggered = False
        self.value: Any = None
        self._waiters: Dict["SimProcess", None] = {}

    def succeed(self, value: Any = None) -> None:
        """Fire the event, resuming every waiter with ``value``."""
        if self.triggered:
            raise RuntimeError(f"event {self.name!r} already triggered")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, {}
        schedule = self._kernel._schedule
        for process in waiters:
            process._waiting_on = None
            schedule(process, send=value)

    def _remove_waiter(self, process: "SimProcess") -> None:
        self._waiters.pop(process, None)


class SimProcess:
    """A running generator plus its completion state."""

    __slots__ = (
        "_kernel",
        "_generator",
        "name",
        "finished",
        "value",
        "error",
        "error_consumed",
        "_completion",
        "_waiting_on",
        "_resume_token",
    )

    def __init__(self, kernel: "EventKernel", generator: Generator, name: str):
        self._kernel = kernel
        self._generator = generator
        self.name = name
        self.finished = False
        self.value: Any = None          # StopIteration value on success
        self.error: Optional[BaseException] = None
        self.error_consumed = False
        self._completion = SimEvent(kernel, name=f"{name}.completion")
        self._waiting_on: Optional[SimEvent] = None
        self._resume_token = 0          # invalidates stale heap entries

    @property
    def alive(self) -> bool:
        return not self.finished

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.finished:
            return
        if self._waiting_on is not None:
            self._waiting_on._remove_waiter(self)
            self._waiting_on = None
        self._kernel._schedule(self, throw=Interrupt(cause))

    def _finish(self, value: Any = None, error: Optional[BaseException] = None) -> None:
        self.finished = True
        self.value = value
        self.error = error
        self._resume_token += 1  # drop any stale scheduled resume
        if error is None:
            self._completion.succeed(value)
        else:
            # Re-raise in every waiter; with no waiters the kernel
            # propagates the error out of run().
            self.error_consumed = bool(self._completion._waiters)
            waiters, self._completion._waiters = self._completion._waiters, {}
            self._completion.triggered = True
            for process in waiters:
                process._waiting_on = None
                self._kernel._schedule(process, throw=error)


class EventKernel:
    """Deterministic event loop over a :class:`SimClock`."""

    def __init__(self, clock, rng=None):
        self.clock = clock
        self.rng = rng
        # Heap entries: (when, seq, process, token, is_throw, payload).
        self._heap: List[Tuple[float, int, SimProcess, int, int, Any]] = []
        self._sequence = 0
        self.stats = KernelStats()

    @property
    def steps(self) -> int:
        """Events processed so far (kept for older callers)."""
        return self.stats.steps

    # -- scheduling -------------------------------------------------

    def spawn(self, generator: Generator, name: Optional[str] = None) -> SimProcess:
        """Register a top-level process; it starts when ``run`` reaches now."""
        process = SimProcess(self, generator, name or f"proc-{self._sequence}")
        self._schedule(process, send=None)
        return process

    def event(self, name: str = "event") -> SimEvent:
        return SimEvent(self, name=name)

    def _schedule(
        self,
        process: SimProcess,
        delay: float = 0.0,
        send: Any = None,
        throw: Optional[BaseException] = None,
    ) -> None:
        token = process._resume_token + 1
        process._resume_token = token
        seq = self._sequence + 1
        self._sequence = seq
        if throw is not None:
            entry = (self.clock.now + delay, seq, process, token, 1, throw)
        else:
            entry = (self.clock.now + delay, seq, process, token, 0, send)
        heap = self._heap
        heapq.heappush(heap, entry)
        stats = self.stats
        stats.scheduled += 1
        if len(heap) > stats.peak_heap:
            stats.peak_heap = len(heap)

    # -- execution --------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Process events in time order; returns the final virtual time.

        Stops when the heap drains or the next event lies beyond
        ``until`` (the clock is then advanced exactly to ``until``).
        """
        clock = self.clock
        offsets = clock._offsets  # same list object for the clock's lifetime
        heap = self._heap
        stats = self.stats
        limit = _INF if until is None else float(until)
        heappop = heapq.heappop
        heapreplace = heapq.heapreplace
        sleep_cls = sleep
        wait_cls = wait
        spawn_cls = spawn
        process_cls = SimProcess
        steps = sleeps = waits = spawns = stale = 0
        try:
            while heap:
                entry = heap[0]
                process = entry[2]
                if process.finished or entry[3] != process._resume_token:
                    heappop(heap)  # stale (interrupted or re-scheduled)
                    stale += 1
                    continue
                when = entry[0]
                if when > limit:
                    # A synchronous step (e.g. the rollout's
                    # provisioning) may already have pushed the clock
                    # past the horizon.
                    if limit > clock.now:
                        clock.advance_to(limit)
                    return clock.now
                if offsets:
                    if when > clock.now:
                        clock.advance_to(when)  # raises inside a scope
                elif when > clock._now:
                    clock._now = when
                steps += 1
                generator = process._generator
                try:
                    if entry[4]:
                        command = generator.throw(entry[5])
                    else:
                        command = generator.send(entry[5])
                except StopIteration as stop:
                    heappop(heap)
                    process._finish(value=stop.value)
                    continue
                except BaseException as exc:  # noqa: BLE001 - structured propagation
                    heappop(heap)
                    process._finish(error=exc)
                    if not process.error_consumed:
                        raise
                    continue
                command_cls = command.__class__
                if command_cls is sleep_cls:
                    # Hot path: the popped slot is re-used in place.
                    # Safe because anything scheduled during the step
                    # ran at `when <= now` with a larger sequence, so
                    # our entry is still heap[0]; the token bump keeps
                    # last-schedule-wins semantics for self-interrupts.
                    sleeps += 1
                    token = process._resume_token + 1
                    process._resume_token = token
                    seq = self._sequence + 1
                    self._sequence = seq
                    base = clock.now if offsets else clock._now
                    heapreplace(
                        heap,
                        (base + command.seconds, seq, process, token, 0, None),
                    )
                    stats.scheduled += 1
                    continue
                heappop(heap)
                if command_cls is wait_cls:
                    waits += 1
                    target = command.target
                    if target.__class__ is process_cls or isinstance(
                        target, process_cls
                    ):
                        if target.finished:
                            if target.error is not None:
                                target.error_consumed = True
                                self._schedule(process, throw=target.error)
                            else:
                                self._schedule(process, send=target.value)
                            continue
                        event = target._completion
                    else:
                        event = target
                    if event.triggered:
                        self._schedule(process, send=event.value)
                    else:
                        process._waiting_on = event
                        event._waiters[process] = None
                elif command_cls is spawn_cls:
                    spawns += 1
                    child = SimProcess(
                        self, command.generator,
                        command.name or f"proc-{self._sequence}",
                    )
                    self._schedule(child, send=None)
                    self._schedule(process, send=child)
                else:
                    raise TypeError(
                        f"process {process.name!r} yielded {command!r}; "
                        "expected sleep/wait/spawn"
                    )
            if until is not None and until > clock.now:
                clock.advance_to(until)
            return clock.now
        finally:
            stats.steps += steps
            stats.sleeps += sleeps
            stats.waits += waits
            stats.spawns += spawns
            stats.stale_entries += stale


def run_until_complete(kernel: EventKernel, generator: Generator,
                       name: str = "main") -> Any:
    """Spawn ``generator`` and run the kernel until it finishes."""
    process = kernel.spawn(generator, name=name)
    kernel.run()
    if not process.finished:
        raise RuntimeError(f"deadlock: {name!r} never finished (heap drained)")
    if process.error is not None:
        raise process.error
    return process.value
