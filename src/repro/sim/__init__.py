"""Discrete-event simulation substrate.

A small deterministic kernel (:mod:`repro.sim.kernel`) runs processes
written as generators over the shared :class:`repro.net.latency.SimClock`,
with resources (:mod:`repro.sim.resources`), streaming metrics
(:mod:`repro.sim.metrics`) and a single seeded random stream per
simulation (:mod:`repro.sim.rng`).  Everything here is pure Python and
fully reproducible: same seed, same event order, same metric dump.
"""

from repro.sim.kernel import (
    EventKernel,
    Interrupt,
    KernelStats,
    SimEvent,
    SimProcess,
    run_until_complete,
    sleep,
    spawn,
    wait,
)
from repro.sim.metrics import (
    Gauge,
    LatencyReservoir,
    MetricsRegistry,
    ThroughputWindow,
)
from repro.sim.resources import (
    FifoQueue,
    PriorityResource,
    Resource,
    Server,
    TokenBucket,
)
from repro.sim.rng import SimRng

__all__ = [
    "EventKernel",
    "FifoQueue",
    "Gauge",
    "Interrupt",
    "KernelStats",
    "LatencyReservoir",
    "MetricsRegistry",
    "PriorityResource",
    "Resource",
    "Server",
    "SimEvent",
    "SimProcess",
    "SimRng",
    "ThroughputWindow",
    "TokenBucket",
    "run_until_complete",
    "sleep",
    "spawn",
    "wait",
]
