"""Streaming metrics for simulations, in the ``attest/trace`` counter style.

Reservoir quantiles follow ``statistics.quantiles(..., method="inclusive")``
semantics (linear interpolation at rank ``(n-1)*q``), so property tests
can pin the streaming estimate against the exact batch computation.
Snapshots are plain sorted dicts of numbers — safe to ``json.dumps``
byte-identically across same-seed runs.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.sim.rng import SimRng


class LatencyReservoir:
    """Streaming latency sample with exact extremes and quantiles.

    Stores every observation up to ``capacity``; beyond that it switches
    to Algorithm-R reservoir sampling driven by a seeded ``rng`` so the
    sample (and therefore the quantile estimate) is reproducible.
    ``count``/``max``/``min``/``mean`` stay exact regardless.
    """

    def __init__(self, capacity: int = 4096, rng: Optional[SimRng] = None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._rng = rng
        self._sample: List[float] = []
        self._sorted: Optional[List[float]] = None
        self.count = 0
        self.total = 0.0
        self.max: Optional[float] = None
        self.min: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.max = value if self.max is None else max(self.max, value)
        self.min = value if self.min is None else min(self.min, value)
        self._sorted = None
        if len(self._sample) < self.capacity:
            self._sample.append(value)
            return
        if self._rng is None:
            raise RuntimeError(
                "reservoir overflow: pass a seeded SimRng to sample beyond "
                f"capacity={self.capacity}"
            )
        slot = self._rng.randrange(self.count)
        if slot < self.capacity:
            self._sample[slot] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Inclusive-method quantile of the retained sample, ``0 <= q <= 1``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self._sample:
            raise ValueError("empty reservoir")
        if self._sorted is None:
            self._sorted = sorted(self._sample)
        data = self._sorted
        if len(data) == 1:
            return data[0]
        rank = (len(data) - 1) * q
        low = math.floor(rank)
        high = math.ceil(rank)
        if low == high:
            return data[low]
        return data[low] + (data[high] - data[low]) * (rank - low)

    def snapshot(self, unit_scale: float = 1.0) -> Dict[str, float]:
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.mean * unit_scale,
            "p50": self.quantile(0.50) * unit_scale,
            "p95": self.quantile(0.95) * unit_scale,
            "p99": self.quantile(0.99) * unit_scale,
            "max": self.max * unit_scale,
            "min": self.min * unit_scale,
        }


class ThroughputWindow:
    """Event counts bucketed into fixed windows of virtual time."""

    def __init__(self, clock, window_seconds: float = 1.0):
        if window_seconds <= 0:
            raise ValueError("window must be positive")
        self._clock = clock
        self.window_seconds = float(window_seconds)
        self._buckets: Dict[int, int] = {}
        self._started = clock.now
        self.count = 0

    def record(self, n: int = 1) -> None:
        self.count += n
        bucket = int(self._clock.now / self.window_seconds)
        self._buckets[bucket] = self._buckets.get(bucket, 0) + n

    def snapshot(self) -> Dict[str, float]:
        elapsed = max(self._clock.now - self._started, self.window_seconds)
        peak = max(self._buckets.values()) if self._buckets else 0
        return {
            "count": self.count,
            "mean_per_sec": self.count / elapsed,
            "peak_window_per_sec": peak / self.window_seconds,
        }


class Gauge:
    """An instantaneous level (e.g. queue depth) with max and time-weighted mean."""

    def __init__(self, clock, initial: float = 0.0):
        self._clock = clock
        self.value = float(initial)
        self.max = float(initial)
        self._area = 0.0
        self._stamp = clock.now
        self._started = clock.now

    def _settle(self) -> None:
        now = self._clock.now
        self._area += self.value * (now - self._stamp)
        self._stamp = now

    def set(self, value: float) -> None:
        self._settle()
        self.value = float(value)
        self.max = max(self.max, self.value)

    def add(self, delta: float) -> None:
        self.set(self.value + delta)

    def snapshot(self) -> Dict[str, float]:
        self._settle()
        elapsed = self._stamp - self._started
        return {
            "current": self.value,
            "max": self.max,
            "time_weighted_mean": self._area / elapsed if elapsed > 0 else self.value,
        }


class MetricsRegistry:
    """Named metrics flattened into one sorted snapshot dict.

    Mirrors ``attest.trace.CounterRegistry.snapshot`` so fleet metrics
    dump alongside pipeline counters; keys are ``<name>.<field>`` and
    the dict is sorted for byte-identical JSON across same-seed runs.
    """

    def __init__(self, clock, rng: Optional[SimRng] = None):
        self._clock = clock
        self._rng = rng
        self._reservoirs: Dict[str, LatencyReservoir] = {}
        self._windows: Dict[str, ThroughputWindow] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._counters: Dict[str, int] = {}
        self._kernel = None

    def attach_kernel(self, kernel) -> None:
        """Export a kernel's :class:`~repro.sim.kernel.KernelStats`
        under ``kernel.*`` in every snapshot.  All exported values are
        deterministic (no wall-clock rates): ``kernel.events_per_sim_sec``
        is steps divided by *simulated* seconds; benchmarks divide by
        wall time themselves."""
        self._kernel = kernel

    def reservoir(self, name: str, capacity: int = 4096) -> LatencyReservoir:
        if name not in self._reservoirs:
            rng = self._rng.fork(f"reservoir/{name}") if self._rng else None
            self._reservoirs[name] = LatencyReservoir(capacity=capacity, rng=rng)
        return self._reservoirs[name]

    def window(self, name: str, window_seconds: float = 1.0) -> ThroughputWindow:
        if name not in self._windows:
            self._windows[name] = ThroughputWindow(self._clock, window_seconds)
        return self._windows[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            self._gauges[name] = Gauge(self._clock)
        return self._gauges[name]

    def increment(self, name: str, n: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + n

    def snapshot(self, latency_unit_scale: float = 1000.0) -> Dict[str, float]:
        """Flatten everything; latencies scaled to ms by default."""
        out: Dict[str, float] = {}
        for name, value in self._counters.items():
            out[name] = value
        for name, reservoir in self._reservoirs.items():
            for field, value in reservoir.snapshot(latency_unit_scale).items():
                out[f"{name}.{field}"] = value
        for name, window in self._windows.items():
            for field, value in window.snapshot().items():
                out[f"{name}.{field}"] = value
        for name, gauge in self._gauges.items():
            for field, value in gauge.snapshot().items():
                out[f"{name}.{field}"] = value
        if self._kernel is not None:
            for field, value in self._kernel.stats.snapshot().items():
                out[f"kernel.{field}"] = value
            sim_elapsed = self._kernel.clock.now
            out["kernel.events_per_sim_sec"] = (
                round(self._kernel.stats.steps / sim_elapsed, 3)
                if sim_elapsed > 0 else 0.0
            )
        return {key: out[key] for key in sorted(out)}
