"""Seeded randomness for simulations.

Every simulation owns exactly one :class:`SimRng` (or a tree of them
created with :meth:`SimRng.fork`), so runs are reproducible: the module
never touches the process-global ``random`` state, and the determinism
gate in CI forbids bare ``random.*`` calls anywhere in ``repro.sim`` and
``repro.fleet``.
"""

from __future__ import annotations

import hashlib
from random import Random


def _normalize_seed(seed) -> int:
    """Map any seed (int, str, bytes) to a stable 256-bit integer.

    ``random.Random(str)`` hashes via ``str.__hash__`` only on some
    code paths and is sensitive to ``PYTHONHASHSEED``; going through
    sha256 keeps string seeds stable across processes.
    """
    if isinstance(seed, int):
        material = seed.to_bytes((seed.bit_length() + 8) // 8, "big", signed=True)
    elif isinstance(seed, bytes):
        material = seed
    else:
        material = str(seed).encode("utf-8")
    return int.from_bytes(hashlib.sha256(material).digest(), "big")


class SimRng(Random):
    """A :class:`random.Random` with stable cross-process seeding.

    ``fork(label)`` derives an independent, reproducible child stream —
    use one stream per concern (arrivals, think time, service jitter)
    so adding draws to one concern never perturbs another.
    """

    def __init__(self, seed=0):
        self._seed_material = seed
        super().__init__(_normalize_seed(seed))

    def fork(self, label: str) -> "SimRng":
        """Derive an independent child stream keyed by ``label``."""
        return SimRng(f"{self._seed_material}/{label}")
