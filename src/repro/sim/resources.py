"""Contention primitives for the event kernel.

All acquisition paths are generators used with ``yield from`` inside a
kernel process; they may yield zero times (uncontended fast path) or
suspend the caller until capacity frees up.  Wake-up order is strictly
FIFO (or priority order for :class:`PriorityResource`), which keeps
every run deterministic.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, Generator, List, Optional, Tuple

from repro.sim.kernel import EventKernel, SimEvent, sleep, wait


class Resource:
    """A counted FIFO semaphore (e.g. worker slots on a backend).

    Waiter queues are deques: handoff pops from the head in O(1), so a
    long admission queue (a million-session storm) never goes quadratic.
    """

    def __init__(self, kernel: EventKernel, capacity: int, name: str = "resource"):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._kernel = kernel
        self.capacity = capacity
        self.name = name
        self._available = capacity
        self._waiters: Deque[SimEvent] = deque()

    @property
    def in_use(self) -> int:
        return self.capacity - self._available

    @property
    def queue_depth(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Generator:
        """``yield from`` this to take a slot; FIFO under contention."""
        if self._available > 0 and not self._waiters:
            self._available -= 1
            return
        slot = self._kernel.event(f"{self.name}.acquire")
        self._waiters.append(slot)
        yield wait(slot)

    def release(self) -> None:
        """Free a slot, handing it directly to the oldest waiter."""
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            if self._available >= self.capacity:
                raise RuntimeError(f"{self.name}: release without acquire")
            self._available += 1


class PriorityResource(Resource):
    """A counted semaphore whose waiters wake lowest-priority-value first."""

    def __init__(self, kernel: EventKernel, capacity: int, name: str = "priority"):
        super().__init__(kernel, capacity, name)
        self._pqueue: List[Tuple[float, int, SimEvent]] = []
        self._tiebreak = 0

    @property
    def queue_depth(self) -> int:
        return len(self._pqueue)

    def acquire(self, priority: float = 0.0) -> Generator:
        if self._available > 0 and not self._pqueue:
            self._available -= 1
            return
        slot = self._kernel.event(f"{self.name}.acquire")
        self._tiebreak += 1
        heapq.heappush(self._pqueue, (priority, self._tiebreak, slot))
        yield wait(slot)

    def release(self) -> None:
        if self._pqueue:
            heapq.heappop(self._pqueue)[2].succeed()
        else:
            if self._available >= self.capacity:
                raise RuntimeError(f"{self.name}: release without acquire")
            self._available += 1


class FifoQueue:
    """An unbounded queue whose ``get`` suspends until an item arrives."""

    def __init__(self, kernel: EventKernel, name: str = "queue"):
        self._kernel = kernel
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[SimEvent] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Generator:
        """``yield from`` this; returns the next item in arrival order."""
        if self._items:
            return self._items.popleft()
        slot = self._kernel.event(f"{self.name}.get")
        self._getters.append(slot)
        item = yield wait(slot)
        return item


class TokenBucket:
    """A token-bucket rate limiter (GCRA-style, time-driven refill)."""

    def __init__(self, kernel: EventKernel, rate: float, capacity: float,
                 name: str = "bucket"):
        if rate <= 0 or capacity <= 0:
            raise ValueError("rate and capacity must be positive")
        self._kernel = kernel
        self.rate = float(rate)
        self.capacity = float(capacity)
        self.name = name
        self._tokens = float(capacity)
        self._stamp = kernel.clock.now
        self.throttled = 0

    def _refill(self) -> None:
        now = self._kernel.clock.now
        self._tokens = min(self.capacity, self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now

    @property
    def tokens(self) -> float:
        self._refill()
        return max(0.0, self._tokens)

    def take(self, amount: float = 1.0) -> Generator:
        """``yield from`` this; sleeps until ``amount`` tokens are paid for."""
        self._refill()
        self._tokens -= amount
        if self._tokens < 0:
            self.throttled += 1
            delay = -self._tokens / self.rate
            yield sleep(delay)
            self._refill()


class Server:
    """Fixed-concurrency service station with a FIFO admission queue.

    ``process(service_seconds)`` models one unit of work: queue for a
    slot, hold it for the service time, release.  Omit the argument to
    draw from the configured ``service_time`` distribution.
    """

    def __init__(
        self,
        kernel: EventKernel,
        concurrency: int,
        service_time: Optional[Callable[[], float]] = None,
        name: str = "server",
    ):
        self._kernel = kernel
        self.name = name
        self.slots = Resource(kernel, concurrency, name=f"{name}.slots")
        self.service_time = service_time
        self.served = 0
        self.busy_seconds = 0.0
        self.wait_seconds = 0.0
        self.peak_queue_depth = 0

    @property
    def concurrency(self) -> int:
        return self.slots.capacity

    @property
    def outstanding(self) -> int:
        """Requests in service plus queued (drain waits for zero)."""
        return self.slots.in_use + self.slots.queue_depth

    @property
    def queue_depth(self) -> int:
        return self.slots.queue_depth

    def process(self, service_seconds: Optional[float] = None) -> Generator:
        if service_seconds is None:
            if self.service_time is None:
                raise ValueError(f"{self.name}: no service-time distribution set")
            service_seconds = self.service_time()
        queued_at = self._kernel.clock.now
        if self.slots.in_use >= self.slots.capacity:
            self.peak_queue_depth = max(
                self.peak_queue_depth, self.slots.queue_depth + 1
            )
        yield from self.slots.acquire()
        self.wait_seconds += self._kernel.clock.now - queued_at
        try:
            if service_seconds > 0:
                yield sleep(service_seconds)
            self.busy_seconds += service_seconds
            self.served += 1
        finally:
            self.slots.release()
