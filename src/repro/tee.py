"""The hardware-agnostic TEE evidence layer.

Revelio's design is TEE-portable (paper section 1: "Revelio can be
deployed in a hardware-agnostic fashion, as long as the TEE follows the
VM model").  This module is the seam that makes that concrete: evidence
from different VM-model TEEs is wrapped in a tagged envelope, and a
:class:`TeeVerifier` dispatches to per-technology verifiers that all
reduce to the same question — *does this evidence bind (measurement,
report_data) to a genuine platform?*

Shipped backends: AMD SEV-SNP (:mod:`repro.amd`) and Intel TDX
(:mod:`repro.tdx`).  Adding ARM CCA would mean one more entry in the
registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional

from .crypto import encoding

KIND_SEV_SNP = "sev-snp"
KIND_TDX = "tdx"
KIND_CCA = "arm-cca"


class TeeError(RuntimeError):
    """Evidence envelope or verification failures."""


@dataclass(frozen=True)
class TeeEvidence:
    """A tagged evidence envelope."""

    kind: str
    body: bytes  # encoded AttestationReport or TdQuote

    def encode(self) -> bytes:
        """Serialise to canonical TLV bytes."""
        return encoding.encode({"kind": self.kind, "body": self.body})

    @classmethod
    def decode(cls, data: bytes) -> "TeeEvidence":
        """Parse an instance back out of canonical TLV bytes."""
        try:
            decoded = encoding.decode(data)
            return cls(kind=decoded["kind"], body=decoded["body"])
        except (ValueError, KeyError, TypeError) as exc:
            raise TeeError("malformed evidence envelope") from exc


@dataclass(frozen=True)
class VerifiedEvidence:
    """The technology-independent verification outcome."""

    kind: str
    measurement: bytes
    report_data: bytes


#: kind -> callable(body, context, now, expected_measurements) -> VerifiedEvidence
_VERIFIERS: Dict[str, Callable] = {}


def register_verifier(kind: str):
    """Register a per-technology evidence verifier."""
    def decorator(fn):
        _VERIFIERS[kind] = fn
        return fn

    return decorator


class TeeVerifier:
    """A verifier holding per-technology trust material.

    ``contexts`` maps evidence kind to whatever that technology's
    verifier needs (a KdsClient for SNP, a PCS handle for TDX).
    """

    def __init__(self, contexts: Dict[str, object]):
        self._contexts = dict(contexts)

    def supported_kinds(self) -> Iterable[str]:
        """Evidence kinds this verifier can handle."""
        return sorted(set(self._contexts) & set(_VERIFIERS))

    def verify(
        self,
        evidence: TeeEvidence,
        now: int,
        expected_measurements: Iterable[bytes],
        expected_report_data: Optional[bytes] = None,
    ) -> VerifiedEvidence:
        """Dispatch on evidence kind; raise :class:`TeeError` on failure."""
        verifier = _VERIFIERS.get(evidence.kind)
        context = self._contexts.get(evidence.kind)
        if verifier is None or context is None:
            raise TeeError(f"no verifier configured for {evidence.kind!r}")
        verified = verifier(
            evidence.body, context, now, [bytes(m) for m in expected_measurements]
        )
        if (
            expected_report_data is not None
            and verified.report_data != expected_report_data
        ):
            raise TeeError("REPORT_DATA does not match expectation")
        return verified


@register_verifier(KIND_SEV_SNP)
def _verify_snp(body: bytes, kds, now: int, golden) -> VerifiedEvidence:
    from .amd.report import AttestationReport, ReportError
    from .attest import AttestationVerifier, VerificationPolicy

    try:
        report = AttestationReport.decode(body)
    except ReportError as exc:
        raise TeeError(f"malformed SNP report: {exc}") from exc
    outcome = AttestationVerifier(kds, site="tee:sev-snp").verify(
        report, now=now, policy=VerificationPolicy(golden_measurements=golden)
    )
    if not outcome.ok:
        raise TeeError(
            f"SNP verification failed: {outcome.reason}: {outcome.detail}"
        )
    return VerifiedEvidence(
        kind=KIND_SEV_SNP,
        measurement=report.measurement,
        report_data=report.report_data,
    )


@register_verifier(KIND_TDX)
def _verify_tdx(body: bytes, pcs, now: int, golden) -> VerifiedEvidence:
    from .tdx.module import TdQuote, TdxError, verify_td_quote

    try:
        quote = TdQuote.decode(body)
    except (ValueError, KeyError, TypeError) as exc:
        raise TeeError(f"malformed TDX quote: {exc}") from exc
    if bytes(quote.mrtd) not in golden:
        raise TeeError("TDX MRTD not in golden set")
    try:
        pck = pcs.get_pck_certificate(quote.platform_id, quote.tee_tcb_svn)
        verify_td_quote(
            quote, pck, pcs.cert_chain(), [pcs.root_certificate], now=now
        )
    except TdxError as exc:
        raise TeeError(f"TDX verification failed: {exc}") from exc
    return VerifiedEvidence(
        kind=KIND_TDX, measurement=quote.mrtd, report_data=quote.report_data
    )


@register_verifier(KIND_CCA)
def _verify_cca(body: bytes, context, now: int, golden) -> VerifiedEvidence:
    """*context* is a (cpak_lookup, trust_anchors) pair, where
    ``cpak_lookup(platform_id)`` returns the CPAK certificate."""
    from .cca.realms import CcaError, CcaToken, verify_cca_token

    cpak_lookup, anchors = context
    try:
        token = CcaToken.decode(body)
    except CcaError as exc:
        raise TeeError(f"malformed CCA token: {exc}") from exc
    if bytes(token.realm_token.rim) not in golden:
        raise TeeError("CCA RIM not in golden set")
    try:
        cpak = cpak_lookup(token.platform_token.platform_id)
        verify_cca_token(token, cpak, anchors, now=now)
    except (CcaError, LookupError) as exc:
        raise TeeError(f"CCA verification failed: {exc}") from exc
    return VerifiedEvidence(
        kind=KIND_CCA,
        measurement=token.realm_token.rim,
        report_data=token.realm_token.challenge,
    )


def snp_evidence(report) -> TeeEvidence:
    """Wrap an SNP attestation report."""
    return TeeEvidence(kind=KIND_SEV_SNP, body=report.encode())


def tdx_evidence(quote) -> TeeEvidence:
    """Wrap a TDX quote."""
    return TeeEvidence(kind=KIND_TDX, body=quote.encode())


def cca_evidence(token) -> TeeEvidence:
    """Wrap a CCA token bundle."""
    return TeeEvidence(kind=KIND_CCA, body=token.encode())
