"""The hardware-agnostic TEE evidence layer.

Revelio's design is TEE-portable (paper section 1: "Revelio can be
deployed in a hardware-agnostic fashion, as long as the TEE follows the
VM model").  This module is the *thin* convenience seam over the
family-dispatched engine in :mod:`repro.attest`: evidence from
different VM-model TEEs is wrapped in a tagged envelope, and a
:class:`TeeVerifier` reduces every technology to the same question —
*does this evidence bind (measurement, report_data) to a genuine
platform?* — by running the registered
:mod:`repro.attest.families` step provider for the evidence kind.

Shipped backends: AMD SEV-SNP (:mod:`repro.amd`), Intel TDX
(:mod:`repro.tdx`), ARM CCA (:mod:`repro.cca`), and the SNP-endorsed
e-vTPM (:mod:`repro.vtpm`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from .attest import (
    AttestationVerifier,
    CcaTrust,
    Evidence,
    TdxTrust,
    TeeFamily,
    VerificationPolicy,
    provider_for,
    registered_families,
)
from .crypto import encoding

KIND_SEV_SNP = str(TeeFamily.SEV_SNP)
KIND_TDX = str(TeeFamily.TDX)
KIND_CCA = str(TeeFamily.CCA)
KIND_VTPM = str(TeeFamily.VTPM)


class TeeError(RuntimeError):
    """Evidence envelope or verification failures."""


@dataclass(frozen=True)
class TeeEvidence:
    """A tagged evidence envelope."""

    kind: str
    body: bytes  # encoded AttestationReport, TdQuote, CcaToken, ...

    def encode(self) -> bytes:
        """Serialise to canonical TLV bytes."""
        return encoding.encode({"kind": self.kind, "body": self.body})

    @classmethod
    def decode(cls, data: bytes) -> "TeeEvidence":
        """Parse an instance back out of canonical TLV bytes."""
        try:
            decoded = encoding.decode(data)
            return cls(kind=decoded["kind"], body=decoded["body"])
        except (ValueError, KeyError, TypeError) as exc:
            raise TeeError("malformed evidence envelope") from exc


@dataclass(frozen=True)
class VerifiedEvidence:
    """The technology-independent verification outcome."""

    kind: str
    measurement: bytes
    report_data: bytes


def _normalize_context(kind: str, context):
    """Adapt the historical raw context conventions — a bare KdsClient
    for SNP, a bare PCS handle for TDX, a ``(cpak_lookup, anchors)``
    pair for CCA — to the engine's trust-context types."""
    if kind == KIND_TDX and not isinstance(context, TdxTrust):
        return TdxTrust(context)
    if kind == KIND_CCA and isinstance(context, (tuple, list)):
        lookup, anchors = context
        return CcaTrust(lookup, tuple(anchors))
    return context


class TeeVerifier:
    """A verifier holding per-technology trust material.

    ``contexts`` maps evidence kind to whatever that technology's
    verifier needs (a KdsClient for SNP, a PCS handle for TDX, a
    ``(cpak_lookup, anchors)`` pair for CCA, a
    :class:`~repro.attest.VtpmTrust` for the e-vTPM).
    """

    def __init__(self, contexts: Dict[str, object]):
        self._contexts = {
            str(kind): _normalize_context(str(kind), context)
            for kind, context in contexts.items()
        }
        self._engine = AttestationVerifier(
            self._contexts.get(KIND_SEV_SNP),
            site="tee",
            contexts=self._contexts,
        )

    def supported_kinds(self) -> Iterable[str]:
        """Evidence kinds this verifier can handle."""
        known = {str(family) for family in registered_families()}
        return sorted(set(self._contexts) & known)

    def verify(
        self,
        evidence: TeeEvidence,
        now: int,
        expected_measurements: Iterable[bytes],
        expected_report_data: Optional[bytes] = None,
    ) -> VerifiedEvidence:
        """Dispatch on evidence kind; raise :class:`TeeError` on failure."""
        if evidence.kind not in set(self.supported_kinds()):
            raise TeeError(f"no verifier configured for {evidence.kind!r}")
        policy = VerificationPolicy(
            golden_measurements=[bytes(m) for m in expected_measurements],
            expected_report_data=expected_report_data,
        )
        outcome = self._engine.verify(
            Evidence(evidence.kind, evidence.body),
            now=now,
            policy=policy,
            site=f"tee:{evidence.kind}",
        )
        if not outcome.ok:
            raise TeeError(
                f"{evidence.kind} verification failed: "
                f"{outcome.reason}: {outcome.detail}"
            )
        provider = provider_for(TeeFamily(evidence.kind))
        return VerifiedEvidence(
            kind=evidence.kind,
            measurement=provider.measurement(outcome.report),
            report_data=provider.report_data(outcome.report),
        )


def snp_evidence(report) -> TeeEvidence:
    """Wrap an SNP attestation report."""
    return TeeEvidence(kind=KIND_SEV_SNP, body=report.encode())


def tdx_evidence(quote) -> TeeEvidence:
    """Wrap a TDX quote."""
    return TeeEvidence(kind=KIND_TDX, body=quote.encode())


def cca_evidence(token) -> TeeEvidence:
    """Wrap a CCA token bundle."""
    return TeeEvidence(kind=KIND_CCA, body=token.encode())


def vtpm_evidence(monitoring_evidence) -> TeeEvidence:
    """Wrap an e-vTPM monitoring-evidence bundle."""
    return TeeEvidence(kind=KIND_VTPM, body=monitoring_evidence.encode())
