"""Internet Computer substrate + the Revelio-protected boundary node
(use case of paper section 4.2)."""

from .boundary_node import (
    FRONTEND_CANISTER,
    SERVICE_WORKER_PATH,
    BoundaryNodeApp,
    BoundaryNodeError,
    ServiceWorker,
    build_service_worker,
)
from .canister import AssetCanister, Canister, CanisterError, KvCanister
from .subnet import CertifiedResponse, Replica, Subnet, SubnetError
from .threshold import (
    KeyShare,
    SigningSession,
    ThresholdError,
    ThresholdKey,
    threshold_sign,
)

__all__ = [
    "AssetCanister",
    "BoundaryNodeApp",
    "BoundaryNodeError",
    "Canister",
    "CanisterError",
    "CertifiedResponse",
    "FRONTEND_CANISTER",
    "KeyShare",
    "KvCanister",
    "Replica",
    "SERVICE_WORKER_PATH",
    "ServiceWorker",
    "SigningSession",
    "Subnet",
    "SubnetError",
    "ThresholdError",
    "ThresholdKey",
    "build_service_worker",
    "threshold_sign",
]
