"""Subnet threshold signing.

The Internet Computer authenticates subnet responses with
threshold-signed messages (paper section 4.2): a signature that can
only be produced if a threshold of the subnet's replicas cooperate, and
that clients verify against a single subnet public key.

Full threshold-ECDSA is a multi-round MPC protocol; this reproduction
models its *interface and trust properties* instead: the subnet key is
dealt as Shamir shares to the replicas at genesis, and a signature is
produced by a signing session that collects >= t shares, reconstructs
the key in ephemeral memory, signs, and discards it.  Fewer than t
cooperating replicas can neither sign nor learn the key (Shamir's
guarantee, property-tested in the crypto suite).  Clients verify plain
ECDSA — exactly what IC clients do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from ..crypto.drbg import HmacDrbg
from ..crypto.ec import P256
from ..crypto.ecdsa import EcdsaPrivateKey, EcdsaPublicKey
from ..crypto.shamir import Share, reconstruct_secret, split_secret


class ThresholdError(RuntimeError):
    """Raised when a signing session lacks shares or shares are bad."""


@dataclass(frozen=True)
class KeyShare:
    """One replica's share of the subnet signing key."""

    replica_index: int
    share: Share


class ThresholdKey:
    """The dealt subnet key: public part + per-replica shares."""

    def __init__(self, threshold: int, num_replicas: int, rng: HmacDrbg):
        if not (1 <= threshold <= num_replicas):
            raise ThresholdError("need 1 <= threshold <= replicas")
        secret_key = EcdsaPrivateKey.generate(P256, rng)
        self.threshold = threshold
        self.num_replicas = num_replicas
        self.public_key: EcdsaPublicKey = secret_key.public_key()
        shares = split_secret(
            secret_key.d, threshold, num_replicas, rng, prime=P256.n
        )
        self._shares: List[KeyShare] = [
            KeyShare(replica_index=index, share=share)
            for index, share in enumerate(shares)
        ]
        # The dealer forgets the key; only shares remain.
        del secret_key

    def share_for(self, replica_index: int) -> KeyShare:
        """The key share dealt to a replica."""
        return self._shares[replica_index]


class SigningSession:
    """Collects share contributions for one message and signs at t."""

    def __init__(self, key: "ThresholdKey", message: bytes):
        self._key = key
        self.message = message
        self._contributions: Dict[int, Share] = {}

    def contribute(self, key_share: KeyShare) -> None:
        """Add one replica's share to the session."""
        self._contributions[key_share.replica_index] = key_share.share

    @property
    def ready(self) -> bool:
        """Whether enough shares arrived to sign."""
        return len(self._contributions) >= self._key.threshold

    def sign(self) -> bytes:
        """Produce the subnet signature once enough shares arrived."""
        if not self.ready:
            raise ThresholdError(
                f"only {len(self._contributions)} of "
                f"{self._key.threshold} required shares"
            )
        scalar = reconstruct_secret(
            list(self._contributions.values()), self._key.threshold, prime=P256.n
        )
        try:
            ephemeral = EcdsaPrivateKey(P256, scalar)
        except ValueError as exc:
            raise ThresholdError("share contributions are inconsistent") from exc
        if ephemeral.public_key() != self._key.public_key:
            raise ThresholdError("reconstructed key does not match subnet key")
        return ephemeral.sign(self.message)


def threshold_sign(
    key: ThresholdKey, message: bytes, shares: Iterable[KeyShare]
) -> bytes:
    """One-shot helper: sign *message* with the given contributions."""
    session = SigningSession(key, message)
    for key_share in shares:
        session.contribute(key_share)
    return session.sign()
