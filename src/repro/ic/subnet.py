"""An Internet Computer subnet: replicas, consensus, certified responses.

A subnet of *n* replicas tolerates *f = (n-1) // 3* Byzantine members
(the IC's bound).  Updates are sequenced through a toy BFT round —
every honest replica executes the message deterministically on its own
canister state and the result commits only if at least ``2f + 1``
replicas agree on the post-state digest.  Responses (for updates *and*
certified queries) are threshold-signed with the subnet key, so a
client — or a boundary-node service worker — can verify authenticity
end to end without trusting any single replica *or the boundary node
in between* (paper section 4.2).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List

from ..crypto import encoding, sigcache
from ..crypto.drbg import HmacDrbg
from ..crypto.ecdsa import EcdsaPublicKey
from .canister import Canister, CanisterError
from .threshold import SigningSession, ThresholdError, ThresholdKey


class SubnetError(RuntimeError):
    """Consensus failure: not enough agreeing honest replicas."""


@dataclass
class Replica:
    """One IC node machine."""

    index: int
    canisters: Dict[str, Canister] = field(default_factory=dict)
    #: Byzantine behaviours (for fault-injection tests):
    offline: bool = False
    corrupt_execution: bool = False

    def execute_update(self, canister_id: str, method: str, argument: bytes) -> bytes:
        """Apply an update message to this replica's state."""
        canister = self._canister(canister_id)
        response = canister.update(method, argument)
        if self.corrupt_execution:
            # A Byzantine replica diverges from deterministic execution.
            canister.update(method, argument)  # double-apply: wrong state
        return response

    def execute_query(self, canister_id: str, method: str, argument: bytes) -> bytes:
        """Answer a query from this replica's state."""
        response = self._canister(canister_id).query(method, argument)
        if self.corrupt_execution:
            return b"forged:" + response
        return response

    def state_digest(self, canister_id: str) -> bytes:
        """Canonical state hash (replica agreement checks)."""
        return self._canister(canister_id).state_digest()

    def _canister(self, canister_id: str) -> Canister:
        try:
            return self.canisters[canister_id]
        except KeyError:
            raise CanisterError(f"no canister {canister_id!r}") from None


@dataclass(frozen=True)
class CertifiedResponse:
    """A subnet response plus its threshold signature."""

    canister_id: str
    method: str
    argument_digest: bytes
    response: bytes
    height: int
    signature: bytes

    def signed_payload(self) -> bytes:
        """The canonical byte string covered by the signature."""
        return encoding.encode(
            {
                "canister": self.canister_id,
                "method": self.method,
                "arg_digest": self.argument_digest,
                "response": self.response,
                "height": self.height,
            }
        )

    def verify(self, subnet_public_key: EcdsaPublicKey) -> bool:
        """Client-side authenticity check (what the service worker does)."""
        return sigcache.cached_verify(
            subnet_public_key, self.signed_payload(), self.signature
        )

    def encode(self) -> bytes:
        """Serialise to canonical TLV bytes."""
        return encoding.encode(
            {"payload": self.signed_payload(), "sig": self.signature}
        )

    @classmethod
    def decode(cls, data: bytes) -> "CertifiedResponse":
        """Parse an instance back out of canonical TLV bytes."""
        outer = encoding.decode(data)
        payload = encoding.decode(outer["payload"])
        return cls(
            canister_id=payload["canister"],
            method=payload["method"],
            argument_digest=payload["arg_digest"],
            response=payload["response"],
            height=payload["height"],
            signature=outer["sig"],
        )


class Subnet:
    """A subnet instance with its replicas and threshold key."""

    def __init__(self, num_replicas: int = 4, seed: bytes = b"ic-subnet"):
        if num_replicas < 4:
            raise SubnetError("a BFT subnet needs at least 4 replicas (f >= 1)")
        self.num_replicas = num_replicas
        self.fault_tolerance = (num_replicas - 1) // 3
        self.agreement_threshold = 2 * self.fault_tolerance + 1
        rng = HmacDrbg(seed)
        self.key = ThresholdKey(
            threshold=self.agreement_threshold, num_replicas=num_replicas, rng=rng
        )
        self.replicas: List[Replica] = [Replica(index=i) for i in range(num_replicas)]
        self.height = 0

    @property
    def public_key(self) -> EcdsaPublicKey:
        """What clients (and service workers) pin to verify responses."""
        return self.key.public_key

    def install_canister(self, canister_id: str, canister: Canister) -> None:
        """Deploy a canister: every replica gets its own state copy."""
        for replica in self.replicas:
            replica.canisters[canister_id] = canister.clone()

    # -- message execution ---------------------------------------------------

    def query(
        self, canister_id: str, method: str, argument: bytes, certified: bool = True
    ) -> CertifiedResponse:
        """A read-only call.  With ``certified=True`` the response is
        threshold-signed by the replicas that agree on it."""
        responses: Dict[bytes, List[Replica]] = {}
        for replica in self.replicas:
            if replica.offline:
                continue
            result = replica.execute_query(canister_id, method, argument)
            responses.setdefault(result, []).append(replica)
        if not responses:
            raise SubnetError("no replica answered the query")
        majority_response, agreeing = max(
            responses.items(), key=lambda item: len(item[1])
        )
        if certified and len(agreeing) < self.agreement_threshold:
            raise SubnetError(
                f"only {len(agreeing)} replicas agree "
                f"(threshold {self.agreement_threshold})"
            )
        return self._certify(canister_id, method, argument, majority_response, agreeing)

    def update(self, canister_id: str, method: str, argument: bytes) -> CertifiedResponse:
        """A state-mutating call, sequenced through consensus."""
        self.height += 1
        responses: Dict[bytes, List[Replica]] = {}
        digests: Dict[int, bytes] = {}
        for replica in self.replicas:
            if replica.offline:
                continue
            result = replica.execute_update(canister_id, method, argument)
            digests[replica.index] = replica.state_digest(canister_id)
            responses.setdefault(result, []).append(replica)

        # Agreement is on the post-execution state digest.
        digest_groups: Dict[bytes, List[int]] = {}
        for index, digest in digests.items():
            digest_groups.setdefault(digest, []).append(index)
        _majority_digest, agreeing_indices = max(
            digest_groups.items(), key=lambda item: len(item[1])
        )
        if len(agreeing_indices) < self.agreement_threshold:
            raise SubnetError(
                f"state divergence: only {len(agreeing_indices)} replicas agree"
            )
        agreeing = [self.replicas[i] for i in agreeing_indices]
        majority_response = next(
            response
            for response, replicas in responses.items()
            if any(r.index in agreeing_indices for r in replicas)
        )
        return self._certify(canister_id, method, argument, majority_response, agreeing)

    def _certify(
        self,
        canister_id: str,
        method: str,
        argument: bytes,
        response: bytes,
        agreeing: List[Replica],
    ) -> CertifiedResponse:
        unsigned = CertifiedResponse(
            canister_id=canister_id,
            method=method,
            argument_digest=hashlib.sha256(argument).digest(),
            response=response,
            height=self.height,
            signature=b"",
        )
        session = SigningSession(self.key, unsigned.signed_payload())
        for replica in agreeing:
            session.contribute(self.key.share_for(replica.index))
            if session.ready:
                break
        try:
            signature = session.sign()
        except ThresholdError as exc:
            raise SubnetError(f"could not certify response: {exc}") from exc
        return CertifiedResponse(
            canister_id=unsigned.canister_id,
            method=unsigned.method,
            argument_digest=unsigned.argument_digest,
            response=unsigned.response,
            height=unsigned.height,
            signature=signature,
        )
