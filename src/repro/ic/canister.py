"""Canisters: the Internet Computer's smart contracts.

A canister is a deterministic state machine exposing *query* methods
(read-only, answered by any replica) and *update* methods (mutating,
sequenced through consensus).  Two concrete canisters cover the
boundary-node use case: a key-value canister (application state) and an
asset canister (the web frontend the boundary node serves).
"""

from __future__ import annotations

from typing import Dict

from ..crypto import encoding


class CanisterError(RuntimeError):
    """Raised on unknown methods or malformed arguments."""


class Canister:
    """Base class: dispatch by method name, deterministic execution."""

    QUERY_METHODS: tuple = ()
    UPDATE_METHODS: tuple = ()

    def query(self, method: str, argument: bytes) -> bytes:
        """Execute a read-only method."""
        if method not in self.QUERY_METHODS:
            raise CanisterError(f"no query method {method!r}")
        return getattr(self, f"query_{method}")(argument)

    def update(self, method: str, argument: bytes) -> bytes:
        """Execute a state-mutating method."""
        if method not in self.UPDATE_METHODS:
            raise CanisterError(f"no update method {method!r}")
        return getattr(self, f"update_{method}")(argument)

    def state_digest(self) -> bytes:
        """Canonical state hash (used to check replica agreement)."""
        import hashlib

        return hashlib.sha256(self._state_bytes()).digest()

    def _state_bytes(self) -> bytes:
        raise NotImplementedError

    def clone(self) -> "Canister":
        """Deep copy for per-replica state."""
        raise NotImplementedError


class KvCanister(Canister):
    """A key-value store contract."""

    QUERY_METHODS = ("get", "keys")
    UPDATE_METHODS = ("put", "delete")

    def __init__(self, initial: Dict[str, bytes] = None):
        self._data: Dict[str, bytes] = dict(initial or {})

    def query_get(self, argument: bytes) -> bytes:
        """get(key) -> {found, value}."""
        key = argument.decode("utf-8")
        value = self._data.get(key)
        return encoding.encode({"found": value is not None, "value": value or b""})

    def query_keys(self, argument: bytes) -> bytes:
        """keys() -> sorted key list."""
        return encoding.encode(sorted(self._data))

    def update_put(self, argument: bytes) -> bytes:
        """put({key, value}) -> {ok}."""
        decoded = encoding.decode(argument)
        self._data[decoded["key"]] = decoded["value"]
        return encoding.encode({"ok": True})

    def update_delete(self, argument: bytes) -> bytes:
        """delete(key) -> {ok: existed}."""
        key = argument.decode("utf-8")
        existed = self._data.pop(key, None) is not None
        return encoding.encode({"ok": existed})

    def _state_bytes(self) -> bytes:
        return encoding.encode({k: v for k, v in sorted(self._data.items())})

    def clone(self) -> "KvCanister":
        """Deep copy for per-replica state."""
        return KvCanister(dict(self._data))


class AssetCanister(Canister):
    """Serves the web application's static assets (the dapp frontend)."""

    QUERY_METHODS = ("http_request", "list_assets")
    UPDATE_METHODS = ("store",)

    def __init__(self, assets: Dict[str, bytes] = None):
        self._assets: Dict[str, bytes] = dict(assets or {})

    def query_http_request(self, argument: bytes) -> bytes:
        """http_request(path) -> {status, body}."""
        path = argument.decode("utf-8")
        asset = self._assets.get(path)
        if asset is None:
            return encoding.encode({"status": 404, "body": b""})
        return encoding.encode({"status": 200, "body": asset})

    def query_list_assets(self, argument: bytes) -> bytes:
        """list_assets() -> sorted path list."""
        return encoding.encode(sorted(self._assets))

    def update_store(self, argument: bytes) -> bytes:
        """store({path, content}) -> {ok}."""
        decoded = encoding.decode(argument)
        self._assets[decoded["path"]] = decoded["content"]
        return encoding.encode({"ok": True})

    def _state_bytes(self) -> bytes:
        return encoding.encode({k: v for k, v in sorted(self._assets.items())})

    def clone(self) -> "AssetCanister":
        """Deep copy for per-replica state."""
        return AssetCanister(dict(self._assets))
