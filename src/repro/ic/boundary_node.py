"""The IC boundary node: a protocol-translation proxy (paper §4.2, Fig. 2).

A boundary node accepts ordinary HTTP(S) from browsers and translates
it into IC protocol messages, in two modes:

* **direct** — the BN itself queries the asset canister and returns the
  web page,
* **service worker** — the BN's *first* response ships a service worker
  (served from the BN's measured rootfs); once installed in the
  browser, the worker translates requests into IC calls itself and
  *verifies the subnet's threshold signature* on every response, so a
  malicious BN cannot forge canister state.

The residual risk — a malicious BN shipping a *modified service worker*
that skips verification — is exactly what Revelio closes: the worker
file is part of the dm-verity-protected rootfs, covered by the launch
measurement end-users attest.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from ..crypto import encoding
from ..crypto.ecdsa import EcdsaPublicKey
from ..net.http import HttpRequest, HttpResponse
from .subnet import CertifiedResponse, Subnet, SubnetError

#: Where the boundary-node package instals the worker in the image.
SERVICE_WORKER_PATH = "/opt/ic/service-worker.js"
FRONTEND_CANISTER = "frontend"


class BoundaryNodeError(RuntimeError):
    """Translation-layer failures."""


def build_service_worker(
    subnet_public_key: EcdsaPublicKey,
    verify_signatures: bool = True,
    version: str = "1.0.0",
) -> bytes:
    """Produce the service-worker blob baked into the BN image.

    ``verify_signatures=False`` yields the *malicious* worker of the
    paper's threat discussion — it skips response verification.  It is
    a different byte string, hence a different rootfs hash, hence a
    different launch measurement."""
    return encoding.encode(
        {
            "magic": "ic-service-worker",
            "version": version,
            "subnet_key": subnet_public_key.encode(),
            "verify": verify_signatures,
        }
    )


@dataclass
class ServiceWorker:
    """The browser-side worker, parsed from the served sw.js blob."""

    version: str
    subnet_public_key: EcdsaPublicKey
    verify_signatures: bool

    @classmethod
    def decode(cls, blob: bytes) -> "ServiceWorker":
        """Parse an instance back out of canonical TLV bytes."""
        try:
            decoded = encoding.decode(blob)
        except ValueError as exc:
            raise BoundaryNodeError("not a service worker blob") from exc
        if not isinstance(decoded, dict) or decoded.get("magic") != "ic-service-worker":
            raise BoundaryNodeError("not a service worker blob")
        return cls(
            version=decoded["version"],
            subnet_public_key=EcdsaPublicKey.decode(decoded["subnet_key"]),
            verify_signatures=decoded["verify"],
        )

    def call(
        self,
        http_client,
        base_url: str,
        canister_id: str,
        method: str,
        argument: bytes,
        kind: str = "query",
    ) -> bytes:
        """Translate a request into an IC message via the BN and verify
        the threshold signature on the certified response."""
        body = encoding.encode(
            {"canister": canister_id, "method": method, "arg": argument}
        )
        response, _ = http_client.post(f"{base_url}/api/v2/{kind}", body)
        if response.status != 200:
            raise BoundaryNodeError(
                f"boundary node returned {response.status}: {response.body!r}"
            )
        certified = CertifiedResponse.decode(response.body)
        if self.verify_signatures:
            if not certified.verify(self.subnet_public_key):
                raise BoundaryNodeError(
                    "threshold signature verification failed: forged response"
                )
            if certified.argument_digest != hashlib.sha256(argument).digest():
                raise BoundaryNodeError("response certifies a different request")
        return certified.response


class BoundaryNodeApp:
    """The application installed on a Revelio node (app factory)."""

    def __init__(
        self,
        subnet: Subnet,
        frontend_canister: str = FRONTEND_CANISTER,
        forge_responses: bool = False,
    ):
        self.subnet = subnet
        self.frontend_canister = frontend_canister
        #: Attack switch: forge canister responses after certification.
        self.forge_responses = forge_responses
        self._node = None

    def install(self, node) -> None:
        """Wire the BN routes onto a :class:`~repro.core.guest.RevelioNode`."""
        self._node = node
        node.add_app_route("GET", "/", self._serve_index)
        node.add_app_route("GET", "/sw.js", self._serve_service_worker)
        node.add_app_route("POST", "/api/v2/query", self._handle_query)
        node.add_app_route("POST", "/api/v2/update", self._handle_update)

    # -- direct translation mode ---------------------------------------------

    def _serve_index(self, request: HttpRequest, context) -> HttpResponse:
        try:
            certified = self.subnet.query(
                self.frontend_canister, "http_request", b"/index.html"
            )
        except (SubnetError, Exception) as exc:
            return HttpResponse.error(f"IC unavailable: {exc}")
        asset = encoding.decode(certified.response)
        if asset["status"] != 200:
            return HttpResponse.not_found()
        return HttpResponse.ok(asset["body"])

    def _serve_service_worker(self, request: HttpRequest, context) -> HttpResponse:
        """Serve the worker from the measured rootfs — tampering with it
        means shipping a different image with a different measurement."""
        rootfs = self._node.vm.rootfs
        if not rootfs.exists(SERVICE_WORKER_PATH):
            return HttpResponse.not_found()
        return HttpResponse.ok(
            rootfs.read_file(SERVICE_WORKER_PATH), "application/javascript"
        )

    # -- service worker mode -----------------------------------------------------

    def _handle_query(self, request: HttpRequest, context) -> HttpResponse:
        return self._handle_ic_call(request, kind="query")

    def _handle_update(self, request: HttpRequest, context) -> HttpResponse:
        return self._handle_ic_call(request, kind="update")

    def _handle_ic_call(self, request: HttpRequest, kind: str) -> HttpResponse:
        try:
            decoded = encoding.decode(request.body)
            canister_id = decoded["canister"]
            method = decoded["method"]
            argument = decoded["arg"]
        except (ValueError, KeyError, TypeError):
            return HttpResponse.error("malformed IC call")
        try:
            if kind == "query":
                certified = self.subnet.query(canister_id, method, argument)
            else:
                certified = self.subnet.update(canister_id, method, argument)
        except (SubnetError, Exception) as exc:
            return HttpResponse.error(f"IC call failed: {exc}")
        if self.forge_responses:
            certified = _forge(certified)
        return HttpResponse.ok(certified.encode(), "application/octet-stream")


def _forge(certified: CertifiedResponse) -> CertifiedResponse:
    """The malicious-BN manipulation: replace the response payload while
    keeping the (now invalid) signature."""
    return CertifiedResponse(
        canister_id=certified.canister_id,
        method=certified.method,
        argument_digest=certified.argument_digest,
        response=b"forged:" + certified.response,
        height=certified.height,
        signature=certified.signature,
    )
