"""The (untrusted) hypervisor.

Models QEMU with the SEV-SNP + measured-direct-boot patches: it loads
the firmware template, hashes the direct-boot blobs, injects the hash
table, asks the AMD-SP to measure and launch, and attaches the
host-controlled disk.

Because the hypervisor is *untrusted* in the threat model, this class
also exposes every attack the paper's security analysis (section 6.1)
considers, as explicit :class:`LaunchAttack` options and runtime
tampering methods.  Defences live elsewhere (firmware, AMD-SP,
dm-verity, the verifier) — the hypervisor happily executes the attacks;
the tests and the security-matrix benchmark check that each one is
caught downstream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..amd.policy import REVELIO_POLICY, GuestPolicy
from ..amd.secure_processor import SecureProcessor
from ..build import measurement
from ..crypto.drbg import HmacDrbg
from ..storage.blockdev import RamBlockDevice
from .image import VmImage
from .vm import VirtualMachine


@dataclass
class LaunchAttack:
    """Host-side manipulations applied while launching a guest.

    Each field corresponds to an attack from section 6.1:

    * ``replace_kernel`` / ``replace_initrd`` / ``replace_cmdline`` —
      load modified boot components (6.1.1),
    * ``inject_expected_hashes`` — fill the firmware table with the
      *original* image's hashes while passing the substituted blobs,
      hoping the firmware won't notice (6.1.1, third variant),
    * ``replace_firmware_template`` — boot a malicious OVMF that skips
      verification (6.1.1, second variant),
    * ``tamper_disk`` — arbitrary offline modification of the disk
      (6.1.2), applied before the guest boots.
    """

    replace_kernel: Optional[bytes] = None
    replace_initrd: Optional[bytes] = None
    replace_cmdline: Optional[str] = None
    replace_firmware_template: Optional[bytes] = None
    inject_expected_hashes: bool = False
    tamper_disk: Optional[Callable[[RamBlockDevice], None]] = None


class Hypervisor:
    """One host's VMM, bound to that host's AMD-SP."""

    def __init__(self, processor: SecureProcessor, rng: Optional[HmacDrbg] = None,
                 host_name: str = "host-0"):
        self.processor = processor
        self.host_name = host_name
        self._rng = rng if rng is not None else HmacDrbg(b"hypervisor:" + host_name.encode())
        self._launch_counter = 0
        self.vms: List[VirtualMachine] = []
        #: Host-side persistent storage: VM name -> its disk, surviving
        #: guest shutdowns (how Revelio's sealed state persists).
        self.disk_store: Dict[str, RamBlockDevice] = {}

    def launch(
        self,
        image: VmImage,
        policy: GuestPolicy = REVELIO_POLICY,
        name: Optional[str] = None,
        reuse_disk: bool = False,
        attack: Optional[LaunchAttack] = None,
        ip_address: Optional[str] = None,
    ) -> VirtualMachine:
        """Launch a guest from *image*.

        With ``reuse_disk=True`` the previously stored disk for this VM
        name is re-attached (second boot of a stateful service);
        otherwise a fresh disk is created from the image.
        """
        attack = attack if attack is not None else LaunchAttack()
        self._launch_counter += 1
        vm_name = name if name is not None else f"{image.name}-{self._launch_counter}"

        kernel = attack.replace_kernel if attack.replace_kernel is not None else image.kernel
        initrd = attack.replace_initrd if attack.replace_initrd is not None else image.initrd
        cmdline = (
            attack.replace_cmdline if attack.replace_cmdline is not None else image.cmdline
        )
        firmware_template = (
            attack.replace_firmware_template
            if attack.replace_firmware_template is not None
            else image.firmware_template
        )

        if attack.inject_expected_hashes:
            # Lie to the firmware: advertise the honest image's hashes.
            firmware_image = measurement.measured_firmware(
                firmware_template, image.kernel, image.initrd, image.cmdline
            )
        else:
            firmware_image = measurement.measured_firmware(
                firmware_template, kernel, initrd, cmdline
            )

        guest_context = self.processor.launch_vm(firmware_image, policy)

        first_boot = True
        if reuse_disk and vm_name in self.disk_store:
            disk = self.disk_store[vm_name]
            first_boot = False
        else:
            if len(image.disk_image) % image.disk_block_size:
                raise ValueError("disk image not block aligned")
            disk = RamBlockDevice(
                len(image.disk_image) // image.disk_block_size,
                image.disk_block_size,
                initial=image.disk_image,
            )
        self.disk_store[vm_name] = disk
        if attack.tamper_disk is not None:
            attack.tamper_disk(disk)

        vm = VirtualMachine(
            name=vm_name,
            firmware_image=firmware_image,
            kernel=kernel,
            initrd=initrd,
            cmdline=cmdline,
            disk=disk,
            guest_context=guest_context,
            rng=self._rng.fork(vm_name.encode() + self._launch_counter.to_bytes(4, "big")),
            base_boot_seconds=image.base_boot_seconds(),
            first_boot=first_boot,
        )
        vm.ip_address = ip_address
        self.vms.append(vm)
        return vm

    # -- runtime host attacks -------------------------------------------------

    def tamper_disk_at_runtime(self, vm: VirtualMachine, byte_offset: int,
                               xor_mask: int = 0x01) -> Callable[[], None]:
        """Flip disk bits under a *running* guest (section 6.1.3): the
        host always can — dm-verity makes the guest notice on read.

        Returns an undo callable that re-applies the XOR mask (the
        scenario engine's ``revert()`` protocol: a second mutation puts
        the bytes back; caches above stay invalidated either way)."""
        vm.disk.corrupt(byte_offset, xor_mask)
        return lambda: vm.disk.corrupt(byte_offset, xor_mask)

    def snapshot_disk(self, vm_name: str) -> bytes:
        """Capture a disk image for a later rollback attack (6.1.4)."""
        return self.disk_store[vm_name].snapshot()

    def rollback_disk(self, vm_name: str, snapshot: bytes) -> None:
        """Replace the stored disk with an older snapshot (6.1.4)."""
        self.disk_store[vm_name].restore(snapshot)
