"""Guest virtual machine lifecycle.

A :class:`VirtualMachine` is what the hypervisor launches: it holds the
blobs the hypervisor *actually passed* (which a malicious host may have
substituted), the AMD-SP guest context fixed at launch, and the
host-controlled disk.  :meth:`boot` executes the guest side of measured
direct boot — the firmware hash check, then the init steps named by the
initrd descriptor (dm-verity rootfs setup, dm-crypt, identity creation,
network lockdown ... registered by ``repro.core.guest``).

Boot timings are recorded per init step; Table 1 of the paper is
regenerated from exactly these numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..amd.secure_processor import GuestContext
from ..crypto.drbg import HmacDrbg
from ..storage.blockdev import RamBlockDevice
from ..storage.dm import VolumeRegistry
from .firmware import firmware_boot_check
from .image import InitrdDescriptor, KernelBlob, get_init_step, parse_cmdline

STATE_CREATED = "created"
STATE_RUNNING = "running"
STATE_FAILED = "failed"
STATE_STOPPED = "stopped"


class VmError(RuntimeError):
    """Raised on invalid VM lifecycle operations."""


class BootFailure(VmError):
    """The VM refused to boot (measured-boot or init-step failure)."""


@dataclass
class BootTiming:
    """Wall-clock cost of one init step, for the Table 1 benchmark."""

    step: str
    seconds: float


class VirtualMachine:
    """One launched guest."""

    def __init__(
        self,
        name: str,
        firmware_image: bytes,
        kernel: bytes,
        initrd: bytes,
        cmdline: str,
        disk: RamBlockDevice,
        guest_context: GuestContext,
        rng: HmacDrbg,
        base_boot_seconds: float = 0.0,
        first_boot: bool = True,
    ):
        self.name = name
        self.firmware_image = firmware_image
        self.kernel = kernel
        self.initrd = initrd
        self.cmdline = cmdline
        self.disk = disk
        self.guest = guest_context
        self.rng = rng
        self.state = STATE_CREATED
        self.first_boot = first_boot
        self.base_boot_seconds = base_boot_seconds
        self.boot_timings: List[BootTiming] = []
        self.boot_error: Optional[str] = None

        # Populated by init steps during boot:
        self.cmdline_args: Dict[str, str] = {}
        self.initrd_params: Dict[str, str] = {}
        self.rootfs = None  # FileSystem on the verity device
        self.storage = VolumeRegistry()  # opened volumes by role
        self.services: Dict[str, Any] = {}  # app services by name
        self.identity: Optional[Any] = None  # VmIdentity from core.guest
        self.firewall = None  # core.guest installs the network lockdown
        self.ip_address: Optional[str] = None

    # -- lifecycle ---------------------------------------------------------

    def boot(self) -> None:
        """Run the guest boot sequence; raises :class:`BootFailure` and
        moves to the failed state on any verification error."""
        if self.state != STATE_CREATED:
            raise VmError(f"cannot boot a VM in state {self.state!r}")
        try:
            self._boot_sequence()
        except Exception as exc:
            # Any verification or init failure terminates the launch
            # (section 5.2.1: "otherwise, the VM's launching is terminated").
            self.state = STATE_FAILED
            self.boot_error = str(exc)
            raise BootFailure(str(exc)) from exc
        self.state = STATE_RUNNING

    def _boot_sequence(self) -> None:
        # 1. Firmware: measured direct boot verification of the blobs the
        #    hypervisor handed over fw_cfg.
        firmware_boot_check(self.firmware_image, self.kernel, self.initrd, self.cmdline)
        # 2. Kernel + initrd parse ("loading" them).
        KernelBlob.decode(self.kernel)
        descriptor = InitrdDescriptor.decode(self.initrd)
        self.cmdline_args = parse_cmdline(self.cmdline)
        self.initrd_params = dict(descriptor.parameters)
        # 3. Init: run each step named by the (measured) initrd.
        for step_name in descriptor.init_steps:
            step = get_init_step(step_name)
            started = time.perf_counter()
            step.run(self)
            self.boot_timings.append(
                BootTiming(step=step_name, seconds=time.perf_counter() - started)
            )

    def shutdown(self) -> None:
        """Stop the VM: the guest context dies, the disk persists on the
        host (and is re-attached at the next launch)."""
        if self.state not in (STATE_RUNNING, STATE_FAILED):
            raise VmError(f"cannot shut down a VM in state {self.state!r}")
        self.guest.terminate()
        self.state = STATE_STOPPED

    # -- introspection -------------------------------------------------------

    @property
    def measurement(self) -> bytes:
        """The launch measurement fixed by the AMD-SP."""
        return self.guest.measurement

    def boot_timing(self, step: str) -> float:
        """Seconds spent in the named init step during boot."""
        for timing in self.boot_timings:
            if timing.step == step:
                return timing.seconds
        raise VmError(f"no timing recorded for step {step!r}")

    def total_boot_seconds(self) -> float:
        """Measured Revelio init cost + the image's simulated base
        services — the denominator used for Table 1's overhead column."""
        measured = sum(timing.seconds for timing in self.boot_timings)
        return measured + self.base_boot_seconds

    def require_running(self) -> None:
        """Raise unless the VM is running."""
        if self.state != STATE_RUNNING:
            raise VmError(f"VM {self.name!r} is not running (state={self.state})")
