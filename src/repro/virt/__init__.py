"""Virtualization substrate: firmware, hypervisor, and guest VMs.

Simulates QEMU + OVMF with the SEV-SNP measured-direct-boot patches
(paper section 2.1.2), including the full attack surface of an
untrusted host (section 6.1).
"""

from .firmware import (
    BootVerificationError,
    FirmwareError,
    HashTable,
    build_firmware,
    firmware_boot_check,
    firmware_hash_table,
    firmware_version,
    inject_hash_table,
)
from .hypervisor import Hypervisor, LaunchAttack
from .image import (
    ImageError,
    InitrdDescriptor,
    KernelBlob,
    VmImage,
    get_init_step,
    list_init_steps,
    parse_cmdline,
    register_init_step,
)
from .vm import (
    STATE_CREATED,
    STATE_FAILED,
    STATE_RUNNING,
    STATE_STOPPED,
    BootFailure,
    BootTiming,
    VirtualMachine,
    VmError,
)

__all__ = [
    "BootFailure",
    "BootTiming",
    "BootVerificationError",
    "FirmwareError",
    "HashTable",
    "Hypervisor",
    "ImageError",
    "InitrdDescriptor",
    "KernelBlob",
    "LaunchAttack",
    "STATE_CREATED",
    "STATE_FAILED",
    "STATE_RUNNING",
    "STATE_STOPPED",
    "VirtualMachine",
    "VmError",
    "VmImage",
    "build_firmware",
    "firmware_boot_check",
    "firmware_hash_table",
    "firmware_version",
    "get_init_step",
    "inject_hash_table",
    "list_init_steps",
    "parse_cmdline",
    "register_init_step",
]
