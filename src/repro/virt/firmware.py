"""The virtual firmware (OVMF) with measured-direct-boot support.

Models the patched OVMF of Murik & Franke's "measured direct boot"
(paper section 2.1.2, Fig. 1): the firmware binary reserves a *hash
table* region; at launch the hypervisor computes SHA-256 hashes of the
kernel, initrd, and kernel command line and injects them there; the
AMD-SP then measures the *whole* firmware image — table included — so
the injected hashes are covered by the attestation report.  When the
guest boots, firmware code re-hashes each blob received over fw_cfg and
refuses to boot on any mismatch.

A *malicious* firmware variant (``verify_hashes=False``) is also
constructible — its measurement necessarily differs, which is exactly
the defence the paper describes in section 6.1.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..crypto import encoding

_FIRMWARE_MAGIC = "repro-ovmf"

#: The version string of the stock, hash-verifying Revelio firmware.
DEFAULT_VERSION = "revelio-ovmf-1.0"


class FirmwareError(ValueError):
    """Raised on malformed firmware images."""


class BootVerificationError(RuntimeError):
    """Raised by firmware when a measured blob does not match its table
    entry — the VM halts instead of booting (section 2.1.2)."""


@dataclass(frozen=True)
class HashTable:
    """The kernel-hashes table embedded in the firmware volume."""

    kernel: bytes
    initrd: bytes
    cmdline: bytes

    def to_dict(self) -> dict:
        """Dict form for canonical TLV embedding."""
        return {"kernel": self.kernel, "initrd": self.initrd, "cmdline": self.cmdline}

    @classmethod
    def from_dict(cls, data: dict) -> "HashTable":
        """Rebuild from the dict form."""
        return cls(kernel=data["kernel"], initrd=data["initrd"], cmdline=data["cmdline"])

    @classmethod
    def for_blobs(cls, kernel: bytes, initrd: bytes, cmdline: str) -> "HashTable":
        """Hash the direct-boot blobs the way QEMU does before injection.

        Delegates to :mod:`repro.build.measurement`, the single place
        that defines the blob-hashing scheme (lazy import: this module
        loads before ``repro.build`` during package initialisation).
        """
        from ..build.measurement import direct_boot_hashes

        kernel_hash, initrd_hash, cmdline_hash = direct_boot_hashes(
            kernel, initrd, cmdline
        )
        return cls(kernel=kernel_hash, initrd=initrd_hash, cmdline=cmdline_hash)


def build_firmware(
    version: str = DEFAULT_VERSION, verify_hashes: bool = True
) -> bytes:
    """Build a firmware *template*: code identity + an empty hash table.

    ``verify_hashes=False`` yields the attacker's firmware that skips
    the boot-time check; it is a distinct binary and therefore has a
    distinct launch measurement.
    """
    return encoding.encode(
        {
            "magic": _FIRMWARE_MAGIC,
            "version": version,
            "verify_hashes": verify_hashes,
            "hash_table": None,
        }
    )


def inject_hash_table(firmware_template: bytes, table: HashTable) -> bytes:
    """QEMU's injection step: fill the reserved table in the firmware
    volume.  The result is what the AMD-SP measures."""
    decoded = _decode(firmware_template)
    decoded["hash_table"] = table.to_dict()
    return encoding.encode(decoded)


def firmware_version(firmware_image: bytes) -> str:
    """The version string embedded in a firmware image."""
    return _decode(firmware_image)["version"]


def firmware_hash_table(firmware_image: bytes) -> Optional[HashTable]:
    """The injected hash table, or None on a bare template."""
    table = _decode(firmware_image)["hash_table"]
    return HashTable.from_dict(table) if table is not None else None


def firmware_boot_check(
    firmware_image: bytes, kernel: bytes, initrd: bytes, cmdline: str
) -> None:
    """Execute the firmware's measured-direct-boot verification.

    Re-hashes each blob received over fw_cfg and compares against the
    embedded table.  Raises :class:`BootVerificationError` on mismatch
    (honest firmware) and silently accepts anything if this firmware was
    built without verification (the malicious variant).
    """
    decoded = _decode(firmware_image)
    if not decoded["verify_hashes"]:
        return  # malicious firmware: boots anything, but is measured as such
    table_dict = decoded["hash_table"]
    if table_dict is None:
        raise BootVerificationError("hash table was never injected")
    expected = HashTable.from_dict(table_dict)
    actual = HashTable.for_blobs(kernel, initrd, cmdline)
    for blob_name in ("kernel", "initrd", "cmdline"):
        if getattr(expected, blob_name) != getattr(actual, blob_name):
            raise BootVerificationError(
                f"measured direct boot: {blob_name} hash mismatch; halting"
            )


def _decode(firmware_image: bytes) -> dict:
    try:
        decoded = encoding.decode(firmware_image)
    except ValueError as exc:
        raise FirmwareError("unreadable firmware image") from exc
    if not isinstance(decoded, dict) or decoded.get("magic") != _FIRMWARE_MAGIC:
        raise FirmwareError("not a firmware image")
    return decoded
