"""VM image container: everything a hypervisor needs to launch a guest.

Produced by the reproducible build pipeline (``repro.build``) and
consumed by the hypervisor.  The *initrd* is a TLV descriptor listing
the init steps the guest runs at boot — semantically it *is* the init
code, so any change to boot behaviour changes the initrd bytes and
therefore the measured hash (paper section 5.1.2: "the code enforcing
the integrity protection for the rootfs is part of the initrd and the
kernel, which are both measured").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..crypto import encoding


class ImageError(ValueError):
    """Raised on malformed images or initrd descriptors."""


@dataclass(frozen=True)
class InitrdDescriptor:
    """The init sequence and parameters embedded in the initrd blob."""

    init_steps: Tuple[str, ...]
    parameters: Dict[str, str] = field(default_factory=dict)

    def encode(self) -> bytes:
        """Serialise to canonical TLV bytes."""
        return encoding.encode(
            {
                "magic": "repro-initrd",
                "steps": list(self.init_steps),
                "params": dict(self.parameters),
            }
        )

    @classmethod
    def decode(cls, data: bytes) -> "InitrdDescriptor":
        """Parse an instance back out of canonical TLV bytes."""
        try:
            decoded = encoding.decode(data)
        except ValueError as exc:
            raise ImageError("unreadable initrd") from exc
        if not isinstance(decoded, dict) or decoded.get("magic") != "repro-initrd":
            raise ImageError("not an initrd descriptor")
        return cls(
            init_steps=tuple(decoded["steps"]),
            parameters=dict(decoded["params"]),
        )


@dataclass(frozen=True)
class KernelBlob:
    """The kernel image: identity + feature flags (content-addressed)."""

    name: str
    version: str
    features: Tuple[str, ...] = ()

    def encode(self) -> bytes:
        """Serialise to canonical TLV bytes."""
        return encoding.encode(
            {
                "magic": "repro-kernel",
                "name": self.name,
                "version": self.version,
                "features": list(self.features),
            }
        )

    @classmethod
    def decode(cls, data: bytes) -> "KernelBlob":
        """Parse an instance back out of canonical TLV bytes."""
        try:
            decoded = encoding.decode(data)
        except ValueError as exc:
            raise ImageError("unreadable kernel blob") from exc
        if not isinstance(decoded, dict) or decoded.get("magic") != "repro-kernel":
            raise ImageError("not a kernel blob")
        return cls(
            name=decoded["name"],
            version=decoded["version"],
            features=tuple(decoded["features"]),
        )


def parse_cmdline(cmdline: str) -> Dict[str, str]:
    """Parse ``key=value`` kernel command-line arguments (bare words map
    to the empty string)."""
    arguments: Dict[str, str] = {}
    for token in cmdline.split():
        key, _, value = token.partition("=")
        arguments[key] = value
    return arguments


@dataclass(frozen=True)
class VmImage:
    """A complete, launch-ready Revelio VM image."""

    name: str
    version: str
    firmware_template: bytes
    kernel: bytes
    initrd: bytes
    cmdline: str
    disk_image: bytes
    disk_block_size: int = 4096
    #: Simulated cost (seconds) of the image's non-Revelio system
    #: services during boot — the denominator of Table 1's overhead %.
    base_boot_services: Tuple[Tuple[str, float], ...] = ()

    def initrd_descriptor(self) -> InitrdDescriptor:
        """Parse the initrd blob."""
        return InitrdDescriptor.decode(self.initrd)

    def kernel_blob(self) -> KernelBlob:
        """Parse the kernel blob."""
        return KernelBlob.decode(self.kernel)

    def cmdline_args(self) -> Dict[str, str]:
        """Parsed kernel command-line arguments."""
        return parse_cmdline(self.cmdline)

    def base_boot_seconds(self) -> float:
        """Total simulated base-service boot cost."""
        return sum(duration for _, duration in self.base_boot_services)

    def encode(self) -> bytes:
        """Serialise the image for distribution / on-disk storage."""
        return encoding.encode(
            {
                "magic": "repro-vm-image",
                "name": self.name,
                "version": self.version,
                "firmware": self.firmware_template,
                "kernel": self.kernel,
                "initrd": self.initrd,
                "cmdline": self.cmdline,
                "disk": self.disk_image,
                "block_size": self.disk_block_size,
                "base_boot": [
                    [name, int(duration * 1_000_000)]
                    for name, duration in self.base_boot_services
                ],
            }
        )

    @classmethod
    def decode(cls, data: bytes) -> "VmImage":
        """Parse an instance back out of canonical TLV bytes."""
        try:
            decoded = encoding.decode(data)
        except ValueError as exc:
            raise ImageError("unreadable VM image") from exc
        if not isinstance(decoded, dict) or decoded.get("magic") != "repro-vm-image":
            raise ImageError("not a VM image")
        return cls(
            name=decoded["name"],
            version=decoded["version"],
            firmware_template=decoded["firmware"],
            kernel=decoded["kernel"],
            initrd=decoded["initrd"],
            cmdline=decoded["cmdline"],
            disk_image=decoded["disk"],
            disk_block_size=decoded["block_size"],
            base_boot_services=tuple(
                (name, micros / 1_000_000) for name, micros in decoded["base_boot"]
            ),
        )


#: Init steps registry: the build names steps in the initrd descriptor;
#: packages register implementations here (repro.core registers the
#: Revelio services).  Maps name -> callable(vm) -> None.
INIT_STEP_REGISTRY: Dict[str, "InitStep"] = {}


class InitStep:
    """A named guest init step executed during :meth:`VirtualMachine.boot`."""

    def __init__(self, name: str, run):
        self.name = name
        self.run = run

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InitStep({self.name!r})"


def register_init_step(name: str):
    """Decorator: register an init-step implementation under *name*."""

    def decorator(fn):
        INIT_STEP_REGISTRY[name] = InitStep(name, fn)
        return fn

    return decorator


def get_init_step(name: str) -> InitStep:
    """Look up a registered init step (loads the standard steps lazily)."""
    if name not in INIT_STEP_REGISTRY:
        # The standard Revelio steps live in repro.core.guest; load them
        # on first use so boots work regardless of import order.
        import importlib

        importlib.import_module("repro.core.guest")
    try:
        return INIT_STEP_REGISTRY[name]
    except KeyError:
        raise ImageError(f"unknown init step {name!r} (kernel panic)") from None


def list_init_steps() -> List[str]:
    """Names of all registered init steps."""
    return sorted(INIT_STEP_REGISTRY)
