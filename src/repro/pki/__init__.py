"""Web PKI + ACME substrate (the Let's Encrypt / certbot analogue)."""

from .acme import (
    CERT_LIFETIME,
    DEFAULT_RATE_LIMIT,
    DEFAULT_RATE_WINDOW,
    AcmeError,
    AcmeOrder,
    AcmeServer,
    RateLimitError,
)
from .ca import WebPki
from .certbot import CertbotClient

__all__ = [
    "AcmeError",
    "AcmeOrder",
    "AcmeServer",
    "CERT_LIFETIME",
    "CertbotClient",
    "DEFAULT_RATE_LIMIT",
    "DEFAULT_RATE_WINDOW",
    "RateLimitError",
    "WebPki",
]
