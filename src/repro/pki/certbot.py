"""The ACME client (certbot analogue).

Runs on the SP node — the machine on the service provider's premises
that holds the DNS API credentials (section 3.4.6).  Given a CSR (which
came out of an attested Revelio VM), it drives the full ACME DNS-01
dance: order, publish TXT record, trigger validation, finalize, and
return the certificate chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..crypto.x509 import Certificate, CertificateSigningRequest
from ..net.dns import DnsRegistry
from .acme import AcmeServer


@dataclass
class CertbotClient:
    """An ACME account with DNS credentials for its domains."""

    acme: AcmeServer
    dns: DnsRegistry

    def obtain_certificate(
        self, domain: str, csr: CertificateSigningRequest
    ) -> List[Certificate]:
        """Run the DNS-01 flow; returns the leaf + intermediate chain."""
        order = self.acme.new_order(domain)
        # Prove domain control: publish the key authorisation in DNS.
        self.dns.set_txt(order.txt_record_name, [order.key_authorization()])
        try:
            self.acme.validate_challenge(order.order_id)
            certificate = self.acme.finalize(order.order_id, csr)
        finally:
            # Clean up the challenge record either way.
            self.dns.set_txt(order.txt_record_name, [])
        return [certificate, *self.acme.chain()]
