"""The browser-trusted web PKI hierarchy.

A root CA ("ISRG Root" analogue) with an issuing intermediate ("R3"
analogue).  Browsers in the simulation pin the root; the ACME server
signs leaf certificates with the intermediate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..crypto.drbg import HmacDrbg
from ..crypto.keys import PrivateKey
from ..crypto.x509 import Certificate, CertificateIssuer, Name

#: ~100 years in simulated seconds; CA certificates outlive every test.
_CA_LIFETIME = 3_155_760_000


@dataclass
class WebPki:
    """A complete web-PKI: root + intermediate + the served chain."""

    root: CertificateIssuer
    intermediate: CertificateIssuer

    @classmethod
    def create(cls, rng: HmacDrbg, name: str = "Simulated Trust Services",
               not_before: int = 0) -> "WebPki":
        """Construct and validate an instance."""
        root_key = PrivateKey.generate_ecdsa(rng.fork(b"web-root"), "P-384")
        root = CertificateIssuer.self_signed_root(
            Name(f"{name} Root X1", organization=name),
            root_key,
            not_before,
            not_before + _CA_LIFETIME,
        )
        intermediate_key = PrivateKey.generate_ecdsa(rng.fork(b"web-intermediate"))
        intermediate_cert = root.issue(
            Name(f"{name} Intermediate R3", organization=name),
            intermediate_key.public_key(),
            not_before,
            not_before + _CA_LIFETIME,
            is_ca=True,
            path_length=0,
            key_usage=("cert_sign",),
        )
        return cls(
            root=root,
            intermediate=CertificateIssuer(intermediate_cert, intermediate_key),
        )

    @property
    def trust_anchor(self) -> Certificate:
        """What browsers ship in their root store."""
        return self.root.certificate

    def chain_for(self, leaf: Certificate) -> List[Certificate]:
        """The chain a server should present: leaf + intermediate."""
        return [leaf, self.intermediate.certificate]
