"""An ACME certificate authority with DNS-01 challenges and rate limits.

Models Let's Encrypt (paper section 2.2): orders, DNS-01 domain
validation against the simulated DNS, CSR-based issuance, and — the
detail Revelio's TLS-key-sharing design exists to work around
(section 3.4.6) — **per-domain rate limiting** of certificate issuance
within a rolling window.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..crypto.drbg import HmacDrbg
from ..crypto.x509 import Certificate, CertificateSigningRequest
from ..net.dns import DnsRegistry
from ..net.latency import LatencyModel, SimClock
from .ca import WebPki

#: Let's Encrypt's "duplicate certificate" limit: 5 per week.
DEFAULT_RATE_LIMIT = 5
DEFAULT_RATE_WINDOW = 7 * 24 * 3600
#: 90-day leaf lifetime, like Let's Encrypt.
CERT_LIFETIME = 90 * 24 * 3600


class AcmeError(ValueError):
    """Protocol violations: bad orders, failed challenges, bad CSRs."""


class RateLimitError(AcmeError):
    """The per-domain issuance limit was hit (Let's Encrypt 429)."""


@dataclass
class AcmeOrder:
    """One in-flight certificate order."""

    order_id: str
    domain: str
    challenge_token: str
    validated: bool = False
    fulfilled: bool = False

    @property
    def txt_record_name(self) -> str:
        """The _acme-challenge TXT name for this order."""
        return f"_acme-challenge.{self.domain}"

    def key_authorization(self) -> str:
        """The digest the client must publish in DNS."""
        return hashlib.sha256(self.challenge_token.encode()).hexdigest()


class AcmeServer:
    """The CA endpoint (directory + order + finalize in one object)."""

    def __init__(
        self,
        pki: WebPki,
        dns: DnsRegistry,
        clock: SimClock,
        rng: HmacDrbg,
        latency: Optional[LatencyModel] = None,
        rate_limit: int = DEFAULT_RATE_LIMIT,
        rate_window: float = DEFAULT_RATE_WINDOW,
    ):
        self._pki = pki
        self._dns = dns
        self._clock = clock
        self._rng = rng
        self._latency = latency if latency is not None else LatencyModel()
        self.rate_limit = rate_limit
        self.rate_window = rate_window
        self._orders: Dict[str, AcmeOrder] = {}
        self._issuance_times: Dict[str, List[float]] = {}
        self.issued: List[Certificate] = []

    # -- the ACME flow -----------------------------------------------------

    def new_order(self, domain: str) -> AcmeOrder:
        """Create an order and its DNS-01 challenge."""
        if not domain or "/" in domain:
            raise AcmeError(f"invalid domain {domain!r}")
        self._check_rate_limit(domain, charge=False)
        token = self._rng.generate(16).hex()
        order = AcmeOrder(
            order_id=self._rng.generate(8).hex(),
            domain=domain.lower(),
            challenge_token=token,
        )
        self._orders[order.order_id] = order
        return order

    def validate_challenge(self, order_id: str) -> None:
        """Check the TXT record; the client must have published it."""
        order = self._order(order_id)
        published = self._dns.get_txt(order.txt_record_name)
        if order.key_authorization() not in published:
            raise AcmeError(
                f"DNS-01 challenge failed for {order.domain}: "
                "key authorization not found in TXT records"
            )
        order.validated = True

    def finalize(self, order_id: str, csr: CertificateSigningRequest) -> Certificate:
        """Issue the certificate for a validated order and CSR.

        The CSR's key becomes the certified key (the paper's flow:
        Revelio VM creates the key pair + CSR; the CA never sees a
        private key)."""
        order = self._order(order_id)
        if not order.validated:
            raise AcmeError("order has not passed domain validation")
        if order.fulfilled:
            raise AcmeError("order already fulfilled")
        if not csr.verify():
            raise AcmeError("CSR proof-of-possession signature invalid")
        csr_names = {csr.subject.common_name.lower(), *[s.lower() for s in csr.san]}
        if order.domain not in csr_names:
            raise AcmeError(
                f"CSR does not cover the ordered domain {order.domain!r}"
            )
        self._check_rate_limit(order.domain, charge=True)

        self._clock.advance(self._latency.acme_issuance)
        now = self._clock.epoch_seconds()
        certificate = self._pki.intermediate.issue(
            csr.subject,
            csr.public_key,
            not_before=now,
            not_after=now + CERT_LIFETIME,
            san=tuple({order.domain, *csr.san}),
            key_usage=("digital_signature",),
        )
        order.fulfilled = True
        self.issued.append(certificate)
        return certificate

    def chain(self) -> List[Certificate]:
        """The intermediate chain served alongside leaf certificates."""
        return [self._pki.intermediate.certificate]

    # -- internals ---------------------------------------------------------

    def _order(self, order_id: str) -> AcmeOrder:
        try:
            return self._orders[order_id]
        except KeyError:
            raise AcmeError(f"unknown order {order_id!r}") from None

    def _check_rate_limit(self, domain: str, charge: bool) -> None:
        domain = domain.lower()
        now = self._clock.now
        window_start = now - self.rate_window
        recent = [t for t in self._issuance_times.get(domain, []) if t > window_start]
        self._issuance_times[domain] = recent
        if len(recent) >= self.rate_limit:
            raise RateLimitError(
                f"rate limit of {self.rate_limit} certificates per "
                f"{self.rate_window:.0f}s exceeded for {domain}"
            )
        if charge:
            recent.append(now)
