"""Fleet lifecycle operations: image rollouts and certificate renewal.

Two operational procedures the paper describes but the prototype leaves
implicit:

* **Image rollout** (section 6.1.4): "the obsolete cryptographic hashes
  are being revoked every time there is a newer image rollout to
  prevent rollback attacks."  :func:`roll_out_image` replaces every
  fleet VM with the new build, updates the SP's golden set, revokes the
  old measurement, and re-provisions certificates.  Old-image VMs can
  no longer join the fleet, and verifiers consulting a registry stop
  accepting them.

* **Certificate renewal** (section 6.3.2): "this happens typically once
  every 90 days when the SSL certificate needs to be renewed and
  redistributed."  :func:`renew_certificate` re-issues against the same
  leader CSR — the TLS key pair is unchanged, so end-users' pinned keys
  stay valid and no browser session is disrupted.

Note on sealed state: sealing keys are measurement-derived (F6), so a
new image *cannot* decrypt volumes sealed by the old one.  That is the
security property working as intended.  The attested hand-over at the
bottom of this module (:func:`migrate_sealed_state`) closes the gap:
the *running* old VM releases its volume key only to a successor that
attests as the endorsed new image, mutual-attestation style.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..build.image_builder import BuildResult
from ..storage.blockdev import RamBlockDevice
from .deployment import AppFactory, DeployedNode, RevelioDeployment, default_app
from .guest import RevelioNode
from .sp_node import ProvisioningResult


class RolloutError(RuntimeError):
    """A rollout or renewal failed."""


@dataclass
class RolloutResult:
    """Outcome of :func:`roll_out_image`."""

    old_measurement: bytes
    new_measurement: bytes
    provisioning: ProvisioningResult
    #: The pre-rollout disks, keyed by node name (sealed state the new
    #: image cannot open; kept for application-layer migration/audit).
    retired_disks: Dict[str, RamBlockDevice]


def replace_node(
    deployment: RevelioDeployment,
    index: int,
    new_build: BuildResult,
    app_factory: AppFactory = default_app,
    node_registry=None,
) -> RamBlockDevice:
    """Replace one fleet VM with *new_build* on the same host address.

    Shuts down the old VM, launches the new image on the same
    host/chip with a fresh disk, rebinds the host firewall and app, and
    swaps ``deployment.nodes[index]`` in place.  Returns the retired
    disk (sealed state the new image cannot open).  The new node is
    *not* provisioned — callers follow up with fleet-wide
    ``provision_certificates`` (cold rollout) or per-node
    ``ServiceProviderNode.admit_node`` (rolling rollout under load).
    """
    deployed = deployment.nodes[index]
    old_vm = deployed.vm
    if old_vm.state == "running":
        old_vm.shutdown()
    retired_disk = deployed.hypervisor.disk_store[old_vm.name]
    new_vm = deployed.hypervisor.launch(
        new_build.image,
        name=f"{new_build.image.name}-{index}-v{new_build.image.version}",
        ip_address=deployed.host.ip_address,
    )
    new_vm.boot()
    deployed.host.close_port(443)
    deployed.host.close_port(8080)
    deployed.host.firewall = _firewall_of(new_vm)
    node = RevelioNode(
        new_vm, deployed.host, deployment._new_kds_client(), deployment.latency
    )
    if node_registry is not None:
        node.trusted_registry = node_registry
    app_factory(node)
    deployment.nodes[index] = DeployedNode(
        vm=new_vm,
        host=deployed.host,
        node=node,
        hypervisor=deployed.hypervisor,
    )
    return retired_disk


def update_golden_set(
    deployment: RevelioDeployment,
    old_measurement: bytes,
    new_measurement: bytes,
) -> None:
    """Accept the new image at the SP and revoke the old one
    (section 6.1.4's rollback-attack prevention)."""
    deployment.sp.expected_measurements = [
        m for m in deployment.sp.expected_measurements if m != old_measurement
    ]
    deployment.sp.expected_measurements.append(new_measurement)
    deployment.sp.revoke_measurement(old_measurement)


def roll_out_image(
    deployment: RevelioDeployment,
    new_build: BuildResult,
    app_factory: AppFactory = default_app,
    leader_index: int = 0,
) -> RolloutResult:
    """Replace the fleet with *new_build* and revoke the old golden.

    The deployment object is updated in place: ``deployment.build``,
    the per-node VMs/apps, the SP's golden set, and DNS all reflect the
    new image afterwards.  This is the *cold* rollout (no traffic in
    flight); :func:`repro.fleet.drain.rolling_rollout` wraps
    :func:`replace_node` + ``admit_node`` to do the same thing
    zero-downtime under load.
    """
    if deployment.sp is None or not deployment.nodes:
        raise RolloutError("deployment has no provisioned fleet to roll out")
    old_build = deployment.build
    old_measurement = bytes(old_build.expected_measurement)
    new_measurement = bytes(new_build.expected_measurement)
    if old_measurement == new_measurement:
        raise RolloutError("new image has the identical measurement; nothing to do")

    retired_disks: Dict[str, RamBlockDevice] = {}
    for index, deployed in enumerate(deployment.nodes):
        old_name = deployed.vm.name
        retired_disks[old_name] = replace_node(
            deployment, index, new_build, app_factory
        )

    deployment.build = new_build
    update_golden_set(deployment, old_measurement, new_measurement)

    provisioning = deployment.provision_certificates(leader_index)
    return RolloutResult(
        old_measurement=old_measurement,
        new_measurement=new_measurement,
        provisioning=provisioning,
        retired_disks=retired_disks,
    )


def renew_certificate(
    deployment: RevelioDeployment,
) -> ProvisioningResult:
    """The 90-day renewal: re-issue for the existing leader CSR and
    redistribute.  The TLS key pair is unchanged, so pinned keys in
    end-user sessions remain valid."""
    if deployment.provisioning is None or deployment.sp is None:
        raise RolloutError("nothing to renew: fleet not provisioned")
    leader_ip = deployment.provisioning.leader_ip
    node_ips = [deployed.host.ip_address for deployed in deployment.nodes]
    try:
        leader_index = node_ips.index(leader_ip)
    except ValueError:
        raise RolloutError("previous leader left the fleet") from None
    result = deployment.sp.provision_fleet(node_ips, leader_index)
    deployment.provisioning = result
    return result


def _firewall_of(vm):
    from ..net.firewall import Firewall

    return vm.firewall if vm.firewall is not None else Firewall.open_firewall()


# -- attested sealed-state migration ------------------------------------------


def export_sealed_master_key(
    old_vm,
    peer_bundle,
    kds,
    now: int,
    accepted_measurements,
) -> bytes:
    """Old-image side of a state hand-over.

    The outgoing VM re-derives its data-volume master key from the
    AMD-SP sealing key and releases it **only** to a peer that proves —
    via a key-endorsing attestation report — that it runs an image on
    the *accepted* list (the successor's golden value, typically
    endorsed by the trusted registry before the rollout).  The key is
    ECIES-encrypted to the attested peer key; the transport would be
    the bootstrap channel, and the payload is self-protecting either
    way.
    """
    from ..crypto.kdf import hkdf
    from ..crypto.keys import PublicKey
    from .key_sharing import encrypt_to_public_key, verify_report_bundle

    old_vm.require_running()
    verify_report_bundle(
        peer_bundle,
        kds,
        now=now,
        expected_measurements=accepted_measurements,
    )
    peer_key = PublicKey.decode(peer_bundle.payload)
    sealing_key = old_vm.guest.derive_sealing_key(b"disk-encryption")
    master_key = hkdf(sealing_key, info=b"luks-master-key", length=64)
    return encrypt_to_public_key(peer_key.inner, master_key, old_vm.rng)


def import_sealed_state(
    new_vm,
    encrypted_master_key: bytes,
    old_disk: RamBlockDevice,
    old_bundle,
    kds,
    now: int,
    accepted_measurements,
) -> int:
    """New-image side: verify the *old* VM's bundle (mutual
    attestation), unwrap the key, open the retired disk's data volume,
    and copy its contents into the new VM's own sealed volume.

    Returns the number of blocks migrated."""
    from ..storage.dm import DmContext, DmTable
    from .key_sharing import decrypt_with_private_key, verify_report_bundle

    new_vm.require_running()
    verify_report_bundle(
        old_bundle,
        kds,
        now=now,
        expected_measurements=accepted_measurements,
    )
    master_key = decrypt_with_private_key(
        new_vm.identity.private_key, encrypted_master_key
    )
    old_volume = DmTable.parse(
        "retired-data", "linear partition=data ; crypt key=master"
    ).open(DmContext(disk=old_disk, keys={"master": master_key}))
    new_volume = new_vm.storage["data"]
    blocks = min(old_volume.num_blocks, new_volume.num_blocks)
    for index in range(blocks):
        new_volume.write_block(index, old_volume.read_block(index))
    return blocks


def migrate_sealed_state(old_deployed, new_vm, kds_factory, now: int,
                         old_accepts, new_accepts,
                         old_disk: Optional[RamBlockDevice] = None) -> int:
    """Full hand-over between a running old-image node and a booted
    new-image VM: mutual attestation in both directions, then the
    data-volume copy.  *old_accepts* / *new_accepts* are each side's
    golden sets (registry-endorsed successor / predecessor values)."""
    encrypted = export_sealed_master_key(
        old_deployed.vm,
        new_vm.identity.key_bundle(),
        kds_factory(),
        now,
        old_accepts,
    )
    disk = old_disk if old_disk is not None else old_deployed.vm.disk
    return import_sealed_state(
        new_vm,
        encrypted,
        disk,
        old_deployed.vm.identity.key_bundle(),
        kds_factory(),
        now,
        new_accepts,
    )
