"""End-to-end deployment orchestration.

Wires the whole Revelio world together (paper Fig. 3): AMD
infrastructure + KDS, the web PKI + ACME CA, a simulated internet, a
fleet of SEV-SNP hosts each launching one Revelio VM from the built
image, the SP node that provisions the shared TLS identity, and
browser factories for end-users.  Used by the integration tests, the
examples, and every benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..amd.kds import KeyDistributionServer
from ..amd.secure_processor import AmdKeyInfrastructure
from ..build.image_builder import SERVICE_CONF_PATH, BuildResult
from ..build.measurement import expected_measurement_for_image
from ..crypto import encoding
from ..crypto.drbg import HmacDrbg
from ..net.http import HttpResponse
from ..net.latency import LatencyModel
from ..net.simnet import Host, Network
from ..pki.acme import AcmeServer
from ..pki.ca import WebPki
from ..pki.certbot import CertbotClient
from ..virt.hypervisor import Hypervisor, LaunchAttack
from ..virt.vm import VirtualMachine
from .browser import Browser
from .guest import RevelioNode
from .kds_client import KdsClient
from .sp_node import ProvisioningResult, ServiceProviderNode
from .web_extension import RevelioExtension

#: Default minimal page, matching the paper's client-side benchmark
#: ("repeatedly accessed a minimal web page").
MINIMAL_PAGE = b"<html><body>revelio minimal test page</body></html>"

AppFactory = Callable[[RevelioNode], None]


def default_app(node: RevelioNode) -> None:
    """Serve the minimal test page at /."""
    node.add_app_route(
        "GET", "/", lambda request, context: HttpResponse.ok(MINIMAL_PAGE)
    )


@dataclass
class DeployedNode:
    """One fleet member."""

    vm: VirtualMachine
    host: Host
    node: RevelioNode
    hypervisor: Hypervisor


class RevelioDeployment:
    """A complete simulated world around one built Revelio image."""

    def __init__(
        self,
        build: BuildResult,
        num_nodes: int = 3,
        latency: Optional[LatencyModel] = None,
        seed: bytes = b"revelio-deployment",
    ):
        # The deployment never computes its own digest: it re-derives
        # the golden value through the one measurement path and refuses
        # a build whose recorded golden does not match its image.
        if bytes(build.expected_measurement) != expected_measurement_for_image(
            build.image
        ):
            raise ValueError(
                "build's expected_measurement does not match its image"
            )
        self.build = build
        self.num_nodes = num_nodes
        self.rng = HmacDrbg(seed)
        self.network = Network(latency)
        self.latency = self.network.latency

        self.amd = AmdKeyInfrastructure(self.rng.fork(b"amd"))
        self.kds = KeyDistributionServer(self.amd)
        self.web_pki = WebPki.create(self.rng.fork(b"web-pki"))
        self.acme = AcmeServer(
            self.web_pki,
            self.network.dns,
            self.network.clock,
            self.rng.fork(b"acme"),
            latency=self.latency,
        )
        service_conf = encoding.decode(build.rootfs_files[SERVICE_CONF_PATH])
        self.domain: str = service_conf["domain"]

        self.nodes: List[DeployedNode] = []
        self.sp: Optional[ServiceProviderNode] = None
        self.provisioning: Optional[ProvisioningResult] = None

    # -- deployment ----------------------------------------------------------------

    def node_ip(self, index: int) -> str:
        """The fleet IP for a node index."""
        return f"10.0.0.{index + 1}"

    def launch_fleet(
        self,
        app_factory: AppFactory = default_app,
        attack_for: Optional[Callable[[int], Optional[LaunchAttack]]] = None,
        node_registry=None,
    ) -> List[DeployedNode]:
        """Provision chips, launch and boot one VM per node, attach each
        to the network with its measured firewall, start the node app."""
        for index in range(self.num_nodes):
            chip = self.amd.provision_chip(f"fleet-chip-{index}")
            hypervisor = Hypervisor(
                chip, self.rng.fork(f"hv-{index}".encode()), host_name=f"host-{index}"
            )
            attack = attack_for(index) if attack_for is not None else None
            ip_address = self.node_ip(index)
            vm = hypervisor.launch(
                self.build.image,
                name=f"{self.build.image.name}-{index}",
                attack=attack,
                ip_address=ip_address,
            )
            vm.boot()
            host = self.network.add_host(vm.name, ip_address, firewall=vm.firewall)
            node = RevelioNode(vm, host, self._new_kds_client(), self.latency,
                               trusted_registry=node_registry)
            app_factory(node)
            self.nodes.append(
                DeployedNode(vm=vm, host=host, node=node, hypervisor=hypervisor)
            )
        return self.nodes

    def create_sp_node(
        self,
        pin_chip_ids: bool = True,
        pin_ips: bool = True,
        extra_measurements=(),
    ) -> ServiceProviderNode:
        """The service provider's isolated machine with DNS + ACME creds."""
        sp_host = self.network.add_host("sp-node", "10.1.0.1")
        certbot = CertbotClient(self.acme, self.network.dns)
        self.sp = ServiceProviderNode(
            host=sp_host,
            certbot=certbot,
            kds=self._new_kds_client(),
            domain=self.domain,
            expected_measurements=[self.build.expected_measurement,
                                   *extra_measurements],
            approved_chip_ids=(
                [d.vm.guest.processor.chip_id for d in self.nodes]
                if pin_chip_ids
                else None
            ),
            approved_ips=(
                [d.host.ip_address for d in self.nodes] if pin_ips else None
            ),
        )
        return self.sp

    def provision_certificates(self, leader_index: int = 0) -> ProvisioningResult:
        """Run the Fig. 4 flow and point DNS at the fleet."""
        if self.sp is None:
            self.create_sp_node()
        node_ips = [deployed.host.ip_address for deployed in self.nodes]
        self.provisioning = self.sp.provision_fleet(node_ips, leader_index)
        # Public DNS: the service domain round-robins over the whole
        # fleet (D3) — safe because every node serves the same attested
        # TLS identity; plus per-node names for debugging and tests.
        self.network.dns.register(self.domain, node_ips)
        for index, ip_address in enumerate(node_ips):
            self.network.dns.register(f"node{index}.{self.domain}", ip_address)
        return self.provisioning

    def deploy(
        self,
        app_factory: AppFactory = default_app,
        leader_index: int = 0,
    ) -> "RevelioDeployment":
        """One-call happy path: fleet + SP + certificates + DNS."""
        self.launch_fleet(app_factory)
        self.create_sp_node()
        self.provision_certificates(leader_index)
        return self

    # -- end-user side ----------------------------------------------------------------

    def _new_kds_client(self, cache_enabled: bool = True) -> KdsClient:
        return KdsClient(
            self.kds, self.network.clock, self.latency, cache_enabled=cache_enabled
        )

    def make_user(
        self,
        name: str = "user",
        ip_address: str = "10.2.0.1",
        with_extension: bool = True,
        register_service: bool = True,
        trusted_registry=None,
        kds_cache: bool = True,
        user_override=None,
        reattest_on_rekey: bool = False,
    ):
        """Create an end-user: a machine, a browser, and (optionally)
        the Revelio extension with the service pre-registered."""
        host = self.network.add_host(name, ip_address)
        extension = None
        if with_extension:
            extension = RevelioExtension(
                self._new_kds_client(cache_enabled=kds_cache),
                trusted_registry=trusted_registry,
                user_override=user_override,
                reattest_on_rekey=reattest_on_rekey,
            )
            if register_service:
                extension.register_site(
                    self.domain,
                    expected_measurements=[self.build.expected_measurement],
                )
        browser = Browser(
            host,
            [self.web_pki.trust_anchor],
            self.rng.fork(b"user:" + name.encode()),
            extension=extension,
        )
        return browser, extension

    @property
    def leader(self) -> DeployedNode:
        """The deployed node holding the original TLS key."""
        if self.provisioning is None:
            raise RuntimeError("fleet not provisioned yet")
        for deployed in self.nodes:
            if deployed.host.ip_address == self.provisioning.leader_ip:
                return deployed
        raise RuntimeError("leader not found")
