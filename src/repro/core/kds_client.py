"""Client-side access to the AMD KDS, with latency and caching.

Table 3 of the paper shows the KDS round trip (427.3 ms) dominating a
fresh browser attestation, and notes that "since the VCEK is the same
until the SEV-SNP firmware is updated, it can be cached".  This client
charges the simulated clock for real fetches and serves cache hits for
free, keyed by (chip id, TCB) — so the caching ablation in the
benchmarks measures exactly the effect the paper describes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..amd.kds import KeyDistributionServer
from ..amd.tcb import TcbVersion
from ..crypto.x509 import Certificate
from ..net.latency import LatencyModel, SimClock


class KdsClient:
    """A verifier's handle on the AMD Key Distribution Server."""

    def __init__(
        self,
        kds: KeyDistributionServer,
        clock: SimClock,
        latency: Optional[LatencyModel] = None,
        cache_enabled: bool = True,
    ):
        self._kds = kds
        self._clock = clock
        self._latency = latency if latency is not None else LatencyModel()
        self.cache_enabled = cache_enabled
        self._vcek_cache: Dict[Tuple[bytes, TcbVersion], Certificate] = {}
        self._chain_cache: Optional[List[Certificate]] = None
        #: The ASK/ARK chain that rode along with the last VCEK
        #: response.  Unlike the cache, this exists even with caching
        #: disabled: the KDS bundles the chain with every VCEK response,
        #: so one round trip covers both (the paper's single 427.3 ms
        #: "contacting the AMD key server" figure implies exactly that).
        self._bundled_chain: Optional[List[Certificate]] = None
        #: In-flight request coalescing: (chip id, TCB) -> (completion
        #: time, certificate, bundled chain).  A fetch that starts while
        #: an identical request is still on the wire joins it — it waits
        #: out the remaining flight time instead of paying (and
        #: counting) a second KDS round trip.  Concurrent health-probe
        #: rounds measure in isolated clock scopes sharing one base
        #: time, so their overlapping VCEK fetches for the same chip
        #: collapse to a single round trip.
        self._inflight: Dict[
            Tuple[bytes, TcbVersion],
            Tuple[float, Certificate, List[Certificate]],
        ] = {}
        self.fetches = 0
        self.cache_hits = 0
        self.coalesced_hits = 0

    @property
    def clock(self) -> SimClock:
        """The simulated clock fetches are charged against."""
        return self._clock

    @property
    def latency(self) -> LatencyModel:
        """The latency model; the attestation engine prices its crypto
        steps (signature, chain, measurement) from the same model."""
        return self._latency

    def _charge_round_trip(self) -> None:
        self._clock.advance(self._latency.kds_rtt + self._latency.kds_processing)
        self.fetches += 1

    def get_vcek(self, chip_id: bytes, tcb: TcbVersion) -> Certificate:
        """Fetch (or re-serve) the platform's VCEK certificate."""
        key = (bytes(chip_id), tcb)
        if self.cache_enabled and key in self._vcek_cache:
            self.cache_hits += 1
            return self._vcek_cache[key]
        entry = self._inflight.get(key)
        if entry is not None and self._clock.now < entry[0]:
            # Join the in-flight request: wait out its remaining flight
            # time, then share its response — no second round trip.
            completion, certificate, chain = entry
            self._clock.advance(completion - self._clock.now)
            self.coalesced_hits += 1
            self._bundled_chain = chain
            self._finish_fetch(key, certificate)
            return certificate
        self._charge_round_trip()
        certificate = self._kds.get_vcek_certificate(chip_id, tcb)
        self._bundled_chain = self._kds.cert_chain()
        self._inflight[key] = (self._clock.now, certificate, self._bundled_chain)
        if len(self._inflight) > 64:
            # Bound the table: drop the request that lands earliest
            # (most likely already completed for every timeline).
            earliest = min(self._inflight, key=lambda k: self._inflight[k][0])
            del self._inflight[earliest]
        self._finish_fetch(key, certificate)
        return certificate

    def _finish_fetch(self, key, certificate: Certificate) -> None:
        if self.cache_enabled:
            self._vcek_cache[key] = certificate
            if self._chain_cache is None:
                self._chain_cache = self._bundled_chain

    def cert_chain(self) -> List[Certificate]:
        """The ASK -> ARK chain: cached, or served from the bundle of
        the last VCEK response, or (only if neither exists) fetched."""
        if self.cache_enabled and self._chain_cache is not None:
            self.cache_hits += 1
            return self._chain_cache
        if self._bundled_chain is not None:
            return self._bundled_chain
        self._charge_round_trip()
        chain = self._kds.cert_chain()
        if self.cache_enabled:
            self._chain_cache = chain
        return chain

    @property
    def trust_anchor(self) -> Certificate:
        """The pinned ARK — shipped with the verifier, never fetched."""
        return self._kds.ark_certificate

    def clear_cache(self) -> None:
        """Drop all cached certificates (and in-flight coalescing)."""
        self._vcek_cache.clear()
        self._chain_cache = None
        self._bundled_chain = None
        self._inflight.clear()
