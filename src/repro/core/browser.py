"""The end-user's browser.

Models the Firefox surface the Revelio web extension needs
(section 5.3.2): navigation, an extension hook that *intercepts every
request* to registered domains, and the API to query the TLS
connection context (the certified public key) of the current
connection — the one capability the paper notes only Firefox currently
exposes to extensions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..crypto.drbg import HmacDrbg
from ..crypto.x509 import Certificate
from ..net.http import ConnectionInfo, HttpClient, HttpResponse, parse_url
from ..net.simnet import Host


class NavigationBlocked(RuntimeError):
    """The extension blocked a navigation (and the user didn't override)."""


@dataclass
class PageResult:
    """What a navigation produced."""

    url: str
    response: Optional[HttpResponse]
    connection: Optional[ConnectionInfo]
    blocked: bool = False
    block_reason: str = ""
    warnings: List[str] = field(default_factory=list)


class Browser:
    """A browser instance on the user's machine."""

    def __init__(
        self,
        host: Host,
        trust_anchors: Sequence[Certificate],
        rng: HmacDrbg,
        extension=None,
    ):
        self._host = host
        self.network = host.network
        self._trust_anchors = list(trust_anchors)
        self._rng = rng
        self.extension = extension
        #: Session-sensitivity tag advertised in the client hello (a
        #: tier-aware gateway routes on it); ``None`` means untagged.
        self.session_tier: Optional[str] = None
        self.client = HttpClient(host, trust_anchors, rng.fork(b"browser"))
        self.history: List[PageResult] = []
        if extension is not None:
            extension.attach(self)

    def new_session(self) -> None:
        """Open a fresh browser context: connections and per-session
        extension state are dropped (but not e.g. the VCEK cache)."""
        self.client.close_all()
        self.client = HttpClient(
            self._host, self._trust_anchors, self._rng.fork(b"browser-session")
        )
        if self.session_tier is not None:
            self.client.hello_metadata["tier"] = self.session_tier
        if self.extension is not None:
            self.extension.on_new_session()

    def navigate(self, url: str) -> PageResult:
        """Load a page, letting the extension intercept before and
        validate after (it sees every request to registered domains)."""
        hostname = parse_url(url).hostname
        pre_warnings: List[str] = []
        if self.extension is not None:
            decision = self.extension.before_request(self, hostname, url)
            if decision is not None and decision.blocked:
                result = PageResult(
                    url=url, response=None, connection=None,
                    blocked=True, block_reason=decision.reason,
                )
                self.history.append(result)
                return result
            if decision is not None:
                pre_warnings = list(decision.warnings)

        response, info = self.client.get(url)
        result = PageResult(
            url=url, response=response, connection=info, warnings=pre_warnings
        )

        if self.extension is not None:
            verdict = self.extension.after_response(self, hostname, info)
            if verdict is not None and verdict.blocked:
                result = PageResult(
                    url=url, response=None, connection=info,
                    blocked=True, block_reason=verdict.reason,
                )
            elif verdict is not None:
                result.warnings.extend(verdict.warnings)
        self.history.append(result)
        return result

    def connection_public_key_fingerprint(self, hostname: str) -> Optional[bytes]:
        """The extension's TLS-context query: fingerprint of the key the
        current connection to *hostname* is authenticated with."""
        connection = self.client.current_connection(hostname)
        if connection is None:
            return None
        return connection.peer_public_key.fingerprint()
