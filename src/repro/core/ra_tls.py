"""RA-TLS: attestation evidence embedded in the TLS certificate.

The paper's related-work section notes that RA-TLS-style approaches
(Knauth et al. [26], RATLS [40]) "could be integrated with Revelio".
This module provides that integration as an *alternative transport* for
the attestation evidence: instead of (or in addition to) the well-known
URL, a Revelio VM can serve TLS with a **self-signed certificate that
carries its attestation report as a certificate extension**, where the
report's ``REPORT_DATA`` binds the certificate's public key.

Clients then need no certificate authority at all: the chain of trust
runs AMD ARK -> VCEK -> report -> certificate key.  This suits
machine-to-machine callers (monitoring agents, other services) that
don't have a browser extension but do pin the AMD root and a golden
measurement.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..amd.report import AttestationReport
from ..amd.tcb import TcbVersion
from ..attest import AttestationVerifier, VerificationPolicy
from ..crypto.drbg import HmacDrbg
from ..crypto.keys import PrivateKey
from ..crypto.x509 import Certificate, Name
from ..net.simnet import Host
from ..net.tls import TlsConnection, tls_connect
from .kds_client import KdsClient
from .key_sharing import report_data_for

#: The certificate extension carrying the encoded attestation report.
REPORT_EXTENSION = "revelio.attestation_report"
#: Default port for the RA-TLS endpoint (must be allowed by the image's
#: measured network policy).
RA_TLS_PORT = 8443

#: RA-TLS certificates are identity containers, not CA-validated
#: artifacts; give them a wide validity window and validate the report
#: instead.
_NOT_BEFORE = 0
_NOT_AFTER = 2**62


class RaTlsError(ConnectionError):
    """RA-TLS validation failures.

    Carries the unified pipeline's stable *reason* code when the
    failure came out of a verification step (``ra_tls_error`` for
    transport-local problems such as a malformed extension).
    """

    def __init__(self, message: str, reason: str = "ra_tls_error"):
        super().__init__(message)
        self.reason = reason


def issue_ra_tls_certificate(
    guest_context,
    private_key: PrivateKey,
    subject_name: str,
    san: Iterable[str] = (),
) -> Certificate:
    """Create the self-signed RA-TLS certificate for a guest.

    Asks the AMD-SP for a fresh report whose ``REPORT_DATA`` is the
    certificate key's fingerprint, then self-signs a certificate with
    the report embedded as an extension.
    """
    public_key = private_key.public_key()
    report = guest_context.get_report(report_data_for(public_key.fingerprint()))
    unsigned = Certificate(
        subject=Name(subject_name),
        issuer=Name(subject_name),
        public_key=public_key,
        serial=1,
        not_before=_NOT_BEFORE,
        not_after=_NOT_AFTER,
        san=tuple(san) or (subject_name,),
        key_usage=("digital_signature",),
        extensions=((REPORT_EXTENSION, report.encode()),),
    )
    from dataclasses import replace

    return replace(unsigned, signature=private_key.sign(unsigned.tbs_bytes()))


def extract_report(certificate: Certificate) -> AttestationReport:
    """Pull the embedded attestation report out of a certificate."""
    raw = certificate.extension(REPORT_EXTENSION)
    if raw is None:
        raise RaTlsError("certificate carries no attestation report")
    try:
        return AttestationReport.decode(raw)
    except Exception as exc:
        raise RaTlsError(f"embedded report is malformed: {exc}") from exc


def validate_ra_tls_certificate(
    certificate: Certificate,
    kds: KdsClient,
    now: int,
    expected_measurements: Iterable[bytes],
    allowed_chip_ids: Optional[Iterable[bytes]] = None,
    minimum_tcb: Optional[TcbVersion] = None,
    verifier: Optional[AttestationVerifier] = None,
) -> AttestationReport:
    """The client-side RA-TLS check.

    1. the certificate must be self-signed by its own key (possession),
    2. the embedded report must verify against the AMD hierarchy,
    3. the report's REPORT_DATA must bind the certificate key,
    4. the measurement must be in the golden set.

    Steps 2-4 run through the unified :mod:`repro.attest` pipeline; a
    failing step surfaces as :class:`RaTlsError` carrying the step's
    stable reason code.
    """
    if not certificate.verify_signature(certificate.public_key):
        raise RaTlsError(
            "RA-TLS certificate is not self-signed by its key",
            reason="not_self_signed",
        )
    report = extract_report(certificate)
    if verifier is None:
        verifier = AttestationVerifier(kds, site="ra_tls")
    policy = VerificationPolicy(
        golden_measurements=expected_measurements,
        expected_report_data=report_data_for(
            certificate.public_key.fingerprint()
        ),
        allowed_chip_ids=allowed_chip_ids,
        minimum_tcb=minimum_tcb,
    )
    outcome = verifier.verify(report, now=now, policy=policy)
    if not outcome.ok:
        if outcome.reason == "report_data_mismatch":
            raise RaTlsError(
                "embedded report does not endorse the certificate key",
                reason=outcome.reason,
            )
        raise RaTlsError(
            "embedded report failed verification: "
            f"{outcome.reason}: {outcome.detail}",
            reason=outcome.reason,
        )
    return report


def serve_ra_tls(node, port: int = RA_TLS_PORT) -> Certificate:
    """Expose a node's HTTPS application over an RA-TLS endpoint.

    Reuses the node's VM identity key; returns the issued certificate.
    The image's network policy must allow *port* (it is measured, so
    enabling RA-TLS is itself attested configuration).
    """
    vm = node.vm
    certificate = issue_ra_tls_certificate(
        vm.guest,
        vm.identity.wrapped_private_key,
        subject_name=f"{vm.name}.ra-tls",
        san=(f"{vm.name}.ra-tls",),
    )
    node.https.serve_tls(
        node.host,
        [certificate],
        vm.identity.wrapped_private_key,
        vm.rng.fork(b"ra-tls"),
        port=port,
    )
    return certificate


def ra_tls_connect(
    client_host: Host,
    dst_ip: str,
    port: int,
    server_name: str,
    kds: KdsClient,
    expected_measurements: Iterable[bytes],
    rng: HmacDrbg,
    allowed_chip_ids: Optional[Iterable[bytes]] = None,
    minimum_tcb: Optional[TcbVersion] = None,
) -> TlsConnection:
    """Connect with attestation-based (CA-less) authentication.

    The TLS handshake runs unauthenticated at the PKI level
    (``verify=False``); the peer certificate is then validated purely
    through its embedded attestation report.  Raises
    :class:`RaTlsError` and closes the connection on failure.
    """
    connection = tls_connect(
        client_host,
        dst_ip,
        port,
        server_name,
        trust_anchors=[],
        rng=rng,
        now=client_host.network.clock.epoch_seconds(),
        verify=False,
    )
    try:
        validate_ra_tls_certificate(
            connection.peer_certificate,
            kds,
            now=client_host.network.clock.epoch_seconds(),
            expected_measurements=expected_measurements,
            allowed_chip_ids=allowed_chip_ids,
            minimum_tcb=minimum_tcb,
        )
    except RaTlsError:
        connection.close()
        raise
    return connection
