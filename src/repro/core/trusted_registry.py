"""Delegated verification: trusted registries of golden values.

Most end-users cannot rebuild an image and recompute its measurement
themselves, so Revelio lets them delegate (requirement D2,
section 3.4.7): golden measurements can come from

* an **auditing company** that reviewed the sources and publishes
  *signed* statements (:class:`AuditorRegistry`), or
* an **on-chain DAO** where a community votes values in or out
  (:class:`DaoRegistry` — the Internet Computer NNS analogue).

Both also support *revocation*, which is what defeats rollback attacks
(section 6.1.4): when a new image rolls out, the obsolete measurement
is revoked and verifiers reject it even though it was once golden.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set

from ..crypto import encoding
from ..crypto.keys import PrivateKey, PublicKey


class RegistryError(ValueError):
    """Malformed or improperly signed registry statements."""


class TrustedRegistry:
    """Interface the web extension consumes."""

    def golden_measurements(self, domain: str) -> Set[bytes]:
        """Endorsed measurements for a domain."""
        raise NotImplementedError

    def revoked_measurements(self, domain: str) -> Set[bytes]:
        """Revoked measurements for a domain."""
        raise NotImplementedError


# -- auditor ------------------------------------------------------------------


@dataclass(frozen=True)
class AuditStatement:
    """A signed claim: 'measurement M is a good state for domain D'."""

    domain: str
    measurement: bytes
    revoked: bool
    signature: bytes = b""

    def tbs_bytes(self) -> bytes:
        """The to-be-signed canonical serialisation."""
        return encoding.encode(
            {
                "domain": self.domain,
                "measurement": self.measurement,
                "revoked": self.revoked,
            }
        )


class Auditor:
    """The auditing company: reviews sources, signs statements."""

    def __init__(self, signing_key: PrivateKey, name: str = "auditor"):
        self._key = signing_key
        self.name = name

    @property
    def public_key(self) -> PublicKey:
        """The corresponding public key."""
        return self._key.public_key()

    def endorse(self, domain: str, measurement: bytes) -> AuditStatement:
        """Sign an endorsement statement."""
        statement = AuditStatement(domain, bytes(measurement), revoked=False)
        return AuditStatement(
            domain, bytes(measurement), False, self._key.sign(statement.tbs_bytes())
        )

    def revoke(self, domain: str, measurement: bytes) -> AuditStatement:
        """Sign a revocation statement."""
        statement = AuditStatement(domain, bytes(measurement), revoked=True)
        return AuditStatement(
            domain, bytes(measurement), True, self._key.sign(statement.tbs_bytes())
        )


class AuditorRegistry(TrustedRegistry):
    """The extension's local store of auditor statements; only accepts
    statements signed by the configured auditor key."""

    def __init__(self, auditor_public_key: PublicKey):
        self._auditor_key = auditor_public_key
        self._golden: Dict[str, Set[bytes]] = {}
        self._revoked: Dict[str, Set[bytes]] = {}

    def ingest(self, statement: AuditStatement) -> None:
        """Verify and apply a statement (endorsement or revocation)."""
        if not self._auditor_key.verify(statement.tbs_bytes(), statement.signature):
            raise RegistryError("audit statement signature invalid")
        domain = statement.domain.lower()
        if statement.revoked:
            self._revoked.setdefault(domain, set()).add(statement.measurement)
            self._golden.get(domain, set()).discard(statement.measurement)
        else:
            self._golden.setdefault(domain, set()).add(statement.measurement)

    def golden_measurements(self, domain: str) -> Set[bytes]:
        """Endorsed measurements for a domain."""
        return set(self._golden.get(domain.lower(), set()))

    def revoked_measurements(self, domain: str) -> Set[bytes]:
        """Revoked measurements for a domain."""
        return set(self._revoked.get(domain.lower(), set()))


# -- DAO ----------------------------------------------------------------------


@dataclass
class Proposal:
    """A community proposal to endorse or revoke a measurement."""

    proposal_id: int
    domain: str
    measurement: bytes
    action: str  # "endorse" | "revoke"
    yes_votes: Set[str] = field(default_factory=set)
    no_votes: Set[str] = field(default_factory=set)
    executed: bool = False


class DaoRegistry(TrustedRegistry):
    """An on-chain governance registry (NNS-style): members vote, and a
    proposal executes once a majority of the membership approves."""

    def __init__(self, members: Iterable[str]):
        self.members = set(members)
        if not self.members:
            raise RegistryError("a DAO needs at least one member")
        self._proposals: Dict[int, Proposal] = {}
        self._next_id = 1
        self._golden: Dict[str, Set[bytes]] = {}
        self._revoked: Dict[str, Set[bytes]] = {}

    @property
    def threshold(self) -> int:
        """Votes required to execute a proposal (simple majority)."""
        return len(self.members) // 2 + 1

    def propose(self, domain: str, measurement: bytes, action: str = "endorse") -> int:
        """Open a proposal; returns its id."""
        if action not in ("endorse", "revoke"):
            raise RegistryError(f"unknown action {action!r}")
        proposal = Proposal(
            proposal_id=self._next_id,
            domain=domain.lower(),
            measurement=bytes(measurement),
            action=action,
        )
        self._proposals[proposal.proposal_id] = proposal
        self._next_id += 1
        return proposal.proposal_id

    def vote(self, proposal_id: int, member: str, approve: bool) -> None:
        """Cast or change a member's vote."""
        if member not in self.members:
            raise RegistryError(f"{member!r} is not a DAO member")
        proposal = self._proposal(proposal_id)
        if proposal.executed:
            raise RegistryError("proposal already executed")
        if approve:
            proposal.yes_votes.add(member)
            proposal.no_votes.discard(member)
        else:
            proposal.no_votes.add(member)
            proposal.yes_votes.discard(member)
        if len(proposal.yes_votes) >= self.threshold:
            self._execute(proposal)

    def _execute(self, proposal: Proposal) -> None:
        domain = proposal.domain
        if proposal.action == "endorse":
            self._golden.setdefault(domain, set()).add(proposal.measurement)
            self._revoked.get(domain, set()).discard(proposal.measurement)
        else:
            self._revoked.setdefault(domain, set()).add(proposal.measurement)
            self._golden.get(domain, set()).discard(proposal.measurement)
        proposal.executed = True

    def proposal_status(self, proposal_id: int) -> Proposal:
        """The proposal's current state."""
        return self._proposal(proposal_id)

    def _proposal(self, proposal_id: int) -> Proposal:
        try:
            return self._proposals[proposal_id]
        except KeyError:
            raise RegistryError(f"unknown proposal {proposal_id}") from None

    def golden_measurements(self, domain: str) -> Set[bytes]:
        """Endorsed measurements for a domain."""
        return set(self._golden.get(domain.lower(), set()))

    def revoked_measurements(self, domain: str) -> Set[bytes]:
        """Revoked measurements for a domain."""
        return set(self._revoked.get(domain.lower(), set()))


class StaticRegistry(TrustedRegistry):
    """A fixed mapping, for tests and simple deployments."""

    def __init__(self, golden: Dict[str, List[bytes]] = None,
                 revoked: Dict[str, List[bytes]] = None):
        self._golden = {
            k.lower(): {bytes(v) for v in vs} for k, vs in (golden or {}).items()
        }
        self._revoked = {
            k.lower(): {bytes(v) for v in vs} for k, vs in (revoked or {}).items()
        }

    def golden_measurements(self, domain: str) -> Set[bytes]:
        """Endorsed measurements for a domain."""
        return set(self._golden.get(domain.lower(), set()))

    def revoked_measurements(self, domain: str) -> Set[bytes]:
        """Revoked measurements for a domain."""
        return set(self._revoked.get(domain.lower(), set()))
