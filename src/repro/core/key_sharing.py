"""Attestation bundles and public-key encryption for TLS key sharing.

Implements the wire structures and cryptography of the mutual
attestation + key distribution protocol (paper Fig. 4 / section 5.3.1):

* :class:`ReportBundle` — an attestation report plus the payload it
  endorses (a CSR or a public key), with the binding rule that the
  report's ``REPORT_DATA`` equals the payload's SHA-256 hash,
* :func:`encrypt_to_public_key` / :func:`decrypt_with_private_key` —
  ECIES-style hybrid encryption (ephemeral ECDH + AEAD) used by the
  leader to wrap the shared TLS private key for each attested peer,
* :func:`verify_report_bundle` — the common verification routine run by
  the SP node, the leader, and the peers.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Optional

from ..amd.report import AttestationReport
from ..amd.tcb import TcbVersion
from ..amd.verify import VerifiedReport
from ..attest import AttestationVerifier, VerificationPolicy
from ..crypto import encoding
from ..crypto.drbg import HmacDrbg
from ..crypto.ec import P256
from ..crypto.ecdsa import EcdsaPrivateKey, EcdsaPublicKey
from ..crypto.kdf import hkdf
from ..crypto.modes import AeadCipher, AeadError
from .kds_client import KdsClient

BUNDLE_KIND_CSR = "csr"
BUNDLE_KIND_PUBLIC_KEY = "public_key"


class KeySharingError(RuntimeError):
    """Raised on malformed bundles or failed unwrapping."""


def report_data_for(payload_digest: bytes) -> bytes:
    """Embed a 32-byte digest in the 64-byte REPORT_DATA field."""
    if len(payload_digest) != 32:
        raise KeySharingError("payload digest must be 32 bytes")
    return payload_digest + b"\x00" * 32


@dataclass(frozen=True)
class ReportBundle:
    """An attestation report plus the payload its REPORT_DATA endorses."""

    kind: str  # BUNDLE_KIND_CSR or BUNDLE_KIND_PUBLIC_KEY
    report: AttestationReport
    payload: bytes  # encoded CSR or encoded public key

    def encode(self) -> bytes:
        """Serialise to canonical TLV bytes."""
        return encoding.encode(
            {"kind": self.kind, "report": self.report.encode(), "payload": self.payload}
        )

    @classmethod
    def decode(cls, data: bytes) -> "ReportBundle":
        """Parse an instance back out of canonical TLV bytes."""
        try:
            decoded = encoding.decode(data)
            return cls(
                kind=decoded["kind"],
                report=AttestationReport.decode(decoded["report"]),
                payload=decoded["payload"],
            )
        except (ValueError, KeyError, TypeError) as exc:
            raise KeySharingError(f"malformed report bundle: {exc}") from exc

    def payload_digest(self) -> bytes:
        """SHA-256 of the attached payload."""
        return hashlib.sha256(self.payload).digest()

    def binding_ok(self) -> bool:
        """Does REPORT_DATA endorse this payload?"""
        return self.report.report_data == report_data_for(self.payload_digest())


def bundle_policy(
    bundle: ReportBundle,
    expected_measurements: Iterable[bytes],
    allowed_chip_ids: Optional[Iterable[bytes]] = None,
    minimum_tcb: Optional[TcbVersion] = None,
) -> VerificationPolicy:
    """The pipeline policy a bundle must satisfy: golden set, the
    REPORT_DATA = H(payload) binding, and any platform constraints."""
    return VerificationPolicy(
        golden_measurements=expected_measurements,
        expected_report_data=report_data_for(bundle.payload_digest()),
        allowed_chip_ids=allowed_chip_ids,
        minimum_tcb=minimum_tcb,
    )


def verify_report_bundle(
    bundle: ReportBundle,
    kds: KdsClient,
    now: int,
    expected_measurements: Iterable[bytes],
    allowed_chip_ids: Optional[Iterable[bytes]] = None,
    minimum_tcb: Optional[TcbVersion] = None,
    verifier: Optional[AttestationVerifier] = None,
) -> VerifiedReport:
    """Full bundle verification through the unified pipeline: KDS chain
    + signature + measurement against the golden set + REPORT_DATA/
    payload binding.

    Callers that hold their own :class:`AttestationVerifier` (for a
    per-site trace label) pass it as *verifier*; otherwise one is built
    over *kds*.  Raises :class:`~repro.amd.verify.AttestationError`
    with the failing step's stable reason code.
    """
    if verifier is None:
        verifier = AttestationVerifier(kds, site="key_sharing")
    policy = bundle_policy(
        bundle, expected_measurements, allowed_chip_ids, minimum_tcb
    )
    return verifier.verify_or_raise(bundle.report, now, policy=policy)


# -- ECIES-style hybrid encryption -------------------------------------------


def encrypt_to_public_key(
    recipient: EcdsaPublicKey, plaintext: bytes, rng: HmacDrbg
) -> bytes:
    """Encrypt *plaintext* so only the holder of the matching private
    key can read it (ephemeral ECDH + HKDF + AEAD)."""
    ephemeral = EcdsaPrivateKey.generate(P256, rng)
    shared = ephemeral.ecdh(recipient)
    key = hkdf(shared, info=b"revelio-ecies" + recipient.encode(), length=32)
    sealed = AeadCipher(key).seal(b"\x00" * 12, plaintext, aad=b"tls-key-wrap")
    return encoding.encode(
        {"epk": ephemeral.public_key().encode(), "ct": sealed}
    )


def decrypt_with_private_key(private_key: EcdsaPrivateKey, blob: bytes) -> bytes:
    """Invert :func:`encrypt_to_public_key`."""
    try:
        decoded = encoding.decode(blob)
        ephemeral_public = EcdsaPublicKey.decode(decoded["epk"])
        sealed = decoded["ct"]
    except (ValueError, KeyError, TypeError) as exc:
        raise KeySharingError("malformed encrypted blob") from exc
    shared = private_key.ecdh(ephemeral_public)
    key = hkdf(
        shared,
        info=b"revelio-ecies" + private_key.public_key().encode(),
        length=32,
    )
    try:
        return AeadCipher(key).open(b"\x00" * 12, sealed, aad=b"tls-key-wrap")
    except AeadError as exc:
        raise KeySharingError("decryption failed (wrong recipient?)") from exc
