"""Revelio guest services: init steps + the node server.

This module contains everything that runs *inside* a Revelio VM:

* the init steps named by the initrd descriptor — dm-verity rootfs
  setup and full verification, network lockdown, sealing-key disk
  encryption, unique identity creation (sections 5.1-5.2),
* :class:`RevelioNode` — the nginx + CGI analogue: a bootstrap HTTP
  endpoint used during certificate provisioning (Fig. 4) and, once the
  shared TLS identity is installed, the HTTPS service with the
  well-known attestation URL end-users' browsers hit (section 5.3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..amd.report import AttestationReport
from ..amd.verify import AttestationError
from ..attest import AttestationVerifier, Evidence, EvidenceError, TeeFamily
from ..build.image_builder import (
    GOLDEN_CONF_PATH,
    NETWORK_CONF_PATH,
    SERVICE_CONF_PATH,
    NetworkPolicy,
)
from ..crypto import encoding
from ..crypto.ec import P256
from ..crypto.ecdsa import EcdsaPrivateKey
from ..crypto.kdf import hkdf
from ..crypto.keys import PrivateKey
from ..crypto.x509 import Certificate, CertificateSigningRequest, Name
from ..net.firewall import Firewall
from ..net.http import HttpRequest, HttpResponse, HttpServer
from ..net.latency import LatencyModel
from ..net.simnet import Host
from ..storage.dm import DmContext, DmTable
from ..storage.filesystem import FileSystem
from ..virt.image import register_init_step
from ..virt.vm import VirtualMachine
from .kds_client import KdsClient
from .key_sharing import (
    BUNDLE_KIND_CSR,
    BUNDLE_KIND_PUBLIC_KEY,
    KeySharingError,
    ReportBundle,
    decrypt_with_private_key,
    encrypt_to_public_key,
    report_data_for,
    verify_report_bundle,
)

#: The plain-HTTP port used during provisioning (Fig. 4); allowed by the
#: measured network policy, carries only self-authenticating payloads.
BOOTSTRAP_PORT = 8080
#: Where browsers fetch the attestation evidence (robots.txt-style).
WELL_KNOWN_ATTESTATION_PATH = "/.well-known/revelio-attestation"


class GuestError(RuntimeError):
    """Raised on guest service failures."""


@dataclass
class VmIdentity:
    """The unique per-VM key pair and its endorsing reports (5.2.2)."""

    private_key: EcdsaPrivateKey
    csr: CertificateSigningRequest
    key_report: AttestationReport
    csr_report: AttestationReport

    @property
    def wrapped_private_key(self) -> PrivateKey:
        """The key as an algorithm-agnostic handle."""
        return PrivateKey("ecdsa", self.private_key)

    @property
    def public_key(self):
        """The corresponding public key."""
        return self.wrapped_private_key.public_key()

    def key_bundle(self) -> ReportBundle:
        """ReportBundle endorsing this identity's public key."""
        return ReportBundle(
            kind=BUNDLE_KIND_PUBLIC_KEY,
            report=self.key_report,
            payload=self.public_key.encode(),
        )

    def csr_bundle(self) -> ReportBundle:
        """ReportBundle endorsing this identity's CSR."""
        return ReportBundle(
            kind=BUNDLE_KIND_CSR, report=self.csr_report, payload=self.csr.encode()
        )


# -- init steps ---------------------------------------------------------------


def _dm_context(vm: VirtualMachine, keys: Optional[Dict[str, bytes]] = None) -> DmContext:
    """The device-mapper open context for this VM: its host-attached
    disk, its (measured) kernel command line, and any key material."""
    return DmContext(
        disk=vm.disk,
        cmdline_args=vm.cmdline_args,
        keys=keys if keys is not None else {},
        rng=vm.rng,
        meter=vm.storage.meter,
    )


def _initrd_table(vm: VirtualMachine, param: str, name: str,
                  legacy: str) -> DmTable:
    """The named dm table from the initrd parameters, falling back to a
    table synthesised from the pre-table per-partition parameters (older
    images carry only those)."""
    text = vm.initrd_params.get(param)
    if text is None:
        text = legacy
    return DmTable.parse(name, text)


@register_init_step("verity-rootfs")
def _setup_verity_rootfs(vm: VirtualMachine) -> None:
    """Open and fully verify the integrity-protected rootfs (5.2.1).

    The stack comes from the measured initrd's ``rootfs_table`` and ends
    in a verity target whose root hash the (equally measured) kernel
    command line pins — tampering with table, hash, or data all surface
    as verification failures here."""
    if not vm.cmdline_args.get("verity_root_hash", ""):
        raise GuestError("no verity root hash on the kernel command line")
    table = _initrd_table(
        vm,
        "rootfs_table",
        "rootfs",
        legacy=(
            f"linear partition={vm.initrd_params['rootfs_partition']} ; "
            f"verity hash=partition:{vm.initrd_params['verity_partition']} "
            "root=cmdline:verity_root_hash"
        ),
    )
    volume = table.open(_dm_context(vm))
    volume.verify_all()  # Table 1's "dm-verity verify" service
    vm.storage.register("verity", volume)
    vm.rootfs = FileSystem(volume)


@register_init_step("network-lockdown")
def _setup_network_lockdown(vm: VirtualMachine) -> None:
    """Install the firewall baked into the measured rootfs (F4)."""
    if vm.rootfs is None:
        raise GuestError("network lockdown requires a mounted rootfs")
    policy = NetworkPolicy.from_dict(
        encoding.decode(vm.rootfs.read_file(NETWORK_CONF_PATH))
    )
    vm.firewall = Firewall.from_network_policy(policy)


@register_init_step("dm-crypt-data")
def _setup_encrypted_data(vm: VirtualMachine) -> None:
    """Encrypt (first boot) or re-open the data volume with the
    measurement-derived sealing key (5.2.1, F6).

    ``format=auto`` probes for an existing LUKS header; ``fill=zero``
    makes first boot encrypt the whole volume in place (what the
    paper's size-dependent "encryption service" does to its 84 MB
    volume)."""
    sealing_key = vm.guest.derive_sealing_key(b"disk-encryption")
    master_key = hkdf(sealing_key, info=b"luks-master-key", length=64)
    table = _initrd_table(
        vm,
        "data_table",
        "data",
        legacy=(
            f"linear partition={vm.initrd_params['data_partition']} ; "
            "crypt key=sealing format=auto fill=zero"
        ),
    )
    volume = table.open(_dm_context(vm, keys={"sealing": master_key}))
    vm.storage.register("data", volume)


@register_init_step("identity-creation")
def _create_identity(vm: VirtualMachine) -> None:
    """Generate the per-VM key pair, CSR, and the endorsing report pair
    (5.2.2): one report binds the public key, one binds the CSR."""
    if vm.rootfs is None:
        raise GuestError("identity creation requires a mounted rootfs")
    service_conf = encoding.decode(vm.rootfs.read_file(SERVICE_CONF_PATH))
    domain = service_conf["domain"]
    private_key = EcdsaPrivateKey.generate(P256, vm.rng)
    wrapped = PrivateKey("ecdsa", private_key)
    # The wildcard SAN lets every fleet member (nodeN.domain) serve the
    # shared certificate, mirroring a load-balanced deployment.
    csr = CertificateSigningRequest.create(
        Name(domain), wrapped, san=(domain, f"*.{domain}")
    )
    key_report = vm.guest.get_report(
        report_data_for(wrapped.public_key().fingerprint())
    )
    csr_report = vm.guest.get_report(report_data_for(csr.fingerprint()))
    vm.identity = VmIdentity(
        private_key=private_key,
        csr=csr,
        key_report=key_report,
        csr_report=csr_report,
    )


@register_init_step("start-services")
def _start_services(vm: VirtualMachine) -> None:
    """Mark the configured application services as started; their
    handlers are wired by the deployment layer."""
    if vm.rootfs is None:
        raise GuestError("services require a mounted rootfs")
    service_conf = encoding.decode(vm.rootfs.read_file(SERVICE_CONF_PATH))
    for service_name in service_conf["services"]:
        vm.services.setdefault(service_name, "started")


def golden_measurements_for(vm: VirtualMachine) -> List[bytes]:
    """The measurements this node accepts from peers: its own (fleet of
    identical images) plus any extras planted in the rootfs at build
    time (section 5.3: 'hard-coded values ... planted at build time')."""
    extras: List[bytes] = []
    if vm.rootfs is not None and vm.rootfs.exists(GOLDEN_CONF_PATH):
        conf = encoding.decode(vm.rootfs.read_file(GOLDEN_CONF_PATH))
        extras = list(conf.get("measurements", []))
    return [bytes(vm.measurement), *extras]


# -- the node server -----------------------------------------------------------


class RevelioNode:
    """The web-facing service running inside one Revelio VM."""

    def __init__(
        self,
        vm: VirtualMachine,
        host: Host,
        kds: KdsClient,
        latency: Optional[LatencyModel] = None,
        trusted_registry=None,
    ):
        vm.require_running()
        if vm.identity is None:
            raise GuestError("VM booted without an identity (bad init steps?)")
        self.vm = vm
        self.host = host
        self.kds = kds
        self._latency = latency if latency is not None else LatencyModel()
        #: Optional runtime source of golden values (section 5.3: "each
        #: node can contact a remote Trusted Registry ... where the
        #: community votes on what is a 'good' state"), consulted in
        #: addition to the values baked into the measured rootfs.
        self.trusted_registry = trusted_registry
        self.golden_measurements = golden_measurements_for(vm)
        #: Peer attestations (key sharing) run through the unified
        #: pipeline, labelled with this node's name in traces.
        self.verifier = AttestationVerifier(kds, site=f"{vm.name}:key-sharing")

        self.certificate_chain: Optional[List[Certificate]] = None
        self.leader_ip: Optional[str] = None
        self.tls_private_key: Optional[EcdsaPrivateKey] = None
        self.tls_report: Optional[AttestationReport] = None
        self.serving = False
        self._app_routes: Dict[tuple, tuple] = {}

        self._bootstrap = HttpServer(f"{vm.name}-bootstrap")
        self._bootstrap.add_route("GET", "/revelio/csr-bundle", self._serve_csr_bundle)
        self._bootstrap.add_route("POST", "/revelio/certificate", self._receive_certificate)
        self._bootstrap.add_route("POST", "/revelio/key-request", self._serve_key_request)
        self._bootstrap.serve_plain(host, BOOTSTRAP_PORT)

        self.https = HttpServer(vm.name)
        self.https.add_route(
            "GET",
            WELL_KNOWN_ATTESTATION_PATH,
            self._serve_attestation,
            processing_time=self._latency.report_endpoint_processing,
        )

    def _effective_golden_measurements(self) -> List[bytes]:
        """Baked goldens plus (if configured) registry goldens, minus
        registry revocations."""
        golden = {bytes(m) for m in self.golden_measurements}
        if self.trusted_registry is not None:
            service_conf = encoding.decode(
                self.vm.rootfs.read_file(SERVICE_CONF_PATH)
            )
            domain = service_conf["domain"]
            golden |= set(self.trusted_registry.golden_measurements(domain))
            golden -= set(self.trusted_registry.revoked_measurements(domain))
        return sorted(golden)

    # -- application wiring ----------------------------------------------------

    def add_app_route(self, method: str, path: str, handler,
                      processing_time: Optional[float] = None) -> None:
        """Register an application route on the HTTPS server."""
        if processing_time is None:
            processing_time = self._latency.page_processing
        self.https.add_route(method, path, handler, processing_time)

    # -- provisioning endpoints (Fig. 4) ----------------------------------------

    def _serve_csr_bundle(self, request: HttpRequest, context) -> HttpResponse:
        return HttpResponse.ok(
            self.vm.identity.csr_bundle().encode(), "application/octet-stream"
        )

    def _receive_certificate(self, request: HttpRequest, context) -> HttpResponse:
        """The SP node POSTs the issued certificate chain and tells us
        who holds the private key (the leader)."""
        try:
            body = encoding.decode(request.body)
            chain = [Certificate.decode(item) for item in body["chain"]]
            leader_ip = body["leader_ip"]
        except (ValueError, KeyError, TypeError):
            return HttpResponse.error("malformed certificate delivery")
        self.certificate_chain = chain
        self.leader_ip = leader_ip
        leaf_key = chain[0].public_key
        if leaf_key == self.vm.identity.public_key:
            # We are the leader: our own key pair is the TLS identity.
            self._install_tls_identity(self.vm.identity.private_key)
            return HttpResponse.ok(b"leader-installed", "text/plain")
        try:
            self._acquire_private_key()
        except (AttestationError, KeySharingError, GuestError,
                ConnectionError) as exc:
            return HttpResponse.error(f"key acquisition failed: {exc}")
        return HttpResponse.ok(b"installed", "text/plain")

    def _serve_key_request(self, request: HttpRequest, context) -> HttpResponse:
        """Leader side: attest the requesting peer, then hand over the
        TLS private key encrypted to the peer's attested public key."""
        if self.tls_private_key is None:
            return HttpResponse.error("not the leader / identity not installed")
        try:
            bundle = ReportBundle.decode(request.body)
            if bundle.kind != BUNDLE_KIND_PUBLIC_KEY:
                raise KeySharingError("expected a public-key bundle")
            verify_report_bundle(
                bundle,
                self.kds,
                now=self.host.network.clock.epoch_seconds(),
                expected_measurements=self._effective_golden_measurements(),
                verifier=self.verifier,
            )
        except (AttestationError, KeySharingError) as exc:
            return HttpResponse.forbidden(f"peer attestation failed: {exc}")
        from ..crypto.keys import PublicKey

        peer_key = PublicKey.decode(bundle.payload)
        encrypted_key = encrypt_to_public_key(
            peer_key.inner, self.tls_private_key.encode(), self.vm.rng
        )
        response = encoding.encode(
            {
                "leader_bundle": self.vm.identity.key_bundle().encode(),
                "encrypted_key": encrypted_key,
            }
        )
        return HttpResponse.ok(response, "application/octet-stream")

    def _acquire_private_key(self) -> None:
        """Peer side: mutual attestation with the leader, then unwrap
        and install the shared TLS private key."""
        if self.leader_ip is None or self.certificate_chain is None:
            raise GuestError("certificate delivery incomplete")
        raw = self.host.request(
            self.leader_ip,
            BOOTSTRAP_PORT,
            HttpRequest(
                "POST",
                "/revelio/key-request",
                body=self.vm.identity.key_bundle().encode(),
            ).encode(),
        )
        response = HttpResponse.decode(raw)
        if response.status != 200:
            raise GuestError(f"leader refused key request: {response.body!r}")
        body = encoding.decode(response.body)
        leader_bundle = ReportBundle.decode(body["leader_bundle"])
        # Attest the leader before trusting anything it sent.
        verify_report_bundle(
            leader_bundle,
            self.kds,
            now=self.host.network.clock.epoch_seconds(),
            expected_measurements=self._effective_golden_measurements(),
            verifier=self.verifier,
        )
        private_key = EcdsaPrivateKey.decode(
            decrypt_with_private_key(
                self.vm.identity.private_key, body["encrypted_key"]
            )
        )
        # The certificate must correspond to the received private key.
        leaf_key = self.certificate_chain[0].public_key
        if leaf_key != PrivateKey("ecdsa", private_key).public_key():
            raise GuestError("certificate does not match the received private key")
        # The private key is stored on the encrypted data volume at rest.
        data_volume = self.vm.storage.get("data")
        if data_volume is not None:
            key_bytes = private_key.encode()
            data_volume.write_bytes(0, len(key_bytes).to_bytes(4, "big") + key_bytes)
        self._install_tls_identity(private_key)

    def _install_tls_identity(self, private_key: EcdsaPrivateKey) -> None:
        """The incron-job analogue: install key + certificate and
        (re)start the HTTPS server with the shared identity."""
        if self.certificate_chain is None:
            raise GuestError("no certificate chain to install")
        self.tls_private_key = private_key
        wrapped = PrivateKey("ecdsa", private_key)
        # Bind the *served* TLS key to this VM's hardware identity: a
        # fresh report whose REPORT_DATA is the TLS public key hash (F3).
        self.tls_report = self.vm.guest.get_report(
            report_data_for(wrapped.public_key().fingerprint())
        )
        self.https.serve_tls(
            self.host, self.certificate_chain, wrapped, self.vm.rng
        )
        self.serving = True

    # -- end-user-facing endpoint -------------------------------------------------

    def _serve_attestation(self, request: HttpRequest, context) -> HttpResponse:
        """The well-known URL: the attestation report binding the TLS
        identity of this very server to its measured state."""
        if self.tls_report is None:
            return HttpResponse.not_found()
        payload = encoding.encode({"report": self.tls_report.encode()})
        return HttpResponse.ok(payload, "application/octet-stream")


def decode_attestation_payload(body: bytes) -> AttestationReport:
    """Parse the well-known endpoint's response body."""
    decoded = encoding.decode(body)
    if not isinstance(decoded, dict) or "report" not in decoded:
        raise GuestError("malformed attestation payload")
    return AttestationReport.decode(decoded["report"])


def decode_attestation_evidence(body: bytes) -> Evidence:
    """Parse a well-known endpoint's response body into the engine's
    tagged envelope.  Legacy SNP nodes serve ``{"report": ...}``; other
    TEE families serve an encoded :class:`~repro.attest.Evidence`
    (``{"family": ..., "body": ...}``)."""
    try:
        decoded = encoding.decode(body)
    except ValueError as exc:
        raise GuestError("malformed attestation payload") from exc
    if isinstance(decoded, dict):
        if "report" in decoded:
            return Evidence(TeeFamily.SEV_SNP, decoded["report"])
        if "family" in decoded and "body" in decoded:
            try:
                return Evidence(decoded["family"], decoded["body"])
            except EvidenceError as exc:
                raise GuestError(f"malformed attestation payload: {exc}") from exc
    raise GuestError("malformed attestation payload")
