"""The Revelio web extension.

Implements section 5.3.2 end to end:

* **Registration** — sites are registered manually with expected
  measurements (computed by the user or obtained out of band / from a
  trusted registry), or discovered *opportunistically* by probing the
  well-known attestation URL while browsing.
* **Interception** — the first access to a registered domain in a new
  browser context is intercepted: the attestation report is fetched
  from the well-known URL, the VCEK chain is pulled from the (cached)
  KDS, the report signature and measurement are validated, and the
  TLS-connection public key is compared against the report's
  ``REPORT_DATA`` binding (F1, F3, D1).
* **Monitoring** — every subsequent request is checked to still ride on
  a connection authenticated by the *pinned* key, defeating the
  certificate-swap / DNS-redirect attack a malicious provider can mount.
* **Delegation** — expected measurements can come from a
  :mod:`~repro.core.trusted_registry` (auditor or DAO) instead of the
  user's own computation (D2), and revocations are honoured (6.1.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..amd.tcb import TcbVersion
from ..attest import AttestationVerifier, FamilyPolicy, VerificationPolicy
from ..net.http import HttpError
from .guest import WELL_KNOWN_ATTESTATION_PATH, decode_attestation_evidence
from .kds_client import KdsClient
from .key_sharing import report_data_for


@dataclass
class Verdict:
    """Outcome of an extension check."""

    blocked: bool = False
    reason: str = ""
    #: Stable machine-readable code for the failed check ("" on pass);
    #: pipeline failures carry the engine's step reason code.
    reason_code: str = ""
    warnings: List[str] = field(default_factory=list)


@dataclass
class SiteRegistration:
    """A domain the user asked the extension to protect."""

    domain: str
    expected_measurements: Set[bytes] = field(default_factory=set)
    #: Use the trusted registry for golden values instead of (or in
    #: addition to) the user-supplied ones.
    use_registry: bool = False
    #: Per-site TCB floor; overrides the extension-wide one.
    minimum_tcb: Optional[TcbVersion] = None
    #: Per-TEE-family golden sets for sites served by a heterogeneous
    #: fleet (family name -> measurements); ``expected_measurements``
    #: stays the SNP-and-fallback set.
    family_measurements: Dict[str, Set[bytes]] = field(default_factory=dict)
    #: Families the user accepts evidence from; None = any family the
    #: extension can verify (with per-family goldens registered, the
    #: default closes to exactly those families).
    allowed_families: Optional[Set[str]] = None


@dataclass
class AttestationEvent:
    """An entry in the extension's activity log (the UI surface)."""

    domain: str
    kind: str  # "validated" | "violation" | "discovered" | "blocked"
    detail: str = ""


class RevelioExtension:
    """The web extension's logic, browser-agnostic."""

    def __init__(
        self,
        kds: KdsClient,
        trusted_registry=None,
        opportunistic_discovery: bool = True,
        user_override=None,
        reattest_on_rekey: bool = False,
        minimum_tcb: Optional[TcbVersion] = None,
        tee_contexts=None,
        farm=None,
    ):
        self.kds = kds
        self.trusted_registry = trusted_registry
        self.opportunistic_discovery = opportunistic_discovery
        #: Extension-wide TCB floor enforced on every attested site
        #: (per-site registrations can override it).
        self.minimum_tcb = minimum_tcb
        #: All site attestations run through the unified pipeline;
        #: *tee_contexts* adds trust material for non-SNP families
        #: (TDX PCS, CCA anchors, e-vTPM) — also mutable afterwards via
        #: ``verifier.contexts``.  *farm* optionally routes first-visit
        #: signature checks through a shared
        #: :class:`~repro.attest.farm.VerifyFarm` batch.
        self.verifier = AttestationVerifier(
            kds, site="web_extension", contexts=tee_contexts, farm=farm
        )
        #: Section 6.4's suggestion: instead of flagging a re-keyed
        #: connection outright, "a re-establishment of a connection
        #: could simply trigger a re-validation".  When enabled, a pin
        #: mismatch runs a fresh attestation; only if *that* fails is
        #: the access flagged/blocked.
        self.reattest_on_rekey = reattest_on_rekey
        #: Callback(domain, reason) -> bool: True means the user chose to
        #: proceed despite a failed check.  Default: never proceed.
        self.user_override = user_override if user_override is not None else (
            lambda domain, reason: False
        )
        self._sites: Dict[str, SiteRegistration] = {}
        #: domain -> pinned TLS public-key fingerprint for this session
        self._pinned: Dict[str, bytes] = {}
        self._probed: Set[str] = set()
        self.events: List[AttestationEvent] = []
        self._browser = None

    # -- wiring ----------------------------------------------------------------

    def attach(self, browser) -> None:
        """Bind the extension to a browser instance."""
        self._browser = browser

    def on_new_session(self) -> None:
        """Fresh browser context: validations must be redone, but the
        KDS/VCEK cache is persistent storage and survives."""
        self._pinned.clear()
        self._probed.clear()

    # -- registration (section 5.3.2, 'Register Revelio-conformed websites') ----

    def register_site(
        self,
        domain: str,
        expected_measurements=(),
        use_registry: bool = False,
        minimum_tcb: Optional[TcbVersion] = None,
        family_measurements=None,
        allowed_families=None,
    ) -> None:
        """Manual registration with expected measurement(s); the secure
        path for security-sensitive sites.  *family_measurements* maps a
        TEE family name to that family's golden set (heterogeneous
        fleets); *allowed_families* restricts which families' evidence
        is acceptable at all."""
        domain = domain.lower()
        registration = self._sites.get(domain)
        if registration is None:
            registration = SiteRegistration(domain=domain)
            self._sites[domain] = registration
        registration.expected_measurements.update(
            bytes(m) for m in expected_measurements
        )
        registration.use_registry = registration.use_registry or use_registry
        if minimum_tcb is not None:
            registration.minimum_tcb = minimum_tcb
        for family, values in (family_measurements or {}).items():
            registration.family_measurements.setdefault(
                str(family), set()
            ).update(bytes(m) for m in values)
        if allowed_families is not None:
            registration.allowed_families = {
                str(family) for family in allowed_families
            }

    def is_registered(self, domain: str) -> bool:
        """Whether the domain is registered with the extension."""
        return domain.lower() in self._sites

    def pinned_key_fingerprint(self, domain: str) -> Optional[bytes]:
        """The pinned TLS key fingerprint for a domain (or None)."""
        return self._pinned.get(domain.lower())

    # -- browser hooks -----------------------------------------------------------

    def before_request(self, browser, hostname: str, url: str) -> Optional[Verdict]:
        """Intercept the first access per session to a registered domain
        and attest the site *before* the page request goes out."""
        domain = hostname.lower()
        registration = self._sites.get(domain)
        if registration is None:
            if self.opportunistic_discovery and domain not in self._probed:
                self._probed.add(domain)
                self._probe(browser, domain)
            return None
        if domain in self._pinned:
            return None  # already validated this session; after_response monitors
        return self._attest_site(browser, domain, registration)

    def after_response(self, browser, hostname: str, connection) -> Optional[Verdict]:
        """Monitor every response from a registered, validated domain:
        the connection must still be rooted in the pinned key."""
        domain = hostname.lower()
        pinned = self._pinned.get(domain)
        if pinned is None:
            return None
        # Querying the browser's connection context costs a little on
        # every request (Table 3: monitored vs plain access).
        browser.network.clock.advance(browser.network.latency.connection_monitor)
        current = None
        if connection is not None and connection.peer_public_key is not None:
            current = connection.peer_public_key.fingerprint()
        if current != pinned:
            self._pinned.pop(domain, None)
            if self.reattest_on_rekey:
                registration = self._sites.get(domain)
                if registration is not None:
                    verdict = self._attest_site(browser, domain, registration)
                    if not verdict.blocked:
                        verdict.warnings.append(
                            "connection re-keyed; re-attestation succeeded"
                        )
                    return verdict
            return self._violation(
                domain,
                "TLS connection re-keyed to an unattested certificate "
                "(possible redirect to a different endpoint)",
                code="connection_rekeyed",
            )
        return None

    # -- the attestation procedure -------------------------------------------------

    def _attest_site(self, browser, domain: str, registration) -> Verdict:
        golden = set(registration.expected_measurements)
        revoked: Set[bytes] = set()
        if registration.use_registry and self.trusted_registry is not None:
            golden |= set(self.trusted_registry.golden_measurements(domain))
            revoked = set(self.trusted_registry.revoked_measurements(domain))
        golden -= revoked
        if not golden and not registration.family_measurements:
            return self._violation(
                domain,
                "no (unrevoked) golden measurement known",
                code="no_golden_measurement",
            )

        # 1. Fetch the attestation report from the well-known URL.  This
        #    also establishes the TLS connection whose key we then check.
        try:
            response, info = browser.client.get(
                f"https://{domain}{WELL_KNOWN_ATTESTATION_PATH}"
            )
        except (ConnectionError, HttpError) as exc:
            return self._violation(
                domain,
                f"cannot fetch attestation report: {exc}",
                code="report_unavailable",
            )
        if response.status != 200:
            return self._violation(
                domain,
                f"attestation endpoint returned {response.status}",
                code="report_unavailable",
            )
        try:
            evidence = decode_attestation_evidence(response.body)
        except Exception as exc:  # malformed payloads are violations too
            return self._violation(
                domain,
                f"malformed attestation payload: {exc}",
                code="malformed_report",
            )
        if info.peer_public_key is None:
            return self._violation(
                domain, "no TLS connection context", code="no_tls_context"
            )
        fingerprint = info.peer_public_key.fingerprint()

        # 2. One pipeline run covers revocation, the endorsement chain
        #    to the family's trust anchor, the signature, the golden
        #    set, the TLS-key REPORT_DATA binding (the key
        #    authenticating the very connection we fetched the evidence
        #    over), and the TCB floor — dispatched on evidence family.
        families = None
        if registration.family_measurements:
            families = {
                family: FamilyPolicy(golden_measurements=sorted(values))
                for family, values in sorted(
                    registration.family_measurements.items()
                )
            }
        allowed = registration.allowed_families
        if allowed is None and not golden and families is not None:
            # Per-family goldens only: fail closed to exactly those
            # families (an SNP report must not slip past an empty
            # global golden set).
            allowed = set(families)
        policy = VerificationPolicy(
            golden_measurements=sorted(golden),
            revoked_measurements=sorted(revoked),
            expected_report_data=report_data_for(fingerprint),
            minimum_tcb=registration.minimum_tcb or self.minimum_tcb,
            allowed_families=(
                None if allowed is None else tuple(sorted(allowed))
            ),
            families=families,
        )
        outcome = self.verifier.verify(
            evidence, now=browser.network.clock.epoch_seconds(), policy=policy
        )
        if not outcome.ok:
            return self._violation(
                domain,
                f"report validation failed: {outcome.reason}: {outcome.detail}",
                code=outcome.reason,
            )

        # Charge the client-side validation work (browser JS crypto).
        browser.network.clock.advance(browser.network.latency.client_validation)
        self._pinned[domain] = fingerprint
        self.events.append(AttestationEvent(domain, "validated"))
        return Verdict(blocked=False)

    def _probe(self, browser, domain: str) -> None:
        """Opportunistic discovery: does this site offer Revelio?"""
        try:
            response, _ = browser.client.get(
                f"https://{domain}{WELL_KNOWN_ATTESTATION_PATH}"
            )
        except (ConnectionError, HttpError):
            return
        if response.status == 200:
            self.events.append(
                AttestationEvent(
                    domain,
                    "discovered",
                    "site offers Revelio attestation; register it to validate",
                )
            )

    def _violation(self, domain: str, reason: str, code: str = "") -> Verdict:
        self.events.append(AttestationEvent(domain, "violation", reason))
        if self.user_override(domain, reason):
            self.events.append(
                AttestationEvent(domain, "validated",
                                 "user chose to proceed despite a failed check")
            )
            return Verdict(blocked=False, reason_code=code, warnings=[reason])
        self.events.append(AttestationEvent(domain, "blocked", reason))
        return Verdict(blocked=True, reason=reason, reason_code=code)
