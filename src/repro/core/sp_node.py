"""The SP node: the service provider's isolated provisioning machine.

Runs on the provider's premises (not in the cloud), holds the DNS API
credentials and the ACME account, and orchestrates certificate
provisioning for the fleet (sections 3.4.6 and 5.3.1, Fig. 4):

1. retrieve each node's CSR + report bundle,
2. attest every node — golden measurement, REPORT_DATA = H(CSR),
   Chip-ID allow-list, IP allow-list,
3. pick a leader, obtain the SSL certificate for the leader's CSR via
   ACME DNS-01,
4. distribute the certificate (and the leader's address) to all nodes,
   which then run the mutual-attestation key exchange among themselves.

Phase timings are recorded (simulated network seconds *and* real
compute seconds) so the Table 2 benchmark can report the same rows the
paper does.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..amd.verify import AttestationError
from ..attest import AttestationVerifier
from ..crypto import encoding
from ..crypto.x509 import Certificate, CertificateSigningRequest
from ..net.http import HttpRequest, HttpResponse
from ..net.simnet import Host
from ..pki.certbot import CertbotClient
from .guest import BOOTSTRAP_PORT
from .kds_client import KdsClient
from .key_sharing import BUNDLE_KIND_CSR, ReportBundle, bundle_policy


class ProvisioningError(RuntimeError):
    """Fleet provisioning failed (attestation or distribution)."""


@dataclass
class PhaseTiming:
    """One provisioning phase's cost."""

    simulated_seconds: float
    real_seconds: float


@dataclass
class AttestedNode:
    """A fleet node that passed SP attestation."""

    ip_address: str
    csr: CertificateSigningRequest
    bundle: ReportBundle


@dataclass
class ProvisioningResult:
    """Outcome of one fleet provisioning round."""

    leader_ip: str
    certificate_chain: List[Certificate]
    attested: List[AttestedNode]
    timings: Dict[str, PhaseTiming] = field(default_factory=dict)


class ServiceProviderNode:
    """The SP machine (isolated from the public cloud)."""

    def __init__(
        self,
        host: Host,
        certbot: CertbotClient,
        kds: KdsClient,
        domain: str,
        expected_measurements: Iterable[bytes],
        approved_chip_ids: Optional[Iterable[bytes]] = None,
        approved_ips: Optional[Iterable[str]] = None,
    ):
        self.host = host
        self.certbot = certbot
        self.kds = kds
        self.domain = domain
        self.expected_measurements = [bytes(m) for m in expected_measurements]
        self.approved_chip_ids = (
            [bytes(c) for c in approved_chip_ids]
            if approved_chip_ids is not None
            else None
        )
        self.approved_ips = set(approved_ips) if approved_ips is not None else None
        #: Measurements revoked after image rollouts (section 6.1.4).
        self.revoked_measurements: set = set()
        self.verifier = AttestationVerifier(kds, site="sp_node")

    # -- public API -----------------------------------------------------------

    def revoke_measurement(self, measurement: bytes) -> None:
        """Revoke an obsolete golden value (rollback-attack prevention)."""
        self.revoked_measurements.add(bytes(measurement))
        self.expected_measurements = [
            m for m in self.expected_measurements if m != bytes(measurement)
        ]

    def retrieve_csr_bundle(self, node_ip: str) -> ReportBundle:
        """Fetch one node's CSR + report ("evidence retrieval")."""
        raw = self.host.request(
            node_ip,
            BOOTSTRAP_PORT,
            HttpRequest("GET", "/revelio/csr-bundle").encode(),
        )
        response = HttpResponse.decode(raw)
        if response.status != 200:
            raise ProvisioningError(f"node {node_ip} refused bundle request")
        return ReportBundle.decode(response.body)

    def attest_node(self, node_ip: str, bundle: ReportBundle) -> AttestedNode:
        """Evidence validation: chain, signature, measurement, CSR
        binding, Chip-ID and IP allow-lists (section 5.3.1)."""
        if bundle.kind != BUNDLE_KIND_CSR:
            raise ProvisioningError(f"node {node_ip} sent a non-CSR bundle")
        if self.approved_ips is not None and node_ip not in self.approved_ips:
            raise AttestationError(
                "ip_not_allowed", f"{node_ip} is not an approved node address"
            )
        policy = replace(
            bundle_policy(
                bundle,
                self.expected_measurements,
                allowed_chip_ids=self.approved_chip_ids,
            ),
            revoked_measurements=tuple(sorted(self.revoked_measurements)),
        )
        self.verifier.verify_or_raise(
            bundle.report,
            now=self.host.network.clock.epoch_seconds(),
            policy=policy,
        )
        csr = CertificateSigningRequest.decode(bundle.payload)
        if not csr.verify():
            raise ProvisioningError(f"node {node_ip} sent a CSR failing PoP")
        if self.domain not in {csr.subject.common_name, *csr.san}:
            raise ProvisioningError(
                f"node {node_ip} CSR does not cover {self.domain}"
            )
        return AttestedNode(ip_address=node_ip, csr=csr, bundle=bundle)

    def provision_fleet(
        self,
        node_ips: Sequence[str],
        leader_index: int = 0,
    ) -> ProvisioningResult:
        """Run the full Fig. 4 flow for the given node addresses."""
        if not node_ips:
            raise ProvisioningError("empty fleet")
        clock = self.host.network.clock
        timings: Dict[str, PhaseTiming] = {}

        # Phase 1: evidence retrieval.
        bundles: List[Tuple[str, ReportBundle]] = []
        with _phase(clock, timings, "evidence_retrieval"):
            for node_ip in node_ips:
                bundles.append((node_ip, self.retrieve_csr_bundle(node_ip)))

        # Phase 2: evidence validation (attest the whole set).
        attested: List[AttestedNode] = []
        with _phase(clock, timings, "evidence_validation"):
            for node_ip, bundle in bundles:
                attested.append(self.attest_node(node_ip, bundle))

        # Phase 3: SSL certificate generation for the leader's CSR.
        if not (0 <= leader_index < len(attested)):
            raise ProvisioningError("leader index out of range")
        leader = attested[leader_index]
        with _phase(clock, timings, "certificate_generation"):
            chain = self.certbot.obtain_certificate(self.domain, leader.csr)

        # Phase 4: certificate distribution + leader announcement.
        with _phase(clock, timings, "certificate_distribution"):
            payload = encoding.encode(
                {
                    "chain": [cert.encode() for cert in chain],
                    "leader_ip": leader.ip_address,
                }
            )
            # The leader must install first so it can answer key requests.
            ordered = [leader] + [n for n in attested if n is not leader]
            for node in ordered:
                raw = self.host.request(
                    node.ip_address,
                    BOOTSTRAP_PORT,
                    HttpRequest(
                        "POST", "/revelio/certificate", body=payload
                    ).encode(),
                )
                response = HttpResponse.decode(raw)
                if response.status != 200:
                    raise ProvisioningError(
                        f"node {node.ip_address} failed installation: "
                        f"{response.body!r}"
                    )

        return ProvisioningResult(
            leader_ip=leader.ip_address,
            certificate_chain=chain,
            attested=attested,
            timings=timings,
        )

    def admit_node(
        self,
        node_ip: str,
        key_holder_ip: str,
        certificate_chain: List[Certificate],
    ) -> AttestedNode:
        """Attest a *single* node into an already-provisioned fleet.

        The rolling-rollout path: a replacement VM comes up on a node's
        address while the rest of the fleet keeps serving.  The SP
        re-runs the same Fig. 4 evidence retrieval + validation for just
        that node, then delivers the fleet's *existing* certificate
        chain along with the address of any node still holding the TLS
        private key — the newcomer fetches the key over the mutually
        attested bootstrap channel, so the fleet key pair (and every
        end-user's pinned key) is unchanged.
        """
        bundle = self.retrieve_csr_bundle(node_ip)
        attested = self.attest_node(node_ip, bundle)
        payload = encoding.encode(
            {
                "chain": [cert.encode() for cert in certificate_chain],
                "leader_ip": key_holder_ip,
            }
        )
        raw = self.host.request(
            node_ip,
            BOOTSTRAP_PORT,
            HttpRequest("POST", "/revelio/certificate", body=payload).encode(),
        )
        response = HttpResponse.decode(raw)
        if response.status != 200:
            raise ProvisioningError(
                f"node {node_ip} failed installation: {response.body!r}"
            )
        return attested


class _phase:
    """Context manager recording simulated + real time of a phase."""

    def __init__(self, clock, timings: Dict[str, PhaseTiming], name: str):
        self._clock = clock
        self._timings = timings
        self._name = name

    def __enter__(self):
        self._sim_start = self._clock.now
        self._real_start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self._timings[self._name] = PhaseTiming(
            simulated_seconds=self._clock.now - self._sim_start,
            real_seconds=time.perf_counter() - self._real_start,
        )
        return False
