"""Revelio's core: the paper's primary contribution.

Guest services (measured init, identity, attestation endpoint), the SP
node's fleet provisioning, TLS-key sharing with mutual attestation, the
end-user browser + web extension, delegated verification registries,
and end-to-end deployment orchestration.
"""

from .browser import Browser, NavigationBlocked, PageResult
from .deployment import (
    MINIMAL_PAGE,
    DeployedNode,
    RevelioDeployment,
    default_app,
)
from .guest import (
    BOOTSTRAP_PORT,
    WELL_KNOWN_ATTESTATION_PATH,
    GuestError,
    RevelioNode,
    VmIdentity,
    decode_attestation_payload,
    golden_measurements_for,
)
from .kds_client import KdsClient
from .key_sharing import (
    BUNDLE_KIND_CSR,
    BUNDLE_KIND_PUBLIC_KEY,
    KeySharingError,
    ReportBundle,
    decrypt_with_private_key,
    encrypt_to_public_key,
    report_data_for,
    verify_report_bundle,
)
from .rollout import (
    RolloutError,
    RolloutResult,
    export_sealed_master_key,
    import_sealed_state,
    migrate_sealed_state,
    renew_certificate,
    roll_out_image,
)
from .sp_node import (
    AttestedNode,
    PhaseTiming,
    ProvisioningError,
    ProvisioningResult,
    ServiceProviderNode,
)
from .trusted_registry import (
    AuditStatement,
    Auditor,
    AuditorRegistry,
    DaoRegistry,
    Proposal,
    RegistryError,
    StaticRegistry,
    TrustedRegistry,
)
from .web_extension import (
    AttestationEvent,
    RevelioExtension,
    SiteRegistration,
    Verdict,
)

__all__ = [
    "AttestationEvent",
    "AttestedNode",
    "AuditStatement",
    "Auditor",
    "AuditorRegistry",
    "BOOTSTRAP_PORT",
    "BUNDLE_KIND_CSR",
    "BUNDLE_KIND_PUBLIC_KEY",
    "Browser",
    "DaoRegistry",
    "DeployedNode",
    "GuestError",
    "KdsClient",
    "KeySharingError",
    "MINIMAL_PAGE",
    "NavigationBlocked",
    "PageResult",
    "PhaseTiming",
    "Proposal",
    "ProvisioningError",
    "ProvisioningResult",
    "RegistryError",
    "ReportBundle",
    "RevelioDeployment",
    "RevelioExtension",
    "RevelioNode",
    "RolloutError",
    "RolloutResult",
    "renew_certificate",
    "roll_out_image",
    "ServiceProviderNode",
    "SiteRegistration",
    "StaticRegistry",
    "TrustedRegistry",
    "Verdict",
    "VmIdentity",
    "WELL_KNOWN_ATTESTATION_PATH",
    "decode_attestation_payload",
    "decrypt_with_private_key",
    "default_app",
    "encrypt_to_public_key",
    "export_sealed_master_key",
    "import_sealed_state",
    "migrate_sealed_state",
    "golden_measurements_for",
    "report_data_for",
    "verify_report_bundle",
]
