"""Simulated Intel TDX: trust domains, TD reports, and quotes.

The paper claims Revelio is TEE-agnostic ("upcoming VM-based TEEs, such
as TDX and ARM's CCA can also be alternatives for our approach").  This
module backs that claim with a second, independently-implemented
VM-model TEE: Intel TDX with its different measurement register model
(MRTD + four runtime-extendable RTMRs), its quoting flow (TD report ->
quote signed by the platform's quoting key), and its certificate
hierarchy (Intel SGX Root CA -> PCK Platform CA -> per-platform PCK),
served by a simulated Provisioning Certification Service (PCS).

``repro.tee`` exposes the common verification surface over both SNP
reports and TDX quotes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..crypto.drbg import HmacDrbg
from ..crypto.ec import P384
from ..crypto.ecdsa import EcdsaPrivateKey
from ..crypto import encoding
from ..crypto.kdf import hkdf
from ..crypto.keys import PrivateKey, PublicKey
from ..crypto.x509 import Certificate, CertificateIssuer, Name

NUM_RTMRS = 4
MEASUREMENT_SIZE = 48
REPORT_DATA_SIZE = 64

_CERT_NOT_BEFORE = 0
_CERT_NOT_AFTER = 2**62


class TdxError(RuntimeError):
    """Invalid TDX operations."""


@dataclass(frozen=True)
class TdQuote:
    """A TDX quote: the TD's measured state signed by the platform's
    certified quoting key."""

    version: int
    mrtd: bytes  # build-time measurement (like SNP's launch digest)
    rtmrs: Tuple[bytes, ...]  # runtime-extendable registers
    report_data: bytes
    tee_tcb_svn: int
    platform_id: bytes
    signature: bytes = b""

    def signed_payload(self) -> bytes:
        """The canonical byte string covered by the signature."""
        return encoding.encode(
            {
                "version": self.version,
                "mrtd": self.mrtd,
                "rtmrs": list(self.rtmrs),
                "report_data": self.report_data,
                "tcb_svn": self.tee_tcb_svn,
                "platform": self.platform_id,
            }
        )

    def encode(self) -> bytes:
        """Serialise to canonical TLV bytes."""
        return encoding.encode(
            {"payload": self.signed_payload(), "sig": self.signature}
        )

    @classmethod
    def decode(cls, data: bytes) -> "TdQuote":
        """Parse an instance back out of canonical TLV bytes."""
        outer = encoding.decode(data)
        payload = encoding.decode(outer["payload"])
        return cls(
            version=payload["version"],
            mrtd=payload["mrtd"],
            rtmrs=tuple(payload["rtmrs"]),
            report_data=payload["report_data"],
            tee_tcb_svn=payload["tcb_svn"],
            platform_id=payload["platform"],
            signature=outer["sig"],
        )


class IntelInfrastructure:
    """Intel the manufacturer: the SGX/TDX certificate hierarchy."""

    def __init__(self, rng: Optional[HmacDrbg] = None):
        self._rng = rng if rng is not None else HmacDrbg(b"intel-default")
        root_key = PrivateKey.generate_ecdsa(self._rng.fork(b"root"), "P-384")
        self.root = CertificateIssuer.self_signed_root(
            Name("Intel SGX Root CA", organization="Intel Corporation"),
            root_key,
            _CERT_NOT_BEFORE,
            _CERT_NOT_AFTER,
        )
        platform_ca_key = PrivateKey.generate_ecdsa(self._rng.fork(b"pca"))
        platform_ca_cert = self.root.issue(
            Name("Intel SGX PCK Platform CA", organization="Intel Corporation"),
            platform_ca_key.public_key(),
            _CERT_NOT_BEFORE,
            _CERT_NOT_AFTER,
            is_ca=True,
            path_length=0,
        )
        self.platform_ca = CertificateIssuer(platform_ca_cert, platform_ca_key)
        self._platforms: Dict[bytes, bytes] = {}
        self._master = self._rng.fork(b"platforms").generate(48)

    def provision_platform(self, serial: str) -> "TdxPlatform":
        """Manufacture a platform: fuse a unique secret, register its id."""
        secret = hkdf(self._master, info=serial.encode(), length=48)
        platform_id = hashlib.sha256(b"tdx-platform" + secret).digest()
        self._platforms[platform_id] = secret
        return TdxPlatform(platform_id=platform_id, platform_secret=secret)

    def pck_public_key(self, platform_id: bytes, tcb_svn: int) -> PublicKey:
        """Derive the PCK public key for certification (Intel side)."""
        try:
            secret = self._platforms[platform_id]
        except KeyError:
            raise TdxError("unknown platform") from None
        scalar = _pck_scalar(secret, tcb_svn)
        return PublicKey("ecdsa", EcdsaPrivateKey(P384, scalar).public_key())


def _pck_scalar(platform_secret: bytes, tcb_svn: int) -> int:
    material = hkdf(
        platform_secret, info=b"pck" + tcb_svn.to_bytes(4, "little"), length=72
    )
    return 1 + int.from_bytes(material, "big") % (P384.n - 1)


class ProvisioningCertificationService:
    """Intel's PCS: serves PCK certificates and the CA chain."""

    def __init__(self, infrastructure: IntelInfrastructure):
        self._infrastructure = infrastructure
        self._cache: Dict[Tuple[bytes, int], Certificate] = {}

    @property
    def root_certificate(self) -> Certificate:
        """The root trust anchor certificate."""
        return self._infrastructure.root.certificate

    def cert_chain(self) -> List[Certificate]:
        """The intermediate-to-root certificate chain served to verifiers."""
        return [
            self._infrastructure.platform_ca.certificate,
            self._infrastructure.root.certificate,
        ]

    def get_pck_certificate(self, platform_id: bytes, tcb_svn: int) -> Certificate:
        """Issue or re-serve a platform's PCK certificate."""
        key = (bytes(platform_id), tcb_svn)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        public_key = self._infrastructure.pck_public_key(platform_id, tcb_svn)
        certificate = self._infrastructure.platform_ca.issue(
            Name("Intel SGX PCK Certificate", organization="Intel Corporation"),
            public_key,
            _CERT_NOT_BEFORE,
            _CERT_NOT_AFTER,
            extensions=(
                ("intel.platform_id", bytes(platform_id)),
                ("intel.tcb_svn", tcb_svn.to_bytes(4, "little")),
            ),
        )
        self._cache[key] = certificate
        return certificate


@dataclass
class TdContext:
    """One running trust domain's view of the TDX module."""

    platform: "TdxPlatform"
    mrtd: bytes
    _rtmrs: List[bytes] = field(
        default_factory=lambda: [b"\x00" * MEASUREMENT_SIZE] * NUM_RTMRS
    )

    def rtmr(self, index: int) -> bytes:
        """Current value of the indexed RTMR."""
        self._check_rtmr(index)
        return self._rtmrs[index]

    def extend_rtmr(self, index: int, digest: bytes) -> None:
        """Runtime measurement: RTMR <- sha384(RTMR || digest)."""
        self._check_rtmr(index)
        if len(digest) != MEASUREMENT_SIZE:
            raise TdxError("RTMR extend digest must be 48 bytes")
        self._rtmrs[index] = hashlib.sha384(self._rtmrs[index] + digest).digest()

    def get_quote(self, report_data: bytes) -> TdQuote:
        """TD report -> quote, signed by the platform quoting key."""
        if len(report_data) != REPORT_DATA_SIZE:
            raise TdxError("REPORT_DATA must be 64 bytes")
        unsigned = TdQuote(
            version=4,
            mrtd=self.mrtd,
            rtmrs=tuple(self._rtmrs),
            report_data=report_data,
            tee_tcb_svn=self.platform.tcb_svn,
            platform_id=self.platform.platform_id,
        )
        signature = self.platform.pck_private().sign(
            unsigned.signed_payload(), "sha384"
        )
        return replace(unsigned, signature=signature)

    def derive_sealing_key(self, context: bytes = b"") -> bytes:
        """Measurement-bound sealing, mirroring the SNP capability."""
        return self.platform.derive_key(self.mrtd, context)

    @staticmethod
    def _check_rtmr(index: int) -> None:
        if not (0 <= index < NUM_RTMRS):
            raise TdxError(f"RTMR index {index} out of range")


class TdxPlatform:
    """One TDX-capable host (the TDX module + quoting enclave)."""

    def __init__(self, platform_id: bytes, platform_secret: bytes,
                 tcb_svn: int = 3):
        self.platform_id = platform_id
        self._secret = platform_secret
        self.tcb_svn = tcb_svn

    def pck_private(self) -> EcdsaPrivateKey:
        """The platform's certified quoting key (never exported)."""
        return EcdsaPrivateKey(P384, _pck_scalar(self._secret, self.tcb_svn))

    def launch_td(self, initial_state: bytes) -> TdContext:
        """Build-time measurement into MRTD, then launch."""
        mrtd = hashlib.sha384(b"tdx-mrtd" + initial_state).digest()
        return TdContext(platform=self, mrtd=mrtd)

    def derive_key(self, mrtd: bytes, context: bytes) -> bytes:
        """Measurement-bound key derivation."""
        sealing_root = hkdf(self._secret, info=b"tdx-sealing", length=32)
        return hkdf(sealing_root, info=b"seal" + mrtd + context, length=32)


def verify_td_quote(
    quote: TdQuote,
    pck_certificate: Certificate,
    cert_chain: List[Certificate],
    trust_anchors: List[Certificate],
    now: int,
    expected_mrtd: Optional[bytes] = None,
    expected_report_data: Optional[bytes] = None,
) -> None:
    """Quote verification (the go-tdx-guest analogue).

    Raises :class:`TdxError` on the first failed check.
    """
    from ..crypto.x509 import CertificateError, validate_chain

    try:
        validate_chain([pck_certificate, *cert_chain], trust_anchors, now=now)
    except CertificateError as exc:
        raise TdxError(f"PCK chain invalid: {exc}") from exc
    cert_platform = pck_certificate.extension("intel.platform_id")
    if cert_platform != quote.platform_id:
        raise TdxError("PCK certificate is for a different platform")
    cert_svn = pck_certificate.extension("intel.tcb_svn")
    if cert_svn is None or int.from_bytes(cert_svn, "little") != quote.tee_tcb_svn:
        raise TdxError("PCK certificate TCB SVN mismatch")
    if not pck_certificate.public_key.verify(
        quote.signed_payload(), quote.signature, "sha384"
    ):
        raise TdxError("quote signature invalid")
    if expected_mrtd is not None and quote.mrtd != expected_mrtd:
        raise TdxError("MRTD does not match the golden measurement")
    if expected_report_data is not None and quote.report_data != expected_report_data:
        raise TdxError("REPORT_DATA mismatch")
