"""Simulated Intel TDX: the second VM-model TEE backend."""

from .module import (
    NUM_RTMRS,
    IntelInfrastructure,
    ProvisioningCertificationService,
    TdContext,
    TdQuote,
    TdxError,
    TdxPlatform,
    verify_td_quote,
)

__all__ = [
    "IntelInfrastructure",
    "NUM_RTMRS",
    "ProvisioningCertificationService",
    "TdContext",
    "TdQuote",
    "TdxError",
    "TdxPlatform",
    "verify_td_quote",
]
