"""Runtime monitoring of Revelio VMs via the vTPM.

Glue between the vTPM and the Revelio guest/verifier:

* the ``vtpm-init`` init step (opt-in per image — and therefore part of
  the measured initrd) attaches a vTPM to the VM and endorses its AK
  with an AMD-SP report,
* :func:`measure_service_start` records application service launches
  into PCR 8,
* :class:`RuntimeMonitor` is the verifier: it challenges the VM with a
  nonce, receives (quote, event log, AK endorsement), validates the AK
  against the hardware RoT, replays the log, and checks the observed
  runtime events against an allow-list.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, List, Optional

from ..amd.report import AttestationReport
from ..attest import (
    STEP_QUOTE_LOG,
    STEP_QUOTE_SIGNATURE,
    STEP_REPORT_DATA,
    STEP_SERVICE_ALLOWLIST,
    AttestationVerifier,
    TeeFamily,
    VerificationPolicy,
    VtpmTrust,
    vtpm_evidence,
)
from ..crypto import encoding
from ..crypto.ecdsa import EcdsaPublicKey
from ..virt.image import register_init_step
from ..virt.vm import VirtualMachine
from .vtpm import (
    PCR_SERVICES,
    EventLogEntry,
    Quote,
    Vtpm,
    VtpmError,
)
from ..core.kds_client import KdsClient
from ..core.key_sharing import report_data_for


@register_init_step("vtpm-init")
def _init_vtpm(vm: VirtualMachine) -> None:
    """Attach a vTPM and endorse its AK with the AMD-SP (e-vTPM)."""
    vtpm = Vtpm(vm.rng.fork(b"vtpm"))
    endorsement = vm.guest.get_report(
        report_data_for(
            hashlib.sha256(vtpm.ak_public.encode()).digest()
        )
    )
    vm.services["vtpm"] = vtpm
    vm.services["vtpm_ak_endorsement"] = endorsement


def vm_vtpm(vm: VirtualMachine) -> Vtpm:
    """The VM's attached vTPM (raises if the image lacks vtpm-init)."""
    vtpm = vm.services.get("vtpm")
    if vtpm is None:
        raise VtpmError("VM has no vTPM (image built without vtpm-init)")
    return vtpm


def measure_service_start(vm: VirtualMachine, name: str, binary: bytes) -> None:
    """Record a service start in PCR 8 (call before launching it)."""
    vm_vtpm(vm).measure_event(
        PCR_SERVICES, binary, description=f"service-start:{name}"
    )


@dataclass(frozen=True)
class MonitoringEvidence:
    """What the VM returns for a monitoring challenge."""

    quote: Quote
    event_log: List[EventLogEntry]
    ak_public: EcdsaPublicKey
    ak_endorsement: AttestationReport

    def encode(self) -> bytes:
        """Serialise to canonical TLV bytes."""
        return encoding.encode(
            {
                "quote": self.quote.encode(),
                "log": [entry.to_dict() for entry in self.event_log],
                "ak": self.ak_public.encode(),
                "endorsement": self.ak_endorsement.encode(),
            }
        )

    @classmethod
    def decode(cls, data: bytes) -> "MonitoringEvidence":
        """Parse an instance back out of canonical TLV bytes."""
        decoded = encoding.decode(data)
        return cls(
            quote=Quote.decode(decoded["quote"]),
            event_log=[EventLogEntry.from_dict(e) for e in decoded["log"]],
            ak_public=EcdsaPublicKey.decode(decoded["ak"]),
            ak_endorsement=AttestationReport.decode(decoded["endorsement"]),
        )


def produce_evidence(vm: VirtualMachine, nonce: bytes) -> MonitoringEvidence:
    """Guest side: answer a monitoring challenge."""
    vtpm = vm_vtpm(vm)
    return MonitoringEvidence(
        quote=vtpm.quote(nonce, [PCR_SERVICES]),
        event_log=list(vtpm.event_log),
        ak_public=vtpm.ak_public,
        ak_endorsement=vm.services["vtpm_ak_endorsement"],
    )


#: Quote-side pipeline steps whose failures surface as the historical
#: :class:`VtpmError` (endorsement-side failures keep raising
#: :class:`~repro.amd.verify.AttestationError`).
_QUOTE_SIDE_STEPS = frozenset(
    {STEP_REPORT_DATA, STEP_QUOTE_SIGNATURE, STEP_QUOTE_LOG, STEP_SERVICE_ALLOWLIST}
)


class RuntimeMonitor:
    """The verifier tracking a VM's runtime state over its lifetime."""

    def __init__(
        self,
        kds: KdsClient,
        expected_measurement: bytes,
        allowed_service_digests: Optional[Iterable[bytes]] = None,
    ):
        self.kds = kds
        self.expected_measurement = bytes(expected_measurement)
        self.allowed_service_digests = (
            {bytes(d) for d in allowed_service_digests}
            if allowed_service_digests is not None
            else None
        )
        #: The full bundle — AK endorsement *and* quote/log half — runs
        #: through the unified pipeline's e-vTPM step provider.
        self.verifier = AttestationVerifier(
            kds,
            site="vtpm_monitor",
            contexts={
                TeeFamily.VTPM: VtpmTrust(
                    kds, allowed_service_digests=self.allowed_service_digests
                )
            },
        )

    def verify(self, evidence: MonitoringEvidence, nonce: bytes, now: int) -> None:
        """Validate evidence end to end; raises :class:`VtpmError` or
        :class:`~repro.amd.verify.AttestationError` on any failure."""
        policy = VerificationPolicy(
            golden_measurements=[self.expected_measurement],
            expected_report_data=nonce,
        )
        outcome = self.verifier.verify(
            vtpm_evidence(evidence), now=now, policy=policy
        )
        failure = outcome.failure
        if failure is None:
            return
        if failure.name in _QUOTE_SIDE_STEPS:
            raise VtpmError(failure.detail)
        outcome.raise_for_failure()
