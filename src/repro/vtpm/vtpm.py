"""An ephemeral vTPM for runtime monitoring of Revelio VMs.

The paper's design deliberately has *no* runtime monitoring — it locks
the system down instead (F4) — but its related-work section points at
Narayanan et al.'s SEV-SNP e-vTPM as a compatible extension.  This
module implements that extension:

* a software TPM with SHA-256 PCR banks and a measured event log,
* an **attestation key (AK)** generated inside the guest and endorsed
  by the AMD-SP — a report whose ``REPORT_DATA`` binds the AK public
  key, rooting the vTPM in the hardware RoT,
* signed **quotes** over selected PCRs with verifier-supplied nonces,
* verifier-side event-log replay: the expected PCR values are recomputed
  from the log and compared against the quoted ones, so any unlogged
  or out-of-order runtime event is detected.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from ..crypto import encoding, sigcache
from ..crypto.drbg import HmacDrbg
from ..crypto.ec import P256
from ..crypto.ecdsa import EcdsaPrivateKey, EcdsaPublicKey

NUM_PCRS = 24
_DIGEST_SIZE = 32

#: Conventional PCR assignments for Revelio runtime events.
PCR_SERVICES = 8  # application service starts
PCR_CONFIG = 9  # runtime configuration changes


class VtpmError(RuntimeError):
    """Invalid vTPM operations or failed quote verification."""


@dataclass(frozen=True)
class EventLogEntry:
    """One measured runtime event."""

    pcr_index: int
    digest: bytes
    description: str

    def to_dict(self) -> dict:
        """Dict form for canonical TLV embedding."""
        return {
            "pcr": self.pcr_index,
            "digest": self.digest,
            "desc": self.description,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EventLogEntry":
        """Rebuild from the dict form."""
        return cls(
            pcr_index=data["pcr"], digest=data["digest"], description=data["desc"]
        )


@dataclass(frozen=True)
class Quote:
    """A signed snapshot of selected PCRs."""

    nonce: bytes
    pcr_values: Tuple[Tuple[int, bytes], ...]
    signature: bytes = b""

    def signed_payload(self) -> bytes:
        """The canonical byte string covered by the signature."""
        return encoding.encode(
            {
                "nonce": self.nonce,
                "pcrs": [[index, value] for index, value in self.pcr_values],
            }
        )

    def verify(self, attestation_key: EcdsaPublicKey) -> bool:
        """Check the signature; True if it verifies."""
        if not self.signature:
            return False
        return sigcache.cached_verify(
            attestation_key, self.signed_payload(), self.signature
        )

    def pcr_map(self) -> Dict[int, bytes]:
        """The quoted PCRs as a dict."""
        return dict(self.pcr_values)

    def encode(self) -> bytes:
        """Serialise to canonical TLV bytes."""
        return encoding.encode(
            {"payload": self.signed_payload(), "sig": self.signature}
        )

    @classmethod
    def decode(cls, data: bytes) -> "Quote":
        """Parse an instance back out of canonical TLV bytes."""
        outer = encoding.decode(data)
        payload = encoding.decode(outer["payload"])
        return cls(
            nonce=payload["nonce"],
            pcr_values=tuple((index, value) for index, value in payload["pcrs"]),
            signature=outer["sig"],
        )


class Vtpm:
    """One guest's vTPM instance."""

    def __init__(self, rng: HmacDrbg):
        self._pcrs: List[bytes] = [b"\x00" * _DIGEST_SIZE for _ in range(NUM_PCRS)]
        self.event_log: List[EventLogEntry] = []
        self.attestation_key = EcdsaPrivateKey.generate(P256, rng)

    @property
    def ak_public(self) -> EcdsaPublicKey:
        """The vTPM attestation key's public half."""
        return self.attestation_key.public_key()

    def read_pcr(self, index: int) -> bytes:
        """Current value of the indexed PCR."""
        self._check_index(index)
        return self._pcrs[index]

    def extend(self, index: int, digest: bytes, description: str = "") -> None:
        """PCR extend + event log append."""
        self._check_index(index)
        if len(digest) != _DIGEST_SIZE:
            raise VtpmError("extend digest must be 32 bytes")
        self._pcrs[index] = hashlib.sha256(self._pcrs[index] + digest).digest()
        self.event_log.append(
            EventLogEntry(pcr_index=index, digest=digest, description=description)
        )

    def measure_event(self, index: int, data: bytes, description: str) -> None:
        """Hash arbitrary event data and extend."""
        self.extend(index, hashlib.sha256(data).digest(), description)

    def quote(self, nonce: bytes, pcr_indices: Sequence[int]) -> Quote:
        """Produce a signed quote over the selected PCRs."""
        for index in pcr_indices:
            self._check_index(index)
        unsigned = Quote(
            nonce=nonce,
            pcr_values=tuple(
                (index, self._pcrs[index]) for index in sorted(set(pcr_indices))
            ),
        )
        from dataclasses import replace

        return replace(
            unsigned,
            signature=self.attestation_key.sign(unsigned.signed_payload()),
        )

    def encoded_event_log(self) -> bytes:
        """The event log in canonical TLV form."""
        return encoding.encode([entry.to_dict() for entry in self.event_log])

    @staticmethod
    def _check_index(index: int) -> None:
        if not (0 <= index < NUM_PCRS):
            raise VtpmError(f"PCR index {index} out of range")


def decode_event_log(data: bytes) -> List[EventLogEntry]:
    """Parse an event log from canonical TLV bytes."""
    decoded = encoding.decode(data)
    return [EventLogEntry.from_dict(entry) for entry in decoded]


def replay_event_log(entries: Iterable[EventLogEntry]) -> Dict[int, bytes]:
    """Recompute the PCR values an honest vTPM would hold after *entries*."""
    pcrs: Dict[int, bytes] = {}
    for entry in entries:
        if not (0 <= entry.pcr_index < NUM_PCRS):
            raise VtpmError("event log references an invalid PCR")
        current = pcrs.get(entry.pcr_index, b"\x00" * _DIGEST_SIZE)
        pcrs[entry.pcr_index] = hashlib.sha256(current + entry.digest).digest()
    return pcrs


def verify_quote_against_log(
    quote: Quote,
    event_log: Sequence[EventLogEntry],
    attestation_key: EcdsaPublicKey,
    expected_nonce: bytes,
) -> None:
    """Full verifier-side check: signature, nonce freshness, and
    PCR-vs-log consistency.  Raises :class:`VtpmError` on any failure."""
    if quote.nonce != expected_nonce:
        raise VtpmError("quote nonce mismatch (replay?)")
    if not quote.verify(attestation_key):
        raise VtpmError("quote signature invalid")
    replayed = replay_event_log(event_log)
    for index, value in quote.pcr_values:
        expected = replayed.get(index, b"\x00" * _DIGEST_SIZE)
        if value != expected:
            raise VtpmError(
                f"PCR {index} does not match the event log "
                "(unlogged runtime event detected)"
            )
