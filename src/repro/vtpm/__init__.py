"""Optional vTPM-based runtime monitoring (the e-vTPM extension the
paper's related work points at)."""

from .monitoring import (
    MonitoringEvidence,
    RuntimeMonitor,
    measure_service_start,
    produce_evidence,
    vm_vtpm,
)
from .vtpm import (
    NUM_PCRS,
    PCR_CONFIG,
    PCR_SERVICES,
    EventLogEntry,
    Quote,
    Vtpm,
    VtpmError,
    decode_event_log,
    replay_event_log,
    verify_quote_against_log,
)

__all__ = [
    "EventLogEntry",
    "MonitoringEvidence",
    "NUM_PCRS",
    "PCR_CONFIG",
    "PCR_SERVICES",
    "Quote",
    "RuntimeMonitor",
    "Vtpm",
    "VtpmError",
    "decode_event_log",
    "measure_service_start",
    "produce_evidence",
    "replay_event_log",
    "verify_quote_against_log",
    "vm_vtpm",
]
