"""Simulated ARM CCA: the third VM-model TEE backend."""

from .realms import (
    NUM_REMS,
    ArmInfrastructure,
    CcaError,
    CcaPlatform,
    CcaToken,
    PlatformToken,
    RealmContext,
    RealmToken,
    verify_cca_token,
)

__all__ = [
    "ArmInfrastructure",
    "CcaError",
    "CcaPlatform",
    "CcaToken",
    "NUM_REMS",
    "PlatformToken",
    "RealmContext",
    "RealmToken",
    "verify_cca_token",
]
