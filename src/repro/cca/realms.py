"""Simulated ARM CCA: realms, RMM measurements, and two-level tokens.

The third VM-model TEE the paper names ("ARM's Confidential Compute
Architecture (CCA)").  CCA's attestation differs structurally from
SEV-SNP's and TDX's single signed report: evidence is a **pair of
tokens** —

* a **realm token**: the realm's initial measurement (RIM), its
  runtime-extensible measurements (REMs), and the verifier's challenge,
  signed by a per-realm attestation key (RAK);
* a **platform token**: binds the RAK (by hash) to the platform,
  signed by the CCA Platform Attestation Key (CPAK) whose certificate
  chains to ARM.

The verifier checks the platform token against the ARM trust anchor,
checks the RAK binding, then verifies the realm token with the RAK —
reproducing the CCA token-chaining design faithfully enough that the
``repro.tee`` layer treats it as just another evidence kind.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..crypto import encoding, sigcache
from ..crypto.drbg import HmacDrbg
from ..crypto.ec import P384
from ..crypto.ecdsa import EcdsaPrivateKey, EcdsaPublicKey
from ..crypto.kdf import hkdf
from ..crypto.keys import PrivateKey
from ..crypto.x509 import Certificate, CertificateIssuer, Name

NUM_REMS = 4
MEASUREMENT_SIZE = 48
CHALLENGE_SIZE = 64

_CERT_NOT_BEFORE = 0
_CERT_NOT_AFTER = 2**62


class CcaError(RuntimeError):
    """Invalid CCA operations or failed token verification."""


@dataclass(frozen=True)
class RealmToken:
    """The realm's half of the evidence, signed by its RAK."""

    rim: bytes  # realm initial measurement
    rems: Tuple[bytes, ...]  # realm extensible measurements
    challenge: bytes  # verifier nonce / REPORT_DATA analogue
    rak_public: bytes  # encoded RAK public key
    signature: bytes = b""

    def signed_payload(self) -> bytes:
        """The canonical byte string covered by the signature."""
        return encoding.encode(
            {
                "rim": self.rim,
                "rems": list(self.rems),
                "challenge": self.challenge,
                "rak": self.rak_public,
            }
        )


@dataclass(frozen=True)
class PlatformToken:
    """The platform's half: binds the RAK to genuine CCA hardware."""

    platform_id: bytes
    lifecycle_state: str  # "secured" on honest platforms
    rak_hash: bytes  # sha256 over the realm token's RAK
    signature: bytes = b""
    platform_svn: int = 1  # security version of the monitor/RMM firmware

    def signed_payload(self) -> bytes:
        """The canonical byte string covered by the signature."""
        return encoding.encode(
            {
                "platform": self.platform_id,
                "lifecycle": self.lifecycle_state,
                "rak_hash": self.rak_hash,
                "svn": self.platform_svn,
            }
        )


@dataclass(frozen=True)
class CcaToken:
    """The complete evidence bundle a realm hands to a verifier."""

    realm_token: RealmToken
    platform_token: PlatformToken

    def encode(self) -> bytes:
        """Serialise to canonical TLV bytes."""
        return encoding.encode(
            {
                "realm": {
                    "payload": self.realm_token.signed_payload(),
                    "sig": self.realm_token.signature,
                },
                "platform": {
                    "payload": self.platform_token.signed_payload(),
                    "sig": self.platform_token.signature,
                },
            }
        )

    @classmethod
    def decode(cls, data: bytes) -> "CcaToken":
        """Parse an instance back out of canonical TLV bytes."""
        try:
            outer = encoding.decode(data)
            realm_payload = encoding.decode(outer["realm"]["payload"])
            platform_payload = encoding.decode(outer["platform"]["payload"])
        except (ValueError, KeyError, TypeError) as exc:
            raise CcaError("malformed CCA token") from exc
        realm = RealmToken(
            rim=realm_payload["rim"],
            rems=tuple(realm_payload["rems"]),
            challenge=realm_payload["challenge"],
            rak_public=realm_payload["rak"],
            signature=outer["realm"]["sig"],
        )
        platform = PlatformToken(
            platform_id=platform_payload["platform"],
            lifecycle_state=platform_payload["lifecycle"],
            rak_hash=platform_payload["rak_hash"],
            signature=outer["platform"]["sig"],
            platform_svn=platform_payload.get("svn", 1),
        )
        return cls(realm_token=realm, platform_token=platform)


class ArmInfrastructure:
    """ARM + the device maker: the CPAK endorsement hierarchy."""

    def __init__(self, rng: Optional[HmacDrbg] = None):
        self._rng = rng if rng is not None else HmacDrbg(b"arm-default")
        root_key = PrivateKey.generate_ecdsa(self._rng.fork(b"root"), "P-384")
        self.root = CertificateIssuer.self_signed_root(
            Name("ARM CCA Root CA", organization="Arm Ltd"),
            root_key,
            _CERT_NOT_BEFORE,
            _CERT_NOT_AFTER,
        )
        self._master = self._rng.fork(b"platforms").generate(48)
        self._platforms: Dict[bytes, bytes] = {}

    def provision_platform(self, serial: str) -> "CcaPlatform":
        """Manufacture a platform: fuse a unique secret, register its id."""
        secret = hkdf(self._master, info=serial.encode(), length=48)
        platform_id = hashlib.sha256(b"cca-platform" + secret).digest()
        self._platforms[platform_id] = secret
        return CcaPlatform(platform_id=platform_id, platform_secret=secret)

    def cpak_certificate(self, platform: "CcaPlatform") -> Certificate:
        """Endorse a platform's CPAK (done at manufacture)."""
        if platform.platform_id not in self._platforms:
            raise CcaError("unknown platform")
        from ..crypto.keys import PublicKey

        return self.root.issue(
            Name("CCA Platform Attestation Key", organization="Arm Ltd"),
            PublicKey("ecdsa", platform.cpak_private().public_key()),
            _CERT_NOT_BEFORE,
            _CERT_NOT_AFTER,
            extensions=(("arm.platform_id", platform.platform_id),),
        )


@dataclass
class RealmContext:
    """One running realm's handle on the RMM."""

    platform: "CcaPlatform"
    rim: bytes
    rak: EcdsaPrivateKey
    _rems: List[bytes] = field(
        default_factory=lambda: [b"\x00" * MEASUREMENT_SIZE] * NUM_REMS
    )

    def rem(self, index: int) -> bytes:
        """Current value of the indexed REM."""
        self._check_rem(index)
        return self._rems[index]

    def extend_rem(self, index: int, digest: bytes) -> None:
        """REM <- sha384(REM || digest)."""
        self._check_rem(index)
        if len(digest) != MEASUREMENT_SIZE:
            raise CcaError("REM extend digest must be 48 bytes")
        self._rems[index] = hashlib.sha384(self._rems[index] + digest).digest()

    def attest(self, challenge: bytes) -> CcaToken:
        """Produce the two-token evidence bundle for *challenge*."""
        if len(challenge) != CHALLENGE_SIZE:
            raise CcaError("challenge must be 64 bytes")
        rak_public = self.rak.public_key().encode()
        realm_unsigned = RealmToken(
            rim=self.rim,
            rems=tuple(self._rems),
            challenge=challenge,
            rak_public=rak_public,
        )
        realm = replace(
            realm_unsigned,
            signature=self.rak.sign(realm_unsigned.signed_payload(), "sha384"),
        )
        platform_unsigned = PlatformToken(
            platform_id=self.platform.platform_id,
            lifecycle_state=self.platform.lifecycle_state,
            rak_hash=hashlib.sha256(rak_public).digest(),
            platform_svn=self.platform.platform_svn,
        )
        platform = replace(
            platform_unsigned,
            signature=self.platform.cpak_private().sign(
                platform_unsigned.signed_payload(), "sha384"
            ),
        )
        return CcaToken(realm_token=realm, platform_token=platform)

    def derive_sealing_key(self, context: bytes = b"") -> bytes:
        """Measurement-bound sealing key (32 bytes)."""
        return self.platform.derive_key(self.rim, context)

    @staticmethod
    def _check_rem(index: int) -> None:
        if not (0 <= index < NUM_REMS):
            raise CcaError(f"REM index {index} out of range")


class CcaPlatform:
    """One CCA-capable device (monitor + RMM)."""

    def __init__(self, platform_id: bytes, platform_secret: bytes,
                 lifecycle_state: str = "secured", platform_svn: int = 1):
        self.platform_id = platform_id
        self._secret = platform_secret
        self.lifecycle_state = lifecycle_state
        self.platform_svn = platform_svn
        self._realm_counter = 0

    def cpak_private(self) -> EcdsaPrivateKey:
        """The platform's CCA Platform Attestation Key (never exported)."""
        material = hkdf(self._secret, info=b"cpak", length=72)
        return EcdsaPrivateKey(P384, 1 + int.from_bytes(material, "big") % (P384.n - 1))

    def launch_realm(self, initial_state: bytes) -> RealmContext:
        """Measure the realm's initial state into the RIM and launch."""
        rim = hashlib.sha384(b"cca-rim" + initial_state).digest()
        self._realm_counter += 1
        rak_material = hkdf(
            self._secret,
            info=b"rak" + rim + self._realm_counter.to_bytes(8, "big"),
            length=40,
        )
        from ..crypto.ec import P256

        rak = EcdsaPrivateKey(
            P256, 1 + int.from_bytes(rak_material, "big") % (P256.n - 1)
        )
        return RealmContext(platform=self, rim=rim, rak=rak)

    def derive_key(self, rim: bytes, context: bytes) -> bytes:
        """Measurement-bound key derivation."""
        sealing_root = hkdf(self._secret, info=b"cca-sealing", length=32)
        return hkdf(sealing_root, info=b"seal" + rim + context, length=32)


def verify_cca_token(
    token: CcaToken,
    cpak_certificate: Certificate,
    trust_anchors: List[Certificate],
    now: int,
    expected_rim: Optional[bytes] = None,
    expected_challenge: Optional[bytes] = None,
) -> None:
    """Full CCA token verification; raises :class:`CcaError` on failure."""
    from ..crypto.x509 import CertificateError, validate_chain

    try:
        validate_chain([cpak_certificate], trust_anchors, now=now)
    except CertificateError as exc:
        raise CcaError(f"CPAK chain invalid: {exc}") from exc

    platform = token.platform_token
    cert_platform = cpak_certificate.extension("arm.platform_id")
    if cert_platform != platform.platform_id:
        raise CcaError("CPAK certificate is for a different platform")
    if not cpak_certificate.public_key.verify(
        platform.signed_payload(), platform.signature, "sha384"
    ):
        raise CcaError("platform token signature invalid")
    if platform.lifecycle_state != "secured":
        raise CcaError(
            f"platform lifecycle is {platform.lifecycle_state!r}, not secured"
        )

    realm = token.realm_token
    if hashlib.sha256(realm.rak_public).digest() != platform.rak_hash:
        raise CcaError("platform token does not endorse this realm's RAK")
    rak = EcdsaPublicKey.decode(realm.rak_public)
    if not sigcache.cached_verify(
        rak, realm.signed_payload(), realm.signature, "sha384"
    ):
        raise CcaError("realm token signature invalid")

    if expected_rim is not None and realm.rim != expected_rim:
        raise CcaError("RIM does not match the golden measurement")
    if expected_challenge is not None and realm.challenge != expected_challenge:
        raise CcaError("challenge mismatch (replay?)")
