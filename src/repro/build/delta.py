"""Block-level delta images over the measured dm-verity stack.

Two deterministic builds of nearly identical specs produce disks that
differ in a handful of 4 KiB blocks: the changed rootfs leaves, the
dm-verity hash-tree blocks on the path from those leaves to the root,
and the partition/filesystem metadata that moved.  :func:`compute_delta`
diffs the two disks block-by-block and ships **only** the changed
blocks (plus any changed boot components — kernel, initrd, cmdline,
firmware), typically a few percent of the full image for a one-package
change.

:func:`apply_delta` is the update client's only mutation path, and it
fails closed in a typed way:

* the installed disk must hash to the delta's recorded base digest
  (``base_mismatch`` — a delta for a different base never patches),
* every shipped block must verify against its recorded hash, land
  inside the target extent, and reproduce the recorded target disk
  digest (``delta_corrupt``),
* the patched disk is **re-rooted deterministically**: the verity root
  is recomputed from the patched hash device, every changed rootfs
  block is re-verified through the full Merkle path, and the root must
  equal both the delta's target root and the ``verity_root_hash=`` the
  new command line carries (``digest_mismatch``),
* finally the assembled image must replay to exactly the *signed*
  target launch measurement when the caller provides one
  (``digest_mismatch`` again — the channel's manifest is the authority).

A rejected delta raises before any image object is returned, so a bad
update can never be mounted, let alone served from.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..crypto import encoding
from ..storage.blockdev import RamBlockDevice
from ..storage.dm_verity import VerityError, VeritySuperblock, verity_open
from ..storage.partition import PartitionError, PartitionTable
from ..virt.image import VmImage, parse_cmdline
from .measurement import expected_measurement_for_image

_DELTA_MAGIC = "repro-image-delta-v1"

#: Stable rejection codes the delta apply path can produce.  They are
#: shared with the signed update channel (:mod:`repro.build.channel`),
#: whose taxonomy adds the manifest-level codes on top.
DELTA_REASON_CODES: Tuple[str, ...] = (
    "base_mismatch",
    "delta_corrupt",
    "digest_mismatch",
)

#: Image components shipped whole when changed (everything measured
#: that is not the disk).
_COMPONENT_FIELDS: Tuple[str, ...] = (
    "name", "version", "firmware_template", "kernel", "initrd", "cmdline",
)


class DeltaError(ValueError):
    """A delta was rejected; ``code`` is one of :data:`DELTA_REASON_CODES`."""

    def __init__(self, code: str, message: str):
        if code not in DELTA_REASON_CODES:
            raise ValueError(f"unknown delta reason code {code!r}")
        super().__init__(message)
        self.code = code


def _block_hash(index: int, content: bytes) -> bytes:
    """The shipped-block hash: position-bound, so blocks cannot be
    transposed without detection."""
    return hashlib.sha256(index.to_bytes(8, "big") + content).digest()


@dataclass(frozen=True)
class ImageDelta:
    """Everything needed to turn the base image into the target image."""

    image_name: str
    base_version: str
    target_version: str
    block_size: int
    base_disk_blocks: int
    target_disk_blocks: int
    base_disk_digest: bytes
    target_disk_digest: bytes
    base_root_hash: bytes
    target_root_hash: bytes
    #: (block index, 4 KiB content), ascending by index.
    changed_blocks: Tuple[Tuple[int, bytes], ...]
    #: Whole replacement values for changed non-disk components
    #: (field name → encoded bytes; strings are UTF-8).
    components: Tuple[Tuple[str, bytes], ...]
    #: Replacement boot-service table, shipped whenever it changed
    #: (None = unchanged).
    base_boot_services: Optional[Tuple[Tuple[str, float], ...]] = None

    def blob_hashes(self) -> Tuple[bytes, ...]:
        """Position-bound hashes of every shipped block, in order —
        the manifest pins these so a tampered blob store is caught
        before the disk digest is even checked."""
        return tuple(
            _block_hash(index, content) for index, content in self.changed_blocks
        )

    def delta_bytes(self) -> int:
        """Payload size actually shipped (blocks + components)."""
        return (
            sum(len(content) for _, content in self.changed_blocks)
            + sum(len(blob) for _, blob in self.components)
        )

    def encode(self) -> bytes:
        """Serialise to canonical TLV bytes (the shipped blob)."""
        return encoding.encode(
            {
                "magic": _DELTA_MAGIC,
                "image": self.image_name,
                "base_version": self.base_version,
                "target_version": self.target_version,
                "block_size": self.block_size,
                "base_blocks": self.base_disk_blocks,
                "target_blocks": self.target_disk_blocks,
                "base_digest": self.base_disk_digest,
                "target_digest": self.target_disk_digest,
                "base_root": self.base_root_hash,
                "target_root": self.target_root_hash,
                "blocks": [
                    [index, content] for index, content in self.changed_blocks
                ],
                "components": [
                    [name, blob] for name, blob in self.components
                ],
                "base_boot": (
                    None
                    if self.base_boot_services is None
                    else [
                        [name, int(duration * 1_000_000)]
                        for name, duration in self.base_boot_services
                    ]
                ),
            }
        )

    @classmethod
    def decode(cls, data: bytes) -> "ImageDelta":
        """Parse a shipped blob; raises ``DeltaError(delta_corrupt)``."""
        try:
            decoded = encoding.decode(data)
        except ValueError as exc:
            raise DeltaError("delta_corrupt", "unreadable delta blob") from exc
        if not isinstance(decoded, dict) or decoded.get("magic") != _DELTA_MAGIC:
            raise DeltaError("delta_corrupt", "not an image delta")
        try:
            return cls(
                image_name=decoded["image"],
                base_version=decoded["base_version"],
                target_version=decoded["target_version"],
                block_size=decoded["block_size"],
                base_disk_blocks=decoded["base_blocks"],
                target_disk_blocks=decoded["target_blocks"],
                base_disk_digest=decoded["base_digest"],
                target_disk_digest=decoded["target_digest"],
                base_root_hash=decoded["base_root"],
                target_root_hash=decoded["target_root"],
                changed_blocks=tuple(
                    (index, content) for index, content in decoded["blocks"]
                ),
                components=tuple(
                    (name, blob) for name, blob in decoded["components"]
                ),
                base_boot_services=(
                    None
                    if decoded["base_boot"] is None
                    else tuple(
                        (name, micros / 1_000_000)
                        for name, micros in decoded["base_boot"]
                    )
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DeltaError("delta_corrupt", "malformed delta fields") from exc


def _image_root_hash(image: VmImage) -> bytes:
    """The verity root the image's measured command line binds."""
    root_hex = parse_cmdline(image.cmdline).get("verity_root_hash", "")
    try:
        return bytes.fromhex(root_hex)
    except ValueError:
        return b""


def compute_delta(base: VmImage, target: VmImage) -> ImageDelta:
    """Diff two built images into the minimal shippable delta.

    Both images must use the same block size and belong to the same
    image name (deltas never cross image identities).
    """
    if base.name != target.name:
        raise ValueError(
            f"delta across image identities: {base.name!r} -> {target.name!r}"
        )
    if base.disk_block_size != target.disk_block_size:
        raise ValueError("delta across different block sizes")
    block_size = base.disk_block_size
    base_disk, target_disk = base.disk_image, target.disk_image
    base_blocks = len(base_disk) // block_size
    target_blocks = len(target_disk) // block_size

    changed = []
    for index in range(target_blocks):
        start = index * block_size
        new_block = target_disk[start : start + block_size]
        old_block = (
            base_disk[start : start + block_size] if index < base_blocks else b""
        )
        if new_block != old_block:
            changed.append((index, new_block))

    components = []
    for name in _COMPONENT_FIELDS:
        old_value, new_value = getattr(base, name), getattr(target, name)
        if old_value != new_value:
            blob = (
                new_value.encode("utf-8")
                if isinstance(new_value, str)
                else bytes(new_value)
            )
            components.append((name, blob))
    boot = (
        None
        if base.base_boot_services == target.base_boot_services
        else tuple(target.base_boot_services)
    )
    return ImageDelta(
        image_name=base.name,
        base_version=base.version,
        target_version=target.version,
        block_size=block_size,
        base_disk_blocks=base_blocks,
        target_disk_blocks=target_blocks,
        base_disk_digest=hashlib.sha256(base_disk).digest(),
        target_disk_digest=hashlib.sha256(target_disk).digest(),
        base_root_hash=_image_root_hash(base),
        target_root_hash=_image_root_hash(target),
        changed_blocks=tuple(changed),
        components=tuple(components),
        base_boot_services=boot,
    )


def _reroot(disk: bytes, block_size: int, changed_indices) -> bytes:
    """Deterministically recompute the verity root of a patched disk
    and re-verify every changed rootfs block's full Merkle path.

    Returns the recomputed root.  Raises ``DeltaError(delta_corrupt)``
    when the patched disk's tree is internally inconsistent (a shipped
    hash-tree patch that does not match the shipped data blocks).
    """
    device = RamBlockDevice(len(disk) // block_size, block_size, initial=disk)
    try:
        table = PartitionTable.read_from(device)
        rootfs = table.open(device, "rootfs")
        hashes = table.open(device, "verity")
        superblock = VeritySuperblock.decode(hashes.read_block(0))
        # The root is hash(salt + top-level block): recompute it from
        # the patched hash device rather than trusting any field.
        from ..crypto.hashes import get_hash

        top_offset = superblock.level_offsets()[-1]
        hash_fn = get_hash(superblock.hash_name)
        root = hash_fn(superblock.salt + hashes.read_block(top_offset))

        verity = verity_open(rootfs, hashes, root)
        rootfs_entry = table.find("rootfs")
        first, count = rootfs_entry.first_block, rootfs_entry.num_blocks
        for index in sorted(changed_indices):
            if first <= index < first + count:
                verity.read_block(index - first)
        return root
    except (PartitionError, VerityError, ValueError) as exc:
        raise DeltaError(
            "delta_corrupt", f"patched disk fails re-rooting: {exc}"
        ) from exc


def apply_delta(
    base: VmImage,
    delta: ImageDelta,
    target_measurement: Optional[bytes] = None,
) -> VmImage:
    """Patch *base* into the target image, verifying everything.

    Raises :class:`DeltaError` (typed, see the module docstring) on any
    inconsistency; on success the returned image is byte-identical to
    the original target build.  When *target_measurement* is given (the
    signed value from the update manifest), the patched image must
    replay to exactly that launch measurement.
    """
    block_size = delta.block_size
    if base.disk_block_size != block_size:
        raise DeltaError("base_mismatch", "installed image block size differs")
    if base.name != delta.image_name:
        raise DeltaError(
            "base_mismatch",
            f"delta is for image {delta.image_name!r}, not {base.name!r}",
        )
    if hashlib.sha256(base.disk_image).digest() != delta.base_disk_digest:
        raise DeltaError(
            "base_mismatch",
            "installed disk does not match the delta's base digest",
        )

    disk = bytearray(delta.target_disk_blocks * block_size)
    common = min(len(base.disk_image), len(disk))
    disk[:common] = base.disk_image[:common]
    changed_indices = []
    for index, content in delta.changed_blocks:
        if len(content) != block_size:
            raise DeltaError("delta_corrupt", f"block {index} is not block-sized")
        if not 0 <= index < delta.target_disk_blocks:
            raise DeltaError("delta_corrupt", f"block {index} outside the target")
        disk[index * block_size : (index + 1) * block_size] = content
        changed_indices.append(index)
    patched = bytes(disk)
    if hashlib.sha256(patched).digest() != delta.target_disk_digest:
        raise DeltaError(
            "delta_corrupt",
            "patched disk does not reproduce the recorded target digest",
        )

    root = _reroot(patched, block_size, changed_indices)
    if root != delta.target_root_hash:
        raise DeltaError(
            "digest_mismatch",
            "re-rooted verity digest disagrees with the delta's target root",
        )

    replacements: Dict[str, object] = {}
    for name, blob in delta.components:
        if name not in _COMPONENT_FIELDS:
            raise DeltaError("delta_corrupt", f"unknown component {name!r}")
        replacements[name] = (
            blob.decode("utf-8") if name in ("name", "version", "cmdline")
            else blob
        )
    applied = VmImage(
        name=replacements.get("name", base.name),
        version=replacements.get("version", base.version),
        firmware_template=replacements.get(
            "firmware_template", base.firmware_template
        ),
        kernel=replacements.get("kernel", base.kernel),
        initrd=replacements.get("initrd", base.initrd),
        cmdline=replacements.get("cmdline", base.cmdline),
        disk_image=patched,
        disk_block_size=block_size,
        base_boot_services=(
            base.base_boot_services
            if delta.base_boot_services is None
            else tuple(delta.base_boot_services)
        ),
    )
    if _image_root_hash(applied) != root:
        raise DeltaError(
            "digest_mismatch",
            "new command line does not bind the re-rooted verity digest",
        )
    if target_measurement is not None:
        if expected_measurement_for_image(applied) != bytes(target_measurement):
            raise DeltaError(
                "digest_mismatch",
                "patched image does not replay to the signed target measurement",
            )
    return applied
