"""The single measurement path: build → firmware injection → launch digest.

This module is the *only* place in the reproduction that knows how a
Revelio VM's SEV-SNP launch measurement is accumulated (paper §5.1):

1. :func:`direct_boot_hashes` — the SHA-256 hashes of the kernel,
   initrd, and command line that QEMU injects into the firmware's
   reserved hash table (Murik & Franke's measured direct boot, §2.1.2),
2. :func:`measured_firmware` — the firmware volume *after* injection,
   i.e. the exact initial guest state the AMD-SP measures,
3. :func:`launch_digest` — the AMD-SP's SHA-384 accumulation over that
   initial state and the launch policy,
4. :func:`expected_measurement_for_image` — the builder/auditor-side
   replay of 1-3, producing the golden value end-users register.

Every other layer routes through here: the software AMD-SP
(``repro.amd.secure_processor``) delegates its ``launch_digest``, the
firmware's boot-time re-hashing (``repro.virt.firmware``) delegates its
``HashTable.for_blobs``, the hypervisor builds its measured firmware
via :func:`measured_firmware`, and the deployment layer verifies builds
with :func:`expected_measurement_for_image`.  That is what makes the
reproducible build's golden value and the launched VM's measurement
equal by construction for honest builds — and *only* for honest builds,
since any byte flip in a package, the initrd, the init-step order, the
command line, or the firmware changes the accumulated state.

Kept free of module-level intra-package imports so it is a leaf of the
import graph; the few cross-layer touch points are resolved lazily.
"""

from __future__ import annotations

import hashlib
from typing import Tuple

#: Domain-separation prefix of the SNP launch-digest accumulation.
LAUNCH_DIGEST_DOMAIN = b"snp-launch-digest"


def hash_boot_blob(blob: bytes) -> bytes:
    """SHA-256 of one direct-boot blob, as QEMU hashes it for the
    firmware hash table."""
    return hashlib.sha256(blob).digest()


def direct_boot_hashes(
    kernel: bytes, initrd: bytes, cmdline: str
) -> Tuple[bytes, bytes, bytes]:
    """The (kernel, initrd, cmdline) digest triple for the hash table.

    The command line is hashed over its UTF-8 encoding — the same bytes
    the guest later receives over fw_cfg.
    """
    return (
        hash_boot_blob(kernel),
        hash_boot_blob(initrd),
        hash_boot_blob(cmdline.encode("utf-8")),
    )


def launch_digest(initial_state: bytes, policy) -> bytes:
    """The SHA-384 launch measurement over a guest's initial memory
    contents and launch policy.

    This is the AMD-SP's accumulation, bit for bit: the builder calls it
    to publish golden measurements (requirement F5) and the software
    AMD-SP calls it at ``launch_vm`` time, so the two cannot drift.
    """
    digest = hashlib.sha384()
    digest.update(LAUNCH_DIGEST_DOMAIN)
    digest.update(policy.encode_qword().to_bytes(8, "little"))
    digest.update(len(initial_state).to_bytes(8, "little"))
    digest.update(initial_state)
    return digest.digest()


def measured_firmware(
    firmware_template: bytes, kernel: bytes, initrd: bytes, cmdline: str
) -> bytes:
    """The firmware volume with the direct-boot hash table injected —
    the exact initial state the AMD-SP measures at launch."""
    from ..virt.firmware import HashTable, inject_hash_table

    kernel_hash, initrd_hash, cmdline_hash = direct_boot_hashes(
        kernel, initrd, cmdline
    )
    table = HashTable(kernel=kernel_hash, initrd=initrd_hash, cmdline=cmdline_hash)
    return inject_hash_table(firmware_template, table)


def expected_measurement_for_image(image, policy=None) -> bytes:
    """Replay the launch accumulation for a built image (the golden
    value): inject the image's own blob hashes into its firmware
    template, then run the AMD-SP digest under *policy* (defaults to
    the standard Revelio launch policy)."""
    if policy is None:
        from ..amd.policy import REVELIO_POLICY

        policy = REVELIO_POLICY
    firmware_image = measured_firmware(
        image.firmware_template, image.kernel, image.initrd, image.cmdline
    )
    return launch_digest(firmware_image, policy)
