"""Reproducible image builds and golden measurements (paper §5.1).

The build subsystem is where Revelio's trust story starts: a fully
pinned :class:`ImageSpec` deterministically becomes a VM image plus the
*golden* launch measurement end-users later compare attestation reports
against.  :mod:`repro.build.measurement` is the single measurement path
shared by the builder, the software AMD-SP, the firmware, and the
hypervisor — honest builds match by construction, tampered ones cannot.
"""

from . import measurement
from .image_builder import (
    BLOCK_SIZE,
    DEFAULT_INIT_STEPS,
    GOLDEN_CONF_PATH,
    MANIFEST_PATH,
    NETWORK_CONF_PATH,
    SERVICE_CONF_PATH,
    BuildError,
    BuildResult,
    ImageSpec,
    NetworkPolicy,
    RevelioBuild,
    build_revelio_image,
)
from .measurement import expected_measurement_for_image
from .packages import Package, PackageError, PackagePin, PackageRegistry

__all__ = [
    "BLOCK_SIZE",
    "DEFAULT_INIT_STEPS",
    "GOLDEN_CONF_PATH",
    "MANIFEST_PATH",
    "NETWORK_CONF_PATH",
    "SERVICE_CONF_PATH",
    "BuildError",
    "BuildResult",
    "ImageSpec",
    "NetworkPolicy",
    "Package",
    "PackageError",
    "PackagePin",
    "PackageRegistry",
    "RevelioBuild",
    "build_revelio_image",
    "expected_measurement_for_image",
    "measurement",
]
