"""Reproducible image builds and golden measurements (paper §5.1).

The build subsystem is where Revelio's trust story starts: a fully
pinned :class:`ImageSpec` deterministically becomes a VM image plus the
*golden* launch measurement end-users later compare attestation reports
against.  :mod:`repro.build.measurement` is the single measurement path
shared by the builder, the software AMD-SP, the firmware, and the
hypervisor — honest builds match by construction, tampered ones cannot.

On top of that sit the update layers: :mod:`repro.build.cache` memoises
build stages for incremental rebuilds, :mod:`repro.build.delta`
computes and applies block-level deltas over the dm-verity stack, and
:mod:`repro.build.channel` wraps deltas in signed, epoch-versioned
manifests so a fleet only ever moves between measurements along a
signed chain.
"""

from . import measurement
from .cache import CACHE_STAGES, BuildCache, cache_key
from .channel import (
    CHANNEL_REASON_CODES,
    ChannelError,
    SignedManifest,
    UpdateChannel,
    UpdateClient,
    UpdateManifest,
    verify_manifest,
)
from .delta import (
    DELTA_REASON_CODES,
    DeltaError,
    ImageDelta,
    apply_delta,
    compute_delta,
)
from .image_builder import (
    BLOCK_SIZE,
    DEFAULT_INIT_STEPS,
    GOLDEN_CONF_PATH,
    MANIFEST_PATH,
    NETWORK_CONF_PATH,
    SERVICE_CONF_PATH,
    BuildError,
    BuildResult,
    ImageSpec,
    NetworkPolicy,
    RevelioBuild,
    build_revelio_image,
)
from .measurement import expected_measurement_for_image
from .packages import Package, PackageError, PackagePin, PackageRegistry

__all__ = [
    "BLOCK_SIZE",
    "CACHE_STAGES",
    "CHANNEL_REASON_CODES",
    "DEFAULT_INIT_STEPS",
    "DELTA_REASON_CODES",
    "GOLDEN_CONF_PATH",
    "MANIFEST_PATH",
    "NETWORK_CONF_PATH",
    "SERVICE_CONF_PATH",
    "BuildCache",
    "BuildError",
    "BuildResult",
    "ChannelError",
    "DeltaError",
    "ImageDelta",
    "ImageSpec",
    "NetworkPolicy",
    "Package",
    "PackageError",
    "PackagePin",
    "PackageRegistry",
    "RevelioBuild",
    "SignedManifest",
    "UpdateChannel",
    "UpdateClient",
    "UpdateManifest",
    "apply_delta",
    "build_revelio_image",
    "cache_key",
    "compute_delta",
    "expected_measurement_for_image",
    "measurement",
    "verify_manifest",
]
