"""Content-addressed software packages and the pinned registry.

The reproducible build (paper §5.1.1, Fig. 3) starts from *pinned
sources*: every package the image installs is referenced by name,
version, **and** a content digest, so a registry compromise between
audit and build is caught before a single byte reaches the rootfs.

A :class:`Package` is an immutable set of files; its digest is the
SHA-256 of the canonical TLV encoding of its full contents (including
build-time-only files, which influence the digest but are not installed
into the rootfs).  A :class:`PackagePin` binds name + version + digest;
:meth:`PackageRegistry.resolve` re-derives the digest of the stored
package at resolution time and refuses on any mismatch.

``PackageRegistry.tamper`` is the supply-chain attack hook used by the
security tests: it swaps file contents under an already-published
name/version, exactly what digest pinning exists to catch.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Dict, Mapping, Optional, Tuple

from ..crypto import encoding


class PackageError(ValueError):
    """Raised on malformed packages, unknown pins, or digest mismatches."""


def _canonical_files(files: Mapping[str, bytes], kind: str) -> Tuple[Tuple[str, bytes], ...]:
    """Validate and canonicalise a path → content mapping."""
    items = []
    for path, content in sorted(files.items()):
        if not isinstance(path, str) or not path.startswith("/"):
            raise PackageError(f"{kind} paths must be absolute, got {path!r}")
        if not isinstance(content, (bytes, bytearray)):
            raise PackageError(f"{kind} contents must be bytes ({path})")
        items.append((path, bytes(content)))
    return tuple(items)


@dataclass(frozen=True)
class Package:
    """One immutable software package: runtime files + build-only files."""

    name: str
    version: str
    #: Files installed into the image rootfs, path-sorted.
    file_items: Tuple[Tuple[str, bytes], ...]
    #: Build-time-only files (headers, build scripts).  They never reach
    #: the rootfs but *are* part of the content digest: a tampered build
    #: input is as fatal as a tampered binary.
    build_file_items: Tuple[Tuple[str, bytes], ...] = ()

    @classmethod
    def create(
        cls,
        name: str,
        version: str,
        files: Mapping[str, bytes],
        build_files: Optional[Mapping[str, bytes]] = None,
    ) -> "Package":
        """Validate and construct a package from path → content maps."""
        if not name or not version:
            raise PackageError("package name and version are required")
        if not files:
            raise PackageError(f"package {name} has no files")
        return cls(
            name=name,
            version=version,
            file_items=_canonical_files(files, "file"),
            build_file_items=_canonical_files(build_files or {}, "build file"),
        )

    @property
    def files(self) -> Dict[str, bytes]:
        """The runtime files as a mapping."""
        return dict(self.file_items)

    @property
    def build_files(self) -> Dict[str, bytes]:
        """The build-only files as a mapping."""
        return dict(self.build_file_items)

    def digest(self) -> bytes:
        """The content address: SHA-256 over the canonical encoding of
        everything that defines this package."""
        return hashlib.sha256(
            encoding.encode(
                {
                    "magic": "repro-package",
                    "name": self.name,
                    "version": self.version,
                    "files": {path: content for path, content in self.file_items},
                    "build_files": {
                        path: content for path, content in self.build_file_items
                    },
                }
            )
        ).digest()


@dataclass(frozen=True)
class PackagePin:
    """A name + version + digest triple, the unit of source pinning."""

    name: str
    version: str
    digest: bytes


class PackageRegistry:
    """An (untrusted) package store, keyed by name + version.

    Publishing returns the content digest the publisher should pin.
    Resolution *re-derives* the digest from the stored bytes, so any
    post-publication tamper — see :meth:`tamper` — fails the pin check.

    Storage is content-addressed at the payload level: every file body
    is interned into a blob store keyed by its SHA-256, so two packages
    (or two versions of one package) shipping an identical payload
    share a single stored copy instead of each pin holding its own.
    Dedup never changes resolution semantics — digests are re-derived
    from the interned bytes, which are equal by construction.
    """

    def __init__(self) -> None:
        self._packages: Dict[Tuple[str, str], Package] = {}
        #: Payload blob store: SHA-256(content) -> the one stored copy.
        self._blobs: Dict[bytes, bytes] = {}

    def _intern(self, content: bytes) -> bytes:
        """The canonical stored copy of *content* (one blob per hash)."""
        return self._blobs.setdefault(hashlib.sha256(content).digest(), content)

    def _intern_items(
        self, items: Tuple[Tuple[str, bytes], ...]
    ) -> Tuple[Tuple[str, bytes], ...]:
        return tuple((path, self._intern(content)) for path, content in items)

    def _deduplicated(self, package: Package) -> Package:
        """*package* with every payload replaced by its interned blob."""
        return replace(
            package,
            file_items=self._intern_items(package.file_items),
            build_file_items=self._intern_items(package.build_file_items),
        )

    def publish(self, package: Package) -> bytes:
        """Store *package* and return its content digest for pinning."""
        key = (package.name, package.version)
        existing = self._packages.get(key)
        if existing is not None and existing.digest() != package.digest():
            raise PackageError(
                f"{package.name}-{package.version} already published "
                "with different contents"
            )
        self._packages[key] = self._deduplicated(package)
        return package.digest()

    def resolve(self, pin: PackagePin) -> Package:
        """Fetch the pinned package, verifying its content digest.

        Raises :class:`PackageError` if the package is absent or its
        recomputed digest no longer matches the pin (supply-chain
        tamper between audit and build).
        """
        package = self._packages.get((pin.name, pin.version))
        if package is None:
            raise PackageError(f"no such package: {pin.name}-{pin.version}")
        if package.digest() != pin.digest:
            raise PackageError(
                f"digest mismatch for {pin.name}-{pin.version}: the "
                "registry contents do not match the pinned digest "
                "(supply-chain tamper?)"
            )
        return package

    def tamper(self, name: str, version: str, files: Mapping[str, bytes]) -> None:
        """Attack hook: silently replace file contents of a published
        package, as a compromised registry would."""
        key = (name, version)
        if key not in self._packages:
            raise PackageError(f"no such package: {name}-{version}")
        package = self._packages[key]
        merged = package.files
        merged.update(files)
        self._packages[key] = self._deduplicated(
            replace(package, file_items=_canonical_files(merged, "file"))
        )

    def catalogue(self) -> Tuple[Tuple[str, str], ...]:
        """All published (name, version) pairs, sorted."""
        return tuple(sorted(self._packages))

    def dedup_stats(self) -> Dict[str, int]:
        """Payload dedup accounting over the currently published set.

        ``logical_bytes`` is what a copy-per-pin registry would hold;
        ``stored_bytes`` counts each distinct payload once (what the
        blob store actually keeps live); ``deduped_bytes`` is the
        difference.
        """
        logical = 0
        live: Dict[int, int] = {}
        for package in self._packages.values():
            for _, content in package.file_items + package.build_file_items:
                logical += len(content)
                live[id(content)] = len(content)
        stored = sum(live.values())
        return {
            "packages": len(self._packages),
            "blobs": len(live),
            "logical_bytes": logical,
            "stored_bytes": stored,
            "deduped_bytes": logical - stored,
        }
