"""The content-addressed build cache: incremental image rebuilds.

``build_revelio_image`` is deterministic, which makes it memoisable:
every expensive stage (rootfs serialisation, the dm-verity hash tree,
the launch-measurement replay) is a pure function of content that can
be keyed by a digest of its inputs.  A :class:`BuildCache` passed to
the builder turns a one-package change into an incremental rebuild —
unchanged slices are reused, only the affected stages recompute — and
reports per-stage hit/miss counts so the provisioning pipeline (and
``BENCH_update.json``) can show the cache-hit speedup rather than
assert it.

The cache is purely an accelerator: with or without one, equal specs
build byte-identical images (the determinism property the whole trust
story rests on), and a cache shared across specs can never leak bytes
between builds because every key is a collision-resistant digest of
the exact stage inputs.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from typing import Callable, Dict, Tuple, TypeVar

T = TypeVar("T")

#: The stages the image builder memoises, in pipeline order.
CACHE_STAGES: Tuple[str, ...] = ("rootfs", "verity", "measurement")


def cache_key(*parts: bytes) -> bytes:
    """A collision-resistant key over length-framed input digests."""
    hasher = hashlib.sha256()
    for part in parts:
        hasher.update(len(part).to_bytes(8, "big"))
        hasher.update(part)
    return hasher.digest()


class BuildCache:
    """A content-addressed memo shared across image builds.

    Entries are keyed by ``(stage, digest-of-inputs)``; values are the
    stage outputs (bytes or tuples of bytes — immutable, so sharing
    across builds is safe).  ``hits`` / ``misses`` count per stage.
    """

    def __init__(self) -> None:
        self._entries: Dict[Tuple[str, bytes], object] = {}
        self.hits: Counter = Counter()
        self.misses: Counter = Counter()

    def memo(self, stage: str, key: bytes, producer: Callable[[], T]) -> T:
        """Return the cached output for ``(stage, key)``, producing and
        storing it on first use."""
        entry_key = (stage, key)
        if entry_key in self._entries:
            self.hits[stage] += 1
            return self._entries[entry_key]  # type: ignore[return-value]
        self.misses[stage] += 1
        value = producer()
        self._entries[entry_key] = value
        return value

    def __len__(self) -> int:
        return len(self._entries)

    def hit_ratio(self) -> float:
        """Overall fraction of stage lookups served from the cache."""
        hits = sum(self.hits.values())
        lookups = hits + sum(self.misses.values())
        return hits / lookups if lookups else 0.0

    def stats(self) -> dict:
        """A plain-data snapshot (sorted, JSON-ready)."""
        return {
            "entries": len(self._entries),
            "hits": dict(sorted(self.hits.items())),
            "misses": dict(sorted(self.misses.items())),
            "hit_ratio": self.hit_ratio(),
        }

    def reset_stats(self) -> None:
        """Zero the hit/miss counters (entries stay cached)."""
        self.hits.clear()
        self.misses.clear()
